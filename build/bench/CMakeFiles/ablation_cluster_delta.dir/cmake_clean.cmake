file(REMOVE_RECURSE
  "CMakeFiles/ablation_cluster_delta.dir/ablation_cluster_delta.cpp.o"
  "CMakeFiles/ablation_cluster_delta.dir/ablation_cluster_delta.cpp.o.d"
  "ablation_cluster_delta"
  "ablation_cluster_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cluster_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
