# Empty dependencies file for ablation_cluster_delta.
# This may be replaced when dependencies are built.
