# Empty dependencies file for ext_dynamic_replanning.
# This may be replaced when dependencies are built.
