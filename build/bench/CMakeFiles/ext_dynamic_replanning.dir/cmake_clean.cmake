file(REMOVE_RECURSE
  "CMakeFiles/ext_dynamic_replanning.dir/ext_dynamic_replanning.cpp.o"
  "CMakeFiles/ext_dynamic_replanning.dir/ext_dynamic_replanning.cpp.o.d"
  "ext_dynamic_replanning"
  "ext_dynamic_replanning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_dynamic_replanning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
