# Empty dependencies file for table3_routing_12pm.
# This may be replaced when dependencies are built.
