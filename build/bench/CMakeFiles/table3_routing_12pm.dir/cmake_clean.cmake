file(REMOVE_RECURSE
  "CMakeFiles/table3_routing_12pm.dir/table3_routing_12pm.cpp.o"
  "CMakeFiles/table3_routing_12pm.dir/table3_routing_12pm.cpp.o.d"
  "table3_routing_12pm"
  "table3_routing_12pm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_routing_12pm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
