file(REMOVE_RECURSE
  "CMakeFiles/fig4_solar_radiation.dir/fig4_solar_radiation.cpp.o"
  "CMakeFiles/fig4_solar_radiation.dir/fig4_solar_radiation.cpp.o.d"
  "fig4_solar_radiation"
  "fig4_solar_radiation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_solar_radiation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
