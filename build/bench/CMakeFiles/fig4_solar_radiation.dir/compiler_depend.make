# Empty compiler generated dependencies file for fig4_solar_radiation.
# This may be replaced when dependencies are built.
