# Empty dependencies file for ext_crowdsensing.
# This may be replaced when dependencies are built.
