file(REMOVE_RECURSE
  "CMakeFiles/ext_crowdsensing.dir/ext_crowdsensing.cpp.o"
  "CMakeFiles/ext_crowdsensing.dir/ext_crowdsensing.cpp.o.d"
  "ext_crowdsensing"
  "ext_crowdsensing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_crowdsensing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
