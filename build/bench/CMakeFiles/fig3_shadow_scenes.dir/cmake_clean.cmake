file(REMOVE_RECURSE
  "CMakeFiles/fig3_shadow_scenes.dir/fig3_shadow_scenes.cpp.o"
  "CMakeFiles/fig3_shadow_scenes.dir/fig3_shadow_scenes.cpp.o.d"
  "fig3_shadow_scenes"
  "fig3_shadow_scenes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_shadow_scenes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
