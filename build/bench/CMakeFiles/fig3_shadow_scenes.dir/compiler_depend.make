# Empty compiler generated dependencies file for fig3_shadow_scenes.
# This may be replaced when dependencies are built.
