# Empty dependencies file for table2_routing_10am.
# This may be replaced when dependencies are built.
