file(REMOVE_RECURSE
  "CMakeFiles/table2_routing_10am.dir/table2_routing_10am.cpp.o"
  "CMakeFiles/table2_routing_10am.dir/table2_routing_10am.cpp.o.d"
  "table2_routing_10am"
  "table2_routing_10am.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_routing_10am.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
