# Empty dependencies file for ext_parking.
# This may be replaced when dependencies are built.
