file(REMOVE_RECURSE
  "CMakeFiles/ext_parking.dir/ext_parking.cpp.o"
  "CMakeFiles/ext_parking.dir/ext_parking.cpp.o.d"
  "ext_parking"
  "ext_parking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_parking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
