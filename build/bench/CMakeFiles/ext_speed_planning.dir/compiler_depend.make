# Empty compiler generated dependencies file for ext_speed_planning.
# This may be replaced when dependencies are built.
