
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ext_speed_planning.cpp" "bench/CMakeFiles/ext_speed_planning.dir/ext_speed_planning.cpp.o" "gcc" "bench/CMakeFiles/ext_speed_planning.dir/ext_speed_planning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sensing/CMakeFiles/sunchase_sensing.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sunchase_core.dir/DependInfo.cmake"
  "/root/repo/build/src/solar/CMakeFiles/sunchase_solar.dir/DependInfo.cmake"
  "/root/repo/build/src/ev/CMakeFiles/sunchase_ev.dir/DependInfo.cmake"
  "/root/repo/build/src/shadow/CMakeFiles/sunchase_shadow.dir/DependInfo.cmake"
  "/root/repo/build/src/roadnet/CMakeFiles/sunchase_roadnet.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/sunchase_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sunchase_common.dir/DependInfo.cmake"
  "/root/repo/build/src/speedplan/CMakeFiles/sunchase_speedplan.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
