file(REMOVE_RECURSE
  "CMakeFiles/ext_speed_planning.dir/ext_speed_planning.cpp.o"
  "CMakeFiles/ext_speed_planning.dir/ext_speed_planning.cpp.o.d"
  "ext_speed_planning"
  "ext_speed_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_speed_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
