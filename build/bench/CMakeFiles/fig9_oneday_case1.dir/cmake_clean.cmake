file(REMOVE_RECURSE
  "CMakeFiles/fig9_oneday_case1.dir/fig9_oneday_case1.cpp.o"
  "CMakeFiles/fig9_oneday_case1.dir/fig9_oneday_case1.cpp.o.d"
  "fig9_oneday_case1"
  "fig9_oneday_case1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_oneday_case1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
