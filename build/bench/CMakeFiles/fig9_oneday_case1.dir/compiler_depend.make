# Empty compiler generated dependencies file for fig9_oneday_case1.
# This may be replaced when dependencies are built.
