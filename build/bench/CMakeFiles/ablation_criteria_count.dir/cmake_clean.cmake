file(REMOVE_RECURSE
  "CMakeFiles/ablation_criteria_count.dir/ablation_criteria_count.cpp.o"
  "CMakeFiles/ablation_criteria_count.dir/ablation_criteria_count.cpp.o.d"
  "ablation_criteria_count"
  "ablation_criteria_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_criteria_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
