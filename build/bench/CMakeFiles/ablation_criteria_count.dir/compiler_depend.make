# Empty compiler generated dependencies file for ablation_criteria_count.
# This may be replaced when dependencies are built.
