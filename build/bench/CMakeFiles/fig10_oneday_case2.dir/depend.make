# Empty dependencies file for fig10_oneday_case2.
# This may be replaced when dependencies are built.
