file(REMOVE_RECURSE
  "CMakeFiles/fig10_oneday_case2.dir/fig10_oneday_case2.cpp.o"
  "CMakeFiles/fig10_oneday_case2.dir/fig10_oneday_case2.cpp.o.d"
  "fig10_oneday_case2"
  "fig10_oneday_case2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_oneday_case2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
