file(REMOVE_RECURSE
  "CMakeFiles/perf_mlc_scaling.dir/perf_mlc_scaling.cpp.o"
  "CMakeFiles/perf_mlc_scaling.dir/perf_mlc_scaling.cpp.o.d"
  "perf_mlc_scaling"
  "perf_mlc_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_mlc_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
