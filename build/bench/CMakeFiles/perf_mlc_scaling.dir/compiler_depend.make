# Empty compiler generated dependencies file for perf_mlc_scaling.
# This may be replaced when dependencies are built.
