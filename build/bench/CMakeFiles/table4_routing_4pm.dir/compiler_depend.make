# Empty compiler generated dependencies file for table4_routing_4pm.
# This may be replaced when dependencies are built.
