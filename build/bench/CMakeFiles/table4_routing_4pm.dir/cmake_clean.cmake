file(REMOVE_RECURSE
  "CMakeFiles/table4_routing_4pm.dir/table4_routing_4pm.cpp.o"
  "CMakeFiles/table4_routing_4pm.dir/table4_routing_4pm.cpp.o.d"
  "table4_routing_4pm"
  "table4_routing_4pm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_routing_4pm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
