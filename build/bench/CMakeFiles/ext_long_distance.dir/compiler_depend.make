# Empty compiler generated dependencies file for ext_long_distance.
# This may be replaced when dependencies are built.
