file(REMOVE_RECURSE
  "CMakeFiles/ext_long_distance.dir/ext_long_distance.cpp.o"
  "CMakeFiles/ext_long_distance.dir/ext_long_distance.cpp.o.d"
  "ext_long_distance"
  "ext_long_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_long_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
