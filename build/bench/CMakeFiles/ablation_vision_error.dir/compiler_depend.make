# Empty compiler generated dependencies file for ablation_vision_error.
# This may be replaced when dependencies are built.
