file(REMOVE_RECURSE
  "CMakeFiles/ablation_vision_error.dir/ablation_vision_error.cpp.o"
  "CMakeFiles/ablation_vision_error.dir/ablation_vision_error.cpp.o.d"
  "ablation_vision_error"
  "ablation_vision_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vision_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
