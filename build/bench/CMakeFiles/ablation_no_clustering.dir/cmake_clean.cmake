file(REMOVE_RECURSE
  "CMakeFiles/ablation_no_clustering.dir/ablation_no_clustering.cpp.o"
  "CMakeFiles/ablation_no_clustering.dir/ablation_no_clustering.cpp.o.d"
  "ablation_no_clustering"
  "ablation_no_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_no_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
