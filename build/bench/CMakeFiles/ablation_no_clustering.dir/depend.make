# Empty dependencies file for ablation_no_clustering.
# This may be replaced when dependencies are built.
