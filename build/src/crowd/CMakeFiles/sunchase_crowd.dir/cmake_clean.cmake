file(REMOVE_RECURSE
  "CMakeFiles/sunchase_crowd.dir/src/crowd_map.cpp.o"
  "CMakeFiles/sunchase_crowd.dir/src/crowd_map.cpp.o.d"
  "CMakeFiles/sunchase_crowd.dir/src/fleet.cpp.o"
  "CMakeFiles/sunchase_crowd.dir/src/fleet.cpp.o.d"
  "libsunchase_crowd.a"
  "libsunchase_crowd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunchase_crowd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
