file(REMOVE_RECURSE
  "libsunchase_crowd.a"
)
