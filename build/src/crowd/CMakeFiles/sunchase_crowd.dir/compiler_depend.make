# Empty compiler generated dependencies file for sunchase_crowd.
# This may be replaced when dependencies are built.
