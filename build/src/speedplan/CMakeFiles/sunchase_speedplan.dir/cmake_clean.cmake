file(REMOVE_RECURSE
  "CMakeFiles/sunchase_speedplan.dir/src/speedplan.cpp.o"
  "CMakeFiles/sunchase_speedplan.dir/src/speedplan.cpp.o.d"
  "libsunchase_speedplan.a"
  "libsunchase_speedplan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunchase_speedplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
