file(REMOVE_RECURSE
  "libsunchase_speedplan.a"
)
