# Empty compiler generated dependencies file for sunchase_speedplan.
# This may be replaced when dependencies are built.
