file(REMOVE_RECURSE
  "CMakeFiles/sunchase_exporter.dir/src/geojson.cpp.o"
  "CMakeFiles/sunchase_exporter.dir/src/geojson.cpp.o.d"
  "libsunchase_exporter.a"
  "libsunchase_exporter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunchase_exporter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
