file(REMOVE_RECURSE
  "libsunchase_exporter.a"
)
