# Empty dependencies file for sunchase_exporter.
# This may be replaced when dependencies are built.
