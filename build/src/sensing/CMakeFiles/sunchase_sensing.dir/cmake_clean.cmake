file(REMOVE_RECURSE
  "CMakeFiles/sunchase_sensing.dir/src/drive.cpp.o"
  "CMakeFiles/sunchase_sensing.dir/src/drive.cpp.o.d"
  "CMakeFiles/sunchase_sensing.dir/src/sensors.cpp.o"
  "CMakeFiles/sunchase_sensing.dir/src/sensors.cpp.o.d"
  "CMakeFiles/sunchase_sensing.dir/src/validation.cpp.o"
  "CMakeFiles/sunchase_sensing.dir/src/validation.cpp.o.d"
  "libsunchase_sensing.a"
  "libsunchase_sensing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunchase_sensing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
