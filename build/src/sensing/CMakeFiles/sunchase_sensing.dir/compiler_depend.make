# Empty compiler generated dependencies file for sunchase_sensing.
# This may be replaced when dependencies are built.
