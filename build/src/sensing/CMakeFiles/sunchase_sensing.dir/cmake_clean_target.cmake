file(REMOVE_RECURSE
  "libsunchase_sensing.a"
)
