
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/shadow/src/caster.cpp" "src/shadow/CMakeFiles/sunchase_shadow.dir/src/caster.cpp.o" "gcc" "src/shadow/CMakeFiles/sunchase_shadow.dir/src/caster.cpp.o.d"
  "/root/repo/src/shadow/src/scene.cpp" "src/shadow/CMakeFiles/sunchase_shadow.dir/src/scene.cpp.o" "gcc" "src/shadow/CMakeFiles/sunchase_shadow.dir/src/scene.cpp.o.d"
  "/root/repo/src/shadow/src/scene_io.cpp" "src/shadow/CMakeFiles/sunchase_shadow.dir/src/scene_io.cpp.o" "gcc" "src/shadow/CMakeFiles/sunchase_shadow.dir/src/scene_io.cpp.o.d"
  "/root/repo/src/shadow/src/scenegen.cpp" "src/shadow/CMakeFiles/sunchase_shadow.dir/src/scenegen.cpp.o" "gcc" "src/shadow/CMakeFiles/sunchase_shadow.dir/src/scenegen.cpp.o.d"
  "/root/repo/src/shadow/src/shading.cpp" "src/shadow/CMakeFiles/sunchase_shadow.dir/src/shading.cpp.o" "gcc" "src/shadow/CMakeFiles/sunchase_shadow.dir/src/shading.cpp.o.d"
  "/root/repo/src/shadow/src/vision.cpp" "src/shadow/CMakeFiles/sunchase_shadow.dir/src/vision.cpp.o" "gcc" "src/shadow/CMakeFiles/sunchase_shadow.dir/src/vision.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/roadnet/CMakeFiles/sunchase_roadnet.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/sunchase_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sunchase_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
