file(REMOVE_RECURSE
  "CMakeFiles/sunchase_shadow.dir/src/caster.cpp.o"
  "CMakeFiles/sunchase_shadow.dir/src/caster.cpp.o.d"
  "CMakeFiles/sunchase_shadow.dir/src/scene.cpp.o"
  "CMakeFiles/sunchase_shadow.dir/src/scene.cpp.o.d"
  "CMakeFiles/sunchase_shadow.dir/src/scene_io.cpp.o"
  "CMakeFiles/sunchase_shadow.dir/src/scene_io.cpp.o.d"
  "CMakeFiles/sunchase_shadow.dir/src/scenegen.cpp.o"
  "CMakeFiles/sunchase_shadow.dir/src/scenegen.cpp.o.d"
  "CMakeFiles/sunchase_shadow.dir/src/shading.cpp.o"
  "CMakeFiles/sunchase_shadow.dir/src/shading.cpp.o.d"
  "CMakeFiles/sunchase_shadow.dir/src/vision.cpp.o"
  "CMakeFiles/sunchase_shadow.dir/src/vision.cpp.o.d"
  "libsunchase_shadow.a"
  "libsunchase_shadow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunchase_shadow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
