# Empty compiler generated dependencies file for sunchase_shadow.
# This may be replaced when dependencies are built.
