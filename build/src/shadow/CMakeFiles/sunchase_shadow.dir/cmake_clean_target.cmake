file(REMOVE_RECURSE
  "libsunchase_shadow.a"
)
