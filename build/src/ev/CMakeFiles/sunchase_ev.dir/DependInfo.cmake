
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ev/src/battery.cpp" "src/ev/CMakeFiles/sunchase_ev.dir/src/battery.cpp.o" "gcc" "src/ev/CMakeFiles/sunchase_ev.dir/src/battery.cpp.o.d"
  "/root/repo/src/ev/src/consumption.cpp" "src/ev/CMakeFiles/sunchase_ev.dir/src/consumption.cpp.o" "gcc" "src/ev/CMakeFiles/sunchase_ev.dir/src/consumption.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sunchase_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
