file(REMOVE_RECURSE
  "CMakeFiles/sunchase_ev.dir/src/battery.cpp.o"
  "CMakeFiles/sunchase_ev.dir/src/battery.cpp.o.d"
  "CMakeFiles/sunchase_ev.dir/src/consumption.cpp.o"
  "CMakeFiles/sunchase_ev.dir/src/consumption.cpp.o.d"
  "libsunchase_ev.a"
  "libsunchase_ev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunchase_ev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
