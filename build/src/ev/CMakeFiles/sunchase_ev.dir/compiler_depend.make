# Empty compiler generated dependencies file for sunchase_ev.
# This may be replaced when dependencies are built.
