file(REMOVE_RECURSE
  "libsunchase_ev.a"
)
