# Empty dependencies file for sunchase_core.
# This may be replaced when dependencies are built.
