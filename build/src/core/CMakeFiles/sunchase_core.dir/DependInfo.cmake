
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/src/astar.cpp" "src/core/CMakeFiles/sunchase_core.dir/src/astar.cpp.o" "gcc" "src/core/CMakeFiles/sunchase_core.dir/src/astar.cpp.o.d"
  "/root/repo/src/core/src/criteria.cpp" "src/core/CMakeFiles/sunchase_core.dir/src/criteria.cpp.o" "gcc" "src/core/CMakeFiles/sunchase_core.dir/src/criteria.cpp.o.d"
  "/root/repo/src/core/src/dijkstra.cpp" "src/core/CMakeFiles/sunchase_core.dir/src/dijkstra.cpp.o" "gcc" "src/core/CMakeFiles/sunchase_core.dir/src/dijkstra.cpp.o.d"
  "/root/repo/src/core/src/kmeans.cpp" "src/core/CMakeFiles/sunchase_core.dir/src/kmeans.cpp.o" "gcc" "src/core/CMakeFiles/sunchase_core.dir/src/kmeans.cpp.o.d"
  "/root/repo/src/core/src/metrics.cpp" "src/core/CMakeFiles/sunchase_core.dir/src/metrics.cpp.o" "gcc" "src/core/CMakeFiles/sunchase_core.dir/src/metrics.cpp.o.d"
  "/root/repo/src/core/src/mlc.cpp" "src/core/CMakeFiles/sunchase_core.dir/src/mlc.cpp.o" "gcc" "src/core/CMakeFiles/sunchase_core.dir/src/mlc.cpp.o.d"
  "/root/repo/src/core/src/planner.cpp" "src/core/CMakeFiles/sunchase_core.dir/src/planner.cpp.o" "gcc" "src/core/CMakeFiles/sunchase_core.dir/src/planner.cpp.o.d"
  "/root/repo/src/core/src/replanner.cpp" "src/core/CMakeFiles/sunchase_core.dir/src/replanner.cpp.o" "gcc" "src/core/CMakeFiles/sunchase_core.dir/src/replanner.cpp.o.d"
  "/root/repo/src/core/src/selection.cpp" "src/core/CMakeFiles/sunchase_core.dir/src/selection.cpp.o" "gcc" "src/core/CMakeFiles/sunchase_core.dir/src/selection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/solar/CMakeFiles/sunchase_solar.dir/DependInfo.cmake"
  "/root/repo/build/src/ev/CMakeFiles/sunchase_ev.dir/DependInfo.cmake"
  "/root/repo/build/src/shadow/CMakeFiles/sunchase_shadow.dir/DependInfo.cmake"
  "/root/repo/build/src/roadnet/CMakeFiles/sunchase_roadnet.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/sunchase_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sunchase_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
