file(REMOVE_RECURSE
  "libsunchase_core.a"
)
