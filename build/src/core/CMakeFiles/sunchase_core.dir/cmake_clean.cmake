file(REMOVE_RECURSE
  "CMakeFiles/sunchase_core.dir/src/astar.cpp.o"
  "CMakeFiles/sunchase_core.dir/src/astar.cpp.o.d"
  "CMakeFiles/sunchase_core.dir/src/criteria.cpp.o"
  "CMakeFiles/sunchase_core.dir/src/criteria.cpp.o.d"
  "CMakeFiles/sunchase_core.dir/src/dijkstra.cpp.o"
  "CMakeFiles/sunchase_core.dir/src/dijkstra.cpp.o.d"
  "CMakeFiles/sunchase_core.dir/src/kmeans.cpp.o"
  "CMakeFiles/sunchase_core.dir/src/kmeans.cpp.o.d"
  "CMakeFiles/sunchase_core.dir/src/metrics.cpp.o"
  "CMakeFiles/sunchase_core.dir/src/metrics.cpp.o.d"
  "CMakeFiles/sunchase_core.dir/src/mlc.cpp.o"
  "CMakeFiles/sunchase_core.dir/src/mlc.cpp.o.d"
  "CMakeFiles/sunchase_core.dir/src/planner.cpp.o"
  "CMakeFiles/sunchase_core.dir/src/planner.cpp.o.d"
  "CMakeFiles/sunchase_core.dir/src/replanner.cpp.o"
  "CMakeFiles/sunchase_core.dir/src/replanner.cpp.o.d"
  "CMakeFiles/sunchase_core.dir/src/selection.cpp.o"
  "CMakeFiles/sunchase_core.dir/src/selection.cpp.o.d"
  "libsunchase_core.a"
  "libsunchase_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunchase_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
