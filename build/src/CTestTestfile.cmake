# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("geo")
subdirs("roadnet")
subdirs("shadow")
subdirs("solar")
subdirs("ev")
subdirs("core")
subdirs("sensing")
subdirs("speedplan")
subdirs("crowd")
subdirs("exporter")
