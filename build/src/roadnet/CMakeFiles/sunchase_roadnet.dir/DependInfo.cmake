
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/roadnet/src/citygen.cpp" "src/roadnet/CMakeFiles/sunchase_roadnet.dir/src/citygen.cpp.o" "gcc" "src/roadnet/CMakeFiles/sunchase_roadnet.dir/src/citygen.cpp.o.d"
  "/root/repo/src/roadnet/src/directions.cpp" "src/roadnet/CMakeFiles/sunchase_roadnet.dir/src/directions.cpp.o" "gcc" "src/roadnet/CMakeFiles/sunchase_roadnet.dir/src/directions.cpp.o.d"
  "/root/repo/src/roadnet/src/graph.cpp" "src/roadnet/CMakeFiles/sunchase_roadnet.dir/src/graph.cpp.o" "gcc" "src/roadnet/CMakeFiles/sunchase_roadnet.dir/src/graph.cpp.o.d"
  "/root/repo/src/roadnet/src/io.cpp" "src/roadnet/CMakeFiles/sunchase_roadnet.dir/src/io.cpp.o" "gcc" "src/roadnet/CMakeFiles/sunchase_roadnet.dir/src/io.cpp.o.d"
  "/root/repo/src/roadnet/src/path.cpp" "src/roadnet/CMakeFiles/sunchase_roadnet.dir/src/path.cpp.o" "gcc" "src/roadnet/CMakeFiles/sunchase_roadnet.dir/src/path.cpp.o.d"
  "/root/repo/src/roadnet/src/traffic.cpp" "src/roadnet/CMakeFiles/sunchase_roadnet.dir/src/traffic.cpp.o" "gcc" "src/roadnet/CMakeFiles/sunchase_roadnet.dir/src/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/sunchase_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sunchase_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
