file(REMOVE_RECURSE
  "CMakeFiles/sunchase_roadnet.dir/src/citygen.cpp.o"
  "CMakeFiles/sunchase_roadnet.dir/src/citygen.cpp.o.d"
  "CMakeFiles/sunchase_roadnet.dir/src/directions.cpp.o"
  "CMakeFiles/sunchase_roadnet.dir/src/directions.cpp.o.d"
  "CMakeFiles/sunchase_roadnet.dir/src/graph.cpp.o"
  "CMakeFiles/sunchase_roadnet.dir/src/graph.cpp.o.d"
  "CMakeFiles/sunchase_roadnet.dir/src/io.cpp.o"
  "CMakeFiles/sunchase_roadnet.dir/src/io.cpp.o.d"
  "CMakeFiles/sunchase_roadnet.dir/src/path.cpp.o"
  "CMakeFiles/sunchase_roadnet.dir/src/path.cpp.o.d"
  "CMakeFiles/sunchase_roadnet.dir/src/traffic.cpp.o"
  "CMakeFiles/sunchase_roadnet.dir/src/traffic.cpp.o.d"
  "libsunchase_roadnet.a"
  "libsunchase_roadnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunchase_roadnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
