# Empty compiler generated dependencies file for sunchase_roadnet.
# This may be replaced when dependencies are built.
