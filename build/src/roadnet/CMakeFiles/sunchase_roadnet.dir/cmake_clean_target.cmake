file(REMOVE_RECURSE
  "libsunchase_roadnet.a"
)
