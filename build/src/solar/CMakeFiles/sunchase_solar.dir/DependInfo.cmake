
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solar/src/dataset.cpp" "src/solar/CMakeFiles/sunchase_solar.dir/src/dataset.cpp.o" "gcc" "src/solar/CMakeFiles/sunchase_solar.dir/src/dataset.cpp.o.d"
  "/root/repo/src/solar/src/input_map.cpp" "src/solar/CMakeFiles/sunchase_solar.dir/src/input_map.cpp.o" "gcc" "src/solar/CMakeFiles/sunchase_solar.dir/src/input_map.cpp.o.d"
  "/root/repo/src/solar/src/irradiance.cpp" "src/solar/CMakeFiles/sunchase_solar.dir/src/irradiance.cpp.o" "gcc" "src/solar/CMakeFiles/sunchase_solar.dir/src/irradiance.cpp.o.d"
  "/root/repo/src/solar/src/panel.cpp" "src/solar/CMakeFiles/sunchase_solar.dir/src/panel.cpp.o" "gcc" "src/solar/CMakeFiles/sunchase_solar.dir/src/panel.cpp.o.d"
  "/root/repo/src/solar/src/parking.cpp" "src/solar/CMakeFiles/sunchase_solar.dir/src/parking.cpp.o" "gcc" "src/solar/CMakeFiles/sunchase_solar.dir/src/parking.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/shadow/CMakeFiles/sunchase_shadow.dir/DependInfo.cmake"
  "/root/repo/build/src/roadnet/CMakeFiles/sunchase_roadnet.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/sunchase_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sunchase_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
