file(REMOVE_RECURSE
  "libsunchase_solar.a"
)
