file(REMOVE_RECURSE
  "CMakeFiles/sunchase_solar.dir/src/dataset.cpp.o"
  "CMakeFiles/sunchase_solar.dir/src/dataset.cpp.o.d"
  "CMakeFiles/sunchase_solar.dir/src/input_map.cpp.o"
  "CMakeFiles/sunchase_solar.dir/src/input_map.cpp.o.d"
  "CMakeFiles/sunchase_solar.dir/src/irradiance.cpp.o"
  "CMakeFiles/sunchase_solar.dir/src/irradiance.cpp.o.d"
  "CMakeFiles/sunchase_solar.dir/src/panel.cpp.o"
  "CMakeFiles/sunchase_solar.dir/src/panel.cpp.o.d"
  "CMakeFiles/sunchase_solar.dir/src/parking.cpp.o"
  "CMakeFiles/sunchase_solar.dir/src/parking.cpp.o.d"
  "libsunchase_solar.a"
  "libsunchase_solar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunchase_solar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
