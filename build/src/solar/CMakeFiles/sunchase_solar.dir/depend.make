# Empty dependencies file for sunchase_solar.
# This may be replaced when dependencies are built.
