file(REMOVE_RECURSE
  "libsunchase_geo.a"
)
