# Empty dependencies file for sunchase_geo.
# This may be replaced when dependencies are built.
