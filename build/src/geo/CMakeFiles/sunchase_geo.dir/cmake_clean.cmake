file(REMOVE_RECURSE
  "CMakeFiles/sunchase_geo.dir/src/hough.cpp.o"
  "CMakeFiles/sunchase_geo.dir/src/hough.cpp.o.d"
  "CMakeFiles/sunchase_geo.dir/src/latlon.cpp.o"
  "CMakeFiles/sunchase_geo.dir/src/latlon.cpp.o.d"
  "CMakeFiles/sunchase_geo.dir/src/polygon.cpp.o"
  "CMakeFiles/sunchase_geo.dir/src/polygon.cpp.o.d"
  "CMakeFiles/sunchase_geo.dir/src/raster.cpp.o"
  "CMakeFiles/sunchase_geo.dir/src/raster.cpp.o.d"
  "CMakeFiles/sunchase_geo.dir/src/segment.cpp.o"
  "CMakeFiles/sunchase_geo.dir/src/segment.cpp.o.d"
  "CMakeFiles/sunchase_geo.dir/src/sunpos.cpp.o"
  "CMakeFiles/sunchase_geo.dir/src/sunpos.cpp.o.d"
  "libsunchase_geo.a"
  "libsunchase_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunchase_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
