
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/src/hough.cpp" "src/geo/CMakeFiles/sunchase_geo.dir/src/hough.cpp.o" "gcc" "src/geo/CMakeFiles/sunchase_geo.dir/src/hough.cpp.o.d"
  "/root/repo/src/geo/src/latlon.cpp" "src/geo/CMakeFiles/sunchase_geo.dir/src/latlon.cpp.o" "gcc" "src/geo/CMakeFiles/sunchase_geo.dir/src/latlon.cpp.o.d"
  "/root/repo/src/geo/src/polygon.cpp" "src/geo/CMakeFiles/sunchase_geo.dir/src/polygon.cpp.o" "gcc" "src/geo/CMakeFiles/sunchase_geo.dir/src/polygon.cpp.o.d"
  "/root/repo/src/geo/src/raster.cpp" "src/geo/CMakeFiles/sunchase_geo.dir/src/raster.cpp.o" "gcc" "src/geo/CMakeFiles/sunchase_geo.dir/src/raster.cpp.o.d"
  "/root/repo/src/geo/src/segment.cpp" "src/geo/CMakeFiles/sunchase_geo.dir/src/segment.cpp.o" "gcc" "src/geo/CMakeFiles/sunchase_geo.dir/src/segment.cpp.o.d"
  "/root/repo/src/geo/src/sunpos.cpp" "src/geo/CMakeFiles/sunchase_geo.dir/src/sunpos.cpp.o" "gcc" "src/geo/CMakeFiles/sunchase_geo.dir/src/sunpos.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sunchase_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
