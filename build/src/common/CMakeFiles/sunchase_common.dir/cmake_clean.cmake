file(REMOVE_RECURSE
  "CMakeFiles/sunchase_common.dir/src/logging.cpp.o"
  "CMakeFiles/sunchase_common.dir/src/logging.cpp.o.d"
  "CMakeFiles/sunchase_common.dir/src/rng.cpp.o"
  "CMakeFiles/sunchase_common.dir/src/rng.cpp.o.d"
  "CMakeFiles/sunchase_common.dir/src/time_of_day.cpp.o"
  "CMakeFiles/sunchase_common.dir/src/time_of_day.cpp.o.d"
  "libsunchase_common.a"
  "libsunchase_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunchase_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
