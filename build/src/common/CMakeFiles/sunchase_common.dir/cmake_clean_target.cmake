file(REMOVE_RECURSE
  "libsunchase_common.a"
)
