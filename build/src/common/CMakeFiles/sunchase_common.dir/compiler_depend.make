# Empty compiler generated dependencies file for sunchase_common.
# This may be replaced when dependencies are built.
