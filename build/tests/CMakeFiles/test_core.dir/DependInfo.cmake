
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_astar.cpp" "tests/CMakeFiles/test_core.dir/core/test_astar.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_astar.cpp.o.d"
  "/root/repo/tests/core/test_battery_planning.cpp" "tests/CMakeFiles/test_core.dir/core/test_battery_planning.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_battery_planning.cpp.o.d"
  "/root/repo/tests/core/test_criteria.cpp" "tests/CMakeFiles/test_core.dir/core/test_criteria.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_criteria.cpp.o.d"
  "/root/repo/tests/core/test_dijkstra.cpp" "tests/CMakeFiles/test_core.dir/core/test_dijkstra.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_dijkstra.cpp.o.d"
  "/root/repo/tests/core/test_kmeans.cpp" "tests/CMakeFiles/test_core.dir/core/test_kmeans.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_kmeans.cpp.o.d"
  "/root/repo/tests/core/test_metrics.cpp" "tests/CMakeFiles/test_core.dir/core/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_metrics.cpp.o.d"
  "/root/repo/tests/core/test_mlc.cpp" "tests/CMakeFiles/test_core.dir/core/test_mlc.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_mlc.cpp.o.d"
  "/root/repo/tests/core/test_planner.cpp" "tests/CMakeFiles/test_core.dir/core/test_planner.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_planner.cpp.o.d"
  "/root/repo/tests/core/test_replanner.cpp" "tests/CMakeFiles/test_core.dir/core/test_replanner.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_replanner.cpp.o.d"
  "/root/repo/tests/core/test_selection.cpp" "tests/CMakeFiles/test_core.dir/core/test_selection.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_selection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sensing/CMakeFiles/sunchase_sensing.dir/DependInfo.cmake"
  "/root/repo/build/src/speedplan/CMakeFiles/sunchase_speedplan.dir/DependInfo.cmake"
  "/root/repo/build/src/crowd/CMakeFiles/sunchase_crowd.dir/DependInfo.cmake"
  "/root/repo/build/src/exporter/CMakeFiles/sunchase_exporter.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sunchase_core.dir/DependInfo.cmake"
  "/root/repo/build/src/solar/CMakeFiles/sunchase_solar.dir/DependInfo.cmake"
  "/root/repo/build/src/ev/CMakeFiles/sunchase_ev.dir/DependInfo.cmake"
  "/root/repo/build/src/shadow/CMakeFiles/sunchase_shadow.dir/DependInfo.cmake"
  "/root/repo/build/src/roadnet/CMakeFiles/sunchase_roadnet.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/sunchase_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sunchase_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
