file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_astar.cpp.o"
  "CMakeFiles/test_core.dir/core/test_astar.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_battery_planning.cpp.o"
  "CMakeFiles/test_core.dir/core/test_battery_planning.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_criteria.cpp.o"
  "CMakeFiles/test_core.dir/core/test_criteria.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_dijkstra.cpp.o"
  "CMakeFiles/test_core.dir/core/test_dijkstra.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_kmeans.cpp.o"
  "CMakeFiles/test_core.dir/core/test_kmeans.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_metrics.cpp.o"
  "CMakeFiles/test_core.dir/core/test_metrics.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_mlc.cpp.o"
  "CMakeFiles/test_core.dir/core/test_mlc.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_planner.cpp.o"
  "CMakeFiles/test_core.dir/core/test_planner.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_replanner.cpp.o"
  "CMakeFiles/test_core.dir/core/test_replanner.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_selection.cpp.o"
  "CMakeFiles/test_core.dir/core/test_selection.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
