file(REMOVE_RECURSE
  "CMakeFiles/test_solar.dir/solar/test_dataset.cpp.o"
  "CMakeFiles/test_solar.dir/solar/test_dataset.cpp.o.d"
  "CMakeFiles/test_solar.dir/solar/test_input_map.cpp.o"
  "CMakeFiles/test_solar.dir/solar/test_input_map.cpp.o.d"
  "CMakeFiles/test_solar.dir/solar/test_irradiance.cpp.o"
  "CMakeFiles/test_solar.dir/solar/test_irradiance.cpp.o.d"
  "CMakeFiles/test_solar.dir/solar/test_panel.cpp.o"
  "CMakeFiles/test_solar.dir/solar/test_panel.cpp.o.d"
  "CMakeFiles/test_solar.dir/solar/test_parking.cpp.o"
  "CMakeFiles/test_solar.dir/solar/test_parking.cpp.o.d"
  "test_solar"
  "test_solar.pdb"
  "test_solar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
