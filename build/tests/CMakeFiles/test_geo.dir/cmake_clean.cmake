file(REMOVE_RECURSE
  "CMakeFiles/test_geo.dir/geo/test_hough.cpp.o"
  "CMakeFiles/test_geo.dir/geo/test_hough.cpp.o.d"
  "CMakeFiles/test_geo.dir/geo/test_latlon.cpp.o"
  "CMakeFiles/test_geo.dir/geo/test_latlon.cpp.o.d"
  "CMakeFiles/test_geo.dir/geo/test_polygon.cpp.o"
  "CMakeFiles/test_geo.dir/geo/test_polygon.cpp.o.d"
  "CMakeFiles/test_geo.dir/geo/test_raster.cpp.o"
  "CMakeFiles/test_geo.dir/geo/test_raster.cpp.o.d"
  "CMakeFiles/test_geo.dir/geo/test_sunpos.cpp.o"
  "CMakeFiles/test_geo.dir/geo/test_sunpos.cpp.o.d"
  "CMakeFiles/test_geo.dir/geo/test_vec2_segment.cpp.o"
  "CMakeFiles/test_geo.dir/geo/test_vec2_segment.cpp.o.d"
  "test_geo"
  "test_geo.pdb"
  "test_geo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
