# Empty dependencies file for test_exporter.
# This may be replaced when dependencies are built.
