file(REMOVE_RECURSE
  "CMakeFiles/test_exporter.dir/exporter/test_geojson.cpp.o"
  "CMakeFiles/test_exporter.dir/exporter/test_geojson.cpp.o.d"
  "test_exporter"
  "test_exporter.pdb"
  "test_exporter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exporter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
