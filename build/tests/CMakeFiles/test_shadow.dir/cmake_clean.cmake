file(REMOVE_RECURSE
  "CMakeFiles/test_shadow.dir/shadow/test_caster.cpp.o"
  "CMakeFiles/test_shadow.dir/shadow/test_caster.cpp.o.d"
  "CMakeFiles/test_shadow.dir/shadow/test_scene.cpp.o"
  "CMakeFiles/test_shadow.dir/shadow/test_scene.cpp.o.d"
  "CMakeFiles/test_shadow.dir/shadow/test_scene_io.cpp.o"
  "CMakeFiles/test_shadow.dir/shadow/test_scene_io.cpp.o.d"
  "CMakeFiles/test_shadow.dir/shadow/test_scenegen.cpp.o"
  "CMakeFiles/test_shadow.dir/shadow/test_scenegen.cpp.o.d"
  "CMakeFiles/test_shadow.dir/shadow/test_shading.cpp.o"
  "CMakeFiles/test_shadow.dir/shadow/test_shading.cpp.o.d"
  "CMakeFiles/test_shadow.dir/shadow/test_vision.cpp.o"
  "CMakeFiles/test_shadow.dir/shadow/test_vision.cpp.o.d"
  "test_shadow"
  "test_shadow.pdb"
  "test_shadow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shadow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
