file(REMOVE_RECURSE
  "CMakeFiles/test_speedplan.dir/speedplan/test_speedplan.cpp.o"
  "CMakeFiles/test_speedplan.dir/speedplan/test_speedplan.cpp.o.d"
  "test_speedplan"
  "test_speedplan.pdb"
  "test_speedplan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_speedplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
