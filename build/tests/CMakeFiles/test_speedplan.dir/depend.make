# Empty dependencies file for test_speedplan.
# This may be replaced when dependencies are built.
