file(REMOVE_RECURSE
  "CMakeFiles/test_roadnet.dir/roadnet/test_citygen.cpp.o"
  "CMakeFiles/test_roadnet.dir/roadnet/test_citygen.cpp.o.d"
  "CMakeFiles/test_roadnet.dir/roadnet/test_directions.cpp.o"
  "CMakeFiles/test_roadnet.dir/roadnet/test_directions.cpp.o.d"
  "CMakeFiles/test_roadnet.dir/roadnet/test_graph.cpp.o"
  "CMakeFiles/test_roadnet.dir/roadnet/test_graph.cpp.o.d"
  "CMakeFiles/test_roadnet.dir/roadnet/test_io.cpp.o"
  "CMakeFiles/test_roadnet.dir/roadnet/test_io.cpp.o.d"
  "CMakeFiles/test_roadnet.dir/roadnet/test_path.cpp.o"
  "CMakeFiles/test_roadnet.dir/roadnet/test_path.cpp.o.d"
  "CMakeFiles/test_roadnet.dir/roadnet/test_traffic.cpp.o"
  "CMakeFiles/test_roadnet.dir/roadnet/test_traffic.cpp.o.d"
  "test_roadnet"
  "test_roadnet.pdb"
  "test_roadnet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_roadnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
