
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/roadnet/test_citygen.cpp" "tests/CMakeFiles/test_roadnet.dir/roadnet/test_citygen.cpp.o" "gcc" "tests/CMakeFiles/test_roadnet.dir/roadnet/test_citygen.cpp.o.d"
  "/root/repo/tests/roadnet/test_directions.cpp" "tests/CMakeFiles/test_roadnet.dir/roadnet/test_directions.cpp.o" "gcc" "tests/CMakeFiles/test_roadnet.dir/roadnet/test_directions.cpp.o.d"
  "/root/repo/tests/roadnet/test_graph.cpp" "tests/CMakeFiles/test_roadnet.dir/roadnet/test_graph.cpp.o" "gcc" "tests/CMakeFiles/test_roadnet.dir/roadnet/test_graph.cpp.o.d"
  "/root/repo/tests/roadnet/test_io.cpp" "tests/CMakeFiles/test_roadnet.dir/roadnet/test_io.cpp.o" "gcc" "tests/CMakeFiles/test_roadnet.dir/roadnet/test_io.cpp.o.d"
  "/root/repo/tests/roadnet/test_path.cpp" "tests/CMakeFiles/test_roadnet.dir/roadnet/test_path.cpp.o" "gcc" "tests/CMakeFiles/test_roadnet.dir/roadnet/test_path.cpp.o.d"
  "/root/repo/tests/roadnet/test_traffic.cpp" "tests/CMakeFiles/test_roadnet.dir/roadnet/test_traffic.cpp.o" "gcc" "tests/CMakeFiles/test_roadnet.dir/roadnet/test_traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sensing/CMakeFiles/sunchase_sensing.dir/DependInfo.cmake"
  "/root/repo/build/src/speedplan/CMakeFiles/sunchase_speedplan.dir/DependInfo.cmake"
  "/root/repo/build/src/crowd/CMakeFiles/sunchase_crowd.dir/DependInfo.cmake"
  "/root/repo/build/src/exporter/CMakeFiles/sunchase_exporter.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sunchase_core.dir/DependInfo.cmake"
  "/root/repo/build/src/solar/CMakeFiles/sunchase_solar.dir/DependInfo.cmake"
  "/root/repo/build/src/ev/CMakeFiles/sunchase_ev.dir/DependInfo.cmake"
  "/root/repo/build/src/shadow/CMakeFiles/sunchase_shadow.dir/DependInfo.cmake"
  "/root/repo/build/src/roadnet/CMakeFiles/sunchase_roadnet.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/sunchase_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sunchase_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
