# Empty compiler generated dependencies file for test_roadnet.
# This may be replaced when dependencies are built.
