file(REMOVE_RECURSE
  "CMakeFiles/test_sensing.dir/sensing/test_drive.cpp.o"
  "CMakeFiles/test_sensing.dir/sensing/test_drive.cpp.o.d"
  "CMakeFiles/test_sensing.dir/sensing/test_failure_injection.cpp.o"
  "CMakeFiles/test_sensing.dir/sensing/test_failure_injection.cpp.o.d"
  "CMakeFiles/test_sensing.dir/sensing/test_sensors.cpp.o"
  "CMakeFiles/test_sensing.dir/sensing/test_sensors.cpp.o.d"
  "CMakeFiles/test_sensing.dir/sensing/test_validation.cpp.o"
  "CMakeFiles/test_sensing.dir/sensing/test_validation.cpp.o.d"
  "test_sensing"
  "test_sensing.pdb"
  "test_sensing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sensing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
