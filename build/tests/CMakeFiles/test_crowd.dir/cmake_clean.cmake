file(REMOVE_RECURSE
  "CMakeFiles/test_crowd.dir/crowd/test_crowd_map.cpp.o"
  "CMakeFiles/test_crowd.dir/crowd/test_crowd_map.cpp.o.d"
  "CMakeFiles/test_crowd.dir/crowd/test_fleet.cpp.o"
  "CMakeFiles/test_crowd.dir/crowd/test_fleet.cpp.o.d"
  "test_crowd"
  "test_crowd.pdb"
  "test_crowd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crowd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
