file(REMOVE_RECURSE
  "CMakeFiles/test_ev.dir/ev/test_battery.cpp.o"
  "CMakeFiles/test_ev.dir/ev/test_battery.cpp.o.d"
  "CMakeFiles/test_ev.dir/ev/test_consumption.cpp.o"
  "CMakeFiles/test_ev.dir/ev/test_consumption.cpp.o.d"
  "test_ev"
  "test_ev.pdb"
  "test_ev[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
