# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_geo[1]_include.cmake")
include("/root/repo/build/tests/test_roadnet[1]_include.cmake")
include("/root/repo/build/tests/test_shadow[1]_include.cmake")
include("/root/repo/build/tests/test_solar[1]_include.cmake")
include("/root/repo/build/tests/test_ev[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_sensing[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_speedplan[1]_include.cmake")
include("/root/repo/build/tests/test_crowd[1]_include.cmake")
include("/root/repo/build/tests/test_exporter[1]_include.cmake")
