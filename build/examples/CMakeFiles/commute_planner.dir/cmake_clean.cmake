file(REMOVE_RECURSE
  "CMakeFiles/commute_planner.dir/commute_planner.cpp.o"
  "CMakeFiles/commute_planner.dir/commute_planner.cpp.o.d"
  "commute_planner"
  "commute_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commute_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
