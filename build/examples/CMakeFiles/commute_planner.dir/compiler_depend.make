# Empty compiler generated dependencies file for commute_planner.
# This may be replaced when dependencies are built.
