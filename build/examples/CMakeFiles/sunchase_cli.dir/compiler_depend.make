# Empty compiler generated dependencies file for sunchase_cli.
# This may be replaced when dependencies are built.
