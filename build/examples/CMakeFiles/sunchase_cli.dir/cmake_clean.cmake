file(REMOVE_RECURSE
  "CMakeFiles/sunchase_cli.dir/sunchase_cli.cpp.o"
  "CMakeFiles/sunchase_cli.dir/sunchase_cli.cpp.o.d"
  "sunchase_cli"
  "sunchase_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunchase_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
