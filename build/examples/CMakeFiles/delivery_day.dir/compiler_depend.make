# Empty compiler generated dependencies file for delivery_day.
# This may be replaced when dependencies are built.
