file(REMOVE_RECURSE
  "CMakeFiles/delivery_day.dir/delivery_day.cpp.o"
  "CMakeFiles/delivery_day.dir/delivery_day.cpp.o.d"
  "delivery_day"
  "delivery_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delivery_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
