file(REMOVE_RECURSE
  "CMakeFiles/shadow_mapper.dir/shadow_mapper.cpp.o"
  "CMakeFiles/shadow_mapper.dir/shadow_mapper.cpp.o.d"
  "shadow_mapper"
  "shadow_mapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shadow_mapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
