# Empty compiler generated dependencies file for shadow_mapper.
# This may be replaced when dependencies are built.
