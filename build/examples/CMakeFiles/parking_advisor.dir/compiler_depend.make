# Empty compiler generated dependencies file for parking_advisor.
# This may be replaced when dependencies are built.
