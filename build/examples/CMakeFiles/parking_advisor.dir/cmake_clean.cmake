file(REMOVE_RECURSE
  "CMakeFiles/parking_advisor.dir/parking_advisor.cpp.o"
  "CMakeFiles/parking_advisor.dir/parking_advisor.cpp.o.d"
  "parking_advisor"
  "parking_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parking_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
