// Extension: long-distance trips. The paper closes its evaluation with
// "we also consider the long-distance driving scenarios (e.g. 10 - 20
// km) in the future". This bench scales the city up and sweeps trip
// length from the paper's 1-2.5 km regime toward 10+ km, reporting how
// the extra solar energy and the planning cost grow with distance.
#include <chrono>
#include <cstdio>
#include <memory>

#include "paper_world.h"
#include "sunchase/shadow/scenegen.h"

using namespace sunchase;

int main() {
  bench::banner("Extension: long-distance trips (10-20 km)",
                "Sec. V-B2 closing remark / Sec. VI");

  // A 30x30 downtown (~3.3 x 2.7 km) lets diagonal trips reach ~6 km
  // of driving; longer hauls chain multiple crossings.
  roadnet::GridCityOptions copt;
  copt.rows = 30;
  copt.cols = 30;
  const roadnet::GridCity city(copt);
  const geo::LocalProjection proj(copt.origin);
  const shadow::Scene scene =
      generate_scene(city.graph(), proj, shadow::SceneGenOptions{});
  std::printf("City: %zu nodes, %zu edges, %zu buildings\n\n",
              city.graph().node_count(), city.graph().edge_count(),
              scene.buildings().size());

  core::WorldInit init;
  init.graph = std::make_shared<const roadnet::RoadGraph>(city.graph());
  init.shading = std::make_shared<const shadow::ShadingProfile>(
      shadow::ShadingProfile::compute_exact(
          *init.graph, scene, geo::DayOfYear{196}, TimeOfDay::hms(8, 0),
          TimeOfDay::hms(18, 30)));
  init.traffic = std::make_shared<const roadnet::UrbanTraffic>(
      roadnet::UrbanTraffic::Options{});
  init.panel_power = solar::constant_panel_power(Watts{200.0});
  init.vehicles.push_back(std::shared_ptr<const ev::ConsumptionModel>(
      ev::make_lv_prototype()));
  const core::WorldPtr snapshot = core::World::create(std::move(init));
  core::PlannerOptions popt;
  popt.mlc.max_time_factor = 1.1;  // long trips: keep the search tame
  // Large Pareto sets need finer clusters, or the representatives are
  // all aggressive detours that fail the Eq. 5 gate.
  popt.selection.clustering.quality_threshold = 0.06;
  const core::SunChasePlanner planner(snapshot, popt);

  std::printf("%-12s %9s %9s %10s %10s %10s %10s\n", "trip span", "TL (m)",
              "TT (s)", "+E (Wh)", "+t (s)", "Pareto", "plan (ms)");
  const TimeOfDay dep = TimeOfDay::hms(10, 0);
  struct Span {
    const char* label;
    int rows, cols;
  };
  for (const Span span : {Span{"~1.5 km", 7, 7}, Span{"~3 km", 14, 15},
                          Span{"~6 km", 29, 29}}) {
    const auto t0 = std::chrono::steady_clock::now();
    const core::PlanResult plan =
        planner.plan(city.node_at(0, 0), city.node_at(span.rows, span.cols),
                     dep);
    const auto t1 = std::chrono::steady_clock::now();
    const auto& chosen = plan.recommended();
    std::printf("%-12s %9.0f %9.1f %+10.2f %+10.1f %10zu %10.1f\n",
                span.label, chosen.metrics.total_length.value(),
                chosen.metrics.travel_time.value(),
                chosen.is_shortest_time ? 0.0 : chosen.extra_energy.value(),
                chosen.is_shortest_time ? 0.0 : chosen.extra_time.value(),
                plan.pareto_route_count,
                std::chrono::duration<double, std::milli>(t1 - t0).count());
  }

  // 10-20 km: a courier chaining four ~5 km legs across the city.
  std::printf("\nChained 4-leg haul (~12 km):\n");
  double total_extra_e = 0.0, total_extra_t = 0.0, total_len = 0.0;
  TimeOfDay clock = dep;
  const roadnet::NodeId waypoints[] = {
      city.node_at(0, 0), city.node_at(29, 20), city.node_at(2, 28),
      city.node_at(28, 2), city.node_at(15, 15)};
  for (int leg = 0; leg < 4; ++leg) {
    const core::PlanResult plan =
        planner.plan(waypoints[leg], waypoints[leg + 1], clock);
    const auto& chosen = plan.recommended();
    total_len += chosen.metrics.total_length.value();
    if (!chosen.is_shortest_time) {
      total_extra_e += chosen.extra_energy.value();
      total_extra_t += chosen.extra_time.value();
    }
    clock = clock.advanced_by(chosen.metrics.travel_time);
  }
  std::printf("  total %.1f km, extra solar %+.2f Wh for %+.0f s\n",
              total_len / 1000.0, total_extra_e, total_extra_t);
  std::printf(
      "\nReading: the paper predicted the algorithm 'could perform even\n"
      "better when the travel distance becomes longer'; extra energy per\n"
      "trip indeed grows with span while extra time stays a small\n"
      "fraction of the trip.\n");
  return 0;
}
