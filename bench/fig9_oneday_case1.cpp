// Reproduces Fig. 9: one-day driving scenario, case 1 — 20 short trips
// from 9:00 to 17:00 for both EV models; per-trip extra solar energy
// input (Fig. 9a) and extra travel time (Fig. 9b) of the selected
// route relative to the shortest-time path.
#include "oneday.h"

int main() {
  using namespace sunchase;
  bench::banner("Fig. 9: one-day driving scenario, case 1 (short trips)",
                "Fig. 9a/9b, Sec. V-B2");
  const bench::PaperWorld world;
  const core::WorldPtr day = world.daytime_world();
  const auto trips = bench::one_day_trips(world, 10, 901);

  const auto lv = bench::run_one_day(day, bench::PaperWorld::kLv, trips);
  const auto tesla = bench::run_one_day(day, bench::PaperWorld::kTesla, trips);
  bench::print_series("Case 1 per-trip extras", lv, tesla);

  std::printf(
      "Paper shape check: morning trips gain the most (sun rising, long\n"
      "rotating shadows, C still high); trips near noon gain ~0 (roads\n"
      "mostly illuminated, nothing to chase); afternoon gains return but\n"
      "smaller (C = 160-180 W). Tesla totals stay at or below Lv's.\n");
  return 0;
}
