// Shared driver for the routing-simulation tables (paper Tables
// R-I/R-II/R-III at 10:00/12:00/16:00). Searches once with Lv's EV
// (the Tesla's quadratic consumption is an exact scalar multiple, so
// the Pareto set is identical), then reports each route's energy
// balance under both vehicles, exactly as the paper's tables do.
#pragma once

#include <cstdio>

#include "paper_world.h"

namespace sunchase::bench {

inline void run_routing_table(const PaperWorld& world, const char* when_label,
                              TimeOfDay departure, Watts panel_power) {
  const core::WorldPtr snapshot = world.world_at(panel_power);

  core::PlannerOptions options;
  // The paper reports 3-9 candidate Pareto routes per trip; a tight
  // "acceptable arrival time" budget reproduces that scale.
  options.mlc.max_time_factor = 1.15;
  options.mlc.vehicle = PaperWorld::kLv;
  options.selection.require_positive_energy_extra = false;  // filter below
  const core::SunChasePlanner planner(snapshot, options);

  std::printf("Routing simulation %s (C = %.0f W)\n\n", when_label,
              panel_power.value());
  std::printf("%-16s %8s %8s %9s %9s %9s\n", "Paths", "TL (m)", "TT (s)",
              "EI (Wh)", "EC1 (Wh)", "EC2 (Wh)");

  for (const OdPair& od : world.routing_pairs()) {
    const core::PlanResult plan =
        planner.plan(od.origin, od.destination, departure);
    std::printf("%-16s --- %zu candidate Pareto routes\n", od.label,
                plan.pareto_route_count);

    const auto& base = plan.candidates.front();
    const core::RouteMetrics base_tesla = core::evaluate_route(
        snapshot, base.route.path, departure, PaperWorld::kTesla);
    std::printf("%-16s %8.0f %8.1f %9.2f %9.2f %9.2f\n", "  Shortest Time",
                base.metrics.total_length.value(),
                base.metrics.travel_time.value(),
                base.metrics.energy_in.value(),
                base.metrics.energy_out.value(),
                base_tesla.energy_out.value());

    int shown = 0;
    for (std::size_t i = 1; i < plan.candidates.size() && shown < 3; ++i) {
      const auto& cand = plan.candidates[i];
      // The paper's gate: a "Better Solar" row must harvest more than
      // the baseline AND pass Eq. 5 for at least Lv's EV.
      if (cand.extra_energy.value() <= 0.0 ||
          cand.metrics.energy_in <= base.metrics.energy_in)
        continue;
      const core::RouteMetrics tesla_metrics = core::evaluate_route(
          snapshot, cand.route.path, departure, PaperWorld::kTesla);
      const double d_ei =
          cand.metrics.energy_in.value() - base.metrics.energy_in.value();
      const double d_ec1 =
          cand.metrics.energy_out.value() - base.metrics.energy_out.value();
      const double d_ec2 =
          tesla_metrics.energy_out.value() - base_tesla.energy_out.value();
      char row[32];
      std::snprintf(row, sizeof row, "  Better Solar %d", ++shown);
      std::printf("%-16s %8.0f %8.1f %+9.2f %+9.2f %+9.2f%s\n", row,
                  cand.metrics.total_length.value(),
                  cand.metrics.travel_time.value(), d_ei, d_ec1, d_ec2,
                  d_ei > d_ec2 ? "" : "   (fails Tesla)");
    }
    if (shown == 0) {
      std::printf("%-16s %8s  (no better route: shortest-time selected)\n",
                  "  Better Solar", "-");
    }
  }
  std::printf("\n");
}

}  // namespace sunchase::bench
