// Reproduces Fig. 10: one-day driving scenario, case 2 — the same
// protocol as Fig. 9 but with longer trips. The paper's headline: the
// longer trips raise extra solar energy much faster (+42.7% for Lv's
// EV, +109.7% for the Tesla) than extra travel time (+18.6% / +36.3%).
// This bench recomputes case 1 to report the same ratios.
#include "oneday.h"

int main() {
  using namespace sunchase;
  bench::banner("Fig. 10: one-day driving scenario, case 2 (longer trips)",
                "Fig. 10a/10b, Sec. V-B2");
  const bench::PaperWorld world;
  const core::WorldPtr day = world.daytime_world();

  const auto short_trips = bench::one_day_trips(world, 10, 901);  // case 1
  const auto long_trips = bench::one_day_trips(world, 16, 902);   // case 2

  const auto lv2 = bench::run_one_day(day, bench::PaperWorld::kLv, long_trips);
  const auto tesla2 =
      bench::run_one_day(day, bench::PaperWorld::kTesla, long_trips);
  bench::print_series("Case 2 per-trip extras", lv2, tesla2);

  const auto lv1 = bench::run_one_day(day, bench::PaperWorld::kLv, short_trips);
  const auto tesla1 =
      bench::run_one_day(day, bench::PaperWorld::kTesla, short_trips);

  auto pct = [](double now, double before) {
    return before > 0.0 ? (now - before) / before * 100.0 : 0.0;
  };
  std::printf("Case 2 vs case 1 (paper: energy grows much faster than time):\n");
  std::printf("  Lv extra energy   : %+7.1f%%   [paper: +42.7%%]\n",
              pct(lv2.total_energy(), lv1.total_energy()));
  std::printf("  Tesla extra energy: %+7.1f%%   [paper: +109.7%%]\n",
              pct(tesla2.total_energy(), tesla1.total_energy()));
  std::printf("  Lv extra time     : %+7.1f%%   [paper: +18.6%%]\n",
              pct(lv2.total_time(), lv1.total_time()));
  std::printf("  Tesla extra time  : %+7.1f%%   [paper: +36.3%%]\n",
              pct(tesla2.total_time(), tesla1.total_time()));
  return 0;
}
