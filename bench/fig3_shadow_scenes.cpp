// Reproduces Fig. 3: shading scenes on urban roads at 9:15 AM vs
// 3:15 PM. Renders the two top-down images the paper shows (written as
// PGM files) and quantifies the shadow rotation: how per-street shaded
// fractions flip between morning and afternoon as the sun crosses the
// sky.
#include <cmath>
#include <cstdio>

#include "paper_world.h"
#include "sunchase/shadow/vision.h"

int main() {
  using namespace sunchase;
  bench::banner("Fig. 3: on-road shading scenes, 9:15 AM vs 3:15 PM",
                "Fig. 3a/3b, Sec. IV-B1");
  const bench::PaperWorld world;

  shadow::VisionOptions vopt;
  vopt.meters_per_px = 1.0;
  const shadow::VisionPipeline pipeline(world.graph(), world.scene(), vopt);

  const auto morning_sun =
      geo::sun_position(world.projection().origin(), geo::DayOfYear{196},
                        TimeOfDay::hms(9, 15));
  const auto afternoon_sun =
      geo::sun_position(world.projection().origin(), geo::DayOfYear{196},
                        TimeOfDay::hms(15, 15));

  pipeline.render(morning_sun).write_pgm("fig3a_0915.pgm");
  pipeline.render(afternoon_sun).write_pgm("fig3b_1515.pgm");
  std::printf("Wrote fig3a_0915.pgm and fig3b_1515.pgm\n\n");

  std::printf("Sun geometry:\n");
  std::printf("  9:15 AM: elevation %4.1f deg, azimuth %5.1f deg (east)\n",
              morning_sun.elevation_rad * 180.0 / M_PI,
              morning_sun.azimuth_rad * 180.0 / M_PI);
  std::printf("  3:15 PM: elevation %4.1f deg, azimuth %5.1f deg (west)\n\n",
              afternoon_sun.elevation_rad * 180.0 / M_PI,
              afternoon_sun.azimuth_rad * 180.0 / M_PI);

  // Shaded fraction per street at both times; aggregate by heading.
  const auto morning = pipeline.estimate_shaded_fractions(morning_sun);
  const auto afternoon = pipeline.estimate_shaded_fractions(afternoon_sun);
  double ew_m = 0, ew_a = 0, ns_m = 0, ns_a = 0, moved = 0;
  int ew_n = 0, ns_n = 0;
  for (roadnet::EdgeId e = 0; e < world.graph().edge_count(); ++e) {
    const geo::Segment seg = world.scene().edge_segment(world.graph(), e);
    const geo::Vec2 d = seg.direction();
    if (std::abs(d.x) > std::abs(d.y)) {
      ew_m += morning[e];
      ew_a += afternoon[e];
      ++ew_n;
    } else {
      ns_m += morning[e];
      ns_a += afternoon[e];
      ++ns_n;
    }
    moved += std::abs(afternoon[e] - morning[e]);
  }
  std::printf("Mean shaded fraction by street heading:\n");
  std::printf("  %-12s %10s %10s\n", "heading", "9:15 AM", "3:15 PM");
  std::printf("  %-12s %9.1f%% %9.1f%%\n", "east-west", 100.0 * ew_m / ew_n,
              100.0 * ew_a / ew_n);
  std::printf("  %-12s %9.1f%% %9.1f%%\n", "north-south", 100.0 * ns_m / ns_n,
              100.0 * ns_a / ns_n);
  std::printf(
      "\nMean |shaded-fraction change| per street: %.1f%% — shadows rotate\n"
      "around the buildings that cast them (Fig. 3a vs Fig. 3b).\n",
      100.0 * moved / static_cast<double>(world.graph().edge_count()));
  return 0;
}
