// Ablation: the 15-minute sampling interval. The paper picks 15 min
// as "a balance between the computation workload and the estimation
// quality". This bench quantifies both sides: shading-profile accuracy
// (vs a fine-grained reference) and compute cost, across intervals.
#include <chrono>
#include <map>
#include <cstdio>

#include "paper_world.h"

using namespace sunchase;

namespace {

/// Truly continuous shaded fraction: casts the scene's shadows at the
/// exact instant (no 15-minute slot memoization), caching per distinct
/// minute.
class ContinuousShading {
 public:
  explicit ContinuousShading(const bench::PaperWorld& world) : world_(world) {}

  double fraction(roadnet::EdgeId e, int minute) {
    auto it = cache_.find(minute);
    if (it == cache_.end()) {
      const auto sun = geo::sun_position(
          world_.projection().origin(), geo::DayOfYear{196},
          TimeOfDay::from_seconds(minute * 60.0));
      it = cache_.emplace(minute, cast_shadows(world_.scene(), sun)).first;
    }
    return shadow::shaded_fraction(
        world_.scene().edge_segment(world_.graph(), e), it->second);
  }

 private:
  const bench::PaperWorld& world_;
  std::map<int, std::vector<shadow::ShadowPolygon>> cache_;
};

/// Mean absolute shading error of interval-quantized estimates vs the
/// continuous reference, sampled across the window.
double quantization_error(const bench::PaperWorld& world,
                          ContinuousShading& continuous,
                          int interval_minutes) {
  double err = 0.0;
  long count = 0;
  for (int minute = 8 * 60; minute <= 18 * 60; minute += 7) {
    // Quantize to the start of the enclosing interval.
    const int q = minute / interval_minutes * interval_minutes;
    for (roadnet::EdgeId e = 0; e < world.graph().edge_count(); e += 5) {
      err += std::abs(continuous.fraction(e, minute) -
                      continuous.fraction(e, q));
      ++count;
    }
  }
  return err / static_cast<double>(count);
}

}  // namespace

int main() {
  bench::banner("Ablation: solar-map sampling interval",
                "Sec. IV-B1: '15 minutes ... balance between computation "
                "workload and estimation quality'");
  const bench::PaperWorld world;
  ContinuousShading continuous(world);

  std::printf("%-10s %18s %18s\n", "interval", "shading MAE", "scenes/day");
  for (const int minutes : {5, 15, 30, 60}) {
    const auto t0 = std::chrono::steady_clock::now();
    const double mae = quantization_error(world, continuous, minutes);
    const auto t1 = std::chrono::steady_clock::now();
    const int scenes = (18 * 60 - 8 * 60) / minutes + 1;
    std::printf("%6d min %17.4f %18d   (measured in %.2f s)\n", minutes, mae,
                scenes,
                std::chrono::duration<double>(t1 - t0).count());
  }
  std::printf(
      "\nReading: error grows with the interval while the number of 3D\n"
      "scenes to render per day shrinks linearly; 15 min sits at the knee,\n"
      "matching the paper's choice.\n");
  return 0;
}
