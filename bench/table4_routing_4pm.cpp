// Reproduces Table R-III: routing simulation at 4:00 PM, C = 160 W.
#include "routing_table.h"

int main() {
  using namespace sunchase;
  bench::banner("Table R-III: routing simulation, 4:00 PM",
                "Table III (routing), Sec. V-B1; C = 160 W");
  const bench::PaperWorld world;
  bench::run_routing_table(world, "4:00 PM", TimeOfDay::hms(16, 0),
                           Watts{160.0});
  return 0;
}
