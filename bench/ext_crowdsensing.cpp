// Extension: crowd-sensed solar map (paper Sec. VI). Reality diverges
// from the 3D database in ways the paper names explicitly: "the
// shadows caused by trees will be larger during summer time due to
// overgrowth leaves", plus temporary obstructions (construction). The
// static model map therefore carries a systematic error; probe
// vehicles observing actual shadows correct it where traffic flows.
// Sweeps fleet size and reports each map's error against ground truth,
// both over the whole map and over the crowd-covered cells.
#include <cstdio>

#include "paper_world.h"
#include "sunchase/crowd/fleet.h"
#include "sunchase/shadow/scenegen.h"

using namespace sunchase;

int main() {
  bench::banner("Extension: crowdsensed solar map vs static 3D model",
                "Sec. VI: smartphone crowdsensing future work");
  const bench::PaperWorld world;

  // Reality: the same city surveyed in winter, now in mid-summer —
  // every tree canopy has overgrown (double radius, taller), and a few
  // construction scaffolds appeared. None of this is in the database.
  shadow::Scene reality(world.projection(),
                        world.scene().road_half_width());
  for (const shadow::Building& b : world.scene().buildings())
    reality.add_building(b);
  for (const shadow::Tree& t : world.scene().trees())
    reality.add_tree(shadow::Tree{t.center, t.radius_m * 2.2,
                                  t.height_m * 1.3});
  Rng rng(4242);
  for (int i = 0; i < 12; ++i) {
    const double x = rng.uniform(100.0, 1000.0);
    const double y = rng.uniform(100.0, 800.0);
    reality.add_building(shadow::Building{
        geo::rectangle({x, y}, {x + 30.0, y + 14.0}), rng.uniform(16.0, 30.0)});
  }

  const auto truth = shadow::make_exact_estimator(world.graph(), reality,
                                                  geo::DayOfYear{196});
  // The static model knows only the survey-time scene.
  const auto model = shadow::make_exact_estimator(world.graph(), world.scene(),
                                                  geo::DayOfYear{196});

  constexpr int kFirstSlot = 36, kLastSlot = 68;
  const auto mae_of = [&](const shadow::ShadedFractionFn& estimate,
                          const crowd::CrowdSolarMap* covered_by) {
    double err = 0.0;
    long cells = 0;
    for (roadnet::EdgeId e = 0; e < world.graph().edge_count(); ++e) {
      for (int slot = kFirstSlot; slot <= kLastSlot; slot += 2) {
        const TimeOfDay t = TimeOfDay::slot_start(slot);
        if (covered_by) {
          // Restrict to cells where the crowd overrides the prior.
          const double crowd_value = covered_by->shaded_fraction(e, t);
          const double prior_value = model(e, t);
          if (crowd_value == prior_value) continue;  // prior cell
        }
        err += std::abs(estimate(e, t) - truth(e, t));
        ++cells;
      }
    }
    return cells > 0 ? err / static_cast<double>(cells) : 0.0;
  };

  const double model_mae = mae_of(model, nullptr);
  std::printf("Static 3D-model map MAE vs summer reality : %.4f\n\n",
              model_mae);
  std::printf("%-10s %13s %10s %12s | %22s\n", "vehicles", "observations",
              "coverage", "map MAE", "covered cells: model vs crowd");
  for (const int vehicles : {5, 20, 80, 300}) {
    crowd::FleetOptions fopt;
    fopt.vehicles = vehicles;
    fopt.trips_per_vehicle = 6;
    fopt.observation_noise_std = 0.04;
    const auto observations =
        crowd::simulate_fleet(world.graph(), reality, world.traffic(), fopt);
    crowd::CrowdSolarMap::Options mopt;
    mopt.first_slot = kFirstSlot;
    mopt.last_slot = kLastSlot;
    mopt.min_observations = 2;
    crowd::CrowdSolarMap map(world.graph().edge_count(), model, mopt);
    for (const auto& o : observations) map.report(o);
    const auto estimator = map.estimator();
    std::printf("%-10d %13zu %9.1f%% %12.4f | %10.4f vs %.4f\n", vehicles,
                map.observation_count(), 100.0 * map.coverage(),
                mae_of(estimator, nullptr), mae_of(model, &map),
                mae_of(estimator, &map));
  }
  std::printf(
      "\nReading: wherever probe vehicles actually drove, the crowd layer\n"
      "replaces the stale winter-survey estimate with near-truth; whole-map\n"
      "error falls as the fleet grows — the accuracy gap (overgrown trees,\n"
      "construction) the paper proposes crowdsensing to close.\n");
  return 0;
}
