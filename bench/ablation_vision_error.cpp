// Ablation: the vision pipeline vs exact geometry. The paper estimates
// shaded length from binarized top-down imagery (area ratio ~ length
// ratio, Eq. 8-9) and corrects Hough misdetections manually. This
// bench quantifies the estimator's error against the exact geometric
// shaded fraction across image resolutions, plus the Hough detector's
// road recall.
#include <cstdio>

#include "paper_world.h"
#include "sunchase/shadow/vision.h"

using namespace sunchase;

int main() {
  bench::banner("Ablation: vision estimation error vs exact geometry",
                "Sec. IV-B2, Eq. 8-9; Hough-based segment location");
  const bench::PaperWorld world;

  // One representative mid-morning sun.
  const auto sun = geo::sun_position(world.projection().origin(),
                                     geo::DayOfYear{196},
                                     TimeOfDay::hms(10, 0));
  const auto shadows = cast_shadows(world.scene(), sun);

  std::printf("%-14s %16s %16s\n", "resolution", "mean |err|", "max |err|");
  for (const double mpp : {4.0, 2.0, 1.0, 0.5}) {
    shadow::VisionOptions vopt;
    vopt.meters_per_px = mpp;
    const shadow::VisionPipeline pipeline(world.graph(), world.scene(), vopt);
    const auto estimated = pipeline.estimate_shaded_fractions(sun);
    double sum = 0.0, worst = 0.0;
    for (roadnet::EdgeId e = 0; e < world.graph().edge_count(); ++e) {
      const double exact = shadow::shaded_fraction(
          world.scene().edge_segment(world.graph(), e), shadows);
      const double err = std::abs(estimated[e] - exact);
      sum += err;
      worst = std::max(worst, err);
    }
    std::printf("%10.1f m/px %16.4f %16.4f\n", mpp,
                sum / static_cast<double>(world.graph().edge_count()), worst);
  }

  // Hough road detection recall (the paper adds manual correction
  // where this falls short).
  shadow::VisionOptions vopt;
  vopt.meters_per_px = 1.0;
  const shadow::VisionPipeline pipeline(world.graph(), world.scene(), vopt);
  geo::HoughParams params;
  params.vote_threshold = 60;
  params.sample_fraction = 0.5;
  params.max_lines = 64;
  Rng rng(17);
  const auto lines = pipeline.detect_road_lines(params, rng);
  std::printf("\nHough road detection: %zu lines, recall %.1f%% of edges\n",
              lines.size(),
              100.0 * pipeline.road_detection_recall(lines, 8.0));
  std::printf("(the paper: 'may not be able to achieve 100%% accuracy, we "
              "also manually add and correct intersection points')\n");
  return 0;
}
