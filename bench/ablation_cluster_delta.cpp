// Ablation: the bisecting k-means quality threshold delta (Sec. IV-D).
// Sweeps delta and reports how many clusters / representative routes
// survive, and how well the representatives cover the full Pareto set
// (max Manhattan distance from any dropped route to its nearest kept
// route in normalized criteria space).
#include <cstdio>
#include <limits>

#include "paper_world.h"

using namespace sunchase;

int main() {
  bench::banner("Ablation: clustering threshold delta",
                "Sec. IV-D: bisect k-means terminates when all q(C) < delta");
  const bench::PaperWorld world;
  const core::WorldPtr snapshot = world.world_at(Watts{200.0});

  // A trip with a rich Pareto set.
  core::MlcOptions mlc;
  mlc.max_time_factor = 1.6;
  mlc.vehicle = bench::PaperWorld::kLv;
  const core::MultiLabelCorrecting solver(snapshot, mlc);
  const auto od = world.routing_pairs()[1];  // the one-way-heavy pair
  const TimeOfDay dep = TimeOfDay::hms(10, 0);
  const auto pareto = solver.search(od.origin, od.destination, dep).routes;
  std::printf("Pareto set for %s: %zu routes\n\n", od.label, pareto.size());

  std::vector<core::LabelVector> points;
  for (const auto& r : pareto)
    points.push_back({r.cost.travel_time.value(), r.cost.shaded_time.value(),
                      r.cost.energy_out.value()});
  const auto normalized = core::normalize_dimensions(points);

  std::printf("%-8s %10s %16s %18s\n", "delta", "clusters",
              "representatives", "max coverage gap");
  for (const double delta : {0.5, 0.25, 0.12, 0.08, 0.04, 0.02}) {
    core::SelectionOptions sel;
    sel.clustering.quality_threshold = delta;
    sel.require_positive_energy_extra = false;
    const auto result = core::select_representative_routes(
        pareto, snapshot, dep, sel, bench::PaperWorld::kLv);

    // Coverage: worst-case distance from any Pareto route to the
    // nearest selected representative.
    double worst = 0.0;
    for (std::size_t i = 0; i < pareto.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (const auto& cand : result.candidates) {
        for (std::size_t j = 0; j < pareto.size(); ++j) {
          if (pareto[j].path.edges == cand.route.path.edges)
            best = std::min(best, core::manhattan(normalized[i],
                                                  normalized[j]));
        }
      }
      worst = std::max(worst, best);
    }
    std::printf("%-8.2f %10zu %16zu %18.3f\n", delta, result.cluster_count,
                result.representative_count, worst);
  }
  std::printf(
      "\nReading: smaller delta keeps more representatives and shrinks the\n"
      "coverage gap; past the knee extra clusters add near-duplicates (the\n"
      "paper's motivation for merging: many Pareto routes share ~90%% of\n"
      "their edges).\n");
  return 0;
}
