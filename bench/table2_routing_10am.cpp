// Reproduces Table R-I: routing simulation at 10:00 AM, C = 200 W.
#include "routing_table.h"

int main() {
  using namespace sunchase;
  bench::banner("Table R-I: routing simulation, 10:00 AM",
                "Table I (routing), Sec. V-B1; C = 200 W");
  const bench::PaperWorld world;
  bench::run_routing_table(world, "10:00 AM", TimeOfDay::hms(10, 0),
                           Watts{200.0});
  return 0;
}
