// Extension: parking-spot solar optimization. The paper's premise —
// panels "convert the solar energy into electricity not only at
// parking but also travelling on the road" (Sec. I) — cuts both ways:
// a work day parked in the wrong shadow forfeits far more energy than
// any route can recover. This bench quantifies the spread between the
// best and worst curbside spots near one destination across arrival
// times, and compares a full parked day against the driving gains of
// the one-day scenario.
#include <cstdio>

#include "paper_world.h"
#include "sunchase/solar/parking.h"

using namespace sunchase;

int main() {
  bench::banner("Extension: parking-spot solar ranking",
                "Sec. I: harvesting at parking; Sec. VI obstruction errors");
  const bench::PaperWorld world;
  const auto panel = solar::paper_daytime_panel_power();
  const roadnet::NodeId office = world.city().node_at(6, 6);

  std::printf("Workday parking near the office (250 m walk radius)\n\n");
  std::printf("%-22s %10s %10s %10s %8s\n", "window", "best (Wh)",
              "median", "worst", "spots");
  for (const auto& [label, from, to] :
       {std::tuple{"08:45 - 17:15 (full)", TimeOfDay::hms(8, 45),
                   TimeOfDay::hms(17, 15)},
        std::tuple{"09:00 - 12:00 (am)", TimeOfDay::hms(9, 0),
                   TimeOfDay::hms(12, 0)},
        std::tuple{"13:00 - 17:00 (pm)", TimeOfDay::hms(13, 0),
                   TimeOfDay::hms(17, 0)}}) {
    const auto spots = solar::rank_parking_spots(
        world.graph(), world.shading(), panel, office, from, to);
    if (spots.empty()) continue;
    std::printf("%-22s %10.1f %10.1f %10.1f %8zu\n", label,
                spots.front().expected_harvest.value(),
                spots[spots.size() / 2].expected_harvest.value(),
                spots.back().expected_harvest.value(), spots.size());
  }

  const auto full = solar::rank_parking_spots(
      world.graph(), world.shading(), panel, office, TimeOfDay::hms(8, 45),
      TimeOfDay::hms(17, 15));
  const double spread = full.front().expected_harvest.value() -
                        full.back().expected_harvest.value();
  std::printf(
      "\nReading: choosing the sunniest legal spot instead of the most\n"
      "shaded one is worth %.0f Wh over a work day — an order of magnitude\n"
      "more than the ~20-40 Wh the one-day routing scenario collects while\n"
      "driving (Figs. 9-10). Route planning and parking planning compound.\n",
      spread);
  return 0;
}
