// Reproduces Table V-I and Figs. 6-7: real-road validation of the
// solar access model. Six downtown paths are driven (simulated petrol
// car with two phone light sensors + GPS) in the morning, at noon and
// in the afternoon; each cell averages three runs. Reported per path:
//   RSD  - real (measured) solar distance        | Fig. 6
//   MSD  - model-estimated solar distance        | Fig. 6
//   RSTT - real travel time on solar segments    | Fig. 7
//   MSTT - model-estimated solar travel time     | Fig. 7
//   TS   - average predicted traffic speed
#include <cstdio>
#include <vector>

#include "paper_world.h"
#include "sunchase/core/dijkstra.h"
#include "sunchase/sensing/validation.h"

int main() {
  using namespace sunchase;
  bench::banner("Table V-I + Figs. 6/7: real-road solar access validation",
                "Table I (validation), Figs. 6-7, Sec. V-A");
  const bench::PaperWorld world;

  // Six downtown paths (shortest-time routes between fixed OD pairs).
  const std::vector<std::pair<roadnet::NodeId, roadnet::NodeId>> ods = {
      {world.city().node_at(1, 1), world.city().node_at(6, 8)},
      {world.city().node_at(2, 9), world.city().node_at(8, 3)},
      {world.city().node_at(0, 5), world.city().node_at(7, 7)},
      {world.city().node_at(4, 0), world.city().node_at(9, 6)},
      {world.city().node_at(3, 6), world.city().node_at(10, 2)},
      {world.city().node_at(5, 4), world.city().node_at(11, 10)},
  };
  const std::vector<std::pair<const char*, TimeOfDay>> sessions = {
      {"morning 10:00-11:00", TimeOfDay::hms(10, 15)},
      {"noon 12:30-13:30", TimeOfDay::hms(12, 45)},
      {"afternoon 16:00-16:30", TimeOfDay::hms(16, 10)},
  };

  sensing::ValidationOptions vopt;  // 3 runs averaged, as in the paper
  double sum_sd_err = 0.0, sum_tt_ratio = 0.0;
  int rows = 0;

  for (const auto& [session_label, departure] : sessions) {
    std::printf("%s\n", session_label);
    std::printf("  %-6s %8s %8s %8s %8s %8s %10s\n", "path", "RSD(m)",
                "MSD(m)", "RSTT(s)", "MSTT(s)", "TS(km/h)", "RTT/MTT");
    int path_no = 1;
    for (const auto& [o, d] : ods) {
      const auto shortest =
          core::detail::shortest_time_path(world.graph(), world.traffic(), o, d,
                                   departure);
      if (!shortest) continue;
      sensing::ValidationOptions opt = vopt;
      opt.drive.seed = 7000 + static_cast<std::uint64_t>(path_no) * 31 +
                       static_cast<std::uint64_t>(departure.slot_index());
      const sensing::PathValidation row = sensing::validate_path(
          world.graph(), world.scene(), world.shading(), world.traffic(),
          shortest->path, departure, opt);
      std::printf("  P%-5d %8.1f %8.1f %8.1f %8.1f %8.1f %10.3f\n", path_no,
                  row.real_solar_distance.value(),
                  row.model_solar_distance.value(),
                  row.real_solar_time.value(), row.model_solar_time.value(),
                  to_kmh(row.traffic_speed),
                  row.real_total_time.value() / row.model_total_time.value());
      sum_sd_err += std::abs(row.real_solar_distance.value() -
                             row.model_solar_distance.value());
      sum_tt_ratio += row.real_total_time.value() / row.model_total_time.value();
      ++path_no;
      ++rows;
    }
    std::printf("\n");
  }

  std::printf("Summary (paper expectations in brackets):\n");
  std::printf("  mean |RSD - MSD|          : %6.1f m   [slight difference; "
              "GPS error + missing obstructions]\n",
              sum_sd_err / rows);
  std::printf("  mean real/model trip time : %6.3f     [< 1: drivers beat "
              "the predicted traffic speed]\n",
              sum_tt_ratio / rows);
  return 0;
}
