// Ablation: seasons. The paper's experiments are July-only; its
// discussion notes that "shadows caused by trees will be larger during
// summer ... and become sparse in the winter" and, implicitly, that a
// lower winter sun stretches every building shadow. This bench
// recomputes the shading profile for four days of the year over the
// same scene and shows how shading and routing outcomes shift.
#include <cstdio>

#include "paper_world.h"
#include "sunchase/shadow/scenegen.h"

using namespace sunchase;

int main() {
  bench::banner("Ablation: seasonal sun geometry",
                "Sec. VI seasonal discussion; NOAA solar geometry");
  const bench::PaperWorld world;

  std::printf("%-14s %12s %14s %16s %14s\n", "day", "noon elev.",
              "mean shade", "better routes", "total +E (Wh)");
  for (const auto& [label, day] :
       {std::pair{"Mar 21 (d80)", 80}, std::pair{"Jun 21 (d172)", 172},
        std::pair{"Sep 21 (d264)", 264}, std::pair{"Dec 21 (d355)", 355}}) {
    core::WorldInit init = world.init_at(Watts{200.0});
    init.shading = std::make_shared<const shadow::ShadingProfile>(
        shadow::ShadingProfile::compute_exact(
            world.graph(), world.scene(), geo::DayOfYear{day},
            TimeOfDay::hms(8, 0), TimeOfDay::hms(18, 30)));
    const core::WorldPtr snapshot = core::World::create(std::move(init));
    const shadow::ShadingProfile& profile = snapshot->shading();
    const auto sun = geo::sun_position(world.projection().origin(),
                                       geo::DayOfYear{day},
                                       TimeOfDay::hms(13, 0));
    double shade = 0.0;
    for (roadnet::EdgeId e = 0; e < world.graph().edge_count(); ++e)
      shade += profile.shaded_fraction(e, TimeOfDay::hms(13, 0));
    shade /= static_cast<double>(world.graph().edge_count());

    const core::SunChasePlanner planner(snapshot);
    int better = 0;
    double extra = 0.0;
    for (const bench::OdPair& od : world.routing_pairs()) {
      const auto plan =
          planner.plan(od.origin, od.destination, TimeOfDay::hms(10, 0));
      if (plan.has_better_solar()) {
        ++better;
        extra += plan.recommended().extra_energy.value();
      }
    }
    std::printf("%-14s %11.1f° %13.1f%% %16d %14.2f\n", label,
                sun.elevation_rad * 180.0 / 3.14159265358979, shade * 100.0,
                better, extra);
  }
  std::printf(
      "\nReading: the December sun tops out ~21° over Montreal — noon\n"
      "shadows stretch across whole blocks, most streets sit in shade, and\n"
      "the planner finds different (often more) differentiated routes than\n"
      "in June when shadows huddle at the building feet. A solar map must\n"
      "be rebuilt through the year, not surveyed once.\n");
  return 0;
}
