// Extension: SunChase routing integrated with Lv-style speed planning
// (the paper: "In case where it is required, two works can be
// integrated to achieve the goal", Sec. I). Compares on the standard
// trips:
//   A) shortest-time route at traffic speed,
//   B) SunChase better-solar route at traffic speed,
//   C) SunChase route + DP speed planning with a comfortable reserve,
//   D) the same with a tight reserve, forcing the DP to harvest-crawl.
#include <cstdio>

#include "paper_world.h"
#include "sunchase/speedplan/speedplan.h"

using namespace sunchase;

namespace {

struct PolicyResult {
  double time_s = 0.0;
  double net_wh = 0.0;  ///< harvested - consumed (negative = drain)
};

PolicyResult at_traffic_speed(const solar::SolarInputMap& map,
                              const ev::ConsumptionModel& vehicle,
                              const roadnet::Path& path, TimeOfDay dep) {
  const core::RouteMetrics m =
      core::detail::evaluate_route(map, vehicle, path, dep);
  return {m.travel_time.value(),
          m.energy_in.value() - m.energy_out.value()};
}

}  // namespace

int main() {
  bench::banner("Extension: route planning + speed planning",
                "Sec. I: integration with Lv et al. [1]");
  const bench::PaperWorld world;
  const core::WorldPtr snapshot = world.world_at(Watts{200.0});
  const solar::SolarInputMap& map = snapshot->solar_map();
  const core::SunChasePlanner planner(snapshot);
  const TimeOfDay dep = TimeOfDay::hms(10, 0);
  const WattHours comfy{60.0};
  const WattHours tight{36.0};

  // The DP may not out-drive surrounding traffic: cap at the urban
  // flow ceiling; it may still crawl below it to survive on harvest.
  speedplan::SpeedPlanOptions sopt;
  sopt.min_speed = kmh(5.0);
  sopt.max_speed = kmh(17.0);

  std::printf("Vehicle: %s; speed range %0.f-%0.f km/h\n\n",
              world.lv().name().c_str(), to_kmh(sopt.min_speed),
              to_kmh(sopt.max_speed));
  std::printf("%-10s | %8s %8s | %8s %8s | %12s | %14s\n", "trip", "A time",
              "A net", "B time", "B net", "C(60Wh) time", "D(36Wh) time");
  for (const bench::OdPair& od : world.routing_pairs()) {
    const core::PlanResult plan = planner.plan(od.origin, od.destination, dep);
    const roadnet::Path& fast = plan.candidates.front().route.path;
    const roadnet::Path& sunny = plan.recommended().route.path;

    const PolicyResult a = at_traffic_speed(map, world.lv(), fast, dep);
    const PolicyResult b = at_traffic_speed(map, world.lv(), sunny, dep);

    const auto segments = speedplan::segments_from_route(map, sunny, dep);
    const auto c = speedplan::plan_speeds(segments, world.lv(), comfy,
                                          WattHours{200.0}, sopt);
    const auto d = speedplan::plan_speeds(segments, world.lv(), tight,
                                          WattHours{200.0}, sopt);
    char d_cell[24];
    if (d.feasible)
      std::snprintf(d_cell, sizeof d_cell, "%14.1f",
                    d.total_time.value());
    else
      std::snprintf(d_cell, sizeof d_cell, "%14s", "infeasible");
    std::printf("%-10s | %8.1f %+8.2f | %8.1f %+8.2f | %12.1f | %s\n",
                od.label, a.time_s, a.net_wh, b.time_s, b.net_wh,
                c.feasible ? c.total_time.value() : 0.0, d_cell);
  }
  std::printf(
      "\nReading: B (the SunChase route) drains less than A for a few extra\n"
      "seconds. C/D solve Lv's speed problem on the SunChase route: with a\n"
      "comfortable reserve the DP drives the flow ceiling; with a tight one\n"
      "it slows on illuminated stretches until harvest keeps the battery\n"
      "alive (longer time, but the trip completes). Together: the\n"
      "integrated system the paper sketches in Sec. I.\n");
  return 0;
}
