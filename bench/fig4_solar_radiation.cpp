// Reproduces Fig. 4: one day of measured solar irradiance at a Quebec
// site in July — the simulated NRCan high-resolution dataset. Prints a
// 15-minute time series plus the shape statistics the paper reads off
// the figure (max ~1150 W/m^2 midday, < 300 W/m^2 at the day's edges,
// visible high-ramp events from clouds/obstructions).
#include <algorithm>
#include <cstdio>

#include "paper_world.h"
#include "sunchase/solar/dataset.h"

int main() {
  using namespace sunchase;
  bench::banner("Fig. 4: one-day solar radiation, July Quebec",
                "Fig. 4, Sec. IV-B3; NRCan high-resolution dataset");

  const solar::IrradianceDataset dataset;  // seeded, deterministic

  std::printf("%-8s %14s      bar\n", "time", "GHI (W/m^2)");
  double peak = 0.0;
  TimeOfDay peak_at = TimeOfDay::hms(0, 0);
  for (int slot = 24; slot <= 82; ++slot) {  // 06:00 .. 20:30
    const TimeOfDay t = TimeOfDay::slot_start(slot);
    const double g = dataset.slot_average(t).value();
    if (g > peak) {
      peak = g;
      peak_at = t;
    }
    const int bar = static_cast<int>(g / 25.0);
    std::printf("%-8s %14.1f      %.*s\n", t.to_string().c_str(), g,
                std::min(bar, 60), "############################################################");
  }

  // High-ramp events: largest 1-second change around midday.
  double max_ramp = 0.0;
  for (int s = 10 * 3600; s < 15 * 3600; ++s) {
    const double a = dataset.sample(TimeOfDay::from_seconds(s)).value();
    const double b = dataset.sample(TimeOfDay::from_seconds(s + 1.0)).value();
    max_ramp = std::max(max_ramp, std::abs(b - a));
  }

  std::printf("\nShape summary (paper expectations in brackets):\n");
  std::printf("  midday peak          : %7.1f W/m^2 at %s  [~1150 W/m^2]\n",
              peak, peak_at.to_string().c_str());
  std::printf("  08:00 level          : %7.1f W/m^2            [low morning]\n",
              dataset.slot_average(TimeOfDay::hms(8, 0)).value());
  std::printf("  18:30 level          : %7.1f W/m^2            [low evening]\n",
              dataset.slot_average(TimeOfDay::hms(18, 30)).value());
  std::printf("  max 1-second ramp    : %7.1f W/m^2/s          [surges from "
              "obstructions/clouds]\n",
              max_ramp);
  return 0;
}
