// Ablation: what does the bisecting k-means merging step buy? The
// paper compresses the Pareto set because "the comparison between each
// pair of routes is time consuming and many of them have similar
// properties (e.g., 90% nodes and edges)". This bench compares the
// candidate list with clustering on vs a degenerate configuration that
// keeps (nearly) every route, measuring list size and mutual edge
// overlap between candidates.
#include <cstdio>

#include "paper_world.h"

using namespace sunchase;

namespace {

double mean_pairwise_overlap(const std::vector<core::CandidateRoute>& cands,
                             const roadnet::RoadGraph&) {
  if (cands.size() < 2) return 0.0;
  double sum = 0.0;
  int pairs = 0;
  for (std::size_t i = 0; i < cands.size(); ++i)
    for (std::size_t j = i + 1; j < cands.size(); ++j) {
      sum += roadnet::edge_overlap(cands[i].route.path, cands[j].route.path);
      ++pairs;
    }
  return sum / pairs;
}

}  // namespace

int main() {
  bench::banner("Ablation: route merging (bisect k-means) vs none",
                "Sec. IV-D route merging; challenge #1 in Sec. I");
  const bench::PaperWorld world;
  const core::WorldPtr snapshot = world.world_at(Watts{200.0});
  core::MlcOptions mlc;
  mlc.max_time_factor = 1.6;
  const core::MultiLabelCorrecting solver(snapshot, mlc);
  const TimeOfDay dep = TimeOfDay::hms(10, 0);

  std::printf("%-10s %8s | %10s %10s | %10s %10s\n", "trip", "Pareto",
              "merged #", "overlap", "unmerged #", "overlap");
  for (const bench::OdPair& od : world.routing_pairs()) {
    const auto pareto = solver.search(od.origin, od.destination, dep).routes;

    core::SelectionOptions merged_opt;  // paper defaults
    merged_opt.require_positive_energy_extra = false;
    const auto merged = core::select_representative_routes(
        pareto, snapshot, dep, merged_opt, bench::PaperWorld::kLv);

    core::SelectionOptions unmerged_opt;
    unmerged_opt.require_positive_energy_extra = false;
    unmerged_opt.clustering.quality_threshold = 1e-7;  // ~every route kept
    const auto unmerged = core::select_representative_routes(
        pareto, snapshot, dep, unmerged_opt, bench::PaperWorld::kLv);

    std::printf("%-10s %8zu | %10zu %9.0f%% | %10zu %9.0f%%\n", od.label,
                pareto.size(), merged.candidates.size(),
                100.0 * mean_pairwise_overlap(merged.candidates,
                                              world.graph()),
                unmerged.candidates.size(),
                100.0 * mean_pairwise_overlap(unmerged.candidates,
                                              world.graph()));
  }
  std::printf(
      "\nReading: without merging the driver would face many near-duplicate\n"
      "options (high mutual edge overlap); clustering keeps a small list of\n"
      "genuinely different routes.\n");
  return 0;
}
