// Extension: en-route dynamic replanning under passing clouds
// (paper Sec. VI: cloud-induced power changes are invisible to public
// databases). A cloud front halves panel power mid-trip; compares a
// stale single plan against intersection-level replanning across the
// standard trips and several cloud arrival times.
#include <cstdio>

#include "paper_world.h"
#include "sunchase/core/replanner.h"

using namespace sunchase;

int main() {
  bench::banner("Extension: dynamic replanning under a cloud front",
                "Sec. VI: real-time solar information");
  const bench::PaperWorld world;
  // The planning snapshot still believes in a clear 200 W sky; only the
  // live feed sees the cloud front.
  const core::WorldPtr snapshot = world.world_at(Watts{200.0});
  const TimeOfDay dep = TimeOfDay::hms(10, 0);

  std::printf("Cloud front: 200 W -> 70 W at departure + T\n\n");
  std::printf("%-10s %8s | %12s %12s | %12s %12s %8s\n", "trip", "cloud",
              "stale net", "stale +t", "replan net", "replan +t", "replans");
  for (const bench::OdPair& od : world.routing_pairs()) {
    for (const double cloud_after_s : {60.0, 180.0}) {
      const TimeOfDay cloud_at = dep.advanced_by(Seconds{cloud_after_s});
      const solar::PanelPowerFn live = [cloud_at](TimeOfDay t) {
        return t < cloud_at ? Watts{200.0} : Watts{70.0};
      };
      const auto stale = core::drive_without_replanning(
          snapshot, live, od.origin, od.destination, dep);
      const auto live_plan = core::drive_with_replanning(
          snapshot, live, od.origin, od.destination, dep);
      std::printf("%-10s %6.0f s | %+12.2f %12.1f | %+12.2f %12.1f %8d\n",
                  od.label, cloud_after_s,
                  stale.energy_in.value() - stale.energy_out.value(),
                  stale.total_time.value(),
                  live_plan.energy_in.value() - live_plan.energy_out.value(),
                  live_plan.total_time.value(), live_plan.replans);
    }
  }
  std::printf(
      "\nReading: once the cloud kills the harvest, the stale plan keeps\n"
      "paying the detour for sunlight that is no longer there; the\n"
      "replanner falls back toward the fastest remaining route. Net energy\n"
      "with replanning is never worse, and arrival is earlier.\n");
  return 0;
}
