// The standard experiment world shared by every reproduction bench:
// a downtown-Montreal-style grid, a procedurally generated 3D scene,
// the exact 15-minute shading profile over the paper's test window
// (8:00-18:30), urban traffic in the 14-17 km/h band, and the paper's
// four origin/destination pairs (1.4-2 km trips; A2->B2 is the reverse
// of A1->B1, as in Table R-I). Components are built once and shared —
// every world_at()/daytime_world() snapshot reuses the same graph,
// shading profile, traffic model and vehicle allocations; only the
// panel power (and hence the solar map and slot caches) differs.
#pragma once

#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "sunchase/core/planner.h"
#include "sunchase/core/world.h"
#include "sunchase/ev/consumption.h"
#include "sunchase/roadnet/citygen.h"
#include "sunchase/roadnet/traffic.h"
#include "sunchase/shadow/scenegen.h"
#include "sunchase/solar/input_map.h"

namespace sunchase::bench {

struct OdPair {
  const char* label;
  roadnet::NodeId origin;
  roadnet::NodeId destination;
};

class PaperWorld {
 public:
  /// Vehicle indices within every snapshot this factory creates.
  static constexpr std::size_t kLv = 0;
  static constexpr std::size_t kTesla = 1;

  PaperWorld()
      : city_(city_options()),
        graph_(std::make_shared<const roadnet::RoadGraph>(city_.graph())),
        projection_(city_.options().origin),
        scene_(generate_scene(*graph_, projection_,
                              shadow::SceneGenOptions{})),
        shading_(std::make_shared<const shadow::ShadingProfile>(
            shadow::ShadingProfile::compute_exact(
                *graph_, scene_, geo::DayOfYear{196}, TimeOfDay::hms(8, 0),
                TimeOfDay::hms(18, 30)))),
        traffic_(std::make_shared<const roadnet::UrbanTraffic>(
            roadnet::UrbanTraffic::Options{})),
        vehicles_{std::shared_ptr<const ev::ConsumptionModel>(
                      ev::make_lv_prototype()),
                  std::shared_ptr<const ev::ConsumptionModel>(
                      ev::make_tesla_model_s())} {}

  static roadnet::GridCityOptions city_options() {
    roadnet::GridCityOptions opt;
    opt.rows = 12;
    opt.cols = 12;
    return opt;
  }

  /// The four trips of the routing tables. A1->B1 and its reverse
  /// A2->B2 share endpoints; one-way streets make them distinct
  /// problems (the paper: "A2-B2 has a larger number of one-way road
  /// segments than A1-B1").
  [[nodiscard]] std::vector<OdPair> routing_pairs() const {
    return {{"A1 to B1", city_.node_at(1, 1), city_.node_at(9, 10)},
            {"A2 to B2", city_.node_at(9, 10), city_.node_at(1, 1)},
            {"A3 to B3", city_.node_at(2, 9), city_.node_at(9, 2)},
            {"A4 to B4", city_.node_at(3, 3), city_.node_at(9, 8)}};
  }

  /// The snapshot recipe with a fixed panel power C (the paper's
  /// 200/210/160 W settings); all other components shared.
  [[nodiscard]] core::WorldInit init_at(Watts c) const {
    core::WorldInit init;
    init.graph = graph_;
    init.traffic = traffic_;
    init.shading = shading_;
    init.panel_power = solar::constant_panel_power(c);
    init.vehicles = vehicles_;
    return init;
  }

  /// World snapshot with a fixed panel power C.
  [[nodiscard]] core::WorldPtr world_at(Watts c,
                                        std::uint64_t version = 1) const {
    return core::World::create(init_at(c), version);
  }

  /// World snapshot with the paper's one-day panel-power profile.
  [[nodiscard]] core::WorldPtr daytime_world(std::uint64_t version = 1) const {
    core::WorldInit init = init_at(Watts{0.0});
    init.panel_power = solar::paper_daytime_panel_power();
    return core::World::create(std::move(init), version);
  }

  [[nodiscard]] const roadnet::GridCity& city() const noexcept {
    return city_;
  }
  [[nodiscard]] const roadnet::RoadGraph& graph() const noexcept {
    return *graph_;
  }
  [[nodiscard]] const geo::LocalProjection& projection() const noexcept {
    return projection_;
  }
  [[nodiscard]] const shadow::Scene& scene() const noexcept { return scene_; }
  [[nodiscard]] const shadow::ShadingProfile& shading() const noexcept {
    return *shading_;
  }
  [[nodiscard]] const roadnet::TrafficModel& traffic() const noexcept {
    return *traffic_;
  }
  [[nodiscard]] const ev::ConsumptionModel& lv() const noexcept {
    return *vehicles_[kLv];
  }
  [[nodiscard]] const ev::ConsumptionModel& tesla() const noexcept {
    return *vehicles_[kTesla];
  }

 private:
  roadnet::GridCity city_;
  std::shared_ptr<const roadnet::RoadGraph> graph_;
  geo::LocalProjection projection_;
  shadow::Scene scene_;
  std::shared_ptr<const shadow::ShadingProfile> shading_;
  std::shared_ptr<const roadnet::TrafficModel> traffic_;
  std::vector<std::shared_ptr<const ev::ConsumptionModel>> vehicles_;
};

/// Prints the standard bench banner.
inline void banner(const char* experiment, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("SunChase reproduction — %s\n", experiment);
  std::printf("Paper reference: %s\n", paper_ref);
  std::printf("==============================================================\n");
}

}  // namespace sunchase::bench
