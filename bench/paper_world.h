// The standard experiment world shared by every reproduction bench:
// a downtown-Montreal-style grid, a procedurally generated 3D scene,
// the exact 15-minute shading profile over the paper's test window
// (8:00-18:30), urban traffic in the 14-17 km/h band, and the paper's
// four origin/destination pairs (1.4-2 km trips; A2->B2 is the reverse
// of A1->B1, as in Table R-I).
#pragma once

#include <cstdio>
#include <memory>
#include <vector>

#include "sunchase/core/planner.h"
#include "sunchase/ev/consumption.h"
#include "sunchase/roadnet/citygen.h"
#include "sunchase/roadnet/traffic.h"
#include "sunchase/shadow/scenegen.h"
#include "sunchase/solar/input_map.h"

namespace sunchase::bench {

struct OdPair {
  const char* label;
  roadnet::NodeId origin;
  roadnet::NodeId destination;
};

class PaperWorld {
 public:
  PaperWorld()
      : city_(city_options()),
        projection_(city_.options().origin),
        scene_(generate_scene(city_.graph(), projection_,
                              shadow::SceneGenOptions{})),
        shading_(shadow::ShadingProfile::compute_exact(
            city_.graph(), scene_, geo::DayOfYear{196}, TimeOfDay::hms(8, 0),
            TimeOfDay::hms(18, 30))),
        traffic_(roadnet::UrbanTraffic::Options{}),
        lv_(ev::make_lv_prototype()),
        tesla_(ev::make_tesla_model_s()) {}

  static roadnet::GridCityOptions city_options() {
    roadnet::GridCityOptions opt;
    opt.rows = 12;
    opt.cols = 12;
    return opt;
  }

  /// The four trips of the routing tables. A1->B1 and its reverse
  /// A2->B2 share endpoints; one-way streets make them distinct
  /// problems (the paper: "A2-B2 has a larger number of one-way road
  /// segments than A1-B1").
  [[nodiscard]] std::vector<OdPair> routing_pairs() const {
    return {{"A1 to B1", city_.node_at(1, 1), city_.node_at(9, 10)},
            {"A2 to B2", city_.node_at(9, 10), city_.node_at(1, 1)},
            {"A3 to B3", city_.node_at(2, 9), city_.node_at(9, 2)},
            {"A4 to B4", city_.node_at(3, 3), city_.node_at(9, 8)}};
  }

  /// Solar input map with a fixed panel power C (the paper's
  /// 200/210/160 W settings).
  [[nodiscard]] solar::SolarInputMap map_at(Watts c) const {
    return solar::SolarInputMap(city_.graph(), shading_, traffic_,
                                solar::constant_panel_power(c));
  }

  /// Solar input map with the paper's one-day panel-power profile.
  [[nodiscard]] solar::SolarInputMap daytime_map() const {
    return solar::SolarInputMap(city_.graph(), shading_, traffic_,
                                solar::paper_daytime_panel_power());
  }

  [[nodiscard]] const roadnet::GridCity& city() const noexcept {
    return city_;
  }
  [[nodiscard]] const roadnet::RoadGraph& graph() const noexcept {
    return city_.graph();
  }
  [[nodiscard]] const geo::LocalProjection& projection() const noexcept {
    return projection_;
  }
  [[nodiscard]] const shadow::Scene& scene() const noexcept { return scene_; }
  [[nodiscard]] const shadow::ShadingProfile& shading() const noexcept {
    return shading_;
  }
  [[nodiscard]] const roadnet::TrafficModel& traffic() const noexcept {
    return traffic_;
  }
  [[nodiscard]] const ev::ConsumptionModel& lv() const noexcept {
    return *lv_;
  }
  [[nodiscard]] const ev::ConsumptionModel& tesla() const noexcept {
    return *tesla_;
  }

 private:
  roadnet::GridCity city_;
  geo::LocalProjection projection_;
  shadow::Scene scene_;
  shadow::ShadingProfile shading_;
  roadnet::UrbanTraffic traffic_;
  std::unique_ptr<ev::ConsumptionModel> lv_;
  std::unique_ptr<ev::ConsumptionModel> tesla_;
};

/// Prints the standard bench banner.
inline void banner(const char* experiment, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("SunChase reproduction — %s\n", experiment);
  std::printf("Paper reference: %s\n", paper_ref);
  std::printf("==============================================================\n");
}

}  // namespace sunchase::bench
