// Cold-start: text build vs binary snapshot boot. The text path does
// what every fresh process did before persistent worlds existed —
// generate the city, generate the scene, ray-cast the exact shading
// profile, assemble the World. The snapshot path mmaps a
// world-*.scsnap written earlier and rebuilds the same World over
// zero-copy views of the file. The bench times both, checks the two
// worlds produce bit-identical Pareto frontiers (exact and
// slot-quantized pricing; exits 1 on any mismatch), and writes
// BENCH_coldstart.json for CI gating (tools/bench_compare.py requires
// snapshot boot >= 5x faster than the text build).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "paper_world.h"

#include "sunchase/core/mlc.h"
#include "sunchase/core/world.h"
#include "sunchase/core/world_codec.h"
#include "sunchase/obs/metrics.h"
#include "sunchase/roadnet/citygen.h"
#include "sunchase/shadow/scenegen.h"

using namespace sunchase;

namespace {

constexpr int kRows = 12;
constexpr int kCols = 12;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Resident set size in kB from /proc/self/status (0 if unreadable).
std::size_t vm_rss_kb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr)
    if (std::sscanf(line, "VmRSS: %zu", &kb) == 1) break;
  std::fclose(f);
  return kb;
}

/// The full text-build path a fresh process pays without a snapshot:
/// citygen + scenegen + exact shading ray-casts + World assembly.
core::WorldPtr build_text_world() {
  roadnet::GridCityOptions city_options;
  city_options.rows = kRows;
  city_options.cols = kCols;
  const roadnet::GridCity city(city_options);
  const geo::LocalProjection projection(city_options.origin);
  const shadow::Scene scene =
      generate_scene(city.graph(), projection, shadow::SceneGenOptions{});
  core::WorldInit init;
  init.graph = std::make_shared<const roadnet::RoadGraph>(city.graph());
  init.shading = std::make_shared<const shadow::ShadingProfile>(
      shadow::ShadingProfile::compute_exact(
          *init.graph, scene, geo::DayOfYear{196}, TimeOfDay::hms(8, 0),
          TimeOfDay::hms(18, 30)));
  init.traffic = std::make_shared<const roadnet::UrbanTraffic>(
      roadnet::UrbanTraffic::Options{});
  init.panel_power = solar::constant_panel_power(Watts{200.0});
  init.vehicles.push_back(std::shared_ptr<const ev::ConsumptionModel>(
      ev::make_lv_prototype()));
  return core::World::create(std::move(init));
}

/// Flattened Pareto frontiers (costs + edge sequences) of a fixed query
/// set under one pricing mode — bit-exact comparison material.
std::vector<double> fingerprint(const core::WorldPtr& world,
                                core::PricingMode pricing) {
  core::MlcOptions opt;
  opt.max_time_factor = 1.4;
  opt.pricing = pricing;
  const core::MultiLabelCorrecting solver(world, opt);
  const auto last =
      static_cast<roadnet::NodeId>(world->graph().node_count() - 1);
  const struct {
    roadnet::NodeId from, to;
    TimeOfDay depart;
  } queries[] = {
      {0, last, TimeOfDay::hms(9, 0)},
      {0, last, TimeOfDay::hms(12, 30)},
      {static_cast<roadnet::NodeId>(kCols - 1),
       static_cast<roadnet::NodeId>((kRows - 1) * kCols),
       TimeOfDay::hms(16, 0)},
  };
  std::vector<double> fp;
  for (const auto& q : queries) {
    const auto result = solver.search(q.from, q.to, q.depart);
    for (const auto& route : result.routes) {
      fp.push_back(route.cost.travel_time.value());
      fp.push_back(route.cost.shaded_time.value());
      fp.push_back(route.cost.energy_out.value());
      for (const roadnet::EdgeId e : route.path.edges)
        fp.push_back(static_cast<double>(e));
    }
  }
  return fp;
}

}  // namespace

int main(int argc, char** argv) {
  const int repeats = argc > 1 ? std::atoi(argv[1]) : 3;
  const char* json_path = argc > 2 ? argv[2] : "BENCH_coldstart.json";
  const std::string snap_path = "BENCH_coldstart.scsnap";
  bench::banner("cold start: text build vs snapshot mmap",
                "persistent worlds — boot from the journal, not the text "
                "pipeline");

  // Text build, best of `repeats` (the world of the last repeat is the
  // one saved and compared against).
  double build_seconds = -1.0;
  core::WorldPtr built;
  for (int r = 0; r < repeats; ++r) {
    const double t0 = now_seconds();
    built = build_text_world();
    const double dt = now_seconds() - t0;
    if (build_seconds < 0.0 || dt < build_seconds) build_seconds = dt;
  }
  const std::size_t rss_after_build_kb = vm_rss_kb();

  // Fingerprint the built world first: the slot-pricing pass fills
  // cache columns, so the snapshot below carries them and the loaded
  // world boots warm.
  const std::vector<double> built_exact =
      fingerprint(built, core::PricingMode::Exact);
  const std::vector<double> built_slot =
      fingerprint(built, core::PricingMode::SlotQuantized);

  const double save_t0 = now_seconds();
  core::save_world_snapshot(*built, snap_path);
  const double save_seconds = now_seconds() - save_t0;
  const core::SnapshotInfo info = core::inspect_world_snapshot(snap_path);

  double load_seconds = -1.0;
  core::WorldPtr loaded;
  for (int r = 0; r < repeats; ++r) {
    const double t0 = now_seconds();
    loaded = core::load_world_snapshot(snap_path);
    const double dt = now_seconds() - t0;
    if (load_seconds < 0.0 || dt < load_seconds) load_seconds = dt;
  }
  const std::size_t rss_after_load_kb = vm_rss_kb();
  const std::size_t warm_slots = loaded->slot_cache().filled_slots();

  const bool fingerprint_ok =
      fingerprint(loaded, core::PricingMode::Exact) == built_exact &&
      fingerprint(loaded, core::PricingMode::SlotQuantized) == built_slot;

  const double speedup =
      load_seconds > 0.0 ? build_seconds / load_seconds : 0.0;
  std::printf("%dx%d city, best of %d\n\n", kRows, kCols, repeats);
  std::printf("  text build    %9.2f ms\n", build_seconds * 1e3);
  std::printf("  snapshot save %9.2f ms  (%llu bytes, %zu sections)\n",
              save_seconds * 1e3,
              static_cast<unsigned long long>(info.file_bytes),
              info.sections.size());
  std::printf("  snapshot load %9.2f ms  (%zu warm cache slots)\n",
              load_seconds * 1e3, warm_slots);
  std::printf("  speedup       %9.1fx\n", speedup);
  std::printf("  rss           %zu kB after build, %zu kB after load\n",
              rss_after_build_kb, rss_after_load_kb);
  std::printf("  fingerprints  %s (exact + slot pricing)\n",
              fingerprint_ok ? "bit-identical" : "MISMATCH");
  if (!fingerprint_ok) {
    std::fprintf(stderr,
                 "error: loaded world's plan results differ from the built "
                 "world's\n");
    return 1;
  }

  if (std::FILE* f = std::fopen(json_path, "w")) {
    std::fprintf(f, "{\n  \"bench\": \"perf_coldstart\",\n");
    std::fprintf(f, "  \"rows\": %d,\n  \"cols\": %d,\n  \"repeats\": %d,\n",
                 kRows, kCols, repeats);
    std::fprintf(f, "  \"build_seconds\": %.6f,\n", build_seconds);
    std::fprintf(f, "  \"save_seconds\": %.6f,\n", save_seconds);
    std::fprintf(f, "  \"load_seconds\": %.6f,\n", load_seconds);
    std::fprintf(f, "  \"speedup\": %.2f,\n", speedup);
    std::fprintf(f, "  \"snapshot_bytes\": %llu,\n",
                 static_cast<unsigned long long>(info.file_bytes));
    std::fprintf(f, "  \"warm_slots\": %zu,\n", warm_slots);
    std::fprintf(f, "  \"rss_after_build_kb\": %zu,\n", rss_after_build_kb);
    std::fprintf(f, "  \"rss_after_load_kb\": %zu,\n", rss_after_load_kb);
    std::fprintf(f, "  \"fingerprint_ok\": true,\n");
    const std::string metrics =
        obs::Registry::global().snapshot().to_json(2);
    std::fprintf(f, "  \"metrics\":\n%s\n}\n", metrics.c_str());
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "error: cannot write %s\n", json_path);
    return 1;
  }
  std::remove(snap_path.c_str());
  return 0;
}
