// MLC search-space pruning scaling: corner-to-corner Pareto searches on
// generated n x n cities (hashed shading, urban traffic), run with the
// reverse-Dijkstra lower-bound pruning on vs off and swept over the
// epsilon-dominance merge factor on the largest world. The paper notes
// the Pareto search is the expensive step its route merging exists to
// tame; this bench tracks what the budget pruning actually saves
// (labels created, queue pops, latency) and what an approximate merge
// costs in Pareto coverage. Writes BENCH_mlc.json for CI trend
// tracking (tools/bench_compare.py gates on it).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "paper_world.h"

#include "sunchase/core/mlc.h"
#include "sunchase/obs/metrics.h"

using namespace sunchase;

namespace {

struct ScalingWorld {
  explicit ScalingWorld(int n)
      : city(options_for(n)), proj(city.options().origin) {
    core::WorldInit init;
    init.graph = std::make_shared<const roadnet::RoadGraph>(city.graph());
    init.shading = std::make_shared<const shadow::ShadingProfile>(
        shadow::ShadingProfile::compute(
            *init.graph,
            [](roadnet::EdgeId e, TimeOfDay when) {
              const auto h = static_cast<std::uint64_t>(e) * 2654435761u +
                             static_cast<std::uint64_t>(when.slot_index());
              return static_cast<double>(h % 900) / 1000.0;
            },
            TimeOfDay::hms(8, 0), TimeOfDay::hms(18, 0)));
    init.traffic = std::make_shared<const roadnet::UrbanTraffic>(
        roadnet::UrbanTraffic::Options{});
    init.panel_power = solar::constant_panel_power(Watts{200.0});
    init.vehicles.push_back(std::shared_ptr<const ev::ConsumptionModel>(
        ev::make_lv_prototype()));
    world = core::World::create(std::move(init));
  }

  static roadnet::GridCityOptions options_for(int n) {
    roadnet::GridCityOptions opt;
    opt.rows = n;
    opt.cols = n;
    return opt;
  }

  roadnet::GridCity city;
  geo::LocalProjection proj;
  core::WorldPtr world;
};

ScalingWorld& world_of(int n) {
  static std::map<int, std::unique_ptr<ScalingWorld>> cache;
  auto& slot = cache[n];
  if (!slot) slot = std::make_unique<ScalingWorld>(n);
  return *slot;
}

struct Sample {
  int n = 0;
  const char* mode = "pruned";  ///< "pruned" or "unpruned"
  double epsilon = 0.0;
  double queries_per_second = 0.0;
  double search_seconds = 0.0;      ///< mean per query
  double lower_bound_seconds = 0.0; ///< mean per query (0 unpruned)
  std::size_t labels_created = 0;
  std::size_t labels_pruned_bound = 0;
  std::size_t labels_merged_epsilon = 0;
  std::size_t queue_pops = 0;
  std::size_t pareto_size = 0;
};

/// Best-of-`repeats` search at one configuration; stats come from the
/// fastest repeat (all repeats produce identical stats — the search is
/// deterministic — so "best" only picks the least-noisy timing).
Sample run_config(int n, bool prune, double epsilon, int repeats) {
  ScalingWorld& w = world_of(n);
  core::MlcOptions opt;
  opt.max_time_factor = 1.1;
  opt.prune_with_lower_bounds = prune;
  opt.epsilon = epsilon;
  const core::MultiLabelCorrecting solver(w.world, opt);
  Sample s;
  s.n = n;
  s.mode = prune ? "pruned" : "unpruned";
  s.epsilon = epsilon;
  double best = -1.0;
  for (int r = 0; r < repeats; ++r) {
    const auto result = solver.search(w.city.node_at(0, 0),
                                      w.city.node_at(n - 1, n - 1),
                                      TimeOfDay::hms(10, 0));
    if (best < 0.0 || result.stats.search_seconds < best) {
      best = result.stats.search_seconds;
      s.search_seconds = result.stats.search_seconds;
      s.lower_bound_seconds = result.stats.lower_bound_seconds;
      s.labels_created = result.stats.labels_created;
      s.labels_pruned_bound = result.stats.labels_pruned_bound;
      s.labels_merged_epsilon = result.stats.labels_merged_epsilon;
      s.queue_pops = result.stats.queue_pops;
      s.pareto_size = result.stats.pareto_size;
    }
  }
  s.queries_per_second = s.search_seconds > 0.0 ? 1.0 / s.search_seconds : 0.0;
  return s;
}

/// Full Pareto frontier (cost vectors only) at one configuration.
std::vector<core::Criteria> frontier(int n, bool prune, double epsilon) {
  ScalingWorld& w = world_of(n);
  core::MlcOptions opt;
  opt.max_time_factor = 1.1;
  opt.prune_with_lower_bounds = prune;
  opt.epsilon = epsilon;
  const core::MultiLabelCorrecting solver(w.world, opt);
  const auto result = solver.search(w.city.node_at(0, 0),
                                    w.city.node_at(n - 1, n - 1),
                                    TimeOfDay::hms(10, 0));
  std::vector<core::Criteria> costs;
  costs.reserve(result.routes.size());
  for (const auto& route : result.routes) costs.push_back(route.cost);
  return costs;
}

/// Coverage error of an approximate frontier vs the exact one: for each
/// exact point, the smallest factor by which some approximate point is
/// worse in its worst criterion; the sweep reports the max over exact
/// points. 0 means every exact point is (weakly) covered.
double coverage_error(const std::vector<core::Criteria>& exact,
                      const std::vector<core::Criteria>& approx) {
  double worst = 0.0;
  for (const core::Criteria& e : exact) {
    double best = std::numeric_limits<double>::infinity();
    for (const core::Criteria& a : approx) {
      auto ratio = [](double av, double ev) {
        if (av <= ev) return 0.0;
        return ev > 1e-12 ? (av - ev) / ev
                          : std::numeric_limits<double>::infinity();
      };
      const double over =
          std::max({ratio(a.travel_time.value(), e.travel_time.value()),
                    ratio(a.shaded_time.value(), e.shaded_time.value()),
                    ratio(a.energy_out.value(), e.energy_out.value())});
      best = std::min(best, over);
    }
    worst = std::max(worst, best);
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  const int repeats = argc > 1 ? std::atoi(argv[1]) : 3;
  bench::banner("MLC search-space pruning scaling",
                "budget pruning + epsilon-dominance on the Pareto search");

  const std::vector<int> sizes = {6, 8, 10, 12};
  const int largest = sizes.back();

  std::vector<Sample> samples;
  std::printf("corner-to-corner searches, time budget 1.1x, 10:00, "
              "best of %d\n\n", repeats);
  std::printf("%4s %9s %8s %9s %8s %10s %10s %7s\n", "n", "mode",
              "ms", "lb_ms", "labels", "pruned", "pops", "pareto");
  for (const int n : sizes) {
    for (const bool prune : {false, true}) {
      const Sample s = run_config(n, prune, 0.0, repeats);
      samples.push_back(s);
      std::printf("%4d %9s %8.2f %9.3f %8zu %10zu %10zu %7zu\n", s.n,
                  s.mode, s.search_seconds * 1e3,
                  s.lower_bound_seconds * 1e3, s.labels_created,
                  s.labels_pruned_bound, s.queue_pops, s.pareto_size);
    }
  }

  // Exactness spot check riding along with the measurement: pruning at
  // epsilon = 0 must not change the frontier (the tests pin this too,
  // but a silent regression here would quietly invalidate the bench's
  // pruned-vs-unpruned comparison).
  const std::vector<core::Criteria> exact = frontier(largest, false, 0.0);
  if (frontier(largest, true, 0.0) != exact) {
    std::fprintf(stderr,
                 "error: pruned frontier differs from unpruned at n=%d\n",
                 largest);
    return 1;
  }

  // Epsilon sweep on the largest world, pruning on: what the relaxed
  // merge saves and what Pareto coverage it gives up.
  struct EpsSample {
    double epsilon = 0.0;
    Sample run;
    double coverage_err = 0.0;
  };
  std::vector<EpsSample> sweep;
  std::printf("\nepsilon sweep (n=%d, pruning on)\n", largest);
  std::printf("%8s %8s %8s %10s %7s %12s\n", "epsilon", "ms", "labels",
              "merged", "pareto", "coverage_err");
  for (const double epsilon : {0.0, 0.01, 0.05, 0.10}) {
    EpsSample es;
    es.epsilon = epsilon;
    es.run = run_config(largest, true, epsilon, repeats);
    es.coverage_err = coverage_error(exact, frontier(largest, true, epsilon));
    sweep.push_back(es);
    std::printf("%8.2f %8.2f %8zu %10zu %7zu %12.4f\n", epsilon,
                es.run.search_seconds * 1e3, es.run.labels_created,
                es.run.labels_merged_epsilon, es.run.pareto_size,
                es.coverage_err);
  }

  const char* json_path = argc > 2 ? argv[2] : "BENCH_mlc.json";
  if (std::FILE* f = std::fopen(json_path, "w")) {
    std::fprintf(f, "{\n  \"bench\": \"perf_mlc_scaling\",\n");
    std::fprintf(f, "  \"time_budget\": 1.1,\n  \"repeats\": %d,\n",
                 repeats);
    std::fprintf(f, "  \"largest_n\": %d,\n  \"samples\": [\n", largest);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const Sample& s = samples[i];
      std::fprintf(f,
                   "    {\"n\": %d, \"mode\": \"%s\", \"epsilon\": %.4f, "
                   "\"queries_per_second\": %.3f, "
                   "\"search_seconds\": %.6f, "
                   "\"lower_bound_seconds\": %.6f, "
                   "\"labels_created\": %zu, \"labels_pruned_bound\": %zu, "
                   "\"labels_merged_epsilon\": %zu, \"queue_pops\": %zu, "
                   "\"pareto_size\": %zu}%s\n",
                   s.n, s.mode, s.epsilon, s.queries_per_second,
                   s.search_seconds, s.lower_bound_seconds,
                   s.labels_created, s.labels_pruned_bound,
                   s.labels_merged_epsilon, s.queue_pops, s.pareto_size,
                   i + 1 < samples.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"epsilon_sweep\": [\n");
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const EpsSample& es = sweep[i];
      std::fprintf(f,
                   "    {\"epsilon\": %.4f, \"search_seconds\": %.6f, "
                   "\"labels_created\": %zu, "
                   "\"labels_merged_epsilon\": %zu, \"pareto_size\": %zu, "
                   "\"coverage_error\": %.6f}%s\n",
                   es.epsilon, es.run.search_seconds,
                   es.run.labels_created, es.run.labels_merged_epsilon,
                   es.run.pareto_size, es.coverage_err,
                   i + 1 < sweep.size() ? "," : "");
    }
    // Registry snapshot: the mlc.* counter family (created / pruned /
    // merged / lower-bound build seconds) for CI trend tracking.
    const std::string metrics =
        sunchase::obs::Registry::global().snapshot().to_json(2);
    std::fprintf(f, "  ],\n  \"metrics\":\n%s\n}\n", metrics.c_str());
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "error: cannot write %s\n", json_path);
    return 1;
  }
  return 0;
}
