// Microbenchmarks (google-benchmark): cost of the multi-label
// correcting search vs city size and time budget, the Dijkstra
// baseline, shading-profile construction, and the selection pipeline.
// The paper notes the Pareto search is the expensive step its route
// merging exists to tame.
#include <benchmark/benchmark.h>

#include <map>

#include "paper_world.h"

#include "sunchase/core/astar.h"
#include "sunchase/core/dijkstra.h"

using namespace sunchase;

namespace {

struct ScalingWorld {
  explicit ScalingWorld(int n) : city(options_for(n)), proj(city.options().origin) {
    core::WorldInit init;
    init.graph = std::make_shared<const roadnet::RoadGraph>(city.graph());
    init.shading = std::make_shared<const shadow::ShadingProfile>(
        shadow::ShadingProfile::compute(
            *init.graph,
            [](roadnet::EdgeId e, TimeOfDay when) {
              const auto h = static_cast<std::uint64_t>(e) * 2654435761u +
                             static_cast<std::uint64_t>(when.slot_index());
              return static_cast<double>(h % 900) / 1000.0;
            },
            TimeOfDay::hms(8, 0), TimeOfDay::hms(18, 0)));
    init.traffic = std::make_shared<const roadnet::UrbanTraffic>(
        roadnet::UrbanTraffic::Options{});
    init.panel_power = solar::constant_panel_power(Watts{200.0});
    init.vehicles.push_back(std::shared_ptr<const ev::ConsumptionModel>(
        ev::make_lv_prototype()));
    world = core::World::create(std::move(init));
  }

  static roadnet::GridCityOptions options_for(int n) {
    roadnet::GridCityOptions opt;
    opt.rows = n;
    opt.cols = n;
    return opt;
  }

  roadnet::GridCity city;
  geo::LocalProjection proj;
  core::WorldPtr world;
};

ScalingWorld& world_of(int n) {
  static std::map<int, std::unique_ptr<ScalingWorld>> cache;
  auto& slot = cache[n];
  if (!slot) slot = std::make_unique<ScalingWorld>(n);
  return *slot;
}

void BM_MlcSearch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const double factor = static_cast<double>(state.range(1)) / 10.0;
  ScalingWorld& w = world_of(n);
  core::MlcOptions opt;
  opt.max_time_factor = factor;
  const core::MultiLabelCorrecting solver(w.world, opt);
  std::size_t labels = 0, pareto = 0;
  for (auto _ : state) {
    const auto result = solver.search(w.city.node_at(0, 0),
                                      w.city.node_at(n - 1, n - 1),
                                      TimeOfDay::hms(10, 0));
    labels = result.stats.labels_created;
    pareto = result.routes.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["labels"] = static_cast<double>(labels);
  state.counters["pareto"] = static_cast<double>(pareto);
}
BENCHMARK(BM_MlcSearch)
    ->ArgsProduct({{6, 8, 10, 12}, {11, 15, 20}})
    ->Unit(benchmark::kMillisecond);

void BM_DijkstraBaseline(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ScalingWorld& w = world_of(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::detail::shortest_time_path(
        w.world->graph(), w.world->traffic(), w.city.node_at(0, 0),
        w.city.node_at(n - 1, n - 1), TimeOfDay::hms(10, 0)));
  }
}
BENCHMARK(BM_DijkstraBaseline)->Arg(6)->Arg(12)->Unit(benchmark::kMicrosecond);

void BM_AStarBaseline(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ScalingWorld& w = world_of(n);
  std::size_t settled = 0;
  for (auto _ : state) {
    const auto result = core::detail::shortest_time_path_astar(
        w.world->graph(), w.world->traffic(), w.city.node_at(0, 0),
        w.city.node_at(n - 1, n - 1), TimeOfDay::hms(10, 0), kmh(17.0));
    settled = result ? result->nodes_settled : 0;
    benchmark::DoNotOptimize(result);
  }
  state.counters["settled"] = static_cast<double>(settled);
}
BENCHMARK(BM_AStarBaseline)->Arg(6)->Arg(12)->Unit(benchmark::kMicrosecond);

void BM_SelectionPipeline(benchmark::State& state) {
  ScalingWorld& w = world_of(10);
  core::MlcOptions opt;
  opt.max_time_factor = 1.5;
  const core::MultiLabelCorrecting solver(w.world, opt);
  const auto pareto = solver
                          .search(w.city.node_at(0, 0), w.city.node_at(9, 9),
                                  TimeOfDay::hms(10, 0))
                          .routes;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::select_representative_routes(
        pareto, w.world, TimeOfDay::hms(10, 0)));
  }
  state.counters["pareto_in"] = static_cast<double>(pareto.size());
}
BENCHMARK(BM_SelectionPipeline)->Unit(benchmark::kMicrosecond);

void BM_ExactShadingSlot(benchmark::State& state) {
  // Cost of one 15-minute solar-map refresh (all edges, one sun
  // position) on the full paper world scene.
  static const bench::PaperWorld paper;
  const auto estimator = shadow::make_exact_estimator(
      paper.graph(), paper.scene(), geo::DayOfYear{196});
  int slot = 40;
  for (auto _ : state) {
    double sum = 0.0;
    const TimeOfDay t = TimeOfDay::slot_start(slot);
    for (roadnet::EdgeId e = 0; e < paper.graph().edge_count(); ++e)
      sum += estimator(e, t);
    benchmark::DoNotOptimize(sum);
    slot = 40 + (slot + 1) % 8;  // defeat the per-slot memoization
  }
}
BENCHMARK(BM_ExactShadingSlot)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
