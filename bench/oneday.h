// Shared driver for the one-day driving scenario (paper Figs. 9-10):
// 20 trips spread over 9:00-17:00, panel power following the measured
// daily profile (160-210 W). For every trip the route that maximizes
// extra solar energy input is selected (the paper's choice, showing
// the worst-case extra travel time); trips with no better route fall
// back to the shortest-time path with zero extras.
#pragma once

#include <cstdio>
#include <vector>

#include "paper_world.h"

namespace sunchase::bench {

struct OneDaySeries {
  std::vector<double> extra_energy_wh;
  std::vector<double> extra_time_s;

  [[nodiscard]] double total_energy() const {
    double sum = 0.0;
    for (const double v : extra_energy_wh) sum += v;
    return sum;
  }
  [[nodiscard]] double total_time() const {
    double sum = 0.0;
    for (const double v : extra_time_s) sum += v;
    return sum;
  }
};

/// 20 OD pairs whose lattice (Manhattan) span is ~`span_blocks` blocks,
/// deterministic from the seed. Case 1 uses shorter trips than case 2.
inline std::vector<OdPair> one_day_trips(const PaperWorld& world,
                                         int span_blocks,
                                         std::uint64_t seed) {
  const auto& options = world.city().options();
  Rng rng(seed);
  std::vector<OdPair> trips;
  while (trips.size() < 20) {
    const int r0 = static_cast<int>(rng.uniform_int(0, options.rows - 1));
    const int c0 = static_cast<int>(rng.uniform_int(0, options.cols - 1));
    const int r1 = static_cast<int>(rng.uniform_int(0, options.rows - 1));
    const int c1 = static_cast<int>(rng.uniform_int(0, options.cols - 1));
    const int span = std::abs(r1 - r0) + std::abs(c1 - c0);
    if (span < span_blocks || span > span_blocks + 3) continue;
    trips.push_back(OdPair{"", world.city().node_at(r0, c0),
                           world.city().node_at(r1, c1)});
  }
  return trips;
}

/// Runs the 20 trips for one vehicle; trip i departs at 9:00 + i*24 min.
inline OneDaySeries run_one_day(const core::WorldPtr& world,
                                std::size_t vehicle,
                                const std::vector<OdPair>& trips) {
  core::PlannerOptions options;
  options.mlc.vehicle = vehicle;
  const core::SunChasePlanner planner(world, options);
  OneDaySeries series;
  int i = 0;
  for (const OdPair& od : trips) {
    const TimeOfDay departure =
        TimeOfDay::hms(9, 0).advanced_by(minutes(24.0 * i++));
    const core::PlanResult plan =
        planner.plan(od.origin, od.destination, departure);
    const auto& chosen = plan.recommended();
    series.extra_energy_wh.push_back(
        chosen.is_shortest_time ? 0.0 : chosen.extra_energy.value());
    series.extra_time_s.push_back(
        chosen.is_shortest_time ? 0.0 : chosen.extra_time.value());
  }
  return series;
}

inline void print_series(const char* fig_label, const OneDaySeries& lv,
                         const OneDaySeries& tesla) {
  std::printf("%s\n", fig_label);
  std::printf("%-6s %-7s %14s %14s %14s %14s\n", "trip", "depart",
              "Lv +E (Wh)", "Lv +t (s)", "Tesla +E (Wh)", "Tesla +t (s)");
  for (std::size_t i = 0; i < lv.extra_energy_wh.size(); ++i) {
    const TimeOfDay dep = TimeOfDay::hms(9, 0).advanced_by(
        minutes(24.0 * static_cast<double>(i)));
    std::printf("%-6zu %-7s %14.2f %14.1f %14.2f %14.1f\n", i + 1,
                dep.to_string().substr(0, 5).c_str(), lv.extra_energy_wh[i],
                lv.extra_time_s[i], tesla.extra_energy_wh[i],
                tesla.extra_time_s[i]);
  }
  double lv_max_t = 0.0, tesla_max_t = 0.0;
  for (const double t : lv.extra_time_s) lv_max_t = std::max(lv_max_t, t);
  for (const double t : tesla.extra_time_s)
    tesla_max_t = std::max(tesla_max_t, t);
  std::printf("\n  totals: Lv %+.2f Wh / %+.0f s  |  Tesla %+.2f Wh / %+.0f s"
              "  |  max extra time %.0f s / %.0f s\n\n",
              lv.total_energy(), lv.total_time(), tesla.total_energy(),
              tesla.total_time(), lv_max_t, tesla_max_t);
}

}  // namespace sunchase::bench
