// Ablation: why three criteria? The paper models (travel time, solar
// input, energy consumption). Dropping a criterion shrinks the Pareto
// set; this bench measures what the third dimension adds: searching
// with an (effectively) flat consumption criterion vs the full model,
// and how often the chosen better-solar route changes.
#include <cstdio>

#include "paper_world.h"

using namespace sunchase;

int main() {
  bench::banner("Ablation: 2-criteria (tt, solar) vs 3-criteria search",
                "Sec. III-B: k = 3 criteria model");
  const bench::PaperWorld world;
  const TimeOfDay dep = TimeOfDay::hms(10, 0);

  // An (almost) consumption-blind vehicle collapses the third
  // dimension: its quadratic consumption is flat and negligible. It
  // rides along as an extra vehicle in the same snapshot.
  core::WorldInit init = world.init_at(Watts{200.0});
  const std::size_t kFlat = init.vehicles.size();
  init.vehicles.push_back(std::make_shared<const ev::QuadraticConsumption>(
      0.0, 1e-6, "criteria-ablation"));
  const core::WorldPtr snapshot = core::World::create(std::move(init));

  core::MlcOptions mlc;
  mlc.max_time_factor = 1.3;
  mlc.vehicle = bench::PaperWorld::kLv;
  const core::MultiLabelCorrecting full(snapshot, mlc);
  core::MlcOptions mlc2 = mlc;
  mlc2.vehicle = kFlat;
  const core::MultiLabelCorrecting reduced(snapshot, mlc2);

  std::printf("%-10s | %10s %10s | %12s %14s\n", "trip", "3-crit", "2-crit",
              "labels 3c", "labels 2c");
  std::size_t total3 = 0, total2 = 0;
  for (const bench::OdPair& od : world.routing_pairs()) {
    const auto r3 = full.search(od.origin, od.destination, dep);
    const auto r2 = reduced.search(od.origin, od.destination, dep);
    std::printf("%-10s | %10zu %10zu | %12zu %14zu\n", od.label,
                r3.routes.size(), r2.routes.size(),
                r3.stats.labels_created, r2.stats.labels_created);
    total3 += r3.routes.size();
    total2 += r2.routes.size();
  }
  std::printf(
      "\nReading: the consumption criterion inflates the Pareto frontier\n"
      "(%zu vs %zu routes total) and the label workload, but it is what\n"
      "lets Eq. 5 distinguish vehicles — the same frontier prices a Tesla\n"
      "and Lv's prototype differently (Tables R-I..III).\n",
      total3, total2);
  return 0;
}
