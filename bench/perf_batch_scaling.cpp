// Batch-query throughput scaling: the paper-world graph, the four
// Table R-I origin/destination pairs replicated across departure times,
// fanned out by core::BatchPlanner over 1/2/4/8 workers — once per
// pricing mode (Exact re-evaluates the solar map per label expansion;
// SlotQuantized reads the shared per-(edge, slot) cost cache). Reports
// queries/sec, speedup vs the single-worker run, and the slot-cache hit
// rate, and writes BENCH_batch.json for CI trend tracking. This is the
// server-side pre-computation workload of the SCORE deployment model:
// one process answering a fleet's route queries per solar-map refresh.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "paper_world.h"

#include "sunchase/core/batch_planner.h"
#include "sunchase/obs/metrics.h"
#include "sunchase/obs/profiler.h"

using namespace sunchase;

namespace {

std::vector<core::BatchQuery> make_queries(const bench::PaperWorld& world,
                                           int replicas) {
  // 4 OD pairs x 6 departures x replicas; departures span the paper's
  // 8:00-18:30 window so queries hit different solar-map slots.
  const std::vector<TimeOfDay> departures = {
      TimeOfDay::hms(8, 30),  TimeOfDay::hms(10, 0), TimeOfDay::hms(12, 0),
      TimeOfDay::hms(14, 30), TimeOfDay::hms(16, 0), TimeOfDay::hms(17, 30)};
  std::vector<core::BatchQuery> queries;
  for (int r = 0; r < replicas; ++r)
    for (const auto& pair : world.routing_pairs())
      for (const TimeOfDay dep : departures)
        queries.push_back({pair.origin, pair.destination, dep});
  return queries;
}

struct Sample {
  const char* pricing = "exact";
  std::size_t workers = 0;
  double wall_seconds = 0.0;
  double queries_per_second = 0.0;
  double speedup = 1.0;
  double cache_hit_rate = 0.0;  ///< 0 under Exact (no cache)
  double cpu_seconds = 0.0;     ///< summed worker CPU of the sweep
};

/// One timed sweep at the given configuration, for the profiler
/// overhead measurement: the same work with the sampler on vs off.
double sweep_qps(const core::WorldPtr& snapshot,
                 const std::vector<core::BatchQuery>& queries,
                 std::size_t workers, core::PricingMode pricing,
                 int repeats) {
  core::BatchPlannerOptions opt;
  opt.workers = workers;
  opt.mlc.max_time_factor = 1.5;
  opt.mlc.pricing = pricing;
  const core::BatchPlanner planner(snapshot, opt);
  double best = 0.0;
  // Best-of-N damps scheduler noise; overhead shows up as a lower best.
  for (int r = 0; r < repeats; ++r) {
    const core::BatchResult result = planner.plan_all(queries);
    if (result.stats.queries_per_second > best)
      best = result.stats.queries_per_second;
  }
  return best;
}

/// Slot-cache hit rate over one sweep: hits / (hits + misses) from the
/// counter deltas, 0 when the cache never ran.
double hit_rate(std::uint64_t hits_before, std::uint64_t misses_before) {
  auto& reg = obs::Registry::global();
  const double hits =
      static_cast<double>(reg.counter("slotcache.hits").value() - hits_before);
  const double misses = static_cast<double>(
      reg.counter("slotcache.misses").value() - misses_before);
  return hits + misses > 0.0 ? hits / (hits + misses) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const int replicas = argc > 1 ? std::atoi(argv[1]) : 2;
  bench::banner("batch-query throughput scaling",
                "SCORE deployment model: server-side fleet pre-computation");

  const bench::PaperWorld world;
  const core::WorldPtr snapshot = world.world_at(Watts{200.0});
  const auto queries = make_queries(world, replicas);
  std::printf("paper world 12x12, %zu queries (4 OD pairs x 6 departures "
              "x %d replicas)\n",
              queries.size(), replicas);

  // Profile the whole scaling sweep at the default 10 ms interval: the
  // folded top-10 lands in BENCH_batch.json so a CI run shows where the
  // batch workload's cycles went, not just how fast it was.
  obs::Profiler::global().start();

  std::vector<Sample> samples;
  for (const core::PricingMode pricing :
       {core::PricingMode::Exact, core::PricingMode::SlotQuantized}) {
    std::printf("\n--- %s pricing ---\n", core::pricing_name(pricing));
    double base_qps = 0.0;
    for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
      auto& reg = obs::Registry::global();
      const std::uint64_t hits_before = reg.counter("slotcache.hits").value();
      const std::uint64_t misses_before =
          reg.counter("slotcache.misses").value();

      core::BatchPlannerOptions opt;
      opt.workers = workers;
      opt.mlc.max_time_factor = 1.5;
      opt.mlc.pricing = pricing;
      const core::BatchPlanner planner(snapshot, opt);
      const core::BatchResult result = planner.plan_all(queries);

      Sample s;
      s.pricing = core::pricing_name(pricing);
      s.workers = workers;
      s.wall_seconds = result.stats.wall_seconds;
      s.queries_per_second = result.stats.queries_per_second;
      if (base_qps == 0.0) base_qps = s.queries_per_second;
      s.speedup = s.queries_per_second / base_qps;
      s.cache_hit_rate = hit_rate(hits_before, misses_before);
      s.cpu_seconds = result.stats.cpu_seconds;
      samples.push_back(s);

      std::printf("workers=%zu  wall=%7.3f s  throughput=%7.2f q/s  "
                  "speedup=%5.2fx  hit_rate=%.3f  cpu=%6.3f s  "
                  "(ok=%zu fail=%zu, %zu labels, p50=%.1f ms "
                  "p95=%.1f ms)\n",
                  workers, s.wall_seconds, s.queries_per_second, s.speedup,
                  s.cache_hit_rate, s.cpu_seconds, result.stats.succeeded,
                  result.stats.failed, result.stats.totals.labels_created,
                  result.stats.latency.quantile(0.50) * 1e3,
                  result.stats.latency.quantile(0.95) * 1e3);
    }
  }

  // Freeze the sweep's folds, then measure what the sampler costs: the
  // same slot-pricing 4-worker run, best-of-3, sampler off vs on. The
  // claim tracked in EXPERIMENTS.md is <= 2% at the 10 ms default.
  obs::Profiler::global().stop();
  const std::vector<obs::ProfileEntry> top =
      obs::Profiler::global().entries(10);
  std::printf("\nprofile: top stacks (%llu samples, %llu idle)\n",
              static_cast<unsigned long long>(
                  obs::Profiler::global().samples_total()),
              static_cast<unsigned long long>(
                  obs::Profiler::global().samples_idle()));
  for (const obs::ProfileEntry& entry : top)
    std::printf("  %8llu  %s\n",
                static_cast<unsigned long long>(entry.count),
                entry.stack.c_str());

  const double qps_off = sweep_qps(snapshot, queries, 4,
                                   core::PricingMode::SlotQuantized, 3);
  obs::Profiler::global().start();
  const double qps_on = sweep_qps(snapshot, queries, 4,
                                  core::PricingMode::SlotQuantized, 3);
  obs::Profiler::global().stop();
  const double overhead_pct =
      qps_off > 0.0 ? (qps_off - qps_on) / qps_off * 100.0 : 0.0;
  std::printf("profiler overhead: %.2f q/s off vs %.2f q/s on "
              "-> %.2f%% (10 ms interval, slot, 4 workers)\n",
              qps_off, qps_on, overhead_pct);

  const char* json_path = argc > 2 ? argv[2] : "BENCH_batch.json";
  if (std::FILE* f = std::fopen(json_path, "w")) {
    std::fprintf(f, "{\n  \"bench\": \"perf_batch_scaling\",\n");
    std::fprintf(f, "  \"world_version\": %llu,\n",
                 static_cast<unsigned long long>(snapshot->version()));
    std::fprintf(f, "  \"slotcache_bytes\": %zu,\n",
                 snapshot->slot_cache(bench::PaperWorld::kLv).bytes());
    std::fprintf(f, "  \"queries\": %zu,\n  \"samples\": [\n",
                 queries.size());
    for (std::size_t i = 0; i < samples.size(); ++i)
      std::fprintf(f,
                   "    {\"pricing\": \"%s\", \"workers\": %zu, "
                   "\"wall_seconds\": %.6f, "
                   "\"queries_per_second\": %.3f, \"speedup\": %.3f, "
                   "\"cache_hit_rate\": %.4f, \"cpu_seconds\": %.6f}%s\n",
                   samples[i].pricing, samples[i].workers,
                   samples[i].wall_seconds, samples[i].queries_per_second,
                   samples[i].speedup, samples[i].cache_hit_rate,
                   samples[i].cpu_seconds,
                   i + 1 < samples.size() ? "," : "");
    // Where the sweep's cycles went (span names are plain identifiers,
    // safe to embed unescaped) and what sampling them cost.
    std::fprintf(f, "  ],\n  \"profiler_overhead_pct\": %.2f,\n",
                 overhead_pct);
    std::fprintf(f, "  \"profile\": [\n");
    for (std::size_t i = 0; i < top.size(); ++i)
      std::fprintf(f, "    {\"stack\": \"%s\", \"count\": %llu}%s\n",
                   top[i].stack.c_str(),
                   static_cast<unsigned long long>(top[i].count),
                   i + 1 < top.size() ? "," : "");
    // Registry snapshot over both pricing sweeps: search-effort
    // counters, latency histograms, and the slotcache.* family for CI
    // trend tracking.
    const std::string metrics =
        sunchase::obs::Registry::global().snapshot().to_json(2);
    std::fprintf(f, "  ],\n  \"metrics\":\n%s\n}\n", metrics.c_str());
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "error: cannot write %s\n", json_path);
    return 1;
  }
  return 0;
}
