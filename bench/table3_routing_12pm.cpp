// Reproduces Table R-II: routing simulation at 12:00 PM, C = 210 W.
#include "routing_table.h"

int main() {
  using namespace sunchase;
  bench::banner("Table R-II: routing simulation, 12:00 PM",
                "Table II (routing), Sec. V-B1; C = 210 W");
  const bench::PaperWorld world;
  bench::run_routing_table(world, "12:00 PM", TimeOfDay::hms(12, 0),
                           Watts{210.0});
  return 0;
}
