// Commute planner: the paper's "normal driving scenario" from the
// driver's seat. Plans the same home->work trip at 10:00, 12:00 and
// 16:00 (the paper's three cases, C = 200/210/160 W) for both EV
// models, and shows how solar position + panel power change which
// route is worth driving.
//
// Build & run:  ./build/examples/commute_planner
#include <cstdio>
#include <memory>
#include <utility>

#include "sunchase/core/planner.h"
#include "sunchase/core/world.h"
#include "sunchase/roadnet/citygen.h"
#include "sunchase/roadnet/traffic.h"
#include "sunchase/shadow/scenegen.h"
#include "sunchase/solar/input_map.h"

using namespace sunchase;

namespace {

struct Case {
  const char* label;
  TimeOfDay departure;
  Watts panel_power;
};

void plan_and_print(const core::WorldPtr& world, std::size_t vehicle_index,
                    roadnet::NodeId home, roadnet::NodeId work,
                    TimeOfDay departure) {
  const ev::ConsumptionModel& vehicle = world->vehicle(vehicle_index);
  core::PlannerOptions options;
  options.mlc.vehicle = vehicle_index;
  const core::SunChasePlanner planner(world, options);
  const core::PlanResult plan = planner.plan(home, work, departure);
  const auto& base = plan.candidates.front().metrics;
  std::printf("  %-14s: shortest %4.0f m / %5.1f s / EI %5.2f Wh",
              vehicle.name().c_str(), base.total_length.value(),
              base.travel_time.value(), base.energy_in.value());
  if (plan.has_better_solar()) {
    const auto& best = plan.recommended();
    std::printf("  |  better-solar +%4.2f Wh for +%4.1f s (%zu candidates)\n",
                best.extra_energy.value(), best.extra_time.value(),
                plan.candidates.size() - 1);
  } else {
    std::printf("  |  no better route — drive the shortest-time path\n");
  }
}

}  // namespace

int main() {
  roadnet::GridCityOptions city_options;
  city_options.rows = 10;
  city_options.cols = 10;
  const roadnet::GridCity city(city_options);
  const geo::LocalProjection projection(city_options.origin);
  const shadow::Scene scene =
      generate_scene(city.graph(), projection, shadow::SceneGenOptions{});
  const shadow::ShadingProfile shading =
      shadow::ShadingProfile::compute_exact(
          city.graph(), scene, geo::DayOfYear{196}, TimeOfDay::hms(8, 0),
          TimeOfDay::hms(18, 30));
  // Shared snapshot components: only the panel power varies per case,
  // so the graph, shading, traffic, and vehicles are built once and
  // shared by every per-case World.
  const auto graph = std::make_shared<const roadnet::RoadGraph>(city.graph());
  const auto profile = std::make_shared<const shadow::ShadingProfile>(shading);
  const auto traffic = std::make_shared<const roadnet::UrbanTraffic>(
      roadnet::UrbanTraffic::Options{});
  const auto lv = std::shared_ptr<const ev::ConsumptionModel>(
      ev::make_lv_prototype());
  const auto tesla = std::shared_ptr<const ev::ConsumptionModel>(
      ev::make_tesla_model_s());
  constexpr std::size_t kLv = 0;
  constexpr std::size_t kTesla = 1;
  const roadnet::NodeId home = city.node_at(1, 2);
  const roadnet::NodeId work = city.node_at(8, 8);

  // The paper's three cases: solar input depends on the time of day.
  const Case cases[] = {
      {"10:00 (C=200W)", TimeOfDay::hms(10, 0), Watts{200.0}},
      {"12:00 (C=210W)", TimeOfDay::hms(12, 0), Watts{210.0}},
      {"16:00 (C=160W)", TimeOfDay::hms(16, 0), Watts{160.0}},
  };

  std::printf("Commute home -> work across the day\n");
  std::printf("===================================\n");
  for (const Case& c : cases) {
    std::printf("%s\n", c.label);
    core::WorldInit init;
    init.graph = graph;
    init.shading = profile;
    init.traffic = traffic;
    init.panel_power = solar::constant_panel_power(c.panel_power);
    init.vehicles = {lv, tesla};
    const core::WorldPtr world = core::World::create(std::move(init));
    plan_and_print(world, kLv, home, work, c.departure);
    plan_and_print(world, kTesla, home, work, c.departure);
  }
  std::printf(
      "\nNote how the heavy Tesla passes the Eq. 5 test less often, and\n"
      "how the weak 16:00 sun leaves fewer better-solar candidates —\n"
      "both observations from the paper's Tables R-I..R-III.\n");
  return 0;
}
