// Parking advisor: drive to work with SunChase, then park where the
// panel earns the most over the day. Combines the route planner with
// the parking-spot ranking and exports everything as GeoJSON for a
// map viewer.
//
// Build & run:  ./build/examples/parking_advisor
#include <cstdio>
#include <fstream>
#include <memory>
#include <utility>

#include "sunchase/core/planner.h"
#include "sunchase/core/world.h"
#include "sunchase/exporter/geojson.h"
#include "sunchase/roadnet/citygen.h"
#include "sunchase/roadnet/traffic.h"
#include "sunchase/shadow/scenegen.h"
#include "sunchase/solar/parking.h"

using namespace sunchase;

int main() {
  roadnet::GridCityOptions city_options;
  city_options.rows = 10;
  city_options.cols = 10;
  const roadnet::GridCity city(city_options);
  const geo::LocalProjection projection(city_options.origin);
  const shadow::Scene scene =
      generate_scene(city.graph(), projection, shadow::SceneGenOptions{});
  const shadow::ShadingProfile shading =
      shadow::ShadingProfile::compute_exact(
          city.graph(), scene, geo::DayOfYear{196}, TimeOfDay::hms(8, 0),
          TimeOfDay::hms(18, 30));
  const auto panel = solar::paper_daytime_panel_power();
  core::WorldInit init;
  init.graph = std::make_shared<const roadnet::RoadGraph>(city.graph());
  init.shading = std::make_shared<const shadow::ShadingProfile>(shading);
  init.traffic = std::make_shared<const roadnet::UrbanTraffic>(
      roadnet::UrbanTraffic::Options{});
  init.panel_power = panel;
  init.vehicles.push_back(std::shared_ptr<const ev::ConsumptionModel>(
      ev::make_lv_prototype()));
  const core::WorldPtr world = core::World::create(std::move(init));

  const roadnet::NodeId home = city.node_at(0, 1);
  const roadnet::NodeId office = city.node_at(7, 8);

  // 1. Route the morning commute.
  const core::SunChasePlanner planner(world);
  const core::PlanResult plan =
      planner.plan(home, office, TimeOfDay::hms(8, 45));
  const auto& route = plan.recommended();
  const TimeOfDay arrival =
      TimeOfDay::hms(8, 45).advanced_by(route.metrics.travel_time);
  std::printf("Commute: %.0f m, %.1f s, harvested %.2f Wh en route\n",
              route.metrics.total_length.value(),
              route.metrics.travel_time.value(),
              route.metrics.energy_in.value());

  // 2. Rank curbside spots near the office for the parked day.
  const TimeOfDay leave = TimeOfDay::hms(17, 15);
  const auto spots = solar::rank_parking_spots(
      city.graph(), shading, panel, office, arrival, leave);
  std::printf("\nTop parking spots near the office (%s - %s):\n",
              arrival.to_string().c_str(), leave.to_string().c_str());
  std::printf("%-6s %12s %12s %10s\n", "spot", "harvest(Wh)", "shade(avg)",
              "walk(m)");
  for (std::size_t i = 0; i < std::min<std::size_t>(spots.size(), 5); ++i) {
    std::printf("edge%-2u %12.1f %11.0f%% %10.0f\n", spots[i].edge,
                spots[i].expected_harvest.value(),
                spots[i].mean_shaded_fraction * 100.0,
                spots[i].walk_distance.value());
  }
  if (!spots.empty()) {
    std::printf(
        "\nBest vs worst spot: %.1f Wh vs %.1f Wh — the parked day dwarfs "
        "the %.2f Wh\nharvested while driving.\n",
        spots.front().expected_harvest.value(),
        spots.back().expected_harvest.value(),
        route.metrics.energy_in.value());
  }

  // 3. GeoJSON for a map viewer.
  std::ofstream("parking_plan.geojson")
      << exporter::geojson_plan(city.graph(), plan);
  std::ofstream("parking_scene.geojson") << exporter::geojson_scene(scene);
  std::printf(
      "\nWrote parking_plan.geojson and parking_scene.geojson (drop them\n"
      "onto geojson.io to inspect the routes and the shadow casters).\n");
  return 0;
}
