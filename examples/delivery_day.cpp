// Delivery day: the paper's one-day driving scenario (food/mail
// delivery, taxi) as an application. A courier runs back-to-back trips
// from 9:00 to 17:00; every trip uses the SunChase-recommended route,
// the battery integrates consumption and harvest, and the report shows
// the extra solar energy banked versus always driving the fastest way.
//
// Build & run:  ./build/examples/delivery_day
#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "sunchase/core/planner.h"
#include "sunchase/core/world.h"
#include "sunchase/ev/battery.h"
#include "sunchase/roadnet/citygen.h"
#include "sunchase/roadnet/traffic.h"
#include "sunchase/shadow/scenegen.h"
#include "sunchase/solar/input_map.h"

using namespace sunchase;

int main() {
  roadnet::GridCityOptions city_options;
  city_options.rows = 12;
  city_options.cols = 12;
  const roadnet::GridCity city(city_options);
  const geo::LocalProjection projection(city_options.origin);
  const shadow::Scene scene =
      generate_scene(city.graph(), projection, shadow::SceneGenOptions{});
  core::WorldInit init;
  init.graph = std::make_shared<const roadnet::RoadGraph>(city.graph());
  init.shading = std::make_shared<const shadow::ShadingProfile>(
      shadow::ShadingProfile::compute_exact(
          *init.graph, scene, geo::DayOfYear{196}, TimeOfDay::hms(8, 0),
          TimeOfDay::hms(18, 30)));
  init.traffic = std::make_shared<const roadnet::UrbanTraffic>(
      roadnet::UrbanTraffic::Options{});
  // Panel power follows the paper's one-day profile (160 W at the
  // edges of the day, 210 W at the 13:00 peak).
  init.panel_power = solar::paper_daytime_panel_power();
  init.vehicles.push_back(std::shared_ptr<const ev::ConsumptionModel>(
      ev::make_lv_prototype()));
  const core::WorldPtr world = core::World::create(std::move(init));
  const core::SunChasePlanner planner(world);

  // A pseudo-random but fixed delivery manifest across downtown.
  Rng rng(20170601);
  std::vector<std::pair<roadnet::NodeId, roadnet::NodeId>> manifest;
  roadnet::NodeId at = city.node_at(5, 5);  // depot
  for (int i = 0; i < 16; ++i) {
    const roadnet::NodeId next = city.node_at(
        static_cast<int>(rng.uniform_int(0, city_options.rows - 1)),
        static_cast<int>(rng.uniform_int(0, city_options.cols - 1)));
    if (next == at) continue;
    manifest.emplace_back(at, next);
    at = next;
  }

  ev::Battery battery(WattHours{1500.0}, WattHours{900.0});
  TimeOfDay clock = TimeOfDay::hms(9, 0);
  double banked_extra = 0.0;
  double extra_seconds = 0.0;

  std::printf("%-5s %-9s %6s %7s %7s %8s %9s %9s\n", "trip", "depart",
              "TL(m)", "EI(Wh)", "EC(Wh)", "+E(Wh)", "+t(s)", "SOC(%)");
  int trip_no = 1;
  for (const auto& [from, to] : manifest) {
    if (clock > TimeOfDay::hms(17, 0)) break;
    const core::PlanResult plan = planner.plan(from, to, clock);
    const auto& chosen = plan.recommended();
    battery.discharge_by(chosen.metrics.energy_out);
    battery.charge_by(chosen.metrics.energy_in);
    if (!chosen.is_shortest_time) {
      banked_extra += chosen.extra_energy.value();
      extra_seconds += chosen.extra_time.value();
    }
    std::printf("%-5d %-9s %6.0f %7.2f %7.2f %8.2f %9.1f %9.1f\n", trip_no++,
                clock.to_string().c_str(),
                chosen.metrics.total_length.value(),
                chosen.metrics.energy_in.value(),
                chosen.metrics.energy_out.value(),
                chosen.is_shortest_time ? 0.0 : chosen.extra_energy.value(),
                chosen.is_shortest_time ? 0.0 : chosen.extra_time.value(),
                battery.state_of_charge() * 100.0);
    // Drive, then 20 minutes of handling before the next pickup.
    clock = clock.advanced_by(chosen.metrics.travel_time)
                .advanced_by(minutes(20.0));
  }

  std::printf(
      "\nDay summary: %.2f Wh of extra solar banked for %.0f s of extra "
      "driving;\nfinal state of charge %.1f%%.\n",
      banked_extra, extra_seconds, battery.state_of_charge() * 100.0);
  return 0;
}
