// sunchase_cli — a small command-line front end over the public API:
// generate (or load) a city, plan a trip, print the candidate table
// and optionally dump GeoJSON.
//
//   sunchase_cli [options]
//     --rows N --cols N        city size (default 10x10)
//     --seed S                 city seed (default 7)
//     --from R,C --to R,C      lattice coordinates of the trip
//     --time HH:MM             departure (default 10:00)
//     --ev lv|tesla            vehicle model (default lv)
//     --panel W                panel power C in watts (default 200)
//     --time-budget F          max_time_factor (default 1.5)
//     --epsilon F              epsilon-dominance merge factor (default 0
//                              — exact Pareto search)
//     --no-prune               disable reverse-Dijkstra lower-bound
//                              pruning (exact either way; for A/B runs)
//     --pricing exact|slot     edge pricing mode (default exact; batch
//                              defaults to slot — shared cost cache)
//     --geojson FILE           write the plan as GeoJSON
//     --graph-out FILE         write the road graph (text format)
//     --scene-out FILE         write the scene (text format)
//     --metrics-out FILE       write a JSON metrics run report
//     --trace-out FILE         write a Chrome trace_event JSON
//     --trace                  record spans without a file (serve mode:
//                              export live via GET /debug/trace)
//     --profile                run the sampling span-stack profiler
//                              (serve mode: export live via
//                              GET /debug/profile)
//     --profile-interval-ms N  sampling period (default 10)
//     --profile-out FILE       write collapsed stacks (flamegraph
//                              format) at exit; implies --profile
//     --log-level LEVEL        debug|info|warning|error|off
//     --query-log FILE         append one JSONL record per query
//     --slow-query-ms N        warn-log queries slower than N ms
//
//   sunchase_cli batch --queries FILE [--workers N] [world options]
//     runs every query of FILE (one "FROM_R,FROM_C TO_R,TO_C HH:MM"
//     per line, '#' comments) through the parallel BatchPlanner
//     (search + route selection) and prints one result row per query
//     plus batch throughput and per-query latency percentiles.
//
//   sunchase_cli serve [--port N] [--host ADDR] [--http-workers N]
//       [--queue-capacity N] [--deadline-s F] [--read-timeout-s F]
//       [--port-file FILE] [--access-log FILE] [--test-hooks]
//       [--world-dir DIR] [world options]
//     embeds the engine behind an HTTP/1.1 server (POST /plan, POST
//     /batch, GET /explain/{id}, GET /metrics, GET /healthz, POST
//     /world/publish, GET /debug/{trace,queries,worlds}) over a
//     WorldStore, serving the generated city. With --trace the live
//     span ring is exported via GET /debug/trace; with --query-log the
//     last records are also visible via GET /debug/queries.
//     --port 0 binds an ephemeral port; --port-file writes the bound
//     port for scripting. SIGINT/SIGTERM drain gracefully: in-flight
//     and queued requests finish before exit.
//     --world-dir DIR makes the store persistent: boot restores the
//     newest intact snapshot from DIR (skipping torn/corrupt tails)
//     instead of rebuilding from scratch, and every publish journals
//     the new version durably before it becomes visible.
//
//   sunchase_cli snapshot save FILE [world options]
//   sunchase_cli snapshot load FILE
//   sunchase_cli snapshot inspect FILE
//     save builds the city world and writes it as a versioned,
//     checksummed binary snapshot; load mmaps one back (zero-copy) and
//     prints a summary; inspect dumps the section table with per-
//     section checksum verdicts (exit 5 when any section is corrupt).
//
//   sunchase_cli explain [--graph FILE] [--scene FILE]
//       [--from-node N] [--to-node N] [--time HH:MM] [--ev lv|tesla]
//       [--panel W] [--time-budget F] [--ledger-out FILE]
//       [--ledger-csv FILE] [--geojson FILE]
//     plans on a graph/scene pair loaded from disk (default
//     data/demo_downtown.*), prints the recommended route's per-edge
//     energy ledger, verifies the conservation invariant (ledger sums
//     == search criteria; exit 4 on violation) and optionally writes
//     the ledger as JSON/CSV plus a per-edge annotated GeoJSON.
//
// Examples:
//   sunchase_cli --rows 12 --cols 12 --from 1,1 --to 9,10 --time 10:00
//   sunchase_cli batch --queries fleet.txt --workers 4
//       --metrics-out m.json --trace-out t.json --query-log q.jsonl
//   sunchase_cli explain --from-node 0 --to-node 63 --time 09:30
//       --ledger-out ledger.json --geojson explain.geojson
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "sunchase/common/error.h"
#include "sunchase/common/logging.h"
#include "sunchase/core/batch_planner.h"
#include "sunchase/core/explain.h"
#include "sunchase/core/world.h"
#include "sunchase/obs/metrics.h"
#include "sunchase/obs/profiler.h"
#include "sunchase/obs/query_log.h"
#include "sunchase/obs/trace.h"
#include "sunchase/core/planner.h"
#include "sunchase/core/world_codec.h"
#include "sunchase/core/world_store.h"
#include "sunchase/exporter/geojson.h"
#include "sunchase/serve/server.h"
#include "sunchase/roadnet/citygen.h"
#include "sunchase/roadnet/io.h"
#include "sunchase/roadnet/traffic.h"
#include "sunchase/shadow/scene_io.h"
#include "sunchase/shadow/scenegen.h"
#include "sunchase/solar/input_map.h"

using namespace sunchase;

namespace {

struct CliOptions {
  int rows = 10;
  int cols = 10;
  std::uint64_t seed = 7;
  int from_row = 1, from_col = 1;
  int to_row = 8, to_col = 8;
  std::string time = "10:00";
  std::string ev = "lv";
  double panel_w = 200.0;
  double time_budget = 1.5;
  double epsilon = 0.0;  ///< epsilon-dominance merge (0: exact search)
  bool prune = true;     ///< lower-bound budget pruning (--no-prune off)
  /// "" resolves after parsing: "slot" for batch (the shared cache is
  /// what makes fleets fast), "exact" everywhere else.
  std::string pricing;
  std::string geojson_path;
  std::string graph_out;
  std::string scene_out;
  // observability
  std::string metrics_out;
  std::string trace_out;
  bool trace = false;  ///< record spans even without --trace-out
  bool profile = false;          ///< run the sampling profiler
  int profile_interval_ms = 10;  ///< sampling period
  std::string profile_out;       ///< collapsed-stack file; implies profile
  std::string log_level;
  std::string query_log_path;
  double slow_query_ms = 0.0;  ///< 0: slow-query warnings off
  // batch mode
  bool batch = false;
  std::string queries_path;
  std::size_t workers = 0;  ///< 0: one per hardware thread
  // serve mode
  bool serve = false;
  std::string host = "127.0.0.1";
  int port = 8080;  ///< 0: ephemeral (read it back via --port-file)
  std::size_t http_workers = 4;
  std::size_t queue_capacity = 64;
  double deadline_s = 10.0;
  double read_timeout_s = 5.0;
  std::string port_file;
  std::string access_log;
  bool test_hooks = false;
  std::string world_dir;  ///< journal directory ("": in-memory only)
  // snapshot mode
  std::string snapshot_action;  ///< save|load|inspect ("": not snapshot)
  std::string snapshot_file;
  // explain mode
  bool explain = false;
  std::string graph_path = "data/demo_downtown.graph";
  std::string scene_path = "data/demo_downtown.scene";
  int from_node = 0;
  int to_node = -1;  ///< -1: last node of the loaded graph
  std::string ledger_out;
  std::string ledger_csv;
};

bool parse_pair(const char* text, int& a, int& b) {
  return std::sscanf(text, "%d,%d", &a, &b) == 2;
}

/// The --pricing flag (after defaulting) as a PricingMode; false on an
/// unknown spelling.
bool parse_pricing(const std::string& text, core::PricingMode& mode) {
  if (text == "exact") {
    mode = core::PricingMode::Exact;
    return true;
  }
  if (text == "slot") {
    mode = core::PricingMode::SlotQuantized;
    return true;
  }
  return false;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--rows N] [--cols N] [--seed S] [--from R,C] "
               "[--to R,C]\n"
               "          [--time HH:MM] [--ev lv|tesla] [--panel W]\n"
               "          [--time-budget F] [--epsilon F] [--no-prune] "
               "[--pricing exact|slot] "
               "[--geojson FILE] "
               "[--graph-out FILE] [--scene-out FILE]\n"
               "       %s batch --queries FILE [--workers N] "
               "[world options as above]\n"
               "         query file: one \"FROM_R,FROM_C TO_R,TO_C HH:MM\" "
               "per line, '#' comments\n"
               "       %s serve [--port N] [--host ADDR] "
               "[--http-workers N] [--queue-capacity N]\n"
               "         [--deadline-s F] [--read-timeout-s F] "
               "[--port-file FILE]\n"
               "         [--access-log FILE] [--test-hooks] "
               "[world options as above]\n"
               "         [--world-dir DIR (persistent worlds: restore on "
               "boot, journal publishes)]\n"
               "       %s snapshot save|load|inspect FILE "
               "[world options for save]\n"
               "       %s explain [--graph FILE] [--scene FILE] "
               "[--from-node N] [--to-node N]\n"
               "         [--time HH:MM] [--ev lv|tesla] [--panel W] "
               "[--time-budget F]\n"
               "         [--ledger-out FILE] [--ledger-csv FILE] "
               "[--geojson FILE]\n"
               "       observability (all modes): [--metrics-out FILE] "
               "[--trace-out FILE] [--trace]\n"
               "         [--profile] [--profile-interval-ms N] "
               "[--profile-out FILE]\n"
               "         [--log-level debug|info|warning|error|off]\n"
               "         [--query-log FILE] [--slow-query-ms N]\n",
               argv0, argv0, argv0, argv0, argv0);
  return 2;
}

/// Parses the batch query file against the city lattice. Throws IoError
/// on unreadable files or malformed lines.
std::vector<core::BatchQuery> read_queries(const std::string& path,
                                           const roadnet::GridCity& city) {
  std::ifstream in(path);
  if (!in) throw IoError("batch: cannot open query file " + path);
  std::vector<core::BatchQuery> queries;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    int fr, fc, tr, tc, hh, mm;
    if (std::sscanf(line.c_str(), "%d,%d %d,%d %d:%d", &fr, &fc, &tr, &tc,
                    &hh, &mm) != 6)
      throw IoError("batch: malformed query at " + path + ":" +
                    std::to_string(lineno) + ": " + line);
    queries.push_back({city.node_at(fr, fc), city.node_at(tr, tc),
                       TimeOfDay::hms(hh, mm)});
  }
  return queries;
}

/// --query-log: opens the JSONL sink and applies --slow-query-ms.
/// Null when the flag is absent; keep it alive for the planning run.
std::unique_ptr<obs::QueryLog> open_query_log(const CliOptions& opt) {
  if (opt.query_log_path.empty()) return nullptr;
  auto log = std::make_unique<obs::QueryLog>(opt.query_log_path);
  log->set_slow_threshold(Seconds{opt.slow_query_ms / 1e3});
  return log;
}

/// Bundles a loaded/generated graph, its shading profile, traffic, the
/// panel-power setting, and the selected vehicle into the immutable
/// snapshot every planning API consumes.
core::WorldPtr make_world(const roadnet::RoadGraph& graph,
                          const shadow::Scene& scene,
                          const CliOptions& opt) {
  core::WorldInit init;
  init.graph = std::make_shared<const roadnet::RoadGraph>(graph);
  init.shading = std::make_shared<const shadow::ShadingProfile>(
      shadow::ShadingProfile::compute_exact(
          *init.graph, scene, geo::DayOfYear{196}, TimeOfDay::hms(8, 0),
          TimeOfDay::hms(18, 30)));
  init.traffic = std::make_shared<const roadnet::UrbanTraffic>(
      roadnet::UrbanTraffic::Options{});
  init.panel_power = solar::constant_panel_power(Watts{opt.panel_w});
  init.vehicles.push_back(std::shared_ptr<const ev::ConsumptionModel>(
      opt.ev == "tesla" ? ev::make_tesla_model_s()
                        : ev::make_lv_prototype()));
  return core::World::create(std::move(init));
}

/// City world per the lattice options — the build path shared by serve
/// (when nothing is restored from --world-dir) and `snapshot save`.
core::WorldPtr build_city_world(const CliOptions& opt) {
  roadnet::GridCityOptions city_options;
  city_options.rows = opt.rows;
  city_options.cols = opt.cols;
  city_options.seed = opt.seed;
  const roadnet::GridCity city(city_options);
  const geo::LocalProjection projection(city_options.origin);
  const shadow::Scene scene =
      generate_scene(city.graph(), projection, shadow::SceneGenOptions{});
  return make_world(city.graph(), scene, opt);
}

/// snapshot mode: save a generated city world to a binary snapshot
/// file, mmap one back (zero-copy) and summarize it, or dump a file's
/// section table with per-section checksum verdicts.
int run_snapshot(const CliOptions& opt) {
  if (opt.snapshot_action == "inspect") {
    const core::SnapshotInfo info =
        core::inspect_world_snapshot(opt.snapshot_file);
    std::printf("%s: world v%llu, %llu bytes, %zu sections\n",
                info.path.c_str(),
                static_cast<unsigned long long>(info.world_version),
                static_cast<unsigned long long>(info.file_bytes),
                info.sections.size());
    std::printf("%-18s %6s %10s %12s %9s %s\n", "section", "aux", "offset",
                "bytes", "crc32", "ok");
    for (const core::SnapshotSectionInfo& s : info.sections)
      std::printf("%-18s %6u %10llu %12llu  %08x %s\n", s.name.c_str(),
                  s.aux, static_cast<unsigned long long>(s.offset),
                  static_cast<unsigned long long>(s.bytes), s.crc,
                  s.crc_ok ? "ok" : "CORRUPT");
    if (!info.intact) {
      std::fprintf(stderr, "error: %s has corrupt sections\n",
                   info.path.c_str());
      return 5;
    }
    return 0;
  }
  if (opt.snapshot_action == "load") {
    const core::WorldPtr world = core::load_world_snapshot(opt.snapshot_file);
    std::printf("%s: world v%llu — %zu nodes, %zu edges, %zu vehicles, "
                "%zu warm cache slots\n",
                opt.snapshot_file.c_str(),
                static_cast<unsigned long long>(world->version()),
                world->graph().node_count(), world->graph().edge_count(),
                world->vehicle_count(), world->slot_cache().filled_slots());
    return 0;
  }
  const core::WorldPtr world = build_city_world(opt);
  core::save_world_snapshot(*world, opt.snapshot_file);
  const core::SnapshotInfo info =
      core::inspect_world_snapshot(opt.snapshot_file);
  std::printf("wrote %s: world v%llu, %llu bytes, %zu sections\n",
              opt.snapshot_file.c_str(),
              static_cast<unsigned long long>(info.world_version),
              static_cast<unsigned long long>(info.file_bytes),
              info.sections.size());
  return 0;
}

int run_batch(const CliOptions& opt, core::PricingMode pricing,
              const core::WorldPtr& world, const roadnet::GridCity& city) {
  const auto queries = read_queries(opt.queries_path, city);
  const std::unique_ptr<obs::QueryLog> query_log = open_query_log(opt);
  core::BatchPlannerOptions batch_options;
  batch_options.workers = opt.workers;
  batch_options.mlc.max_time_factor = opt.time_budget;
  batch_options.mlc.epsilon = opt.epsilon;
  batch_options.mlc.prune_with_lower_bounds = opt.prune;
  batch_options.mlc.pricing = pricing;
  // Run the full pipeline (search + clustering + selection) per query:
  // the candidate list is what a route server would hand the fleet.
  batch_options.run_selection = true;
  if (query_log) batch_options.query_log = query_log.get();
  const core::BatchPlanner planner(world, batch_options);
  const core::BatchResult batch = planner.plan_all(queries);

  std::printf("%-4s %-6s %-6s %-8s %8s %6s %8s %8s\n", "#", "from", "to",
              "depart", "routes", "cands", "TT (s)", "EC (Wh)");
  for (std::size_t i = 0; i < batch.queries.size(); ++i) {
    const auto& q = batch.queries[i];
    if (!q.ok()) {
      std::printf("%-4zu %-6u %-6u %-8s error: %s\n", i, queries[i].origin,
                  queries[i].destination,
                  queries[i].departure.to_string().c_str(), q.error.c_str());
      continue;
    }
    const auto& best = q.result->routes.front();
    std::printf("%-4zu %-6u %-6u %-8s %8zu %6zu %8.1f %8.2f\n", i,
                queries[i].origin, queries[i].destination,
                queries[i].departure.to_string().c_str(),
                q.result->routes.size(),
                q.selection ? q.selection->candidates.size() : 0,
                best.cost.travel_time.value(), best.cost.energy_out.value());
  }
  std::printf("\n%zu queries (%zu ok, %zu failed) on %zu workers "
              "(%s pricing): %.3f s wall, %.2f queries/sec\n",
              batch.stats.query_count, batch.stats.succeeded,
              batch.stats.failed, batch.stats.workers,
              core::pricing_name(pricing), batch.stats.wall_seconds,
              batch.stats.queries_per_second);
  std::printf("per-query latency: p50 %.1f ms, p95 %.1f ms, max %.1f ms\n",
              batch.stats.latency.quantile(0.50) * 1e3,
              batch.stats.latency.quantile(0.95) * 1e3,
              batch.stats.latency.max * 1e3);
  if (query_log)
    std::printf("query log: %llu records (%llu slow) -> %s\n",
                static_cast<unsigned long long>(query_log->record_count()),
                static_cast<unsigned long long>(query_log->slow_count()),
                opt.query_log_path.c_str());
  return batch.stats.failed == 0 ? 0 : 3;
}

/// The running server, for the signal handlers. request_stop() is
/// async-signal-safe (one atomic store), so the handler body is legal.
std::atomic<serve::HttpServer*> g_server{nullptr};

extern "C" void handle_stop_signal(int) {
  if (serve::HttpServer* server = g_server.load()) server->request_stop();
}

/// serve mode: WorldStore + RouteService + HttpServer over the
/// generated city, blocking until SIGINT/SIGTERM drains the server.
int run_serve(const CliOptions& opt, core::PricingMode pricing,
              core::WorldPtr world) {
  core::WorldStore store(std::move(world));
  if (!opt.world_dir.empty()) {
    core::JournalOptions journal;
    journal.directory = opt.world_dir;
    store.enable_journal(std::move(journal));
  }
  const std::unique_ptr<obs::QueryLog> query_log = open_query_log(opt);

  serve::RouteServiceOptions service_options;
  service_options.mlc.max_time_factor = opt.time_budget;
  service_options.mlc.epsilon = opt.epsilon;
  service_options.mlc.prune_with_lower_bounds = opt.prune;
  service_options.mlc.pricing = pricing;
  service_options.query_log = query_log.get();
  serve::RouteService service(store, service_options);

  serve::HttpServerOptions server_options;
  server_options.host = opt.host;
  server_options.port = static_cast<std::uint16_t>(opt.port);
  server_options.workers = opt.http_workers;
  server_options.queue_capacity = opt.queue_capacity;
  server_options.deadline_seconds = opt.deadline_s;
  server_options.read_timeout_seconds = opt.read_timeout_s;
  server_options.access_log_path = opt.access_log;
  server_options.test_hooks = opt.test_hooks;
  serve::HttpServer server(service, server_options);
  server.start();

  if (!opt.port_file.empty()) {
    std::ofstream out(opt.port_file);
    if (!out) throw IoError("cannot write port file " + opt.port_file);
    out << server.port() << '\n';
  }
  std::printf("serving %dx%d city (world v%llu, %s pricing) on %s:%u — "
              "SIGTERM drains\n",
              opt.rows, opt.cols,
              static_cast<unsigned long long>(store.version()),
              core::pricing_name(pricing), opt.host.c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  g_server.store(&server);
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  server.join();
  g_server.store(nullptr);

  std::printf("drained: %llu queries answered\n",
              static_cast<unsigned long long>(service.ledger().recorded()));
  return 0;
}

/// explain mode: plan on a graph/scene pair loaded from disk, then walk
/// the recommended route edge by edge and check the ledger sums against
/// the search's criteria vector.
int run_explain(const CliOptions& opt, core::PricingMode pricing) {
  const roadnet::RoadGraph loaded = roadnet::read_graph_file(opt.graph_path);
  const shadow::Scene scene = shadow::read_scene_file(opt.scene_path);
  const core::WorldPtr world = make_world(loaded, scene, opt);
  const roadnet::RoadGraph& graph = world->graph();

  const auto origin = static_cast<roadnet::NodeId>(opt.from_node);
  const auto destination = static_cast<roadnet::NodeId>(
      opt.to_node >= 0 ? opt.to_node
                       : static_cast<int>(graph.node_count()) - 1);
  const TimeOfDay departure = TimeOfDay::parse(opt.time);

  core::PlannerOptions planner_options;
  planner_options.mlc.max_time_factor = opt.time_budget;
  planner_options.mlc.epsilon = opt.epsilon;
  planner_options.mlc.prune_with_lower_bounds = opt.prune;
  planner_options.mlc.pricing = pricing;
  const core::SunChasePlanner planner(world, planner_options);
  const core::PlanResult plan = planner.plan(origin, destination, departure);
  const core::CandidateRoute& best = plan.recommended();

  // The ledger replays whichever pricing mode produced the route, so
  // the conservation check below stays bit-exact in both modes.
  const core::RouteExplainer explainer(world);
  const core::RouteLedger ledger = explainer.explain(
      best.route, departure, planner_options.mlc.time_dependent, pricing);

  std::printf("%s %u -> %u, departing %s (%s route, %zu edges)\n",
              opt.graph_path.c_str(), origin, destination,
              departure.to_string().c_str(),
              best.is_shortest_time ? "shortest-time" : "better-solar",
              ledger.steps.size());
  std::printf("%-4s %-5s %-8s %7s %6s %6s %8s %8s %8s\n", "#", "edge",
              "entry", "len(m)", "km/h", "shade", "TT (s)", "EI (Wh)",
              "EC (Wh)");
  for (std::size_t i = 0; i < ledger.steps.size(); ++i) {
    const core::ExplainStep& s = ledger.steps[i];
    std::printf("%-4zu %-5u %-8s %7.1f %6.1f %6.2f %8.2f %8.3f %8.3f\n", i,
                s.edge, s.entry.to_string().c_str(), s.length.value(),
                to_kmh(s.speed), s.shade_ratio, s.travel_time.value(),
                s.energy_in.value(), s.energy_out.value());
  }
  std::printf("totals: %.0f m, %.1f s travel, %.1f s solar, %.3f Wh in, "
              "%.3f Wh out\n",
              ledger.totals.total_length.value(),
              ledger.totals.travel_time.value(),
              ledger.totals.solar_time.value(),
              ledger.totals.energy_in.value(),
              ledger.totals.energy_out.value());

  const double deviation = ledger.max_deviation(best.route.cost);
  std::printf("conservation: ledger sums vs search criteria deviate by "
              "%.3g (%s)\n",
              deviation, deviation <= 1e-6 ? "ok" : "VIOLATED");

  if (!opt.ledger_out.empty()) {
    std::ofstream out(opt.ledger_out);
    if (!out) throw IoError("cannot write ledger " + opt.ledger_out);
    out << ledger.to_json();
    std::printf("wrote %s\n", opt.ledger_out.c_str());
  }
  if (!opt.ledger_csv.empty()) {
    std::ofstream out(opt.ledger_csv);
    if (!out) throw IoError("cannot write ledger CSV " + opt.ledger_csv);
    out << ledger.to_csv();
    std::printf("wrote %s\n", opt.ledger_csv.c_str());
  }
  if (!opt.geojson_path.empty()) {
    std::ofstream out(opt.geojson_path);
    if (!out) throw IoError("cannot write GeoJSON " + opt.geojson_path);
    out << exporter::geojson_explained_route(graph, ledger);
    std::printf("wrote %s\n", opt.geojson_path.c_str());
  }
  return ledger.conserves(best.route.cost) ? 0 : 4;
}

/// --metrics-out: a structured run report — the run's identity plus a
/// full registry snapshot.
void write_metrics_report(const std::string& path, const char* mode) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot write metrics report " + path);
  out << "{\n  \"tool\": \"sunchase_cli\",\n  \"mode\": \"" << mode
      << "\",\n  \"metrics\":\n"
      << obs::Registry::global().snapshot().to_json(2) << "\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

void write_trace(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot write trace " + path);
  out << obs::Tracer::global().to_chrome_json();
  std::printf("wrote %s (%zu spans; open in chrome://tracing or "
              "https://ui.perfetto.dev)\n",
              path.c_str(), obs::Tracer::global().span_count());
}

/// --profile summary: the hottest folded stacks, like `perf report`
/// for spans. Printed after batch runs so the paper's "where do the
/// cycles go" question is answered from the terminal.
void print_profile_summary() {
  obs::Profiler& profiler = obs::Profiler::global();
  const std::vector<obs::ProfileEntry> top = profiler.entries(10);
  if (top.empty()) {
    std::printf("profile: no samples landed in a span (run too short for "
                "the %d ms interval?)\n",
                profiler.interval_ms());
    return;
  }
  std::printf("\nprofile: top stacks (%llu samples, %llu idle, %d ms "
              "interval)\n",
              static_cast<unsigned long long>(profiler.samples_total()),
              static_cast<unsigned long long>(profiler.samples_idle()),
              profiler.interval_ms());
  for (const obs::ProfileEntry& entry : top)
    std::printf("  %8llu  %s\n",
                static_cast<unsigned long long>(entry.count),
                entry.stack.c_str());
}

/// --profile-out: collapsed-stack text, flamegraph.pl-ready.
void write_profile(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot write profile " + path);
  out << obs::Profiler::global().collapsed();
  std::printf("wrote %s (pipe into flamegraph.pl or load in "
              "speedscope)\n",
              path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  int first = 1;
  if (argc > 1 && std::strcmp(argv[1], "batch") == 0) {
    opt.batch = true;
    first = 2;
  } else if (argc > 1 && std::strcmp(argv[1], "explain") == 0) {
    opt.explain = true;
    first = 2;
  } else if (argc > 1 && std::strcmp(argv[1], "serve") == 0) {
    opt.serve = true;
    first = 2;
  } else if (argc > 1 && std::strcmp(argv[1], "snapshot") == 0) {
    if (argc < 4) return usage(argv[0]);
    opt.snapshot_action = argv[2];
    opt.snapshot_file = argv[3];
    if (opt.snapshot_action != "save" && opt.snapshot_action != "load" &&
        opt.snapshot_action != "inspect")
      return usage(argv[0]);
    first = 4;
  }
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--rows" && (v = next()))
      opt.rows = std::atoi(v);
    else if (arg == "--cols" && (v = next()))
      opt.cols = std::atoi(v);
    else if (arg == "--seed" && (v = next()))
      opt.seed = std::strtoull(v, nullptr, 10);
    else if (arg == "--from" && (v = next())) {
      if (!parse_pair(v, opt.from_row, opt.from_col)) return usage(argv[0]);
    } else if (arg == "--to" && (v = next())) {
      if (!parse_pair(v, opt.to_row, opt.to_col)) return usage(argv[0]);
    } else if (arg == "--time" && (v = next()))
      opt.time = v;
    else if (arg == "--ev" && (v = next()))
      opt.ev = v;
    else if (arg == "--panel" && (v = next()))
      opt.panel_w = std::atof(v);
    else if (arg == "--time-budget" && (v = next()))
      opt.time_budget = std::atof(v);
    else if (arg == "--epsilon" && (v = next()))
      opt.epsilon = std::atof(v);
    else if (arg == "--no-prune")
      opt.prune = false;
    else if (arg == "--pricing" && (v = next()))
      opt.pricing = v;
    else if (arg == "--geojson" && (v = next()))
      opt.geojson_path = v;
    else if (arg == "--graph-out" && (v = next()))
      opt.graph_out = v;
    else if (arg == "--scene-out" && (v = next()))
      opt.scene_out = v;
    else if (arg == "--metrics-out" && (v = next()))
      opt.metrics_out = v;
    else if (arg == "--trace-out" && (v = next()))
      opt.trace_out = v;
    else if (arg == "--trace")
      opt.trace = true;
    else if (arg == "--profile")
      opt.profile = true;
    else if (arg == "--profile-interval-ms" && (v = next()))
      opt.profile_interval_ms = std::atoi(v);
    else if (arg == "--profile-out" && (v = next()))
      opt.profile_out = v;
    else if (arg == "--log-level" && (v = next()))
      opt.log_level = v;
    else if (arg == "--queries" && (v = next()))
      opt.queries_path = v;
    else if (arg == "--workers" && (v = next()))
      opt.workers = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    else if (arg == "--query-log" && (v = next()))
      opt.query_log_path = v;
    else if (arg == "--slow-query-ms" && (v = next()))
      opt.slow_query_ms = std::atof(v);
    else if (arg == "--graph" && (v = next()))
      opt.graph_path = v;
    else if (arg == "--scene" && (v = next()))
      opt.scene_path = v;
    else if (arg == "--from-node" && (v = next()))
      opt.from_node = std::atoi(v);
    else if (arg == "--to-node" && (v = next()))
      opt.to_node = std::atoi(v);
    else if (arg == "--ledger-out" && (v = next()))
      opt.ledger_out = v;
    else if (arg == "--ledger-csv" && (v = next()))
      opt.ledger_csv = v;
    else if (arg == "--host" && (v = next()))
      opt.host = v;
    else if (arg == "--port" && (v = next()))
      opt.port = std::atoi(v);
    else if (arg == "--http-workers" && (v = next()))
      opt.http_workers =
          static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    else if (arg == "--queue-capacity" && (v = next()))
      opt.queue_capacity =
          static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    else if (arg == "--deadline-s" && (v = next()))
      opt.deadline_s = std::atof(v);
    else if (arg == "--read-timeout-s" && (v = next()))
      opt.read_timeout_s = std::atof(v);
    else if (arg == "--port-file" && (v = next()))
      opt.port_file = v;
    else if (arg == "--access-log" && (v = next()))
      opt.access_log = v;
    else if (arg == "--test-hooks")
      opt.test_hooks = true;
    else if (arg == "--world-dir" && (v = next()))
      opt.world_dir = v;
    else
      return usage(argv[0]);
  }
  if (opt.batch && opt.queries_path.empty()) return usage(argv[0]);

  // Batch and serve default to slot-quantized pricing (fleet queries
  // share the per-slot cost cache); single plan and explain default to
  // exact.
  if (opt.pricing.empty())
    opt.pricing = (opt.batch || opt.serve) ? "slot" : "exact";
  core::PricingMode pricing = core::PricingMode::Exact;
  if (!parse_pricing(opt.pricing, pricing)) return usage(argv[0]);

  try {
    if (!opt.log_level.empty())
      set_log_level(parse_log_level(opt.log_level));
    if (!opt.trace_out.empty() || opt.trace)
      obs::Tracer::global().set_enabled(true);
    const bool profiling = opt.profile || !opt.profile_out.empty();
    if (profiling)
      obs::Profiler::global().start(
          obs::Profiler::Options{opt.profile_interval_ms});

    if (opt.explain) {
      const int rc = run_explain(opt, pricing);
      if (!opt.metrics_out.empty())
        write_metrics_report(opt.metrics_out, "explain");
      if (!opt.trace_out.empty()) write_trace(opt.trace_out);
      if (profiling) obs::Profiler::global().stop();
      if (!opt.profile_out.empty()) write_profile(opt.profile_out);
      return rc;
    }

    if (!opt.snapshot_action.empty()) return run_snapshot(opt);

    if (opt.serve) {
      // Boot from the journal when --world-dir holds an intact
      // snapshot: the text build (city + scene + shading) is skipped
      // entirely — that is the cold-start win being measured by
      // bench/perf_coldstart.
      core::WorldPtr world;
      if (!opt.world_dir.empty()) {
        const core::LoadLatestResult latest =
            core::WorldStore::load_latest(opt.world_dir);
        for (const std::string& error : latest.errors)
          std::fprintf(stderr, "warning: %s\n", error.c_str());
        if (latest.world) {
          world = latest.world;
          std::printf("restored world v%llu from %s\n",
                      static_cast<unsigned long long>(world->version()),
                      latest.loaded_from.c_str());
        }
      }
      if (!world) world = build_city_world(opt);
      const int rc = run_serve(opt, pricing, std::move(world));
      if (!opt.metrics_out.empty())
        write_metrics_report(opt.metrics_out, "serve");
      if (!opt.trace_out.empty()) write_trace(opt.trace_out);
      if (profiling) obs::Profiler::global().stop();
      if (!opt.profile_out.empty()) write_profile(opt.profile_out);
      return rc;
    }

    roadnet::GridCityOptions city_options;
    city_options.rows = opt.rows;
    city_options.cols = opt.cols;
    city_options.seed = opt.seed;
    const roadnet::GridCity city(city_options);
    const geo::LocalProjection projection(city_options.origin);
    const shadow::Scene scene =
        generate_scene(city.graph(), projection, shadow::SceneGenOptions{});
    const core::WorldPtr world = make_world(city.graph(), scene, opt);

    if (opt.batch) {
      const int rc = run_batch(opt, pricing, world, city);
      if (!opt.metrics_out.empty())
        write_metrics_report(opt.metrics_out, "batch");
      if (!opt.trace_out.empty()) write_trace(opt.trace_out);
      if (profiling) {
        obs::Profiler::global().stop();
        print_profile_summary();
      }
      if (!opt.profile_out.empty()) write_profile(opt.profile_out);
      return rc;
    }

    const std::unique_ptr<obs::QueryLog> query_log = open_query_log(opt);
    core::PlannerOptions planner_options;
    planner_options.mlc.max_time_factor = opt.time_budget;
  planner_options.mlc.epsilon = opt.epsilon;
  planner_options.mlc.prune_with_lower_bounds = opt.prune;
    planner_options.mlc.pricing = pricing;
    if (query_log) planner_options.query_log = query_log.get();
    const core::SunChasePlanner planner(world, planner_options);

    const TimeOfDay departure = TimeOfDay::parse(opt.time);
    const core::PlanResult plan =
        planner.plan(city.node_at(opt.from_row, opt.from_col),
                     city.node_at(opt.to_row, opt.to_col), departure);

    std::printf("%s, departing %s, C = %.0f W (world v%llu) — "
                "%zu Pareto routes\n",
                planner.vehicle().name().c_str(),
                departure.to_string().c_str(), opt.panel_w,
                static_cast<unsigned long long>(world->version()),
                plan.pareto_route_count);
    std::printf("%-14s %8s %8s %8s %8s %10s\n", "route", "TL (m)", "TT (s)",
                "EI (Wh)", "EC (Wh)", "extra(Wh)");
    for (const auto& cand : plan.candidates) {
      std::printf("%-14s %8.0f %8.1f %8.2f %8.2f %+10.2f\n",
                  cand.is_shortest_time ? "shortest-time" : "better-solar",
                  cand.metrics.total_length.value(),
                  cand.metrics.travel_time.value(),
                  cand.metrics.energy_in.value(),
                  cand.metrics.energy_out.value(),
                  cand.is_shortest_time ? 0.0 : cand.extra_energy.value());
    }

    if (!opt.geojson_path.empty()) {
      std::ofstream(opt.geojson_path)
          << exporter::geojson_plan(city.graph(), plan);
      std::printf("wrote %s\n", opt.geojson_path.c_str());
    }
    if (!opt.graph_out.empty()) {
      roadnet::write_graph_file(opt.graph_out, city.graph());
      std::printf("wrote %s\n", opt.graph_out.c_str());
    }
    if (!opt.scene_out.empty()) {
      shadow::write_scene_file(opt.scene_out, scene);
      std::printf("wrote %s\n", opt.scene_out.c_str());
    }
    if (!opt.metrics_out.empty()) write_metrics_report(opt.metrics_out, "plan");
    if (!opt.trace_out.empty()) write_trace(opt.trace_out);
    if (profiling) obs::Profiler::global().stop();
    if (!opt.profile_out.empty()) write_profile(opt.profile_out);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
