// Quickstart: the full SunChase pipeline in one file.
//
//   1. Synthesize a downtown road grid (the paper uses an
//      OpenStreetMap extract of Montreal).
//   2. Plant buildings/trees and compute the per-edge shading profile
//      for the day (the paper renders ArcGIS 3D scenes every 15 min).
//   3. Bundle graph + shading + traffic + panel power + vehicle into
//      one immutable World snapshot.
//   4. Plan a trip and print the shortest-time route next to the
//      better-solar candidates that pass the Eq. 5 energy test.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include <memory>
#include <utility>

#include "sunchase/core/planner.h"
#include "sunchase/core/world.h"
#include "sunchase/roadnet/citygen.h"
#include "sunchase/roadnet/directions.h"
#include "sunchase/roadnet/traffic.h"
#include "sunchase/shadow/scenegen.h"
#include "sunchase/solar/input_map.h"

using namespace sunchase;

int main() {
  // 1. A 10x10-intersection downtown grid with one-way streets.
  roadnet::GridCityOptions city_options;
  city_options.rows = 10;
  city_options.cols = 10;
  const roadnet::GridCity city(city_options);

  // 2. Buildings and trees cast the shadows; precompute the shading
  //    profile for the whole daytime window at 15-minute resolution.
  const geo::LocalProjection projection(city_options.origin);
  const shadow::Scene scene =
      generate_scene(city.graph(), projection, shadow::SceneGenOptions{});

  // 3. Bundle everything a planner reads — graph, shading, traffic
  //    (urban 14-17 km/h band), panel power (200 W, the paper's
  //    10 a.m. setting), and Lv's solar-EV model — into one immutable
  //    World snapshot. Every planner API consumes this shared_ptr.
  core::WorldInit init;
  init.graph = std::make_shared<const roadnet::RoadGraph>(city.graph());
  init.shading = std::make_shared<const shadow::ShadingProfile>(
      shadow::ShadingProfile::compute_exact(
          *init.graph, scene, geo::DayOfYear{196},  // mid-July
          TimeOfDay::hms(8, 0), TimeOfDay::hms(18, 30)));
  init.traffic = std::make_shared<const roadnet::UrbanTraffic>(
      roadnet::UrbanTraffic::Options{});
  init.panel_power = solar::constant_panel_power(Watts{200.0});
  init.vehicles.push_back(std::shared_ptr<const ev::ConsumptionModel>(
      ev::make_lv_prototype()));
  const core::WorldPtr world = core::World::create(std::move(init));

  // 4. Plan a morning trip across downtown.
  const core::SunChasePlanner planner(world);
  const roadnet::NodeId home = city.node_at(1, 1);
  const roadnet::NodeId work = city.node_at(8, 7);
  const core::PlanResult plan =
      planner.plan(home, work, TimeOfDay::hms(10, 0));

  std::printf("SunChase quickstart — %zu Pareto routes, %zu clusters\n\n",
              plan.pareto_route_count, plan.cluster_count);
  std::printf("%-14s %8s %8s %8s %8s %10s\n", "route", "TL (m)", "TT (s)",
              "EI (Wh)", "EC (Wh)", "extra(Wh)");
  for (const auto& cand : plan.candidates) {
    std::printf("%-14s %8.0f %8.1f %8.2f %8.2f %10s\n",
                cand.is_shortest_time ? "shortest-time" : "better-solar",
                cand.metrics.total_length.value(),
                cand.metrics.travel_time.value(),
                cand.metrics.energy_in.value(),
                cand.metrics.energy_out.value(),
                cand.is_shortest_time
                    ? "-"
                    : std::to_string(cand.extra_energy.value()).substr(0, 6)
                          .c_str());
  }
  std::printf("\nRecommended: %s (%zu edges)\n",
              plan.recommended().is_shortest_time ? "the shortest-time route"
                                                  : "a better-solar route",
              plan.recommended().route.path.size());
  for (const auto& step :
       roadnet::directions_for(city.graph(), plan.recommended().route.path))
    std::printf("  - %s\n", roadnet::to_string(step).c_str());
  return 0;
}
