// Shadow mapper: renders the paper's Fig. 3 imagery for the synthetic
// downtown — top-down scenes at 9:15 AM and 3:15 PM showing how
// shadows rotate around the buildings that cast them — and prints a
// per-street solar-access table for both times.
//
// Writes shadow_0915.pgm and shadow_1515.pgm into the working
// directory (viewable with any image tool).
//
// Build & run:  ./build/examples/shadow_mapper
#include <cstdio>

#include "sunchase/roadnet/citygen.h"
#include "sunchase/shadow/scenegen.h"
#include "sunchase/shadow/vision.h"

using namespace sunchase;

int main() {
  roadnet::GridCityOptions city_options;
  city_options.rows = 6;
  city_options.cols = 6;
  const roadnet::GridCity city(city_options);
  const geo::LocalProjection projection(city_options.origin);
  const shadow::Scene scene =
      generate_scene(city.graph(), projection, shadow::SceneGenOptions{});

  shadow::VisionOptions vision_options;
  vision_options.meters_per_px = 0.5;  // crisp imagery
  const shadow::VisionPipeline pipeline(city.graph(), scene, vision_options);

  const geo::DayOfYear july{196};
  const auto morning_sun = geo::sun_position(
      projection.origin(), july, TimeOfDay::hms(9, 15));
  const auto afternoon_sun = geo::sun_position(
      projection.origin(), july, TimeOfDay::hms(15, 15));

  pipeline.render(morning_sun).write_pgm("shadow_0915.pgm");
  pipeline.render(afternoon_sun).write_pgm("shadow_1515.pgm");
  std::printf("Wrote shadow_0915.pgm and shadow_1515.pgm (Fig. 3 scenes)\n\n");

  const auto morning = pipeline.estimate_shaded_fractions(morning_sun);
  const auto afternoon = pipeline.estimate_shaded_fractions(afternoon_sun);

  std::printf("Per-street shaded fraction (vision estimate)\n");
  std::printf("%-6s %-10s %10s %10s %10s\n", "edge", "direction", "9:15 AM",
              "3:15 PM", "rotation");
  double moved = 0.0;
  for (roadnet::EdgeId e = 0; e < city.graph().edge_count(); ++e) {
    const auto& edge = city.graph().edge(e);
    if (edge.from > edge.to) continue;  // one row per street
    const geo::Segment seg = scene.edge_segment(city.graph(), e);
    const geo::Vec2 d = seg.direction();
    const char* heading = std::abs(d.x) > std::abs(d.y) ? "east-west"
                                                        : "north-south";
    const double delta = afternoon[e] - morning[e];
    moved += std::abs(delta);
    std::printf("%-6u %-10s %9.0f%% %9.0f%% %+9.0f%%\n", e, heading,
                morning[e] * 100.0, afternoon[e] * 100.0, delta * 100.0);
  }
  std::printf(
      "\nMean |rotation| across streets: %.1f%% of street length — the\n"
      "morning shadows fall on different roads than the afternoon ones\n"
      "(the paper's Fig. 3a vs 3b).\n",
      moved / static_cast<double>(city.graph().edge_count()) * 100.0);
  return 0;
}
