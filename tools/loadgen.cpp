// loadgen — HTTP load generator for the route server (sunchase_cli
// serve): replays a fleet query file as POST /plan requests at stepped
// concurrency and writes a BENCH_serve.json latency/throughput report
// for CI trend gating (tools/bench_compare.py).
//
//   loadgen --port N [--host ADDR] [--queries FILE]
//       [--rows N --cols N --seed S]    lattice of the server's city
//       [--concurrency LIST]            e.g. 1,2,4 (default)
//       [--requests-per-step N]         total requests per step (60)
//       [--out FILE]                    BENCH_serve.json report
//       [--publish-mid-step]            POST /world/publish once half of
//                                       each step's requests are done
//       [--explain-every N]             GET /explain/{id} for every Nth
//                                       ok plan and check "conserves"
//                                       (0 disables; default 3)
//       [--batch-every N]               additionally POST /batch (a small
//                                       query bundle) for every Nth
//                                       request, exercising the pool
//                                       workers the profiler samples
//                                       (0 disables; default 8)
//       [--profile-out FILE]            dump the server's /debug/profile
//                                       collapsed stacks after the run
//
// After each step loadgen scrapes GET /metrics?format=json and stamps
// the step's sample with the rolling-window p99 of
// serve.latency_seconds.window{endpoint="/plan"} (the server's own
// last-60s view, next to loadgen's client-side p99) and the step's
// serve.cpu_seconds delta (worker CPU burned per step). After the last
// step it scrapes GET /debug/profile and embeds a fold count + whether
// a serve.request;batch.query;... stack was captured.
//
// The query file is the same "FROM_R,FROM_C TO_R,TO_C HH:MM" lattice
// format the batch CLI reads; loadgen regenerates the grid city with
// the same rows/cols/seed to map lattice coordinates to node ids, so
// it must be started with the world options the server was.
//
// Every request carries a synthetic deterministic W3C `traceparent`
// header, and the server must echo the same trace id back in
// `x-sunchase-request-id` — per-step coverage lands in the report as
// `request_id_coverage`, and any missing echo fails the run.
//
// Exit codes: 0 all good; 2 usage; 3 any transport error or HTTP 5xx;
// 4 an /explain replay failed energy conservation (a response did not
// match its pinned world); 5 --publish-mid-step saw only one world
// version (the publish never surfaced); 6 a response was missing (or
// mismatched) the echoed request-id header.
#include <atomic>
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "sunchase/common/error.h"
#include "sunchase/common/time_of_day.h"
#include "sunchase/roadnet/citygen.h"
#include "sunchase/serve/client.h"
#include "sunchase/serve/json.h"

using namespace sunchase;

namespace {

struct Options {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string queries_path = "data/fleet_queries.txt";
  int rows = 10, cols = 10;
  std::uint64_t seed = 7;
  std::vector<std::size_t> concurrency = {1, 2, 4};
  std::size_t requests_per_step = 60;
  std::string out_path = "BENCH_serve.json";
  bool publish_mid_step = false;
  std::size_t explain_every = 3;
  std::size_t batch_every = 8;
  std::string profile_out;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: loadgen --port N [--host ADDR] [--queries FILE]\n"
      "       [--rows N] [--cols N] [--seed S] [--concurrency 1,2,4]\n"
      "       [--requests-per-step N] [--out FILE] [--publish-mid-step]\n"
      "       [--explain-every N] [--batch-every N] [--profile-out FILE]\n");
  return 2;
}

/// The request bodies replayed by every step, pre-rendered once.
std::vector<std::string> load_bodies(const Options& opt) {
  roadnet::GridCityOptions city_options;
  city_options.rows = opt.rows;
  city_options.cols = opt.cols;
  city_options.seed = opt.seed;
  const roadnet::GridCity city(city_options);

  std::ifstream in(opt.queries_path);
  if (!in) throw IoError("loadgen: cannot open " + opt.queries_path);
  std::vector<std::string> bodies;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    int fr, fc, tr, tc, hh, mm;
    if (std::sscanf(line.c_str(), "%d,%d %d,%d %d:%d", &fr, &fc, &tr, &tc,
                    &hh, &mm) != 6)
      throw IoError("loadgen: malformed query at " + opt.queries_path + ":" +
                    std::to_string(lineno) + ": " + line);
    std::string body = "{\"origin\":";
    body += std::to_string(city.node_at(fr, fc));
    body += ",\"destination\":";
    body += std::to_string(city.node_at(tr, tc));
    body += ",\"departure\":\"";
    body += TimeOfDay::hms(hh, mm).to_string();
    body += "\"}";
    bodies.push_back(std::move(body));
  }
  if (bodies.empty())
    throw IoError("loadgen: no queries in " + opt.queries_path);
  return bodies;
}

/// Shared tallies of one concurrency step.
struct StepResult {
  std::size_t requests = 0;
  std::atomic<std::size_t> ok{0};
  std::atomic<std::size_t> http_4xx{0};
  std::atomic<std::size_t> http_5xx{0};
  std::atomic<std::size_t> transport_errors{0};
  std::atomic<std::size_t> conservation_failures{0};
  std::atomic<std::size_t> responses{0};           ///< HTTP responses seen
  std::atomic<std::size_t> request_id_missing{0};  ///< echo absent/mismatched
  std::atomic<std::size_t> batch_requests{0};      ///< POST /batch probes
  std::atomic<std::size_t> batch_ok{0};
  double wall_seconds = 0.0;
  std::mutex latency_mutex;
  std::vector<double> latencies_ms;  ///< guarded by latency_mutex
  std::mutex version_mutex;
  std::set<std::uint64_t> versions;  ///< guarded by version_mutex
};

/// One scrape of the server's own telemetry (/metrics?format=json):
/// the rolling-window p99 for /plan and the cumulative worker CPU,
/// summed over every serve.cpu_seconds{endpoint=...} series so /batch
/// worker time counts too. Deltas between scrapes give per-step CPU.
struct MetricsProbe {
  bool ok = false;
  double window_p99_ms = 0.0;
  double cpu_seconds_total = 0.0;
};

MetricsProbe scrape_metrics(const Options& opt) {
  MetricsProbe probe;
  try {
    serve::HttpClient client(opt.host, static_cast<std::uint16_t>(opt.port));
    const serve::HttpResponse response = client.get("/metrics?format=json");
    if (response.status != 200) return probe;
    const serve::JsonValue doc = serve::JsonValue::parse(response.body);
    if (const serve::JsonValue* gauges = doc.find("gauges");
        gauges != nullptr && gauges->is_object())
      for (const auto& [key, value] : gauges->as_object())
        if (key.rfind("serve.cpu_seconds", 0) == 0 && value.is_number())
          probe.cpu_seconds_total += value.as_number();
    if (const serve::JsonValue* histograms = doc.find("histograms");
        histograms != nullptr)
      if (const serve::JsonValue* window = histograms->find(
              "serve.latency_seconds.window{endpoint=\"/plan\"}"))
        probe.window_p99_ms = window->number_or("p99", 0.0) * 1e3;
    probe.ok = true;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "loadgen: metrics scrape: %s\n", e.what());
  }
  return probe;
}

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

void run_worker(const Options& opt, std::size_t step_index,
                const std::vector<std::string>& bodies,
                std::atomic<std::size_t>& next, StepResult& step) {
  serve::HttpClient client(opt.host, static_cast<std::uint16_t>(opt.port));
  std::vector<double> local_ms;
  for (;;) {
    const std::size_t i = next.fetch_add(1);
    if (i >= step.requests) break;
    const std::string& body = bodies[i % bodies.size()];
    // Every Nth request also pushes a small POST /batch bundle through
    // the pool workers: that is the request shape whose samples fold to
    // serve.request;batch.query;mlc.search when the server profiles.
    // Batch probes keep their own tallies — their latency would skew
    // the /plan percentiles the report gates on.
    if (opt.batch_every != 0 && i % opt.batch_every == 0) {
      std::string bundle = "{\"queries\":[";
      const std::size_t bundle_size = std::min<std::size_t>(4, bodies.size());
      for (std::size_t b = 0; b < bundle_size; ++b) {
        if (b != 0) bundle += ',';
        bundle += bodies[(i + b) % bodies.size()];
      }
      bundle += "]}";
      step.batch_requests.fetch_add(1);
      try {
        const serve::HttpResponse response =
            client.post("/batch", bundle);
        if (response.status == 200)
          step.batch_ok.fetch_add(1);
        else if (response.status >= 500)
          step.http_5xx.fetch_add(1);
        else
          step.http_4xx.fetch_add(1);
      } catch (const std::exception& e) {
        step.transport_errors.fetch_add(1);
        std::fprintf(stderr, "loadgen: batch probe %zu: %s\n", i, e.what());
      }
    }
    // A deterministic synthetic trace per request: the server must echo
    // exactly these 32 hex chars back in x-sunchase-request-id.
    char trace_id[33];
    std::snprintf(trace_id, sizeof trace_id, "%016llx%016llx",
                  0x10adull + static_cast<unsigned long long>(step_index),
                  static_cast<unsigned long long>(i) + 1);
    const std::string traceparent =
        "00-" + std::string(trace_id) + "-00000000000000a1-01";
    const auto start = std::chrono::steady_clock::now();
    try {
      const serve::HttpResponse response = client.request(
          "POST", "/plan", body, {{"traceparent", traceparent}});
      local_ms.push_back(std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count());
      step.responses.fetch_add(1);
      const std::string* echoed = response.header("x-sunchase-request-id");
      if (echoed == nullptr || *echoed != trace_id)
        step.request_id_missing.fetch_add(1);
      if (response.status >= 500) {
        step.http_5xx.fetch_add(1);
        continue;
      }
      if (response.status >= 400) {
        step.http_4xx.fetch_add(1);
        continue;
      }
      step.ok.fetch_add(1);

      const serve::JsonValue parsed = serve::JsonValue::parse(response.body);
      const auto version =
          static_cast<std::uint64_t>(parsed.number_or("world_version", 0.0));
      {
        const std::lock_guard<std::mutex> lock(step.version_mutex);
        step.versions.insert(version);
      }
      // Spot-check: replay the response's route on its pinned world via
      // /explain; a conservation failure means the response and the
      // world version it claims do not match.
      if (opt.explain_every != 0 && i % opt.explain_every == 0) {
        const auto id =
            static_cast<std::uint64_t>(parsed.number_or("query_id", 0.0));
        const serve::HttpResponse explain =
            client.get("/explain/" + std::to_string(id));
        if (explain.status != 200) {
          step.http_5xx.fetch_add(explain.status >= 500 ? 1 : 0);
          continue;
        }
        const serve::JsonValue ledger =
            serve::JsonValue::parse(explain.body);
        const serve::JsonValue* conserves = ledger.find("conserves");
        if (conserves == nullptr || !conserves->as_bool())
          step.conservation_failures.fetch_add(1);
      }
    } catch (const std::exception& e) {
      step.transport_errors.fetch_add(1);
      std::fprintf(stderr, "loadgen: request %zu: %s\n", i, e.what());
    }
  }
  const std::lock_guard<std::mutex> lock(step.latency_mutex);
  step.latencies_ms.insert(step.latencies_ms.end(), local_ms.begin(),
                           local_ms.end());
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--host" && (v = next()))
      opt.host = v;
    else if (arg == "--port" && (v = next()))
      opt.port = std::atoi(v);
    else if (arg == "--queries" && (v = next()))
      opt.queries_path = v;
    else if (arg == "--rows" && (v = next()))
      opt.rows = std::atoi(v);
    else if (arg == "--cols" && (v = next()))
      opt.cols = std::atoi(v);
    else if (arg == "--seed" && (v = next()))
      opt.seed = std::strtoull(v, nullptr, 10);
    else if (arg == "--concurrency" && (v = next())) {
      opt.concurrency.clear();
      for (const char* p = v; *p != '\0';) {
        char* end = nullptr;
        const unsigned long long c = std::strtoull(p, &end, 10);
        if (end == p || c == 0) return usage();
        opt.concurrency.push_back(static_cast<std::size_t>(c));
        p = *end == ',' ? end + 1 : end;
      }
      if (opt.concurrency.empty()) return usage();
    } else if (arg == "--requests-per-step" && (v = next()))
      opt.requests_per_step =
          static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    else if (arg == "--out" && (v = next()))
      opt.out_path = v;
    else if (arg == "--publish-mid-step")
      opt.publish_mid_step = true;
    else if (arg == "--explain-every" && (v = next()))
      opt.explain_every =
          static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    else if (arg == "--batch-every" && (v = next()))
      opt.batch_every =
          static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    else if (arg == "--profile-out" && (v = next()))
      opt.profile_out = v;
    else
      return usage();
  }
  if (opt.port <= 0 || opt.port > 65535) return usage();

  try {
    const std::vector<std::string> bodies = load_bodies(opt);

    std::size_t total_requests = 0, total_ok = 0, total_4xx = 0,
                total_5xx = 0, total_transport = 0, total_conservation = 0,
                total_request_id_missing = 0, total_batch = 0,
                total_batch_ok = 0;
    std::set<std::uint64_t> all_versions;
    std::string samples = "[";

    // Baseline scrape: per-step CPU is the delta between consecutive
    // scrapes of the cumulative serve.cpu_seconds gauges.
    MetricsProbe previous_probe = scrape_metrics(opt);

    for (std::size_t s = 0; s < opt.concurrency.size(); ++s) {
      const std::size_t concurrency = opt.concurrency[s];
      StepResult step;
      step.requests = opt.requests_per_step;
      std::atomic<std::size_t> next_request{0};

      const auto start = std::chrono::steady_clock::now();
      std::vector<std::thread> workers;
      for (std::size_t w = 0; w < concurrency; ++w)
        workers.emplace_back([&, s] {
          run_worker(opt, s, bodies, next_request, step);
        });

      // Mid-step world publish: wait until half the step's requests are
      // answered, then roll the version — the remaining half must pin
      // the new snapshot while completed responses stay consistent with
      // the old one (their /explain replays still conserve).
      std::thread publisher;
      if (opt.publish_mid_step)
        publisher = std::thread([&] {
          const std::size_t half = step.requests / 2;
          while (step.ok.load() + step.http_4xx.load() +
                     step.http_5xx.load() + step.transport_errors.load() <
                 half)
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
          try {
            serve::HttpClient admin(opt.host,
                                    static_cast<std::uint16_t>(opt.port));
            const serve::HttpResponse response =
                admin.post("/world/publish", "");
            if (response.status != 200) step.http_5xx.fetch_add(1);
          } catch (const std::exception& e) {
            step.transport_errors.fetch_add(1);
            std::fprintf(stderr, "loadgen: publish: %s\n", e.what());
          }
        });

      for (std::thread& worker : workers) worker.join();
      if (publisher.joinable()) publisher.join();
      step.wall_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();

      std::sort(step.latencies_ms.begin(), step.latencies_ms.end());
      const double p50 = percentile(step.latencies_ms, 0.50);
      const double p99 = percentile(step.latencies_ms, 0.99);
      const double max_ms =
          step.latencies_ms.empty() ? 0.0 : step.latencies_ms.back();
      const double qps =
          step.wall_seconds > 0.0
              ? static_cast<double>(step.requests) / step.wall_seconds
              : 0.0;
      const std::size_t responses = step.responses.load();
      const double request_id_coverage =
          responses == 0
              ? 0.0
              : static_cast<double>(responses -
                                    step.request_id_missing.load()) /
                    static_cast<double>(responses);

      // The server's own view of this step: rolling-window p99 (its
      // last-60s serve.latency_seconds.window quantile) and the CPU
      // the step burned (delta of the cumulative cpu_seconds gauges).
      const MetricsProbe probe = scrape_metrics(opt);
      const double step_cpu_seconds =
          (probe.ok && previous_probe.ok)
              ? std::max(0.0, probe.cpu_seconds_total -
                                  previous_probe.cpu_seconds_total)
              : 0.0;
      if (probe.ok) previous_probe = probe;

      std::printf("concurrency %zu: %zu requests in %.3f s — %.1f req/s, "
                  "p50 %.1f ms, p99 %.1f ms, window p99 %.1f ms, "
                  "cpu %.3f s (%zu ok, %zu 4xx, %zu 5xx, %zu transport, "
                  "%zu/%zu batch)\n",
                  concurrency, step.requests, step.wall_seconds, qps, p50,
                  p99, probe.window_p99_ms, step_cpu_seconds, step.ok.load(),
                  step.http_4xx.load(), step.http_5xx.load(),
                  step.transport_errors.load(), step.batch_ok.load(),
                  step.batch_requests.load());

      char sample[768];
      std::snprintf(
          sample, sizeof sample,
          "%s\n    {\"concurrency\": %zu, \"requests\": %zu, \"ok\": %zu, "
          "\"http_4xx\": %zu, \"http_5xx\": %zu, \"transport_errors\": %zu, "
          "\"wall_seconds\": %.6f, \"queries_per_second\": %.3f, "
          "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"max_ms\": %.3f, "
          "\"request_id_coverage\": %.4f, \"window_p99_ms\": %.3f, "
          "\"cpu_seconds\": %.6f, \"batch_requests\": %zu, "
          "\"batch_ok\": %zu}",
          s == 0 ? "" : ",", concurrency, step.requests, step.ok.load(),
          step.http_4xx.load(), step.http_5xx.load(),
          step.transport_errors.load(), step.wall_seconds, qps, p50, p99,
          max_ms, request_id_coverage, probe.window_p99_ms,
          step_cpu_seconds, step.batch_requests.load(),
          step.batch_ok.load());
      samples += sample;

      total_requests += step.requests;
      total_ok += step.ok.load();
      total_4xx += step.http_4xx.load();
      total_5xx += step.http_5xx.load();
      total_transport += step.transport_errors.load();
      total_conservation += step.conservation_failures.load();
      total_request_id_missing += step.request_id_missing.load();
      total_batch += step.batch_requests.load();
      total_batch_ok += step.batch_ok.load();
      all_versions.insert(step.versions.begin(), step.versions.end());
    }
    samples += "\n  ]";

    // Pull the server's sampling-profiler folds (collapsed-stack text,
    // one "outer;inner COUNT" line each). Empty when the server was not
    // started with --profile — the report records that as folds 0
    // rather than failing, so CI can assert on it explicitly.
    std::size_t profile_folds = 0;
    bool profile_has_batch_stack = false;
    std::string profile_text;
    try {
      serve::HttpClient client(opt.host,
                               static_cast<std::uint16_t>(opt.port));
      const serve::HttpResponse response = client.get("/debug/profile");
      if (response.status == 200) profile_text = response.body;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "loadgen: profile scrape: %s\n", e.what());
    }
    for (std::size_t pos = 0; pos < profile_text.size();) {
      const std::size_t eol = profile_text.find('\n', pos);
      const std::string_view line(profile_text.data() + pos,
                                  (eol == std::string::npos
                                       ? profile_text.size()
                                       : eol) - pos);
      if (!line.empty()) {
        ++profile_folds;
        if (line.rfind("serve.request;batch.query", 0) == 0)
          profile_has_batch_stack = true;
      }
      if (eol == std::string::npos) break;
      pos = eol + 1;
    }
    if (!opt.profile_out.empty()) {
      std::ofstream prof(opt.profile_out);
      if (!prof) throw IoError("loadgen: cannot write " + opt.profile_out);
      prof << profile_text;
      std::printf("wrote %s (%zu folds)\n", opt.profile_out.c_str(),
                  profile_folds);
    }

    const std::uint64_t version_min =
        all_versions.empty() ? 0 : *all_versions.begin();
    const std::uint64_t version_max =
        all_versions.empty() ? 0 : *all_versions.rbegin();

    std::ofstream out(opt.out_path);
    if (!out) throw IoError("loadgen: cannot write " + opt.out_path);
    out << "{\n  \"bench\": \"loadgen_serve\",\n"
        << "  \"queries\": " << bodies.size() << ",\n"
        << "  \"requests_per_step\": " << opt.requests_per_step << ",\n"
        << "  \"samples\": " << samples << ",\n"
        << "  \"world_version\": {\"min\": " << version_min
        << ", \"max\": " << version_max << "},\n"
        << "  \"profile\": {\"folds\": " << profile_folds
        << ", \"has_batch_stack\": "
        << (profile_has_batch_stack ? "true" : "false") << "},\n"
        << "  \"totals\": {\"requests\": " << total_requests
        << ", \"ok\": " << total_ok << ", \"http_4xx\": " << total_4xx
        << ", \"http_5xx\": " << total_5xx
        << ", \"transport_errors\": " << total_transport
        << ", \"conservation_failures\": " << total_conservation
        << ", \"request_id_missing\": " << total_request_id_missing
        << ", \"batch_requests\": " << total_batch
        << ", \"batch_ok\": " << total_batch_ok << "}\n"
        << "}\n";
    std::printf("wrote %s (%zu/%zu ok, world versions %llu..%llu)\n",
                opt.out_path.c_str(), total_ok, total_requests,
                static_cast<unsigned long long>(version_min),
                static_cast<unsigned long long>(version_max));

    if (total_conservation != 0) {
      std::fprintf(stderr,
                   "loadgen: %zu responses failed the pinned-world "
                   "conservation replay\n",
                   total_conservation);
      return 4;
    }
    if (total_5xx != 0 || total_transport != 0) return 3;
    if (opt.publish_mid_step && all_versions.size() < 2) {
      std::fprintf(stderr,
                   "loadgen: mid-step publish never surfaced a new world "
                   "version\n");
      return 5;
    }
    if (total_request_id_missing != 0) {
      std::fprintf(stderr,
                   "loadgen: %zu responses were missing (or mismatched) "
                   "the x-sunchase-request-id echo\n",
                   total_request_id_missing);
      return 6;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "loadgen: %s\n", e.what());
    return 3;
  }
}
