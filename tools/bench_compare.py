#!/usr/bin/env python3
"""Compare a benchmark run against a committed baseline.

Usage:
    tools/bench_compare.py BASELINE.json CURRENT.json [--tolerance 0.25]
        [--latency-tolerance 0.50] [--update]

Understands three report schemas, detected from the report itself:

* perf_batch_scaling (BENCH_batch.json): samples keyed by
  (pricing, workers); gates on peak queries_per_second.
* loadgen_serve (BENCH_serve.json, ``"bench": "loadgen_serve"``):
  samples keyed by concurrency; gates on peak queries_per_second AND on
  the best p99_ms latency across concurrency steps.
* perf_mlc_scaling (BENCH_mlc.json, ``"bench": "perf_mlc_scaling"``):
  samples keyed by (n, mode, epsilon); gates on peak
  queries_per_second AND on the current report's own pruned-vs-unpruned
  rows at the largest world — the pruned search must create strictly
  fewer labels and pop fewer queue entries than the unpruned one, so
  the lower-bound pruning can never silently stop pruning.
* perf_coldstart (BENCH_coldstart.json, ``"bench": "perf_coldstart"``):
  scalar build/save/load timings; gates on the current run's own
  speedup ratio — mmap-loading a snapshot must be at least 5x faster
  than the text build (a same-machine ratio, so no cross-machine
  tolerance applies) — and on fingerprint_ok (the loaded world produced
  bit-identical plan results).

Exits 1 when the current peak falls below ``baseline * (1 - tolerance)``
or (serve reports) the best p99 rises above
``baseline * (1 + latency_tolerance)`` or (mlc reports) pruning stopped
reducing search effort.

The tolerances are deliberately wide (default 25% throughput, 50%
latency): the committed baseline was recorded on a small dev container
while CI runs on shared runners with different core counts and noisy
neighbours, so only a genuine regression — not machine-to-machine
jitter — should trip them. Faster results never fail; pass --update to
rewrite the baseline from the current run when a real improvement or
environment change lands.
"""

import argparse
import json
import os
import shutil
import sys


def kind(report):
    """Schema of a report: 'serve', 'mlc' or 'batch' (the unnamed
    original)."""
    name = report.get("bench")
    if name == "loadgen_serve":
        return "serve"
    if name == "perf_mlc_scaling":
        return "mlc"
    if name == "perf_coldstart":
        return "coldstart"
    return "batch"


def fmt(value, spec="{:.2f}"):
    """Format an optional numeric cell; '-' for fields the report
    predates (old baselines have no cpu_seconds / window_p99_ms)."""
    if value is None:
        return "-"
    try:
        return spec.format(float(value))
    except (TypeError, ValueError):
        return "-"


def delta_pct(base, cur):
    """Signed percent change current-vs-baseline, '-' when the baseline
    row (or field) is missing."""
    try:
        base, cur = float(base), float(cur)
    except (TypeError, ValueError):
        return "-"
    if base == 0.0:
        return "-"
    return "{:+.1f}%".format((cur - base) / base * 100.0)


def render_table(headers, rows):
    """The rows as aligned plain text (stdout) and as a GitHub markdown
    table ($GITHUB_STEP_SUMMARY) — one source, two renderings."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows
        else len(str(h))
        for i, h in enumerate(headers)
    ]
    text_lines = [
        " ".join(str(c).rjust(w) for c, w in zip(row, widths))
        for row in [headers] + rows
    ]
    md_lines = ["| " + " | ".join(str(h) for h in headers) + " |",
                "|" + "|".join("---:" for _ in headers) + "|"]
    md_lines += ["| " + " | ".join(str(c) for c in row) + " |"
                 for row in rows]
    return "\n".join(text_lines), "\n".join(md_lines)


def write_step_summary(markdown):
    """Append to the GitHub Actions job summary when running in CI; a
    no-op locally."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    with open(path, "a") as f:
        f.write(markdown + "\n")


def peak_qps(report, label):
    """Peak queries/sec of a report; exits with a readable message (not a
    traceback) on a hand-edited baseline with missing or zero peaks."""
    samples = report.get("samples", [])
    if not samples:
        raise SystemExit(f"error: no samples[] in {label} benchmark report")
    try:
        peak = max(float(s["queries_per_second"]) for s in samples)
    except (KeyError, TypeError, ValueError) as exc:
        raise SystemExit(
            f"error: {label} report has a sample without a numeric "
            f"queries_per_second field ({exc!r})"
        )
    if not peak > 0.0:  # also catches NaN
        raise SystemExit(
            f"error: {label} peak throughput is {peak}; a zero or negative "
            "peak cannot gate the build — fix or regenerate the report"
        )
    return peak


def best_p99(report, label):
    """Lowest p99_ms across a serve report's concurrency steps."""
    try:
        best = min(float(s["p99_ms"]) for s in report["samples"])
    except (KeyError, TypeError, ValueError) as exc:
        raise SystemExit(
            f"error: {label} serve report has a sample without a numeric "
            f"p99_ms field ({exc!r})"
        )
    if not best > 0.0:
        raise SystemExit(
            f"error: {label} best p99 is {best} ms; a zero or negative "
            "latency cannot gate the build — fix or regenerate the report"
        )
    return best


MIN_COLDSTART_SPEEDUP = 5.0


def compare_coldstart(baseline, current, args):
    """The coldstart report is scalars, not samples: render the timing
    table, then self-gate on the current run's speedup ratio and
    fingerprint flag (both machine-independent, so no tolerance)."""
    headers = ["metric", "baseline", "current", "Δ"]
    rows = []
    for field, spec in (("build_seconds", "{:.4f}"),
                        ("save_seconds", "{:.4f}"),
                        ("load_seconds", "{:.6f}"),
                        ("speedup", "{:.1f}"),
                        ("snapshot_bytes", "{:.0f}"),
                        ("warm_slots", "{:.0f}")):
        rows.append([field, fmt(baseline.get(field), spec),
                     fmt(current.get(field), spec),
                     delta_pct(baseline.get(field), current.get(field))])
    text_table, md_table = render_table(headers, rows)
    print(text_table)
    summary_lines = [md_table, ""]

    if args.update:
        shutil.copyfile(args.current, args.baseline)
        print(f"updated {args.baseline} from {args.current}")
        return 0

    failed = False
    try:
        speedup = float(current["speedup"])
    except (KeyError, TypeError, ValueError) as exc:
        raise SystemExit(
            f"error: coldstart report has no numeric speedup ({exc!r})"
        )
    gate_line = (
        f"speedup: snapshot load is {speedup:.1f}x faster than the text "
        f"build (gate: >= {MIN_COLDSTART_SPEEDUP:.0f}x)"
    )
    print(gate_line)
    summary_lines.append(gate_line)
    if speedup < MIN_COLDSTART_SPEEDUP:
        message = (
            f"FAIL: snapshot load is only {speedup:.1f}x faster than the "
            f"text build (gate requires >= {MIN_COLDSTART_SPEEDUP:.0f}x)"
        )
        print(message, file=sys.stderr)
        summary_lines.append(f"**{message}**")
        failed = True
    if current.get("fingerprint_ok") is not True:
        message = ("FAIL: coldstart report does not assert fingerprint_ok — "
                   "the loaded world's plan results were not bit-identical")
        print(message, file=sys.stderr)
        summary_lines.append(f"**{message}**")
        failed = True

    write_step_summary(
        "### bench_compare: coldstart — "
        f"{'OK' if not failed else 'FAIL'}\n\n" + "\n".join(summary_lines)
    )
    if failed:
        return 1
    print("OK: snapshot boot gate holds")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed benchmark report")
    parser.add_argument("current", help="freshly produced report")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional throughput drop below baseline "
        "(default 0.25)",
    )
    parser.add_argument(
        "--latency-tolerance",
        type=float,
        default=0.50,
        help="allowed fractional p99 rise above baseline, serve reports "
        "only (default 0.50)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from the current run and exit 0",
    )
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    schema = kind(current)
    if schema != kind(baseline):
        raise SystemExit(
            "error: baseline and current reports are different benchmarks "
            f"(baseline {kind(baseline)}, current {schema})"
        )
    if schema == "coldstart":
        return compare_coldstart(baseline, current, args)
    serve = schema == "serve"

    base_peak = peak_qps(baseline, "baseline")
    cur_peak = peak_qps(current, "current")
    floor = base_peak * (1.0 - args.tolerance)

    if serve:
        # Serve samples are one concurrency step each. window_p99_ms and
        # cpu_seconds are newer report fields: '-' cells keep old
        # baselines comparable instead of KeyError-ing the gate.
        def key(sample):
            return sample["concurrency"]

        headers = ["concurrency", "base q/s", "cur q/s", "Δq/s",
                   "base p99 ms", "cur p99 ms", "Δp99",
                   "window p99 ms", "cpu s"]
        base_by_key = {key(s): s for s in baseline.get("samples", [])}
        rows = []
        for sample in current.get("samples", []):
            base = base_by_key.get(key(sample)) or {}
            rows.append([
                sample["concurrency"],
                fmt(base.get("queries_per_second")),
                fmt(sample["queries_per_second"]),
                delta_pct(base.get("queries_per_second"),
                          sample["queries_per_second"]),
                fmt(base.get("p99_ms"), "{:.3f}"),
                fmt(sample["p99_ms"], "{:.3f}"),
                delta_pct(base.get("p99_ms"), sample["p99_ms"]),
                fmt(sample.get("window_p99_ms"), "{:.3f}"),
                fmt(sample.get("cpu_seconds"), "{:.3f}"),
            ])
    elif schema == "mlc":
        # Samples are keyed by (n, mode, epsilon): one pruned and one
        # unpruned row per city size at epsilon 0.
        def key(sample):
            return (sample["n"], sample["mode"], sample.get("epsilon", 0.0))

        headers = ["n", "mode", "base q/s", "cur q/s", "Δq/s",
                   "base labels", "cur labels", "Δlabels",
                   "cur pruned", "cur pops"]
        base_by_key = {key(s): s for s in baseline.get("samples", [])}
        rows = []
        for sample in current.get("samples", []):
            base = base_by_key.get(key(sample)) or {}
            rows.append([
                sample["n"],
                sample["mode"],
                fmt(base.get("queries_per_second")),
                fmt(sample["queries_per_second"]),
                delta_pct(base.get("queries_per_second"),
                          sample["queries_per_second"]),
                fmt(base.get("labels_created"), "{:.0f}"),
                fmt(sample.get("labels_created"), "{:.0f}"),
                delta_pct(base.get("labels_created"),
                          sample.get("labels_created")),
                fmt(sample.get("labels_pruned_bound"), "{:.0f}"),
                fmt(sample.get("queue_pops"), "{:.0f}"),
            ])
    else:
        # Samples are keyed by (pricing, workers); old baselines without
        # a pricing field compare against the "exact" rows of a new run.
        def key(sample):
            return (sample.get("pricing", "exact"), sample["workers"])

        headers = ["pricing", "workers", "base q/s", "cur q/s", "Δq/s",
                   "cpu s"]
        base_by_key = {key(s): s for s in baseline.get("samples", [])}
        rows = []
        for sample in current.get("samples", []):
            base = base_by_key.get(key(sample)) or {}
            rows.append([
                sample.get("pricing", "exact"),
                sample["workers"],
                fmt(base.get("queries_per_second")),
                fmt(sample["queries_per_second"]),
                delta_pct(base.get("queries_per_second"),
                          sample["queries_per_second"]),
                fmt(sample.get("cpu_seconds"), "{:.3f}"),
            ])

    text_table, md_table = render_table(headers, rows)
    print(text_table)

    peak_line = (
        f"peak: baseline {base_peak:.2f} q/s, current {cur_peak:.2f} q/s "
        f"({cur_peak / base_peak:.2f}x), floor {floor:.2f} q/s "
        f"(tolerance {args.tolerance:.0%})"
    )
    print(peak_line)
    summary_lines = [md_table, "", peak_line]

    # Shared-cache memory and snapshot identity, tracked informationally
    # (never gating): one SlotCostCache per (world version, vehicle), so
    # the bytes trend catches an accidental per-worker duplication while
    # the version confirms which snapshot priced the run. Old reports
    # without the fields stay comparable.
    for label, report in (("baseline", baseline), ("current", current)):
        version = report.get("world_version")
        cache_bytes = report.get("slotcache_bytes")
        if cache_bytes is not None:
            kib = f"{cache_bytes / 1024.0:.1f} KiB"
            print(f"{label}: world v{version if version is not None else '?'}"
                  f", shared slot cache {kib}")

    if args.update:
        shutil.copyfile(args.current, args.baseline)
        print(f"updated {args.baseline} from {args.current}")
        return 0

    failed = False
    if cur_peak < floor:
        message = (
            f"FAIL: current peak {cur_peak:.2f} q/s is more than "
            f"{args.tolerance:.0%} below baseline {base_peak:.2f} q/s"
        )
        print(message, file=sys.stderr)
        summary_lines.append(f"**{message}**")
        failed = True

    if serve:
        base_lat = best_p99(baseline, "baseline")
        cur_lat = best_p99(current, "current")
        ceiling = base_lat * (1.0 + args.latency_tolerance)
        p99_line = (
            f"p99: baseline best {base_lat:.3f} ms, current best "
            f"{cur_lat:.3f} ms ({cur_lat / base_lat:.2f}x), ceiling "
            f"{ceiling:.3f} ms (tolerance {args.latency_tolerance:.0%})"
        )
        print(p99_line)
        summary_lines.append(p99_line)
        if cur_lat > ceiling:
            message = (
                f"FAIL: current best p99 {cur_lat:.3f} ms is more than "
                f"{args.latency_tolerance:.0%} above baseline "
                f"{base_lat:.3f} ms"
            )
            print(message, file=sys.stderr)
            summary_lines.append(f"**{message}**")
            failed = True

    if schema == "mlc":
        # Self-gate on the current run (no tolerance — this is a strict
        # invariant, not a machine-speed comparison): at the largest
        # world, the pruned search must do strictly less work than the
        # unpruned one in both labels created and queue pops.
        largest = max(s["n"] for s in current.get("samples", []))
        at_largest = {
            s["mode"]: s
            for s in current.get("samples", [])
            if s["n"] == largest and s.get("epsilon", 0.0) == 0.0
        }
        pruned, unpruned = at_largest.get("pruned"), at_largest.get("unpruned")
        if pruned is None or unpruned is None:
            raise SystemExit(
                "error: mlc report is missing the pruned or unpruned "
                f"epsilon=0 sample at its largest world (n={largest})"
            )
        for field in ("labels_created", "queue_pops"):
            p, u = float(pruned[field]), float(unpruned[field])
            line = (f"pruning (n={largest}): {field} {u:.0f} unpruned -> "
                    f"{p:.0f} pruned ({(1 - p / u) * 100.0:.1f}% saved)")
            print(line)
            summary_lines.append(line)
            if not p < u:
                message = (
                    f"FAIL: pruned search no longer reduces {field} at "
                    f"n={largest} ({p:.0f} pruned vs {u:.0f} unpruned) — "
                    "the lower-bound pruning has stopped pruning"
                )
                print(message, file=sys.stderr)
                summary_lines.append(f"**{message}**")
                failed = True

    verdict = ("within tolerance of baseline" if not failed
               else "regression against baseline")
    name = schema
    write_step_summary(
        f"### bench_compare: {name} — "
        f"{'OK' if not failed else 'FAIL'}, {verdict}\n\n"
        + "\n".join(summary_lines)
    )

    if failed:
        return 1
    print("OK: within tolerance of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
