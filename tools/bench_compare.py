#!/usr/bin/env python3
"""Compare a perf_batch_scaling run against a committed baseline.

Usage:
    tools/bench_compare.py BASELINE.json CURRENT.json [--tolerance 0.25]
        [--update]

Reads the ``samples`` array of both BENCH_batch.json files, compares the
peak queries_per_second across worker counts, and exits 1 when the
current peak falls below ``baseline * (1 - tolerance)``.

The tolerance is deliberately wide (default 25%): the committed baseline
was recorded on a small dev container while CI runs on shared runners
with different core counts and noisy neighbours, so only a genuine
regression — not machine-to-machine jitter — should trip it. Faster
results never fail; pass --update to rewrite the baseline from the
current run when a real improvement or environment change lands.
"""

import argparse
import json
import shutil
import sys


def peak_qps(report, label):
    """Peak queries/sec of a report; exits with a readable message (not a
    traceback) on a hand-edited baseline with missing or zero peaks."""
    samples = report.get("samples", [])
    if not samples:
        raise SystemExit(f"error: no samples[] in {label} benchmark report")
    try:
        peak = max(float(s["queries_per_second"]) for s in samples)
    except (KeyError, TypeError, ValueError) as exc:
        raise SystemExit(
            f"error: {label} report has a sample without a numeric "
            f"queries_per_second field ({exc!r})"
        )
    if not peak > 0.0:  # also catches NaN
        raise SystemExit(
            f"error: {label} peak throughput is {peak}; a zero or negative "
            "peak cannot gate the build — fix or regenerate the report"
        )
    return peak


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_batch.json")
    parser.add_argument("current", help="freshly produced BENCH_batch.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional drop below baseline (default 0.25)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from the current run and exit 0",
    )
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    base_peak = peak_qps(baseline, "baseline")
    cur_peak = peak_qps(current, "current")
    floor = base_peak * (1.0 - args.tolerance)

    # Samples are keyed by (pricing, workers); old baselines without a
    # pricing field compare against the "exact" rows of a new run.
    def key(sample):
        return (sample.get("pricing", "exact"), sample["workers"])

    print(f"{'pricing':>8} {'workers':>8} {'baseline q/s':>14} "
          f"{'current q/s':>14}")
    base_by_key = {key(s): s for s in baseline.get("samples", [])}
    for sample in current.get("samples", []):
        base = base_by_key.get(key(sample))
        base_qps = f"{base['queries_per_second']:14.2f}" if base else " " * 14
        print(f"{sample.get('pricing', 'exact'):>8} {sample['workers']:>8} "
              f"{base_qps} {sample['queries_per_second']:14.2f}")
    print(
        f"peak: baseline {base_peak:.2f} q/s, current {cur_peak:.2f} q/s "
        f"({cur_peak / base_peak:.2f}x), floor {floor:.2f} q/s "
        f"(tolerance {args.tolerance:.0%})"
    )

    # Shared-cache memory and snapshot identity, tracked informationally
    # (never gating): one SlotCostCache per (world version, vehicle), so
    # the bytes trend catches an accidental per-worker duplication while
    # the version confirms which snapshot priced the run. Old reports
    # without the fields stay comparable.
    for label, report in (("baseline", baseline), ("current", current)):
        version = report.get("world_version")
        cache_bytes = report.get("slotcache_bytes")
        if version is not None or cache_bytes is not None:
            kib = f"{cache_bytes / 1024.0:.1f} KiB" \
                if cache_bytes is not None else "n/a"
            print(f"{label}: world v{version if version is not None else '?'}"
                  f", shared slot cache {kib}")

    if args.update:
        shutil.copyfile(args.current, args.baseline)
        print(f"updated {args.baseline} from {args.current}")
        return 0

    if cur_peak < floor:
        print(
            f"FAIL: current peak {cur_peak:.2f} q/s is more than "
            f"{args.tolerance:.0%} below baseline {base_peak:.2f} q/s",
            file=sys.stderr,
        )
        return 1
    print("OK: throughput within tolerance of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
