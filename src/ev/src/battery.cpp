#include "sunchase/ev/battery.h"

#include <algorithm>

#include "sunchase/common/error.h"

namespace sunchase::ev {

Battery::Battery(WattHours capacity) : Battery(capacity, capacity) {}

Battery::Battery(WattHours capacity, WattHours initial)
    : capacity_(capacity), charge_(initial) {
  if (capacity.value() <= 0.0)
    throw InvalidArgument("Battery: non-positive capacity");
  if (initial.value() < 0.0 || initial > capacity)
    throw InvalidArgument("Battery: initial charge outside [0, capacity]");
}

WattHours Battery::charge_by(WattHours amount) {
  if (amount.value() < 0.0)
    throw InvalidArgument("Battery::charge_by: negative amount");
  const WattHours stored =
      std::min(amount, capacity_ - charge_);
  charge_ += stored;
  return stored;
}

WattHours Battery::discharge_by(WattHours amount) {
  if (amount.value() < 0.0)
    throw InvalidArgument("Battery::discharge_by: negative amount");
  const WattHours delivered = std::min(amount, charge_);
  charge_ -= delivered;
  return delivered;
}

}  // namespace sunchase::ev
