#include "sunchase/ev/consumption.h"

#include "sunchase/common/error.h"

namespace sunchase::ev {

QuadraticConsumption::QuadraticConsumption(double a, double b,
                                           std::string name)
    : a_(a), b_(b), name_(std::move(name)) {
  if (a < 0.0 || b <= 0.0)
    throw InvalidArgument("QuadraticConsumption: need a >= 0, b > 0");
}

WattHours QuadraticConsumption::consumption(Meters distance,
                                            MetersPerSecond speed) const {
  if (speed.value() <= 0.0)
    throw InvalidArgument("consumption: non-positive speed");
  if (distance.value() < 0.0)
    throw InvalidArgument("consumption: negative distance");
  const double s_km = distance.value() / 1000.0;
  const double v_kmh = to_kmh(speed);
  return WattHours{s_km * (a_ * v_kmh * v_kmh + b_)};
}

std::unique_ptr<ConsumptionModel> make_lv_prototype() {
  return std::make_unique<QuadraticConsumption>(0.01, 33.0, "Lv prototype");
}

std::unique_ptr<ConsumptionModel> make_tesla_model_s() {
  return std::make_unique<QuadraticConsumption>(0.0266, 87.8,
                                                "Tesla Model S");
}

}  // namespace sunchase::ev
