// EV energy consumption models. The paper evaluates two vehicles:
// Lv's solar-EV prototype with E_out = S (a V^2 + b), a = 0.01, b = 33
// (Eq. 6, S in km, V in km/h, E in Wh), and a Tesla Model S (85 kWh)
// modeled from its official efficiency and range data.
#pragma once

#include <memory>
#include <string>

#include "sunchase/common/units.h"

namespace sunchase::ev {

/// Energy drawn from the battery to cover a distance at constant speed.
class ConsumptionModel {
 public:
  virtual ~ConsumptionModel() = default;

  /// Consumption for `distance` at cruising speed `speed`; throws
  /// InvalidArgument for non-positive speed or negative distance.
  [[nodiscard]] virtual WattHours consumption(Meters distance,
                                              MetersPerSecond speed) const = 0;

  /// Human-readable model name for reports ("Lv prototype", ...).
  [[nodiscard]] virtual std::string name() const = 0;
};

/// The quadratic speed model of Eq. 6: E[Wh] = S[km] (a V[km/h]^2 + b).
class QuadraticConsumption : public ConsumptionModel {
 public:
  /// Throws InvalidArgument unless a >= 0 and b > 0.
  QuadraticConsumption(double a, double b, std::string name);

  [[nodiscard]] WattHours consumption(Meters distance,
                                      MetersPerSecond speed) const override;
  [[nodiscard]] std::string name() const override { return name_; }

  [[nodiscard]] double a() const noexcept { return a_; }
  [[nodiscard]] double b() const noexcept { return b_; }

 private:
  double a_;
  double b_;
  std::string name_;
};

/// Lv's solar-powered EV prototype: a = 0.01, b = 33 (the paper's
/// "precise values" for Eq. 6).
[[nodiscard]] std::unique_ptr<ConsumptionModel> make_lv_prototype();

/// Tesla Model S (85 kWh): same quadratic form, calibrated so urban
/// crawl (~15 km/h) costs ~94 Wh/km, matching both the official
/// city-speed efficiency data the paper cites and the EC2 column of its
/// routing tables (a = 0.0266, b = 87.8).
[[nodiscard]] std::unique_ptr<ConsumptionModel> make_tesla_model_s();

}  // namespace sunchase::ev
