// Battery state-of-charge bookkeeping for multi-trip scenarios (the
// paper's one-day driving evaluation). Solar input charges, driving
// discharges; both clamp at the physical limits.
#pragma once

#include "sunchase/common/units.h"

namespace sunchase::ev {

/// A battery with capacity and current state of charge in watt-hours.
class Battery {
 public:
  /// Starts at `initial` (defaults to full). Throws InvalidArgument
  /// unless 0 < capacity and 0 <= initial <= capacity.
  explicit Battery(WattHours capacity);
  Battery(WattHours capacity, WattHours initial);

  [[nodiscard]] WattHours capacity() const noexcept { return capacity_; }
  [[nodiscard]] WattHours charge() const noexcept { return charge_; }
  [[nodiscard]] double state_of_charge() const noexcept {
    return charge_ / capacity_;
  }
  [[nodiscard]] bool empty() const noexcept { return charge_.value() <= 0.0; }

  /// Adds energy; returns the amount actually stored (clamped at
  /// capacity). Negative amounts are rejected with InvalidArgument.
  WattHours charge_by(WattHours amount);

  /// Removes energy; returns the amount actually delivered (clamped at
  /// zero — the vehicle strands rather than going negative). Negative
  /// amounts are rejected with InvalidArgument.
  WattHours discharge_by(WattHours amount);

 private:
  WattHours capacity_;
  WattHours charge_;
};

}  // namespace sunchase::ev
