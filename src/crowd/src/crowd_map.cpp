#include "sunchase/crowd/crowd_map.h"

#include <algorithm>

#include "sunchase/common/error.h"

namespace sunchase::crowd {

CrowdSolarMap::CrowdSolarMap(std::size_t edge_count,
                             shadow::ShadedFractionFn prior, Options options)
    : edge_count_(edge_count), prior_(std::move(prior)), options_(options) {
  if (edge_count == 0)
    throw InvalidArgument("CrowdSolarMap: zero edges");
  if (!prior_) throw InvalidArgument("CrowdSolarMap: null prior");
  if (options.first_slot < 0 || options.last_slot < options.first_slot ||
      options.last_slot >= TimeOfDay::kSlotsPerDay)
    throw InvalidArgument("CrowdSolarMap: bad slot window");
  if (options.min_observations < 1)
    throw InvalidArgument("CrowdSolarMap: min_observations < 1");
  const std::size_t slots =
      static_cast<std::size_t>(options.last_slot - options.first_slot + 1);
  cells_.assign(edge_count_ * slots, Cell{});
}

std::size_t CrowdSolarMap::index_of(roadnet::EdgeId edge, int slot) const {
  const int slots = options_.last_slot - options_.first_slot + 1;
  return static_cast<std::size_t>(edge) * static_cast<std::size_t>(slots) +
         static_cast<std::size_t>(slot - options_.first_slot);
}

void CrowdSolarMap::report(const Observation& observation) {
  if (observation.edge >= edge_count_)
    throw InvalidArgument("CrowdSolarMap::report: unknown edge");
  if (observation.slot < options_.first_slot ||
      observation.slot > options_.last_slot)
    throw InvalidArgument("CrowdSolarMap::report: slot outside window");
  if (observation.shaded_fraction < 0.0 || observation.shaded_fraction > 1.0)
    throw InvalidArgument("CrowdSolarMap::report: fraction outside [0,1]");
  Cell& cell = cells_[index_of(observation.edge, observation.slot)];
  cell.sum += observation.shaded_fraction;
  ++cell.count;
  ++total_observations_;
}

double CrowdSolarMap::shaded_fraction(roadnet::EdgeId edge,
                                      TimeOfDay when) const {
  if (edge >= edge_count_)
    throw InvalidArgument("CrowdSolarMap::shaded_fraction: unknown edge");
  const int slot =
      std::clamp(when.slot_index(), options_.first_slot, options_.last_slot);
  const Cell& cell = cells_[index_of(edge, slot)];
  if (cell.count >= options_.min_observations)
    return cell.sum / cell.count;
  return prior_(edge, TimeOfDay::slot_start(slot));
}

bool CrowdSolarMap::covered(roadnet::EdgeId edge, int slot) const {
  if (edge >= edge_count_)
    throw InvalidArgument("CrowdSolarMap::covered: unknown edge");
  if (slot < options_.first_slot || slot > options_.last_slot) return false;
  return cells_[index_of(edge, slot)].count >= options_.min_observations;
}

shadow::ShadedFractionFn CrowdSolarMap::estimator() const {
  return [this](roadnet::EdgeId edge, TimeOfDay when) {
    return shaded_fraction(edge, when);
  };
}

double CrowdSolarMap::coverage() const noexcept {
  if (cells_.empty()) return 0.0;
  const auto covered = std::count_if(
      cells_.begin(), cells_.end(), [this](const Cell& cell) {
        return cell.count >= options_.min_observations;
      });
  return static_cast<double>(covered) / static_cast<double>(cells_.size());
}

}  // namespace sunchase::crowd
