#include "sunchase/crowd/world_fold.h"

#include <memory>
#include <utility>

namespace sunchase::crowd {

core::WorldInit fold_observations(const core::World& base,
                                  const CrowdSolarMap& crowd) {
  core::WorldInit init = base.recipe();
  const shadow::ShadingProfile& prior = base.shading();
  const auto corrected = [&](roadnet::EdgeId edge, TimeOfDay when) {
    const int slot = when.slot_index();
    return crowd.covered(edge, slot) ? crowd.shaded_fraction(edge, when)
                                     : prior.shaded_fraction(edge, when);
  };
  init.shading = std::make_shared<const shadow::ShadingProfile>(
      shadow::ShadingProfile::compute(
          base.graph(), corrected,
          TimeOfDay::slot_start(prior.first_slot()),
          TimeOfDay::slot_start(prior.last_slot())));
  return init;
}

core::WorldPtr publish_crowd_world(core::WorldStore& store,
                                   const CrowdSolarMap& crowd) {
  return store.publish(fold_observations(*store.current(), crowd));
}

}  // namespace sunchase::crowd
