#include "sunchase/crowd/fleet.h"

#include <algorithm>

#include "sunchase/common/error.h"
#include "sunchase/common/rng.h"
#include "sunchase/core/dijkstra.h"

namespace sunchase::crowd {

std::vector<Observation> simulate_fleet(const roadnet::RoadGraph& graph,
                                        const shadow::Scene& scene,
                                        const roadnet::TrafficModel& traffic,
                                        const FleetOptions& options) {
  if (options.vehicles < 1 || options.trips_per_vehicle < 1)
    throw InvalidArgument("simulate_fleet: need >= 1 vehicle and trip");
  if (options.day_end <= options.day_start)
    throw InvalidArgument("simulate_fleet: empty day window");
  if (options.observation_noise_std < 0.0)
    throw InvalidArgument("simulate_fleet: negative noise");
  if (options.report_probability < 0.0 || options.report_probability > 1.0)
    throw InvalidArgument("simulate_fleet: report probability outside [0,1]");

  Rng rng(options.seed);
  // Ground truth: reality's shadows (slot-quantized like any consumer).
  const auto truth =
      shadow::make_exact_estimator(graph, scene, geo::DayOfYear{196});

  std::vector<Observation> observations;
  const auto nodes = static_cast<std::int64_t>(graph.node_count());
  for (int vehicle = 0; vehicle < options.vehicles; ++vehicle) {
    const auto vehicle_id = static_cast<std::uint64_t>(vehicle + 1);
    for (int trip = 0; trip < options.trips_per_vehicle; ++trip) {
      const auto origin =
          static_cast<roadnet::NodeId>(rng.uniform_int(0, nodes - 1));
      const auto destination =
          static_cast<roadnet::NodeId>(rng.uniform_int(0, nodes - 1));
      if (origin == destination) continue;
      const double window = options.day_end.since(options.day_start).value();
      TimeOfDay clock = options.day_start.advanced_by(
          Seconds{rng.uniform(0.0, window)});
      const auto route = core::detail::shortest_time_path(
          graph, traffic, origin, destination, clock);
      if (!route) continue;
      for (const roadnet::EdgeId e : route->path.edges) {
        if (rng.bernoulli(options.report_probability)) {
          const double observed = std::clamp(
              truth(e, clock) +
                  rng.normal(0.0, options.observation_noise_std),
              0.0, 1.0);
          observations.push_back(
              Observation{e, clock.slot_index(), observed, vehicle_id});
        }
        clock = clock.advanced_by(traffic.travel_time(graph, e, clock));
      }
    }
  }
  return observations;
}

}  // namespace sunchase::crowd
