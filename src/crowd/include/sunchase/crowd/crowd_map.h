// Crowd-sensed solar map — the paper's Sec. VI future work: "a driver
// can mount the smartphone on the windshield ... capturing the on-road
// shadow conditions using its front-facing cameras. By collecting the
// real-time shadow information across thousands of phones in moving
// vehicles, we are able to draw a comprehensive solar input map."
//
// The CrowdSolarMap aggregates per-edge, per-15-minute-slot shadow
// observations from probe vehicles; cells without enough reports fall
// back to a prior (typically the static 3D-model estimate), so the
// crowd layer corrects the model where traffic actually flows —
// including obstructions the 3D database does not know about
// (construction, seasonal foliage), which the paper names as the main
// source of model error.
#pragma once

#include <cstdint>
#include <vector>

#include "sunchase/common/time_of_day.h"
#include "sunchase/roadnet/graph.h"
#include "sunchase/shadow/shading.h"

namespace sunchase::crowd {

/// One report from one vehicle: "edge e looked f shaded during slot s".
struct Observation {
  roadnet::EdgeId edge = roadnet::kInvalidEdge;
  int slot = 0;                  ///< 15-minute slot index [0, 96)
  double shaded_fraction = 0.0;  ///< camera estimate in [0, 1]
  std::uint64_t vehicle_id = 0;
};

class CrowdSolarMap {
 public:
  struct Options {
    int first_slot = 32;          ///< 08:00
    int last_slot = 74;           ///< 18:30
    /// Reports required before a cell overrides the prior.
    int min_observations = 1;
  };

  /// `prior` answers for cells without crowd data (e.g. the vision or
  /// exact model estimate); it must be valid for this map's lifetime.
  CrowdSolarMap(std::size_t edge_count, shadow::ShadedFractionFn prior,
                Options options);

  /// Ingests one observation; throws InvalidArgument when the edge,
  /// slot, or fraction is out of range.
  void report(const Observation& observation);

  /// Crowd mean for the cell when it has enough reports, otherwise the
  /// prior. Times outside the slot window clamp to its edges.
  [[nodiscard]] double shaded_fraction(roadnet::EdgeId edge,
                                       TimeOfDay when) const;

  /// Whether the (edge, slot) cell has enough reports to override the
  /// prior; false for slots outside the map's window. Throws
  /// InvalidArgument for an unknown edge. World folding uses this to
  /// fall back to the base snapshot's profile instead of the prior.
  [[nodiscard]] bool covered(roadnet::EdgeId edge, int slot) const;

  /// Estimator view for ShadingProfile::compute (captures `this`; keep
  /// the map alive).
  [[nodiscard]] shadow::ShadedFractionFn estimator() const;

  /// Fraction of (edge, slot) cells with at least min_observations.
  [[nodiscard]] double coverage() const noexcept;

  [[nodiscard]] std::size_t observation_count() const noexcept {
    return total_observations_;
  }

 private:
  struct Cell {
    double sum = 0.0;
    int count = 0;
  };

  [[nodiscard]] std::size_t index_of(roadnet::EdgeId edge, int slot) const;

  std::size_t edge_count_;
  shadow::ShadedFractionFn prior_;
  Options options_;
  std::vector<Cell> cells_;
  std::size_t total_observations_ = 0;
};

}  // namespace sunchase::crowd
