// Probe-fleet simulation: vehicles drive ordinary trips through the
// day and their windshield cameras report the shadow state of every
// street they traverse. Substitutes the paper's envisioned "thousands
// of phones in moving vehicles".
#pragma once

#include <vector>

#include "sunchase/crowd/crowd_map.h"
#include "sunchase/roadnet/traffic.h"
#include "sunchase/shadow/scene.h"

namespace sunchase::crowd {

struct FleetOptions {
  int vehicles = 50;
  int trips_per_vehicle = 6;
  /// Standard deviation of the camera's shaded-fraction estimate.
  double observation_noise_std = 0.06;
  /// Probability a traversal produces a usable report (cameras miss
  /// frames, uploads fail).
  double report_probability = 0.9;
  TimeOfDay day_start = TimeOfDay::hms(9, 0);
  TimeOfDay day_end = TimeOfDay::hms(17, 0);
  std::uint64_t seed = 777;
};

/// Simulates the fleet against ground truth from `scene` (shadows are
/// what reality casts, not what any model predicts): each vehicle runs
/// `trips_per_vehicle` shortest-time trips between random intersections
/// at random times of day and reports a noisy shaded fraction for each
/// traversed edge. Deterministic from the seed.
[[nodiscard]] std::vector<Observation> simulate_fleet(
    const roadnet::RoadGraph& graph, const shadow::Scene& scene,
    const roadnet::TrafficModel& traffic, const FleetOptions& options);

}  // namespace sunchase::crowd
