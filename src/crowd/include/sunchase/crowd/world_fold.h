// Folds crowdsensed shadow observations into the versioned world
// stream: the paper's Sec. VI vision of a crowd-drawn solar map, made
// operational. A CrowdSolarMap's covered cells correct the base
// snapshot's shading profile; everything else (graph, traffic, panel
// power, vehicles) is carried over by shared_ptr, so publishing the
// corrected world costs one profile resample plus the solar-map
// rebuild — and in-flight queries keep the snapshot they pinned.
#pragma once

#include "sunchase/core/world.h"
#include "sunchase/core/world_store.h"
#include "sunchase/crowd/crowd_map.h"

namespace sunchase::crowd {

/// The base snapshot's recipe with its shading profile replaced by a
/// crowd-corrected one: cells the crowd covers (enough reports) take
/// the crowd mean; every other (edge, slot) keeps the base profile's
/// value — NOT the crowd map's own prior, so folding never degrades
/// cells the fleet did not drive. The corrected profile samples the
/// same slot window as the base.
[[nodiscard]] core::WorldInit fold_observations(const core::World& base,
                                                const CrowdSolarMap& crowd);

/// Folds the crowd map into the store's current snapshot and publishes
/// the result as the next world version. Readers pinned to older
/// versions are unaffected; new queries pick up the corrected shading.
core::WorldPtr publish_crowd_world(core::WorldStore& store,
                                   const CrowdSolarMap& crowd);

}  // namespace sunchase::crowd
