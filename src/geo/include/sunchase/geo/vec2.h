// Plain 2D vector in local planar (east, north) meters. Used for all
// shadow geometry after projecting lat/lon through a LocalProjection.
#pragma once

#include <cmath>

namespace sunchase::geo {

/// 2D point/vector; x = meters east, y = meters north of a local origin.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2 operator+(Vec2 o) const noexcept { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const noexcept { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const noexcept { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const noexcept { return {x / s, y / s}; }
  constexpr Vec2 operator-() const noexcept { return {-x, -y}; }
  constexpr Vec2& operator+=(Vec2 o) noexcept {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Vec2& operator-=(Vec2 o) noexcept {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  friend constexpr bool operator==(Vec2 a, Vec2 b) noexcept = default;
};

constexpr Vec2 operator*(double s, Vec2 v) noexcept { return v * s; }

constexpr double dot(Vec2 a, Vec2 b) noexcept { return a.x * b.x + a.y * b.y; }
/// z-component of the 3D cross product; > 0 when b is CCW of a.
constexpr double cross(Vec2 a, Vec2 b) noexcept { return a.x * b.y - a.y * b.x; }
inline double norm(Vec2 v) noexcept { return std::hypot(v.x, v.y); }
constexpr double norm_squared(Vec2 v) noexcept { return dot(v, v); }

/// Unit vector in v's direction; returns {0,0} for a zero vector.
inline Vec2 normalized(Vec2 v) noexcept {
  const double n = norm(v);
  return n > 0.0 ? v / n : Vec2{};
}

/// v rotated CCW by `radians`.
inline Vec2 rotated(Vec2 v, double radians) noexcept {
  const double c = std::cos(radians), s = std::sin(radians);
  return {c * v.x - s * v.y, s * v.x + c * v.y};
}

/// Perpendicular (CCW 90°).
constexpr Vec2 perp(Vec2 v) noexcept { return {-v.y, v.x}; }

inline double distance(Vec2 a, Vec2 b) noexcept { return norm(b - a); }

}  // namespace sunchase::geo
