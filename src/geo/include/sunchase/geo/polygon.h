// Simple polygons in local planar coordinates: areas, containment,
// convex hulls, and the convex clipping used to intersect road segments
// with shadow polygons.
#pragma once

#include <optional>
#include <vector>

#include "sunchase/geo/segment.h"
#include "sunchase/geo/vec2.h"

namespace sunchase::geo {

/// A simple polygon stored as a CCW or CW ring of vertices (no explicit
/// closure vertex). Invariant-free aggregate per Core Guidelines C.2:
/// helpers below validate/normalize as needed.
struct Polygon {
  std::vector<Vec2> vertices;

  [[nodiscard]] std::size_t size() const noexcept { return vertices.size(); }
  [[nodiscard]] bool empty() const noexcept { return vertices.empty(); }
};

/// Signed area (> 0 for CCW rings), by the shoelace formula.
[[nodiscard]] double signed_area(const Polygon& poly) noexcept;

/// Absolute enclosed area.
[[nodiscard]] double area(const Polygon& poly) noexcept;

/// Reverses the ring if needed so that it winds counter-clockwise.
void make_ccw(Polygon& poly) noexcept;

/// Point-in-polygon by the crossing-number rule; boundary points count
/// as inside (tolerant of rasterization round-off).
[[nodiscard]] bool contains(const Polygon& poly, Vec2 p) noexcept;

/// Axis-aligned bounding box (min, max); precondition: non-empty.
[[nodiscard]] std::pair<Vec2, Vec2> bounding_box(const Polygon& poly);

/// Convex hull (Andrew monotone chain), returned CCW. Duplicates and
/// collinear boundary points are dropped.
[[nodiscard]] Polygon convex_hull(std::vector<Vec2> points);

/// True when the ring is convex (assumes CCW orientation).
[[nodiscard]] bool is_convex(const Polygon& poly) noexcept;

/// Clips segment `s` against a *convex* CCW polygon (Cyrus–Beck) and
/// returns the parameter interval of `s` inside the polygon, or nullopt
/// when the segment misses it. Precondition: polygon has >= 3 vertices.
[[nodiscard]] std::optional<Interval> clip_segment_to_convex(
    const Segment& s, const Polygon& convex_ccw);

/// Polygon translated by `offset` (used to slide building footprints
/// along the sun direction when building shadow volumes).
[[nodiscard]] Polygon translated(const Polygon& poly, Vec2 offset);

/// Regular n-gon approximation of a disc (tree canopies).
[[nodiscard]] Polygon regular_polygon(Vec2 center, double radius, int sides);

/// Axis-aligned rectangle from min/max corners.
[[nodiscard]] Polygon rectangle(Vec2 min_corner, Vec2 max_corner);

}  // namespace sunchase::geo
