// Solar geometry: where is the sun, and which way (and how far) do
// shadows fall. Replaces the ArcGIS 3D-scene sunlight simulation the
// paper uses, with the standard NOAA solar-position approximations.
#pragma once

#include "sunchase/common/time_of_day.h"
#include "sunchase/geo/latlon.h"
#include "sunchase/geo/vec2.h"

namespace sunchase::geo {

/// Sun direction at an instant. Azimuth is measured clockwise from true
/// north (0 = north, pi/2 = east); elevation from the horizon plane.
struct SunPosition {
  double elevation_rad = 0.0;
  double azimuth_rad = 0.0;

  /// True when the sun is above the horizon.
  [[nodiscard]] bool is_up() const noexcept { return elevation_rad > 0.0; }
};

/// Calendar date within a year; only the day-of-year matters for solar
/// declination. July 15 (day 196) is the default test day, matching the
/// paper's July experiments in Montreal.
struct DayOfYear {
  int day = 196;
};

/// Computes the sun position from the NOAA general solar position
/// approximation: fractional year -> equation of time + declination ->
/// true solar time -> hour angle -> elevation/azimuth.
///
/// `utc_offset_hours` is the local clock's offset from UTC (Montreal in
/// July: -4 for EDT).
[[nodiscard]] SunPosition sun_position(LatLon where, DayOfYear day,
                                       TimeOfDay local_time,
                                       double utc_offset_hours = -4.0) noexcept;

/// Unit ground vector pointing *away* from the sun — the direction a
/// shadow extends from the object that casts it.
[[nodiscard]] Vec2 shadow_direction(const SunPosition& sun) noexcept;

/// Ground-shadow length of an object of height `h` (meters): h / tan(el).
/// Clamped at `max_factor * h` near sunrise/sunset where tan(el) -> 0,
/// mirroring the finite scene extent of the paper's 3D renders.
[[nodiscard]] double shadow_length(const SunPosition& sun, double height_m,
                                   double max_factor = 20.0) noexcept;

/// Solar declination (radians) for the day, exposed for tests.
[[nodiscard]] double solar_declination(DayOfYear day) noexcept;

/// Equation of time (minutes) for the day, exposed for tests.
[[nodiscard]] double equation_of_time_minutes(DayOfYear day) noexcept;

}  // namespace sunchase::geo
