// Geographic coordinates and the Haversine great-circle distance the
// paper uses for edge lengths (Eq. 7), plus a local tangent-plane
// projection for the shadow geometry.
#pragma once

#include "sunchase/common/units.h"
#include "sunchase/geo/vec2.h"

namespace sunchase::geo {

/// WGS84 mean Earth radius, the `r` of the paper's Eq. 7.
inline constexpr double kEarthRadiusMeters = 6371008.8;

/// A geographic coordinate in degrees. Latitude in [-90, 90], longitude
/// in [-180, 180]; construction does not validate (aggregate), the
/// validation helper is `is_valid`.
struct LatLon {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  friend constexpr bool operator==(LatLon a, LatLon b) noexcept = default;
};

[[nodiscard]] constexpr bool is_valid(LatLon p) noexcept {
  return p.lat_deg >= -90.0 && p.lat_deg <= 90.0 && p.lon_deg >= -180.0 &&
         p.lon_deg <= 180.0;
}

/// Great-circle distance between two coordinates by the Haversine
/// formula (paper Eq. 7).
[[nodiscard]] Meters haversine_distance(LatLon a, LatLon b) noexcept;

/// Equirectangular local projection around an origin: good to centimeter
/// error over the few-kilometer extents of the paper's downtown scenes,
/// and exactly invertible, which the tests verify.
class LocalProjection {
 public:
  explicit LocalProjection(LatLon origin) noexcept;

  /// Geographic -> local planar meters (east = +x, north = +y).
  [[nodiscard]] Vec2 to_local(LatLon p) const noexcept;
  /// Local planar meters -> geographic.
  [[nodiscard]] LatLon to_geo(Vec2 v) const noexcept;

  [[nodiscard]] LatLon origin() const noexcept { return origin_; }

 private:
  LatLon origin_;
  double meters_per_deg_lat_;
  double meters_per_deg_lon_;
};

}  // namespace sunchase::geo
