// A top-down grayscale raster over a local planar scene. This is the
// "2D imagery of 3D scenes" of the paper's vision pipeline: the shadow
// substrate renders roads/shadows into it, then binarization and
// area-ratio counting estimate shaded road lengths (paper Eq. 8-9).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sunchase/geo/polygon.h"
#include "sunchase/geo/vec2.h"

namespace sunchase::geo {

/// Mapping between world meters and pixel indices. Pixel (0,0) is the
/// *top-left* of the image (north-west corner of the scene), matching
/// image conventions: world y decreases as the row index grows.
struct RasterFrame {
  Vec2 world_min;        ///< south-west corner of the imaged area
  Vec2 world_max;        ///< north-east corner
  double meters_per_px;  ///< square pixels

  [[nodiscard]] int width_px() const noexcept;
  [[nodiscard]] int height_px() const noexcept;
};

/// 8-bit grayscale image with a world frame.
class Raster {
 public:
  /// Creates an image covering `frame`, cleared to `background`.
  /// Throws InvalidArgument if the frame is degenerate or enormous.
  Raster(RasterFrame frame, std::uint8_t background = 0);

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }
  [[nodiscard]] const RasterFrame& frame() const noexcept { return frame_; }

  /// Pixel accessors; precondition: in bounds.
  [[nodiscard]] std::uint8_t at(int x, int y) const;
  void set(int x, int y, std::uint8_t v);

  /// World coordinate of a pixel center / pixel containing a world point.
  [[nodiscard]] Vec2 pixel_center(int x, int y) const noexcept;
  [[nodiscard]] std::pair<int, int> to_pixel(Vec2 world) const noexcept;
  [[nodiscard]] bool in_bounds(int x, int y) const noexcept {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  /// Paints every pixel whose center lies inside `poly` with `value`.
  void fill_polygon(const Polygon& poly, std::uint8_t value);

  /// Like fill_polygon but keeps the darker of existing/new value —
  /// overlapping shadows do not brighten each other.
  void darken_polygon(const Polygon& poly, std::uint8_t value);

  /// Paints a road corridor: all pixels within `half_width` meters of
  /// the segment get `value`.
  void fill_corridor(const Segment& s, double half_width_m,
                     std::uint8_t value);

  /// Counts pixels within `half_width` of the segment satisfying `pred`.
  [[nodiscard]] long count_corridor(
      const Segment& s, double half_width_m,
      const std::function<bool(std::uint8_t)>& pred) const;

  /// In-place threshold: >= threshold -> 255, else 0 (binarization step).
  void binarize(std::uint8_t threshold);

  /// Writes a binary PGM (P5) image for visual inspection.
  void write_pgm(const std::string& path) const;

  /// Raw row-major pixel store (read-only), for tests and Hough.
  [[nodiscard]] const std::vector<std::uint8_t>& pixels() const noexcept {
    return data_;
  }

 private:
  void for_each_pixel_in_box(Vec2 lo, Vec2 hi,
                             const std::function<void(int, int)>& fn) const;

  RasterFrame frame_;
  int width_;
  int height_;
  std::vector<std::uint8_t> data_;
};

}  // namespace sunchase::geo
