// Line segments in local planar coordinates, plus the interval algebra
// used to turn "segment ∩ shadow polygons" into a shaded length.
#pragma once

#include <optional>
#include <vector>

#include "sunchase/geo/vec2.h"

namespace sunchase::geo {

/// Directed line segment from `a` to `b`.
struct Segment {
  Vec2 a;
  Vec2 b;

  [[nodiscard]] double length() const noexcept { return distance(a, b); }
  /// Point at parameter t in [0,1] along the segment.
  [[nodiscard]] Vec2 point_at(double t) const noexcept {
    return a + (b - a) * t;
  }
  [[nodiscard]] Vec2 direction() const noexcept { return normalized(b - a); }
};

/// Shortest distance from point `p` to the segment.
[[nodiscard]] double distance_to_segment(Vec2 p, const Segment& s) noexcept;

/// Parameter of the point on `s` closest to `p`, clamped to [0,1].
[[nodiscard]] double project_onto_segment(Vec2 p, const Segment& s) noexcept;

/// Intersection parameter pair (t on s1, u on s2) if the two segments
/// properly intersect (including touching endpoints); nullopt if
/// parallel or disjoint.
[[nodiscard]] std::optional<std::pair<double, double>> intersect(
    const Segment& s1, const Segment& s2) noexcept;

/// A half-open parameter interval [lo, hi] within [0,1] along a segment.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  [[nodiscard]] double length() const noexcept { return hi - lo; }
  friend constexpr bool operator==(Interval, Interval) noexcept = default;
};

/// Sorts and merges overlapping/adjacent intervals in place; returns the
/// merged list. Total covered length = sum of merged lengths.
[[nodiscard]] std::vector<Interval> merge_intervals(
    std::vector<Interval> intervals) noexcept;

/// Total length covered by the (possibly overlapping) intervals.
[[nodiscard]] double covered_length(std::vector<Interval> intervals) noexcept;

}  // namespace sunchase::geo
