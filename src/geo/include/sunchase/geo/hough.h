// Probabilistic Hough line transform. The paper locates road
// center-lines and intersection nodes in the binarized scene imagery
// with a probabilistic Hough transform (Sec. IV-B2); this is that
// detector, operating on a binary Raster.
#pragma once

#include <vector>

#include "sunchase/common/rng.h"
#include "sunchase/geo/raster.h"
#include "sunchase/geo/segment.h"

namespace sunchase::geo {

/// A detected line in Hesse normal form plus its supporting pixel count.
/// rho is the signed distance (pixels) from the image origin, theta the
/// normal angle in [0, pi).
struct HoughLine {
  double rho_px = 0.0;
  double theta_rad = 0.0;
  int votes = 0;
};

struct HoughParams {
  double rho_resolution_px = 1.0;
  double theta_resolution_rad = 0.01745;  ///< 1 degree
  int vote_threshold = 50;       ///< min accumulator votes to accept a line
  double sample_fraction = 0.5;  ///< fraction of foreground pixels voted
  int max_lines = 64;
  double suppression_rho_px = 8.0;     ///< non-max suppression window
  double suppression_theta_rad = 0.1;  ///< ~6 degrees
};

/// Runs the probabilistic Hough transform over foreground (255) pixels
/// of a binary raster. Votes from a random `sample_fraction` subset of
/// foreground pixels fill a (rho, theta) accumulator; peaks above the
/// vote threshold are returned strongest-first after non-maximum
/// suppression.
[[nodiscard]] std::vector<HoughLine> hough_lines(const Raster& binary,
                                                 const HoughParams& params,
                                                 Rng& rng);

/// World-space segment obtained by clipping a detected Hough line to the
/// raster frame. Useful for snapping detections onto known road edges.
[[nodiscard]] Segment line_to_world_segment(const HoughLine& line,
                                            const Raster& raster);

}  // namespace sunchase::geo
