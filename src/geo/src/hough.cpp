#include "sunchase/geo/hough.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "sunchase/common/assert.h"

namespace sunchase::geo {

namespace {
constexpr double kPi = std::numbers::pi;
}

std::vector<HoughLine> hough_lines(const Raster& binary,
                                   const HoughParams& params, Rng& rng) {
  SUNCHASE_EXPECTS(params.rho_resolution_px > 0.0);
  SUNCHASE_EXPECTS(params.theta_resolution_rad > 0.0);
  SUNCHASE_EXPECTS(params.sample_fraction > 0.0 &&
                   params.sample_fraction <= 1.0);

  // Collect foreground pixel coordinates.
  std::vector<std::pair<int, int>> fg;
  for (int y = 0; y < binary.height(); ++y)
    for (int x = 0; x < binary.width(); ++x)
      if (binary.at(x, y) == 255) fg.emplace_back(x, y);
  if (fg.empty()) return {};

  const double diag = std::hypot(binary.width(), binary.height());
  const int n_rho =
      static_cast<int>(std::ceil(2.0 * diag / params.rho_resolution_px)) + 1;
  const int n_theta =
      static_cast<int>(std::ceil(kPi / params.theta_resolution_rad));

  // Precompute the theta table once; the accumulator is rho-major.
  std::vector<double> cos_t(static_cast<std::size_t>(n_theta));
  std::vector<double> sin_t(static_cast<std::size_t>(n_theta));
  for (int t = 0; t < n_theta; ++t) {
    const double theta = t * params.theta_resolution_rad;
    cos_t[static_cast<std::size_t>(t)] = std::cos(theta);
    sin_t[static_cast<std::size_t>(t)] = std::sin(theta);
  }

  std::vector<int> acc(static_cast<std::size_t>(n_rho) *
                       static_cast<std::size_t>(n_theta));
  // Probabilistic part: vote with a random subset of foreground pixels.
  for (const auto& [x, y] : fg) {
    if (!rng.bernoulli(params.sample_fraction)) continue;
    for (int t = 0; t < n_theta; ++t) {
      const double rho = x * cos_t[static_cast<std::size_t>(t)] +
                         y * sin_t[static_cast<std::size_t>(t)];
      const int r = static_cast<int>(
          std::lround((rho + diag) / params.rho_resolution_px));
      if (r >= 0 && r < n_rho)
        ++acc[static_cast<std::size_t>(r) * static_cast<std::size_t>(n_theta) +
              static_cast<std::size_t>(t)];
    }
  }

  // Peak extraction with greedy non-maximum suppression.
  struct Peak {
    int r, t, votes;
  };
  std::vector<Peak> peaks;
  for (int r = 0; r < n_rho; ++r)
    for (int t = 0; t < n_theta; ++t) {
      const int v = acc[static_cast<std::size_t>(r) *
                            static_cast<std::size_t>(n_theta) +
                        static_cast<std::size_t>(t)];
      if (v >= params.vote_threshold) peaks.push_back({r, t, v});
    }
  std::sort(peaks.begin(), peaks.end(),
            [](const Peak& a, const Peak& b) { return a.votes > b.votes; });

  std::vector<HoughLine> lines;
  const double sup_r = params.suppression_rho_px / params.rho_resolution_px;
  const double sup_t =
      params.suppression_theta_rad / params.theta_resolution_rad;
  for (const Peak& p : peaks) {
    if (static_cast<int>(lines.size()) >= params.max_lines) break;
    const double rho = p.r * params.rho_resolution_px - diag;
    const double theta = p.t * params.theta_resolution_rad;
    bool suppressed = false;
    for (const HoughLine& kept : lines) {
      const double dr =
          std::abs(kept.rho_px - rho) / params.rho_resolution_px;
      // Theta wraps at pi (rho flips sign); compare circularly.
      double dt = std::abs(kept.theta_rad - theta);
      dt = std::min(dt, kPi - dt) / params.theta_resolution_rad;
      if (dr < sup_r && dt < sup_t) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) lines.push_back({rho, theta, p.votes});
  }
  return lines;
}

Segment line_to_world_segment(const HoughLine& line, const Raster& raster) {
  // The line is x cos(theta) + y sin(theta) = rho in *pixel* space.
  // Walk it across the image and convert the two border crossings.
  const double c = std::cos(line.theta_rad);
  const double s = std::sin(line.theta_rad);
  // Point on the line closest to the pixel origin, plus the direction.
  const Vec2 p0{line.rho_px * c, line.rho_px * s};
  const Vec2 dir{-s, c};
  const double diag = std::hypot(raster.width(), raster.height());
  const Vec2 a_px = p0 - dir * diag;
  const Vec2 b_px = p0 + dir * diag;

  auto px_to_world = [&](Vec2 px) {
    const auto& f = raster.frame();
    return Vec2{f.world_min.x + px.x * f.meters_per_px,
                f.world_max.y - px.y * f.meters_per_px};
  };
  return Segment{px_to_world(a_px), px_to_world(b_px)};
}

}  // namespace sunchase::geo
