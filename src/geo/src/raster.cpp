#include "sunchase/geo/raster.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "sunchase/common/assert.h"
#include "sunchase/common/error.h"

namespace sunchase::geo {

int RasterFrame::width_px() const noexcept {
  return static_cast<int>(
      std::ceil((world_max.x - world_min.x) / meters_per_px));
}

int RasterFrame::height_px() const noexcept {
  return static_cast<int>(
      std::ceil((world_max.y - world_min.y) / meters_per_px));
}

Raster::Raster(RasterFrame frame, std::uint8_t background)
    : frame_(frame), width_(frame.width_px()), height_(frame.height_px()) {
  if (frame.meters_per_px <= 0.0 || width_ <= 0 || height_ <= 0)
    throw InvalidArgument("Raster: degenerate frame");
  if (static_cast<long>(width_) * height_ > 64L * 1024 * 1024)
    throw InvalidArgument("Raster: frame exceeds 64 Mpixel safety limit");
  data_.assign(static_cast<std::size_t>(width_) *
                   static_cast<std::size_t>(height_),
               background);
}

std::uint8_t Raster::at(int x, int y) const {
  SUNCHASE_EXPECTS(in_bounds(x, y));
  return data_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
               static_cast<std::size_t>(x)];
}

void Raster::set(int x, int y, std::uint8_t v) {
  SUNCHASE_EXPECTS(in_bounds(x, y));
  data_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
        static_cast<std::size_t>(x)] = v;
}

Vec2 Raster::pixel_center(int x, int y) const noexcept {
  return {frame_.world_min.x + (x + 0.5) * frame_.meters_per_px,
          frame_.world_max.y - (y + 0.5) * frame_.meters_per_px};
}

std::pair<int, int> Raster::to_pixel(Vec2 world) const noexcept {
  const int x = static_cast<int>(
      std::floor((world.x - frame_.world_min.x) / frame_.meters_per_px));
  const int y = static_cast<int>(
      std::floor((frame_.world_max.y - world.y) / frame_.meters_per_px));
  return {x, y};
}

void Raster::for_each_pixel_in_box(
    Vec2 lo, Vec2 hi, const std::function<void(int, int)>& fn) const {
  auto [x0, y1] = to_pixel(lo);  // low world y -> high pixel row
  auto [x1, y0] = to_pixel(hi);
  x0 = std::max(x0, 0);
  y0 = std::max(y0, 0);
  x1 = std::min(x1, width_ - 1);
  y1 = std::min(y1, height_ - 1);
  for (int y = y0; y <= y1; ++y)
    for (int x = x0; x <= x1; ++x) fn(x, y);
}

void Raster::fill_polygon(const Polygon& poly, std::uint8_t value) {
  if (poly.size() < 3) return;
  const auto [lo, hi] = bounding_box(poly);
  for_each_pixel_in_box(lo, hi, [&](int x, int y) {
    if (contains(poly, pixel_center(x, y))) set(x, y, value);
  });
}

void Raster::darken_polygon(const Polygon& poly, std::uint8_t value) {
  if (poly.size() < 3) return;
  const auto [lo, hi] = bounding_box(poly);
  for_each_pixel_in_box(lo, hi, [&](int x, int y) {
    if (at(x, y) > value && contains(poly, pixel_center(x, y)))
      set(x, y, value);
  });
}

void Raster::fill_corridor(const Segment& s, double half_width_m,
                           std::uint8_t value) {
  SUNCHASE_EXPECTS(half_width_m > 0.0);
  const Vec2 pad{half_width_m, half_width_m};
  const Vec2 lo{std::min(s.a.x, s.b.x), std::min(s.a.y, s.b.y)};
  const Vec2 hi{std::max(s.a.x, s.b.x), std::max(s.a.y, s.b.y)};
  for_each_pixel_in_box(lo - pad, hi + pad, [&](int x, int y) {
    if (distance_to_segment(pixel_center(x, y), s) <= half_width_m)
      set(x, y, value);
  });
}

long Raster::count_corridor(const Segment& s, double half_width_m,
                            const std::function<bool(std::uint8_t)>& pred) const {
  SUNCHASE_EXPECTS(half_width_m > 0.0);
  long count = 0;
  const Vec2 pad{half_width_m, half_width_m};
  const Vec2 lo{std::min(s.a.x, s.b.x), std::min(s.a.y, s.b.y)};
  const Vec2 hi{std::max(s.a.x, s.b.x), std::max(s.a.y, s.b.y)};
  for_each_pixel_in_box(lo - pad, hi + pad, [&](int x, int y) {
    if (distance_to_segment(pixel_center(x, y), s) <= half_width_m &&
        pred(at(x, y)))
      ++count;
  });
  return count;
}

void Raster::binarize(std::uint8_t threshold) {
  for (std::uint8_t& px : data_) px = (px >= threshold) ? 255 : 0;
}

void Raster::write_pgm(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("Raster::write_pgm: cannot open '" + path + "'");
  out << "P5\n" << width_ << ' ' << height_ << "\n255\n";
  out.write(reinterpret_cast<const char*>(data_.data()),
            static_cast<std::streamsize>(data_.size()));
  if (!out) throw IoError("Raster::write_pgm: write failed for '" + path + "'");
}

}  // namespace sunchase::geo
