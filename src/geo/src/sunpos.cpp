#include "sunchase/geo/sunpos.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace sunchase::geo {

namespace {
constexpr double kPi = std::numbers::pi;

/// NOAA "fractional year" in radians at local solar noon of the day.
double fractional_year(DayOfYear day, double hour) noexcept {
  return 2.0 * kPi / 365.0 * (day.day - 1 + (hour - 12.0) / 24.0);
}
}  // namespace

double solar_declination(DayOfYear day) noexcept {
  const double g = fractional_year(day, 12.0);
  // NOAA Fourier-series approximation of declination (radians).
  return 0.006918 - 0.399912 * std::cos(g) + 0.070257 * std::sin(g) -
         0.006758 * std::cos(2 * g) + 0.000907 * std::sin(2 * g) -
         0.002697 * std::cos(3 * g) + 0.00148 * std::sin(3 * g);
}

double equation_of_time_minutes(DayOfYear day) noexcept {
  const double g = fractional_year(day, 12.0);
  return 229.18 * (0.000075 + 0.001868 * std::cos(g) - 0.032077 * std::sin(g) -
                   0.014615 * std::cos(2 * g) - 0.040849 * std::sin(2 * g));
}

SunPosition sun_position(LatLon where, DayOfYear day, TimeOfDay local_time,
                         double utc_offset_hours) noexcept {
  const double lat = where.lat_deg * kPi / 180.0;
  const double decl = solar_declination(day);
  const double eot = equation_of_time_minutes(day);

  // True solar time in minutes: local clock + equation of time
  // + 4 minutes per degree of longitude east of the zone meridian.
  const double clock_minutes = local_time.seconds_since_midnight() / 60.0;
  const double time_offset = eot + 4.0 * where.lon_deg - 60.0 * utc_offset_hours;
  const double true_solar_minutes = clock_minutes + time_offset;

  // Hour angle: 0 at solar noon, negative mornings (radians).
  const double hour_angle = (true_solar_minutes / 4.0 - 180.0) * kPi / 180.0;

  const double sin_el = std::sin(lat) * std::sin(decl) +
                        std::cos(lat) * std::cos(decl) * std::cos(hour_angle);
  const double elevation = std::asin(std::clamp(sin_el, -1.0, 1.0));

  // Azimuth clockwise from north via atan2 of the sun vector's
  // east/north components (stable at all elevations).
  const double east = -std::cos(decl) * std::sin(hour_angle);
  const double north = std::sin(decl) * std::cos(lat) -
                       std::cos(decl) * std::sin(lat) * std::cos(hour_angle);
  double azimuth = std::atan2(east, north);
  if (azimuth < 0.0) azimuth += 2.0 * kPi;

  return SunPosition{elevation, azimuth};
}

Vec2 shadow_direction(const SunPosition& sun) noexcept {
  // Sun at azimuth A (clockwise from north) -> ground direction toward
  // the sun is (sin A, cos A); shadows extend the opposite way.
  return {-std::sin(sun.azimuth_rad), -std::cos(sun.azimuth_rad)};
}

double shadow_length(const SunPosition& sun, double height_m,
                     double max_factor) noexcept {
  if (!sun.is_up() || height_m <= 0.0) return 0.0;
  const double t = std::tan(sun.elevation_rad);
  if (t <= 0.0) return height_m * max_factor;
  return std::min(height_m / t, height_m * max_factor);
}

}  // namespace sunchase::geo
