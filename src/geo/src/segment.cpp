#include "sunchase/geo/segment.h"

#include <algorithm>
#include <cmath>

namespace sunchase::geo {

double project_onto_segment(Vec2 p, const Segment& s) noexcept {
  const Vec2 d = s.b - s.a;
  const double len2 = norm_squared(d);
  if (len2 <= 0.0) return 0.0;
  const double t = dot(p - s.a, d) / len2;
  return std::clamp(t, 0.0, 1.0);
}

double distance_to_segment(Vec2 p, const Segment& s) noexcept {
  return distance(p, s.point_at(project_onto_segment(p, s)));
}

std::optional<std::pair<double, double>> intersect(const Segment& s1,
                                                   const Segment& s2) noexcept {
  const Vec2 r = s1.b - s1.a;
  const Vec2 q = s2.b - s2.a;
  const double denom = cross(r, q);
  if (std::abs(denom) < 1e-12) return std::nullopt;  // parallel / degenerate
  const Vec2 w = s2.a - s1.a;
  const double t = cross(w, q) / denom;
  const double u = cross(w, r) / denom;
  constexpr double eps = 1e-9;
  if (t < -eps || t > 1.0 + eps || u < -eps || u > 1.0 + eps)
    return std::nullopt;
  return std::make_pair(std::clamp(t, 0.0, 1.0), std::clamp(u, 0.0, 1.0));
}

std::vector<Interval> merge_intervals(std::vector<Interval> intervals) noexcept {
  if (intervals.empty()) return intervals;
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  std::vector<Interval> merged;
  merged.reserve(intervals.size());
  merged.push_back(intervals.front());
  for (std::size_t i = 1; i < intervals.size(); ++i) {
    Interval& last = merged.back();
    if (intervals[i].lo <= last.hi) {
      last.hi = std::max(last.hi, intervals[i].hi);
    } else {
      merged.push_back(intervals[i]);
    }
  }
  return merged;
}

double covered_length(std::vector<Interval> intervals) noexcept {
  double total = 0.0;
  for (const Interval& iv : merge_intervals(std::move(intervals)))
    total += iv.length();
  return total;
}

}  // namespace sunchase::geo
