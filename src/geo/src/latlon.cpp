#include "sunchase/geo/latlon.h"

#include <cmath>
#include <numbers>

namespace sunchase::geo {

namespace {
constexpr double kDegToRad = std::numbers::pi / 180.0;
constexpr double kRadToDeg = 180.0 / std::numbers::pi;
}  // namespace

Meters haversine_distance(LatLon a, LatLon b) noexcept {
  // Paper Eq. 7: d = 2 r asin( sqrt(A + B) ) with
  // A = sin^2((phi2-phi1)/2), B = cos(phi1) cos(phi2) sin^2((lam2-lam1)/2).
  const double phi1 = a.lat_deg * kDegToRad;
  const double phi2 = b.lat_deg * kDegToRad;
  const double dphi = (b.lat_deg - a.lat_deg) * kDegToRad;
  const double dlam = (b.lon_deg - a.lon_deg) * kDegToRad;
  const double sin_dphi = std::sin(dphi / 2.0);
  const double sin_dlam = std::sin(dlam / 2.0);
  const double h =
      sin_dphi * sin_dphi + std::cos(phi1) * std::cos(phi2) * sin_dlam * sin_dlam;
  // Clamp against rounding drift before the square root.
  const double root = std::sqrt(h < 0.0 ? 0.0 : (h > 1.0 ? 1.0 : h));
  return Meters{2.0 * kEarthRadiusMeters * std::asin(root)};
}

LocalProjection::LocalProjection(LatLon origin) noexcept
    : origin_(origin),
      // One degree of latitude is very nearly constant; one degree of
      // longitude shrinks by cos(latitude).
      meters_per_deg_lat_(kEarthRadiusMeters * kDegToRad),
      meters_per_deg_lon_(kEarthRadiusMeters * kDegToRad *
                          std::cos(origin.lat_deg * kDegToRad)) {}

Vec2 LocalProjection::to_local(LatLon p) const noexcept {
  return {(p.lon_deg - origin_.lon_deg) * meters_per_deg_lon_,
          (p.lat_deg - origin_.lat_deg) * meters_per_deg_lat_};
}

LatLon LocalProjection::to_geo(Vec2 v) const noexcept {
  return {origin_.lat_deg + v.y / meters_per_deg_lat_,
          origin_.lon_deg + v.x / meters_per_deg_lon_};
}

}  // namespace sunchase::geo
