#include "sunchase/geo/polygon.h"

#include <algorithm>
#include <cmath>

#include "sunchase/common/assert.h"

namespace sunchase::geo {

double signed_area(const Polygon& poly) noexcept {
  const auto& v = poly.vertices;
  if (v.size() < 3) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    const Vec2& p = v[i];
    const Vec2& q = v[(i + 1) % v.size()];
    sum += cross(p, q);
  }
  return sum / 2.0;
}

double area(const Polygon& poly) noexcept { return std::abs(signed_area(poly)); }

void make_ccw(Polygon& poly) noexcept {
  if (signed_area(poly) < 0.0)
    std::reverse(poly.vertices.begin(), poly.vertices.end());
}

bool contains(const Polygon& poly, Vec2 p) noexcept {
  const auto& v = poly.vertices;
  if (v.size() < 3) return false;
  // Boundary tolerance: a point within eps of an edge counts as inside.
  constexpr double eps = 1e-9;
  bool inside = false;
  for (std::size_t i = 0, j = v.size() - 1; i < v.size(); j = i++) {
    if (distance_to_segment(p, Segment{v[j], v[i]}) < eps) return true;
    const bool crosses = (v[i].y > p.y) != (v[j].y > p.y);
    if (crosses) {
      const double x_at =
          v[j].x + (v[i].x - v[j].x) * (p.y - v[j].y) / (v[i].y - v[j].y);
      if (p.x < x_at) inside = !inside;
    }
  }
  return inside;
}

std::pair<Vec2, Vec2> bounding_box(const Polygon& poly) {
  SUNCHASE_EXPECTS(!poly.empty());
  Vec2 lo = poly.vertices.front();
  Vec2 hi = lo;
  for (const Vec2& v : poly.vertices) {
    lo.x = std::min(lo.x, v.x);
    lo.y = std::min(lo.y, v.y);
    hi.x = std::max(hi.x, v.x);
    hi.y = std::max(hi.y, v.y);
  }
  return {lo, hi};
}

Polygon convex_hull(std::vector<Vec2> points) {
  if (points.size() < 3) return Polygon{std::move(points)};
  std::sort(points.begin(), points.end(), [](Vec2 a, Vec2 b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  points.erase(std::unique(points.begin(), points.end()), points.end());
  if (points.size() < 3) return Polygon{std::move(points)};

  std::vector<Vec2> hull(2 * points.size());
  std::size_t k = 0;
  // Lower hull.
  for (const Vec2& p : points) {
    while (k >= 2 && cross(hull[k - 1] - hull[k - 2], p - hull[k - 2]) <= 0)
      --k;
    hull[k++] = p;
  }
  // Upper hull.
  const std::size_t lower = k + 1;
  for (auto it = points.rbegin() + 1; it != points.rend(); ++it) {
    while (k >= lower &&
           cross(hull[k - 1] - hull[k - 2], *it - hull[k - 2]) <= 0)
      --k;
    hull[k++] = *it;
  }
  hull.resize(k - 1);  // last point repeats the first
  return Polygon{std::move(hull)};
}

bool is_convex(const Polygon& poly) noexcept {
  const auto& v = poly.vertices;
  if (v.size() < 3) return false;
  constexpr double eps = 1e-9;
  for (std::size_t i = 0; i < v.size(); ++i) {
    const Vec2 a = v[i];
    const Vec2 b = v[(i + 1) % v.size()];
    const Vec2 c = v[(i + 2) % v.size()];
    if (cross(b - a, c - b) < -eps) return false;
  }
  return true;
}

std::optional<Interval> clip_segment_to_convex(const Segment& s,
                                               const Polygon& convex_ccw) {
  SUNCHASE_EXPECTS(convex_ccw.size() >= 3);
  // Cyrus–Beck: intersect the parameter range [0,1] with the half-plane
  // of every polygon edge (inward normal = left of a CCW edge).
  const auto& v = convex_ccw.vertices;
  double t_enter = 0.0;
  double t_exit = 1.0;
  const Vec2 d = s.b - s.a;
  for (std::size_t i = 0; i < v.size(); ++i) {
    const Vec2 e = v[(i + 1) % v.size()] - v[i];
    const Vec2 inward = perp(e);
    const double denom = dot(inward, d);
    const double num = dot(inward, v[i] - s.a);
    if (std::abs(denom) < 1e-12) {
      // Segment parallel to this edge: inside the half-plane iff
      // dot(inward, a - v_i) >= 0, i.e. num <= 0.
      if (num > 0.0) return std::nullopt;
      continue;
    }
    const double t = num / denom;
    if (denom > 0.0) {
      t_enter = std::max(t_enter, t);  // entering the half-plane
    } else {
      t_exit = std::min(t_exit, t);  // leaving the half-plane
    }
    if (t_enter > t_exit) return std::nullopt;
  }
  if (t_exit - t_enter <= 1e-12) return std::nullopt;
  return Interval{t_enter, t_exit};
}

Polygon translated(const Polygon& poly, Vec2 offset) {
  Polygon out = poly;
  for (Vec2& v : out.vertices) v += offset;
  return out;
}

Polygon regular_polygon(Vec2 center, double radius, int sides) {
  SUNCHASE_EXPECTS(radius > 0.0 && sides >= 3);
  Polygon poly;
  poly.vertices.reserve(static_cast<std::size_t>(sides));
  for (int i = 0; i < sides; ++i) {
    const double angle = 2.0 * 3.14159265358979323846 * i / sides;
    poly.vertices.push_back(
        center + Vec2{radius * std::cos(angle), radius * std::sin(angle)});
  }
  return poly;
}

Polygon rectangle(Vec2 min_corner, Vec2 max_corner) {
  SUNCHASE_EXPECTS(min_corner.x < max_corner.x && min_corner.y < max_corner.y);
  return Polygon{{min_corner,
                  {max_corner.x, min_corner.y},
                  max_corner,
                  {min_corner.x, max_corner.y}}};
}

}  // namespace sunchase::geo
