// Snapshot writer: collects section payloads (borrowed spans — the
// caller keeps them alive until write_file returns), computes the
// aligned layout and per-section checksums, and writes the file
// crash-safely: payload to `path.tmp`, fsync, rename over `path`,
// fsync the directory. A reader never observes a half-written
// snapshot — it sees either the old file or the new one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sunchase/snapshot/format.h"

namespace sunchase::snapshot {

struct WriteOptions {
  /// fsync the file before rename and the directory after; turning it
  /// off keeps the same tmp+rename atomicity but lets the OS schedule
  /// the flush (faster, survives process crash but not power loss).
  bool durable = true;
};

class SnapshotWriter {
 public:
  explicit SnapshotWriter(std::uint64_t world_version)
      : world_version_(world_version) {}

  /// Registers a section. The payload span must stay valid until
  /// write_file returns. Sections are written in registration order;
  /// (id, aux) pairs must be unique (throws SnapshotError otherwise).
  void add_section(std::uint32_t id, std::uint32_t aux,
                   std::span<const std::byte> payload);

  /// Typed convenience over add_section.
  template <typename T>
  void add_array(std::uint32_t id, std::uint32_t aux,
                 std::span<const T> values) {
    add_section(id, aux, std::as_bytes(values));
  }

  /// Writes the snapshot to `path` atomically. Throws SnapshotError
  /// naming the path on any I/O failure (the tmp file is removed).
  void write_file(const std::string& path,
                  const WriteOptions& options = {}) const;

  [[nodiscard]] std::size_t section_count() const noexcept {
    return sections_.size();
  }

 private:
  struct Pending {
    std::uint32_t id;
    std::uint32_t aux;
    std::span<const std::byte> payload;
  };
  std::uint64_t world_version_;
  std::vector<Pending> sections_;
};

/// Atomic small-file write (tmp + rename + optional fsync) for
/// sidecar files like a journal MANIFEST. Throws SnapshotError.
void atomic_write_file(const std::string& path,
                       std::span<const std::byte> bytes, bool durable);

}  // namespace sunchase::snapshot
