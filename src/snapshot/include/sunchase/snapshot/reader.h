// Snapshot reader: maps a `*.scsnap` file and validates it eagerly —
// magic, format version, endianness, declared size, header and table
// CRCs, every section's bounds and (by default) checksum — before any
// payload is handed out. After open() succeeds, typed accessors
// return FrozenArray views that alias the mapping directly (zero
// copy); the views keep the mapping alive, so the reader itself can
// be discarded.
//
// Every failure throws common::SnapshotError naming the file, the
// section, and the byte offset, so a corrupt journal entry can be
// located without a debugger.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sunchase/common/frozen_array.h"
#include "sunchase/snapshot/format.h"
#include "sunchase/snapshot/mapped_file.h"

namespace sunchase::snapshot {

struct ReadOptions {
  /// Verify every section's CRC during open(). `inspect` turns this
  /// off to report per-section integrity of a damaged file instead of
  /// failing on the first bad section; loading a world keeps it on.
  bool verify_section_checksums = true;
};

class SnapshotReader {
 public:
  /// Maps and validates `path`. Throws SnapshotError on any problem.
  [[nodiscard]] static SnapshotReader open(const std::string& path,
                                           const ReadOptions& options = {});

  [[nodiscard]] std::uint64_t world_version() const noexcept {
    return world_version_;
  }
  [[nodiscard]] std::uint64_t file_bytes() const noexcept {
    return file_->size();
  }
  [[nodiscard]] const std::string& path() const noexcept {
    return file_->path();
  }

  [[nodiscard]] std::size_t section_count() const noexcept {
    return table_.size();
  }
  [[nodiscard]] const SectionEntry& entry(std::size_t i) const {
    return table_.at(i);
  }
  /// Recomputes section `i`'s CRC against its stored value (used by
  /// `inspect` when open() skipped eager verification).
  [[nodiscard]] bool section_crc_ok(std::size_t i) const;

  /// The table entry for (id, aux), or nullptr when absent.
  [[nodiscard]] const SectionEntry* find(std::uint32_t id,
                                         std::uint32_t aux = 0) const;

  /// Payload bytes of (id, aux); throws SnapshotError when absent.
  [[nodiscard]] std::span<const std::byte> bytes(std::uint32_t id,
                                                 std::uint32_t aux = 0) const;

  /// Payload of (id, aux) viewed as an array of T, keepalive'd to the
  /// mapping. Throws SnapshotError when absent or when the payload
  /// size is not a multiple of sizeof(T).
  template <typename T>
  [[nodiscard]] common::FrozenArray<T> array(std::uint32_t id,
                                             std::uint32_t aux = 0) const {
    const std::span<const std::byte> raw = bytes(id, aux);
    if (raw.size() % sizeof(T) != 0)
      throw_section_error(id, aux,
                          "payload size " + std::to_string(raw.size()) +
                              " is not a multiple of element size " +
                              std::to_string(sizeof(T)));
    return common::FrozenArray<T>(
        std::span<const T>(reinterpret_cast<const T*>(raw.data()),
                           raw.size() / sizeof(T)),
        file_);
  }

  /// Single-struct section copied out by value (metadata records are
  /// small; only the big arrays stay zero-copy). Throws SnapshotError
  /// when absent or when the payload size differs from sizeof(T).
  template <typename T>
  [[nodiscard]] T record(std::uint32_t id, std::uint32_t aux = 0) const {
    const std::span<const std::byte> raw = bytes(id, aux);
    if (raw.size() != sizeof(T))
      throw_section_error(id, aux,
                          "payload size " + std::to_string(raw.size()) +
                              " does not match record size " +
                              std::to_string(sizeof(T)));
    T out;
    std::memcpy(&out, raw.data(), sizeof(T));
    return out;
  }

  /// The mapping, for callers that need their own keepalive handle.
  [[nodiscard]] std::shared_ptr<const MappedFile> mapping() const noexcept {
    return file_;
  }

 private:
  explicit SnapshotReader(std::shared_ptr<const MappedFile> file)
      : file_(std::move(file)) {}

  [[noreturn]] void throw_section_error(std::uint32_t id, std::uint32_t aux,
                                        const std::string& why) const;

  std::shared_ptr<const MappedFile> file_;
  std::uint64_t world_version_ = 0;
  std::vector<SectionEntry> table_;  ///< copied out of the mapping
};

}  // namespace sunchase::snapshot
