// The on-disk layout of a binary world snapshot (`*.scsnap`): a fixed
// 64-byte header, a table of 32-byte section entries, then the section
// payloads, each 64-byte aligned so an mmap'd section can be
// reinterpreted in place as an array of its element type (zero-copy —
// nothing is deserialized on load).
//
//   offset 0      FileHeader            (64 bytes)
//   offset 64     SectionEntry[count]   (32 bytes each)
//   aligned       payload of section 0
//   aligned       payload of section 1
//   ...
//
// Integrity is layered: the header carries its own CRC (magic,
// version, endianness and counts are trusted only after it passes), a
// CRC of the section table, and every section entry carries a CRC of
// its payload. Checksums are per section rather than whole-file so a
// load failure can name *which* array is damaged and at what offset,
// and so an `inspect` can report intact sections of a torn file.
//
// The format is not endian-portable by design: payloads are the
// in-memory arrays written verbatim. The endianness tag turns a
// foreign-order file into a clean load error instead of silent
// garbage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace sunchase::snapshot {

inline constexpr char kMagic[8] = {'S', 'C', 'S', 'N', 'A', 'P', '0', '1'};
inline constexpr std::uint32_t kFormatVersion = 1;
/// Written as the native byte order of the writer; a reader with a
/// different native order sees 0x04030201 and rejects the file.
inline constexpr std::uint32_t kEndianTag = 0x01020304u;
/// Payload alignment: enough for any element type we store (doubles,
/// 64-byte SlotCostCache entries) and a cache line.
inline constexpr std::size_t kSectionAlignment = 64;

/// Fixed-size file header at offset 0.
struct FileHeader {
  char magic[8];
  std::uint32_t format_version;
  std::uint32_t endianness;
  std::uint64_t world_version;  ///< core::World::version() of the payload
  std::uint32_t section_count;
  std::uint32_t header_crc;  ///< CRC of this struct with header_crc = 0
  std::uint64_t file_bytes;  ///< total file size, rejects truncation
  std::uint32_t table_crc;   ///< CRC of the section table bytes
  std::uint32_t reserved0;
  std::uint64_t reserved1;
  std::uint64_t reserved2;
};
static_assert(sizeof(FileHeader) == 64, "snapshot header is 64 bytes");

/// One row of the section table at offset 64.
struct SectionEntry {
  std::uint32_t id;      ///< a SectionId
  std::uint32_t aux;     ///< section-specific (e.g. vehicle*96+slot)
  std::uint64_t offset;  ///< absolute file offset, kSectionAlignment-aligned
  std::uint64_t bytes;   ///< payload size
  std::uint32_t crc;     ///< CRC of the payload bytes
  std::uint32_t reserved;
};
static_assert(sizeof(SectionEntry) == 32, "section entry is 32 bytes");

/// Section payloads. Element types are the library's own in-memory
/// structs (static_asserted trivially-copyable and padding-free at the
/// codec layer); aux is 0 unless noted.
enum SectionId : std::uint32_t {
  kNodes = 1,             ///< roadnet::Node[]
  kEdges = 2,             ///< roadnet::Edge[]
  kOutOffsets = 3,        ///< uint32[node_count+1], forward CSR offsets
  kOutSorted = 4,         ///< EdgeId[edge_count], forward CSR order
  kInOffsets = 5,         ///< uint32[node_count+1], reverse CSR offsets
  kInSorted = 6,          ///< EdgeId[edge_count], reverse CSR order
  kShadingMeta = 7,       ///< one ShadingMetaRecord
  kShadingFractions = 8,  ///< float[edges x slots], edge-major
  kTraffic = 9,           ///< one TrafficRecord
  kPanel = 10,            ///< double[kSlotsPerDay], watts at slot starts
  kVehicles = 11,         ///< VehicleRecord[]
  kSlotCacheColumn = 12,  ///< SlotCostCache::Entry[edge_count];
                          ///< aux = vehicle * 96 + slot
};

/// Human-readable section name for error messages and `inspect`.
[[nodiscard]] std::string section_name(std::uint32_t id);

}  // namespace sunchase::snapshot
