// Read-only memory-mapped file (POSIX mmap, PROT_READ, MAP_SHARED):
// the zero-copy substrate a snapshot is served from. The mapping is
// shared page cache — N server processes mapping the same snapshot
// share one physical copy of the arrays.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>

namespace sunchase::snapshot {

class MappedFile {
 public:
  /// Maps `path` read-only. Throws SnapshotError (naming the path and
  /// errno) when the file cannot be opened, stat'd, or mapped. An
  /// empty file maps to an empty span without calling mmap.
  [[nodiscard]] static std::shared_ptr<const MappedFile> open(
      const std::string& path);

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    return {static_cast<const std::byte*>(data_), size_};
  }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  MappedFile(std::string path, const void* data, std::size_t size)
      : path_(std::move(path)), data_(data), size_(size) {}

  std::string path_;
  const void* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace sunchase::snapshot
