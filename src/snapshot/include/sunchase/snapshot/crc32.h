// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte
// ranges — the per-section checksum of the snapshot format. Software
// slicing-by-eight: fast enough to verify every section eagerly at
// load without hardware CRC instructions, portable across the
// toolchains CI builds with.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace sunchase::snapshot {

/// CRC-32 of `bytes`, optionally continuing from a previous value
/// (pass the prior return value as `seed` to checksum a range in
/// chunks). The empty range maps to 0.
[[nodiscard]] std::uint32_t crc32(std::span<const std::byte> bytes,
                                  std::uint32_t seed = 0) noexcept;

}  // namespace sunchase::snapshot
