#include "sunchase/snapshot/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "sunchase/common/error.h"

namespace sunchase::snapshot {

namespace {

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw SnapshotError("snapshot: " + path + ": " + what + ": " +
                      std::strerror(errno));
}

}  // namespace

std::shared_ptr<const MappedFile> MappedFile::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) fail(path, "cannot open");
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    fail(path, "cannot stat");
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  const void* data = nullptr;
  if (size > 0) {
    data = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
    if (data == MAP_FAILED) {
      ::close(fd);
      fail(path, "cannot mmap");
    }
  }
  // The mapping outlives the descriptor (POSIX: munmap alone tears it
  // down), so the fd is released here rather than held for the
  // snapshot's lifetime.
  ::close(fd);
  return std::shared_ptr<const MappedFile>(
      new MappedFile(path, data, size));
}

MappedFile::~MappedFile() {
  if (data_ != nullptr && size_ > 0)
    ::munmap(const_cast<void*>(data_), size_);
}

}  // namespace sunchase::snapshot
