#include "sunchase/snapshot/reader.h"

#include <cstdio>
#include <cstring>

#include "sunchase/common/error.h"
#include "sunchase/snapshot/crc32.h"

namespace sunchase::snapshot {

namespace {

[[noreturn]] void fail(const std::string& path, const std::string& why) {
  throw SnapshotError("snapshot: " + path + ": " + why);
}

std::string hex32(std::uint32_t v) {
  char buf[11];
  std::snprintf(buf, sizeof(buf), "0x%08x", v);
  return buf;
}

std::string describe(const SectionEntry& e) {
  return "section " + section_name(e.id) + " (id " + std::to_string(e.id) +
         ", aux " + std::to_string(e.aux) + ") at offset " +
         std::to_string(e.offset);
}

}  // namespace

SnapshotReader SnapshotReader::open(const std::string& path,
                                    const ReadOptions& options) {
  SnapshotReader reader(MappedFile::open(path));
  const std::span<const std::byte> file = reader.file_->bytes();

  if (file.size() < sizeof(FileHeader))
    fail(path, "truncated header at offset 0: file has " +
                   std::to_string(file.size()) + " bytes, header needs " +
                   std::to_string(sizeof(FileHeader)));
  FileHeader header;
  std::memcpy(&header, file.data(), sizeof(header));

  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0)
    fail(path, "bad magic at offset 0 (not a snapshot file)");
  // The CRC covers the header with its own crc field zeroed; verify it
  // before trusting any counted field.
  FileHeader crc_input = header;
  crc_input.header_crc = 0;
  const std::uint32_t computed_header_crc = crc32(
      {reinterpret_cast<const std::byte*>(&crc_input), sizeof(crc_input)});
  if (computed_header_crc != header.header_crc)
    fail(path, "header checksum mismatch at offset 0 (stored " +
                   hex32(header.header_crc) + ", computed " +
                   hex32(computed_header_crc) + ")");
  if (header.format_version != kFormatVersion)
    fail(path, "unsupported format version " +
                   std::to_string(header.format_version) + " (reader is " +
                   std::to_string(kFormatVersion) + ")");
  if (header.endianness != kEndianTag)
    fail(path,
         "endianness mismatch (tag " + hex32(header.endianness) +
             ", expected " + hex32(kEndianTag) +
             "): written on a foreign-byte-order machine");
  if (header.file_bytes != file.size())
    fail(path, "truncated file: header declares " +
                   std::to_string(header.file_bytes) + " bytes, file has " +
                   std::to_string(file.size()));

  const std::uint64_t table_offset = sizeof(FileHeader);
  const std::uint64_t table_bytes =
      sizeof(SectionEntry) * static_cast<std::uint64_t>(header.section_count);
  if (table_offset + table_bytes > file.size())
    fail(path, "truncated section table at offset " +
                   std::to_string(table_offset) + ": needs " +
                   std::to_string(table_bytes) + " bytes");
  const std::uint32_t computed_table_crc =
      crc32(file.subspan(table_offset, table_bytes));
  if (computed_table_crc != header.table_crc)
    fail(path, "section table checksum mismatch at offset " +
                   std::to_string(table_offset) + " (stored " +
                   hex32(header.table_crc) + ", computed " +
                   hex32(computed_table_crc) + ")");

  reader.world_version_ = header.world_version;
  reader.table_.resize(header.section_count);
  if (table_bytes > 0)
    std::memcpy(reader.table_.data(), file.data() + table_offset,
                table_bytes);

  for (const SectionEntry& e : reader.table_) {
    if (e.offset % kSectionAlignment != 0)
      fail(path, describe(e) + ": offset not " +
                     std::to_string(kSectionAlignment) + "-byte aligned");
    if (e.offset > file.size() || e.bytes > file.size() - e.offset)
      fail(path, describe(e) + ": payload of " + std::to_string(e.bytes) +
                     " bytes runs past end of file (" +
                     std::to_string(file.size()) + " bytes)");
    if (options.verify_section_checksums) {
      const std::uint32_t computed = crc32(file.subspan(e.offset, e.bytes));
      if (computed != e.crc)
        fail(path, describe(e) + ": checksum mismatch (stored " +
                       hex32(e.crc) + ", computed " + hex32(computed) + ")");
    }
  }
  return reader;
}

bool SnapshotReader::section_crc_ok(std::size_t i) const {
  const SectionEntry& e = table_.at(i);
  return crc32(file_->bytes().subspan(e.offset, e.bytes)) == e.crc;
}

const SectionEntry* SnapshotReader::find(std::uint32_t id,
                                         std::uint32_t aux) const {
  for (const SectionEntry& e : table_)
    if (e.id == id && e.aux == aux) return &e;
  return nullptr;
}

std::span<const std::byte> SnapshotReader::bytes(std::uint32_t id,
                                                 std::uint32_t aux) const {
  const SectionEntry* e = find(id, aux);
  if (e == nullptr)
    fail(path(), "missing section " + section_name(id) + " (id " +
                     std::to_string(id) + ", aux " + std::to_string(aux) +
                     ")");
  return file_->bytes().subspan(e->offset, e->bytes);
}

void SnapshotReader::throw_section_error(std::uint32_t id, std::uint32_t aux,
                                         const std::string& why) const {
  const SectionEntry* e = find(id, aux);
  fail(path(), (e != nullptr ? describe(*e)
                             : "section " + section_name(id)) +
                   ": " + why);
}

}  // namespace sunchase::snapshot
