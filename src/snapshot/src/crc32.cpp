#include "sunchase/snapshot/crc32.h"

#include <array>

namespace sunchase::snapshot {

namespace {

constexpr std::uint32_t kPolynomial = 0xEDB88320u;

using Tables = std::array<std::array<std::uint32_t, 256>, 8>;

constexpr Tables make_tables() {
  Tables t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc >> 1) ^ ((crc & 1u) ? kPolynomial : 0u);
    t[0][i] = crc;
  }
  for (std::size_t slice = 1; slice < t.size(); ++slice)
    for (std::uint32_t i = 0; i < 256; ++i)
      t[slice][i] =
          (t[slice - 1][i] >> 8) ^ t[0][t[slice - 1][i] & 0xFFu];
  return t;
}

constexpr Tables kTables = make_tables();

}  // namespace

std::uint32_t crc32(std::span<const std::byte> bytes,
                    std::uint32_t seed) noexcept {
  std::uint32_t crc = ~seed;
  const std::byte* p = bytes.data();
  std::size_t n = bytes.size();
  // Slicing-by-eight over the aligned bulk; the scalar loop below
  // handles the (at most 7-byte) tail and short inputs.
  while (n >= 8) {
    const std::uint32_t lo =
        crc ^ (static_cast<std::uint32_t>(p[0]) |
               (static_cast<std::uint32_t>(p[1]) << 8) |
               (static_cast<std::uint32_t>(p[2]) << 16) |
               (static_cast<std::uint32_t>(p[3]) << 24));
    const std::uint32_t hi = static_cast<std::uint32_t>(p[4]) |
                             (static_cast<std::uint32_t>(p[5]) << 8) |
                             (static_cast<std::uint32_t>(p[6]) << 16) |
                             (static_cast<std::uint32_t>(p[7]) << 24);
    crc = kTables[7][lo & 0xFFu] ^ kTables[6][(lo >> 8) & 0xFFu] ^
          kTables[5][(lo >> 16) & 0xFFu] ^ kTables[4][lo >> 24] ^
          kTables[3][hi & 0xFFu] ^ kTables[2][(hi >> 8) & 0xFFu] ^
          kTables[1][(hi >> 16) & 0xFFu] ^ kTables[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0)
    crc = (crc >> 8) ^
          kTables[0][(crc ^ static_cast<std::uint32_t>(*p++)) & 0xFFu];
  return ~crc;
}

}  // namespace sunchase::snapshot
