#include "sunchase/snapshot/writer.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "sunchase/common/error.h"
#include "sunchase/snapshot/crc32.h"

namespace sunchase::snapshot {

namespace {

[[noreturn]] void fail_errno(const std::string& path,
                             const std::string& what) {
  throw SnapshotError("snapshot: " + path + ": " + what + ": " +
                      std::strerror(errno));
}

std::uint64_t align_up(std::uint64_t offset) {
  const std::uint64_t a = kSectionAlignment;
  return (offset + a - 1) / a * a;
}

std::span<const std::byte> struct_bytes(const void* p, std::size_t n) {
  return {static_cast<const std::byte*>(p), n};
}

/// RAII fd that unlinks `path` unless released (tmp-file cleanup on
/// any failure path).
class TmpFile {
 public:
  TmpFile(const std::string& path, int fd) : path_(path), fd_(fd) {}
  TmpFile(const TmpFile&) = delete;
  TmpFile& operator=(const TmpFile&) = delete;
  ~TmpFile() {
    if (fd_ >= 0) ::close(fd_);
    if (!released_) ::unlink(path_.c_str());
  }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  void close_fd() {
    ::close(fd_);
    fd_ = -1;
  }
  void release() noexcept { released_ = true; }

 private:
  std::string path_;
  int fd_ = -1;
  bool released_ = false;
};

void write_all(int fd, const std::string& path,
               std::span<const std::byte> bytes) {
  const std::byte* p = bytes.data();
  std::size_t n = bytes.size();
  while (n > 0) {
    const ssize_t wrote = ::write(fd, p, n);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      fail_errno(path, "write failed");
    }
    p += wrote;
    n -= static_cast<std::size_t>(wrote);
  }
}

void fsync_directory_of(const std::string& path) {
  std::string dir = std::filesystem::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd < 0) fail_errno(dir, "cannot open directory for fsync");
  const int rc = ::fsync(dfd);
  ::close(dfd);
  if (rc != 0) fail_errno(dir, "directory fsync failed");
}

/// Shared tmp+rename body: `emit` writes the payload to the open fd.
template <typename EmitFn>
void write_atomically(const std::string& path, bool durable, EmitFn emit) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) fail_errno(tmp, "cannot create");
  TmpFile guard(tmp, fd);
  emit(fd, tmp);
  if (durable && ::fsync(fd) != 0) fail_errno(tmp, "fsync failed");
  guard.close_fd();
  if (::rename(tmp.c_str(), path.c_str()) != 0)
    fail_errno(path, "rename failed");
  guard.release();
  if (durable) fsync_directory_of(path);
}

}  // namespace

void SnapshotWriter::add_section(std::uint32_t id, std::uint32_t aux,
                                 std::span<const std::byte> payload) {
  for (const Pending& s : sections_)
    if (s.id == id && s.aux == aux)
      throw SnapshotError("snapshot: duplicate section " + section_name(id) +
                          " (id " + std::to_string(id) + ", aux " +
                          std::to_string(aux) + ")");
  sections_.push_back(Pending{id, aux, payload});
}

void SnapshotWriter::write_file(const std::string& path,
                                const WriteOptions& options) const {
  // Layout: header, table, then payloads each aligned up.
  std::vector<SectionEntry> table(sections_.size());
  std::uint64_t offset =
      sizeof(FileHeader) + sizeof(SectionEntry) * sections_.size();
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    offset = align_up(offset);
    table[i].id = sections_[i].id;
    table[i].aux = sections_[i].aux;
    table[i].offset = offset;
    table[i].bytes = sections_[i].payload.size();
    table[i].crc = crc32(sections_[i].payload);
    table[i].reserved = 0;
    offset += table[i].bytes;
  }
  const std::uint64_t file_bytes = offset;

  FileHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.format_version = kFormatVersion;
  header.endianness = kEndianTag;
  header.world_version = world_version_;
  header.section_count = static_cast<std::uint32_t>(sections_.size());
  header.file_bytes = file_bytes;
  header.table_crc = crc32(
      struct_bytes(table.data(), sizeof(SectionEntry) * table.size()));
  header.header_crc = 0;
  header.header_crc = crc32(struct_bytes(&header, sizeof(header)));

  write_atomically(path, options.durable, [&](int fd, const std::string& tmp) {
    write_all(fd, tmp, struct_bytes(&header, sizeof(header)));
    write_all(fd, tmp,
              struct_bytes(table.data(), sizeof(SectionEntry) * table.size()));
    static constexpr std::byte kZeros[kSectionAlignment] = {};
    std::uint64_t written =
        sizeof(FileHeader) + sizeof(SectionEntry) * table.size();
    for (std::size_t i = 0; i < sections_.size(); ++i) {
      const std::uint64_t pad = table[i].offset - written;
      write_all(fd, tmp, std::span<const std::byte>(kZeros, pad));
      write_all(fd, tmp, sections_[i].payload);
      written = table[i].offset + table[i].bytes;
    }
  });
}

void atomic_write_file(const std::string& path,
                       std::span<const std::byte> bytes, bool durable) {
  write_atomically(path, durable, [&](int fd, const std::string& tmp) {
    write_all(fd, tmp, bytes);
  });
}

}  // namespace sunchase::snapshot
