#include "sunchase/snapshot/format.h"

namespace sunchase::snapshot {

std::string section_name(std::uint32_t id) {
  switch (id) {
    case kNodes: return "nodes";
    case kEdges: return "edges";
    case kOutOffsets: return "out_offsets";
    case kOutSorted: return "out_sorted";
    case kInOffsets: return "in_offsets";
    case kInSorted: return "in_sorted";
    case kShadingMeta: return "shading_meta";
    case kShadingFractions: return "shading_fractions";
    case kTraffic: return "traffic";
    case kPanel: return "panel";
    case kVehicles: return "vehicles";
    case kSlotCacheColumn: return "slot_cache_column";
    default: return "unknown(" + std::to_string(id) + ")";
  }
}

}  // namespace sunchase::snapshot
