#include "sunchase/obs/profiler.h"

#include <time.h>

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

namespace sunchase::obs {

namespace {

/// Span names are programmer-chosen literals, but the JSON export
/// escapes them anyway so a stray quote can never corrupt the document.
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Thread-exit hook: hands the thread's stack back to the profiler's
/// free list so pool churn recycles a bounded set.
struct StackLease {
  std::shared_ptr<detail::SpanStack> stack;
  ~StackLease() {
    if (stack) Profiler::global().release_stack(std::move(stack));
  }
};

}  // namespace

double thread_cpu_seconds() noexcept {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
#else
  return 0.0;
#endif
}

Profiler& Profiler::global() {
  static Profiler* instance = new Profiler();  // never destroyed: thread
  return *instance;                            // stacks may outlive main
}

detail::SpanStack& Profiler::thread_stack() {
  thread_local StackLease lease;
  if (!lease.stack) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!free_.empty()) {
      lease.stack = std::move(free_.back());
      free_.pop_back();
      lease.stack->reset();
    } else {
      lease.stack = std::make_shared<detail::SpanStack>();
      stacks_.push_back(lease.stack);
    }
  }
  return *lease.stack;
}

void Profiler::release_stack(std::shared_ptr<detail::SpanStack> stack) {
  const std::lock_guard<std::mutex> lock(mutex_);
  free_.push_back(std::move(stack));
}

std::vector<const char*> current_span_stack() {
  const detail::SpanStack& stack = Profiler::global().thread_stack();
  std::vector<const char*> frames(detail::SpanStack::kMaxDepth);
  // sample() on the owning thread sees a consistent (never torn) stack:
  // pushes and pops happen on this thread.
  const std::uint32_t depth =
      stack.sample(frames.data(), detail::SpanStack::kMaxDepth);
  frames.resize(depth);
  return frames;
}

SpanStackScope::SpanStackScope(const std::vector<const char*>& frames)
    : stack_(&Profiler::global().thread_stack()), pushed_(frames.size()) {
  for (const char* frame : frames) stack_->push(frame);
}

SpanStackScope::~SpanStackScope() {
  for (std::size_t i = 0; i < pushed_; ++i) stack_->pop();
}

std::size_t Profiler::registered_stacks() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stacks_.size();
}

void Profiler::sample_once() {
  std::vector<std::shared_ptr<detail::SpanStack>> stacks;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stacks = stacks_;
  }
  const char* frames[detail::SpanStack::kMaxDepth];
  for (const auto& stack : stacks) {
    const std::uint32_t depth =
        stack->sample(frames, detail::SpanStack::kMaxDepth);
    samples_total_.fetch_add(1, std::memory_order_relaxed);
    if (depth == 0) {
      samples_idle_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    std::string key;
    for (std::uint32_t i = 0; i < depth; ++i) {
      if (i != 0) key += ';';
      key += frames[i];
    }
    const std::lock_guard<std::mutex> lock(folds_mutex_);
    ++folds_[key];
  }
}

void Profiler::sampler_loop() {
  const auto interval =
      std::chrono::milliseconds(std::max(interval_ms(), 1));
  std::unique_lock<std::mutex> lock(sampler_mutex_);
  while (running_.load(std::memory_order_relaxed)) {
    lock.unlock();
    sample_once();
    lock.lock();
    sampler_cv_.wait_for(lock, interval, [this] {
      return !running_.load(std::memory_order_relaxed);
    });
  }
}

void Profiler::start(Options options) {
  const std::lock_guard<std::mutex> lock(sampler_mutex_);
  if (sampler_.joinable()) return;  // already running
  interval_ms_.store(std::max(options.interval_ms, 1),
                     std::memory_order_relaxed);
  running_.store(true, std::memory_order_relaxed);
  sampler_ = std::thread([this] { sampler_loop(); });
}

void Profiler::stop() {
  std::thread sampler;
  {
    const std::lock_guard<std::mutex> lock(sampler_mutex_);
    if (!sampler_.joinable()) return;
    running_.store(false, std::memory_order_relaxed);
    sampler_cv_.notify_all();
    sampler = std::move(sampler_);
  }
  sampler.join();
}

std::vector<ProfileEntry> Profiler::entries(std::size_t n) const {
  std::vector<ProfileEntry> out;
  {
    const std::lock_guard<std::mutex> lock(folds_mutex_);
    out.reserve(folds_.size());
    for (const auto& [stack, count] : folds_)
      out.push_back(ProfileEntry{stack, count});
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const ProfileEntry& a, const ProfileEntry& b) {
                     return a.count > b.count;
                   });
  if (n != 0 && out.size() > n) out.resize(n);
  return out;
}

std::string Profiler::collapsed() const {
  std::ostringstream out;
  for (const ProfileEntry& entry : entries())
    out << entry.stack << ' ' << entry.count << '\n';
  return out.str();
}

std::string Profiler::to_json(int indent) const {
  const std::string pad(static_cast<std::size_t>(std::max(indent, 0)), ' ');
  std::ostringstream out;
  out << pad << "{\n";
  out << pad << "  \"running\": " << (running() ? "true" : "false") << ",\n";
  out << pad << "  \"interval_ms\": " << interval_ms() << ",\n";
  out << pad << "  \"samples_total\": " << samples_total() << ",\n";
  out << pad << "  \"samples_idle\": " << samples_idle() << ",\n";
  out << pad << "  \"stacks\": [";
  const std::vector<ProfileEntry> all = entries();
  for (std::size_t i = 0; i < all.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    out << pad << "    {\"stack\": \"" << json_escape(all[i].stack)
        << "\", \"count\": " << all[i].count << "}";
  }
  out << (all.empty() ? "" : "\n" + pad + "  ") << "]\n";
  out << pad << "}";
  return out.str();
}

void Profiler::reset() {
  const std::lock_guard<std::mutex> lock(folds_mutex_);
  folds_.clear();
  samples_total_.store(0, std::memory_order_relaxed);
  samples_idle_.store(0, std::memory_order_relaxed);
}

}  // namespace sunchase::obs
