#include "sunchase/obs/trace_context.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <thread>

namespace sunchase::obs {

namespace {

thread_local TraceContext t_current{};

/// 16 lowercase hex chars of `v` appended to `out`.
void append_hex64(std::string& out, std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  out += buf;
}

/// Parses exactly 16 hex chars into `out`; false on any non-hex byte.
bool parse_hex64(std::string_view hex, std::uint64_t& out) {
  out = 0;
  for (const char c : hex) {
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      return false;
    }
    out = (out << 4) | digit;
  }
  return true;
}

bool is_hex(std::string_view text) {
  for (const char c : text) {
    const bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
                    (c >= 'A' && c <= 'F');
    if (!ok) return false;
  }
  return true;
}

}  // namespace

std::uint64_t random_span_id() noexcept {
  // SplitMix64 over a thread-local state seeded from the clock, the
  // thread identity and a process-wide sequence — collision-resistant
  // across threads and restarts without touching std::random_device
  // (which may throw) on the hot path.
  thread_local std::uint64_t state = [] {
    static std::atomic<std::uint64_t> sequence{0x9e3779b97f4a7c15ull};
    const auto ticks = static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    return ticks ^ (sequence.fetch_add(0x9e3779b97f4a7c15ull,
                                       std::memory_order_relaxed)
                    << 1) ^
           static_cast<std::uint64_t>(
               std::hash<std::thread::id>{}(std::this_thread::get_id()));
  }();
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z != 0 ? z : 1;
}

std::string TraceContext::trace_id_hex() const {
  std::string out;
  out.reserve(32);
  append_hex64(out, trace_hi);
  append_hex64(out, trace_lo);
  return out;
}

std::string TraceContext::span_id_hex() const {
  std::string out;
  out.reserve(16);
  append_hex64(out, span_id);
  return out;
}

std::string TraceContext::to_traceparent() const {
  std::string out = "00-";
  out.reserve(55);
  append_hex64(out, trace_hi);
  append_hex64(out, trace_lo);
  out += '-';
  append_hex64(out, span_id);
  out += "-01";
  return out;
}

std::optional<TraceContext> TraceContext::from_traceparent(
    std::string_view header) {
  // 00-{32 hex}-{16 hex}-{2 hex}: 55 bytes, dashes at 2, 35 and 52.
  if (header.size() != 55) return std::nullopt;
  if (header[2] != '-' || header[35] != '-' || header[52] != '-')
    return std::nullopt;
  if (header.substr(0, 2) != "00") return std::nullopt;
  if (!is_hex(header.substr(53, 2))) return std::nullopt;

  TraceContext context;
  if (!parse_hex64(header.substr(3, 16), context.trace_hi) ||
      !parse_hex64(header.substr(19, 16), context.trace_lo) ||
      !parse_hex64(header.substr(36, 16), context.span_id))
    return std::nullopt;
  // All-zero trace or parent ids are explicitly invalid in W3C trace
  // context; treat the header as absent.
  if (!context.valid() || context.span_id == 0) return std::nullopt;
  return context;
}

TraceContext TraceContext::generate() {
  TraceContext context;
  context.trace_hi = random_span_id();
  context.trace_lo = random_span_id();
  context.span_id = random_span_id();
  return context;
}

const TraceContext& current_trace() noexcept { return t_current; }

namespace detail {
void set_current_trace(const TraceContext& context) noexcept {
  t_current = context;
}
}  // namespace detail

TraceScope::TraceScope(const TraceContext& context) noexcept
    : previous_(t_current) {
  t_current = context;
}

TraceScope::~TraceScope() { t_current = previous_; }

}  // namespace sunchase::obs
