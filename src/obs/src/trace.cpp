#include "sunchase/obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "sunchase/common/logging.h"
#include "sunchase/obs/metrics.h"

namespace sunchase::obs {

namespace {

/// 16 lowercase hex chars, for span/parent ids in the export.
std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// A full buffer silently eating spans is the kind of telemetry loss
/// that must itself be telemetered: count every drop in the registry
/// and Warn once per process when dropping first starts.
void count_dropped_span() {
  static Counter& dropped =
      Registry::global().counter("obs.trace.dropped_spans");
  dropped.add();
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true, std::memory_order_relaxed))
    SUNCHASE_LOG(Warning)
        << "trace: span ring buffer full, dropping spans "
        << "(obs.trace.dropped_spans counts them; drain /debug/trace or "
        << "clear() more often)";
}

/// Thread-exit hook: hands the thread's buffer (events intact) back to
/// the tracer's free list so pool churn recycles a bounded set.
struct BufferLease {
  std::shared_ptr<detail::ThreadBuffer> buffer;
  ~BufferLease() {
    if (buffer) Tracer::global().release_buffer(std::move(buffer));
  }
};

}  // namespace

namespace detail {

void ThreadBuffer::record(const TraceEvent& event) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (events_.size() < kCapacity) {
      events_.push_back(event);
      events_.back().tid = tid_;
      return;
    }
    ++dropped_;
  }
  // Metric + log outside the buffer mutex: the exporter contends on it.
  count_dropped_span();
}

std::vector<TraceEvent> ThreadBuffer::drain_copy() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::uint64_t ThreadBuffer::dropped() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void ThreadBuffer::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  dropped_ = 0;
}

}  // namespace detail

Tracer& Tracer::global() {
  static Tracer* instance = new Tracer();  // never destroyed: thread
  return *instance;                        // buffers may outlive main
}

std::uint64_t Tracer::now_us() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - origin_)
          .count());
}

detail::ThreadBuffer& Tracer::thread_buffer() {
  thread_local BufferLease lease;
  if (!lease.buffer) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!free_buffers_.empty()) {
      // Reuse a dead thread's buffer: recorded events stay — worker
      // spans must survive pool join, each stamped with the tid of the
      // thread that recorded it — while the new occupant gets a fresh
      // tid, so distinct threads always render as distinct tracks.
      lease.buffer = std::move(free_buffers_.back());
      free_buffers_.pop_back();
      lease.buffer->rebind(next_tid_++);
    } else {
      lease.buffer = std::make_shared<detail::ThreadBuffer>(next_tid_++);
      buffers_.push_back(lease.buffer);
    }
  }
  return *lease.buffer;
}

void Tracer::release_buffer(std::shared_ptr<detail::ThreadBuffer> buffer) {
  const std::lock_guard<std::mutex> lock(mutex_);
  free_buffers_.push_back(std::move(buffer));
}

std::size_t Tracer::buffer_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return buffers_.size();
}

std::string Tracer::to_chrome_json(std::uint64_t since_us) const {
  std::vector<std::shared_ptr<detail::ThreadBuffer>> buffers;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
  }
  const std::uint64_t now = now_us();
  std::ostringstream out;
  out << "{\"displayTimeUnit\": \"ms\", \"now_us\": " << now
      << ", \"traceEvents\": [";
  bool first = true;
  for (const auto& buffer : buffers) {
    for (const TraceEvent& e : buffer->drain_copy()) {
      // Filter on span end: an incremental poller passing the previous
      // document's now_us sees every span that completed since.
      if (e.ts_us + e.dur_us < since_us) continue;
      out << (first ? "\n" : ",\n");
      first = false;
      out << "  {\"name\": \"" << e.name
          << "\", \"cat\": \"sunchase\", \"ph\": \"X\", \"pid\": 1, "
             "\"tid\": "
          << e.tid << ", \"ts\": " << e.ts_us
          << ", \"dur\": " << e.dur_us;
      if (e.span_id != 0) {
        out << ", \"args\": {\"span_id\": \"" << hex64(e.span_id) << "\"";
        if ((e.trace_hi | e.trace_lo) != 0)
          out << ", \"trace_id\": \"" << hex64(e.trace_hi)
              << hex64(e.trace_lo) << "\"";
        if (e.parent_id != 0)
          out << ", \"parent_id\": \"" << hex64(e.parent_id) << "\"";
        out << "}";
      }
      out << "}";
    }
  }
  out << (first ? "" : "\n") << "]}\n";
  return out.str();
}

std::size_t Tracer::span_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& buffer : buffers_) n += buffer->drain_copy().size();
  return n;
}

std::uint64_t Tracer::dropped_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t n = 0;
  for (const auto& buffer : buffers_) n += buffer->dropped();
  return n;
}

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& buffer : buffers_) buffer->clear();
}

}  // namespace sunchase::obs
