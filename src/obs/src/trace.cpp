#include "sunchase/obs/trace.h"

#include <algorithm>
#include <sstream>

namespace sunchase::obs {

namespace detail {

void ThreadBuffer::record(const TraceEvent& event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= kCapacity) {
    ++dropped_;
    return;
  }
  events_.push_back(event);
}

std::vector<TraceEvent> ThreadBuffer::drain_copy() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::uint64_t ThreadBuffer::dropped() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void ThreadBuffer::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  dropped_ = 0;
}

}  // namespace detail

Tracer& Tracer::global() {
  static Tracer* instance = new Tracer();  // never destroyed: thread
  return *instance;                        // buffers may outlive main
}

std::uint64_t Tracer::now_us() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - origin_)
          .count());
}

detail::ThreadBuffer& Tracer::thread_buffer() {
  thread_local std::shared_ptr<detail::ThreadBuffer> tls;
  if (!tls) {
    const std::lock_guard<std::mutex> lock(mutex_);
    tls = std::make_shared<detail::ThreadBuffer>(next_tid_++);
    buffers_.push_back(tls);
  }
  return *tls;
}

std::string Tracer::to_chrome_json() const {
  std::vector<std::shared_ptr<detail::ThreadBuffer>> buffers;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
  }
  std::ostringstream out;
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const auto& buffer : buffers) {
    for (const TraceEvent& e : buffer->drain_copy()) {
      out << (first ? "\n" : ",\n");
      first = false;
      out << "  {\"name\": \"" << e.name
          << "\", \"cat\": \"sunchase\", \"ph\": \"X\", \"pid\": 1, "
             "\"tid\": "
          << buffer->tid() << ", \"ts\": " << e.ts_us
          << ", \"dur\": " << e.dur_us << "}";
    }
  }
  out << (first ? "" : "\n") << "]}\n";
  return out.str();
}

std::size_t Tracer::span_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& buffer : buffers_) n += buffer->drain_copy().size();
  return n;
}

std::uint64_t Tracer::dropped_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t n = 0;
  for (const auto& buffer : buffers_) n += buffer->dropped();
  return n;
}

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& buffer : buffers_) buffer->clear();
}

}  // namespace sunchase::obs
