#include "sunchase/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "sunchase/common/error.h"

namespace sunchase::obs {

namespace {

/// Lowers a relaxed atomic min/max watermark via CAS.
template <class Cmp>
void update_watermark(std::atomic<double>& mark, double v, Cmp better) {
  double cur = mark.load(std::memory_order_relaxed);
  while (better(v, cur) &&
         !mark.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// Prometheus metric names allow [a-zA-Z0-9_:] only; the registry's
/// dotted names map '.' (and anything else) to '_'.
std::string prometheus_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

/// Label KEYS join the metric name's charset (leading digits are the
/// caller's problem — keys are programmer-chosen constants).
std::string prometheus_label_key(const std::string& key) {
  std::string out = key;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    if (!ok) c = '_';
  }
  return out;
}

/// Label VALUE escaping per the exposition format: backslash, double
/// quote and newline must be escaped; everything else passes through.
std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// JSON string escaping for snapshot keys (which may embed quoted label
/// values) and HELP texts.
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

/// Splits a series key back into {family, label block incl. braces}.
std::pair<std::string, std::string> split_series_key(const std::string& key) {
  const std::size_t brace = key.find('{');
  if (brace == std::string::npos) return {key, ""};
  return {key.substr(0, brace), key.substr(brace)};
}

/// A bucket's label block: the series' own labels with `le` appended
/// last — `{le="0.5"}` for unlabeled series, `{k="v",le="0.5"}` else.
std::string bucket_labels(const std::string& labels, const std::string& le) {
  if (labels.empty()) return "{le=\"" + le + "\"}";
  return labels.substr(0, labels.size() - 1) + ",le=\"" + le + "\"}";
}

/// Shortest round-trippable rendering without trailing-zero noise.
std::string format_double(double v) {
  std::ostringstream out;
  out.precision(12);
  out << v;
  return out.str();
}

}  // namespace

std::string series_key(const std::string& name, const Labels& labels) {
  if (name.empty())
    throw InvalidArgument("series_key: metric name must not be empty");
  if (labels.empty()) return name;

  Labels sorted;
  sorted.reserve(labels.size());
  for (const auto& [key, value] : labels) {
    if (key.empty())
      throw InvalidArgument("series_key: '" + name +
                            "': label key must not be empty");
    sorted.emplace_back(prometheus_label_key(key), value);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 1; i < sorted.size(); ++i)
    if (sorted[i].first == sorted[i - 1].first)
      throw InvalidArgument("series_key: '" + name +
                            "': duplicate label key '" + sorted[i].first +
                            "'");

  std::string out = name;
  out += '{';
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i != 0) out += ',';
    out += sorted[i].first;
    out += "=\"";
    out += escape_label_value(sorted[i].second);
    out += '"';
  }
  out += '}';
  return out;
}

double HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t next = cumulative + buckets[i];
    if (static_cast<double>(next) >= target && buckets[i] > 0) {
      // Interpolate within bucket i between its lower and upper edge.
      const double lo = i == 0 ? min : bounds[i - 1];
      const double hi = i < bounds.size() ? bounds[i] : max;
      const double fraction =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(buckets[i]);
      return std::clamp(lo + (hi - lo) * fraction, min, max);
    }
    cumulative = next;
  }
  return max;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  if (bounds_.empty())
    throw InvalidArgument("Histogram: at least one bucket boundary required");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end())
    throw InvalidArgument("Histogram: boundaries must be strictly increasing");
}

void Histogram::observe(double v) noexcept {
  // Prometheus `le` semantics: bucket i counts bounds[i-1] < v <=
  // bounds[i], so the first boundary >= v is the home bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto bucket =
      static_cast<std::size_t>(std::distance(bounds_.begin(), it));
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  update_watermark(min_, v, std::less<>{});
  update_watermark(max_, v, std::greater<>{});
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.buckets.reserve(buckets_.size());
  for (const auto& b : buckets_)
    snap.buckets.push_back(b.load(std::memory_order_relaxed));
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = snap.count ? min_.load(std::memory_order_relaxed) : 0.0;
  snap.max = snap.count ? max_.load(std::memory_order_relaxed) : 0.0;
  return snap;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

std::vector<double> latency_bounds() {
  return {1e-4,   2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2,
          5e-2,   1e-1,   0.25, 0.5,  1.0,    2.5,  5.0,  10.0};
}

WindowedHistogram::WindowedHistogram(std::vector<double> bounds,
                                     double window_seconds,
                                     std::function<double()> clock)
    : cumulative_(bounds), slice_seconds_(0.0), clock_(std::move(clock)) {
  if (!(window_seconds > 0.0))
    throw InvalidArgument("WindowedHistogram: window_seconds must be > 0");
  slice_seconds_ = window_seconds / static_cast<double>(kSlices);
  if (!clock_) {
    const auto origin = std::chrono::steady_clock::now();
    clock_ = [origin] {
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           origin)
          .count();
    };
  }
  slices_.reserve(kSlices);
  for (std::size_t i = 0; i < kSlices; ++i)
    slices_.push_back(std::make_unique<Histogram>(bounds));
  for (auto& epoch : slice_epochs_)
    epoch.store(-1, std::memory_order_relaxed);
}

std::int64_t WindowedHistogram::epoch_now() const {
  return static_cast<std::int64_t>(std::floor(clock_() / slice_seconds_));
}

void WindowedHistogram::observe(double v) {
  cumulative_.observe(v);
  const std::int64_t epoch = epoch_now();
  const auto idx =
      static_cast<std::size_t>(epoch % static_cast<std::int64_t>(kSlices));
  if (slice_epochs_[idx].load(std::memory_order_acquire) != epoch) {
    // First visit to this ring slot in a new epoch: recycle it. The
    // double-checked lock keeps rotation single-writer; an observe
    // racing the reset may lose its sample to the recycled slice —
    // noise a windowed quantile tolerates by design.
    const std::lock_guard<std::mutex> lock(rotate_mutex_);
    if (slice_epochs_[idx].load(std::memory_order_relaxed) != epoch) {
      slices_[idx]->reset();
      slice_epochs_[idx].store(epoch, std::memory_order_release);
    }
  }
  slices_[idx]->observe(v);
}

HistogramSnapshot WindowedHistogram::snapshot() const {
  return cumulative_.snapshot();
}

HistogramSnapshot WindowedHistogram::window_snapshot() const {
  const std::int64_t epoch = epoch_now();
  HistogramSnapshot merged;
  merged.bounds = cumulative_.bounds();
  merged.buckets.assign(merged.bounds.size() + 1, 0);
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < kSlices; ++i) {
    const std::int64_t e = slice_epochs_[i].load(std::memory_order_acquire);
    // A slot is inside the window while its epoch is one of the last
    // kSlices epochs; never-used (-1) and expired slots contribute
    // nothing.
    if (e < 0 || e + static_cast<std::int64_t>(kSlices) <= epoch) continue;
    const HistogramSnapshot s = slices_[i]->snapshot();
    for (std::size_t b = 0; b < merged.buckets.size(); ++b)
      merged.buckets[b] += s.buckets[b];
    merged.count += s.count;
    merged.sum += s.sum;
    if (s.count > 0) {
      min = std::min(min, s.min);
      max = std::max(max, s.max);
    }
  }
  merged.min = merged.count ? min : 0.0;
  merged.max = merged.count ? max : 0.0;
  return merged;
}

void WindowedHistogram::reset() {
  const std::lock_guard<std::mutex> lock(rotate_mutex_);
  cumulative_.reset();
  for (std::size_t i = 0; i < kSlices; ++i) {
    slices_[i]->reset();
    slice_epochs_[i].store(-1, std::memory_order_relaxed);
  }
}

std::string MetricsSnapshot::to_json(int indent) const {
  const std::string pad(static_cast<std::size_t>(std::max(indent, 0)), ' ');
  std::ostringstream out;
  out << pad << "{\n";

  // Series keys embed quoted label values (`name{k="v"}`), so every
  // key goes through json_escape.
  out << pad << "  \"counters\": {";
  for (auto it = counters.begin(); it != counters.end(); ++it)
    out << (it == counters.begin() ? "\n" : ",\n") << pad << "    \""
        << json_escape(it->first) << "\": " << it->second;
  out << (counters.empty() ? "" : "\n" + pad + "  ") << "},\n";

  out << pad << "  \"gauges\": {";
  for (auto it = gauges.begin(); it != gauges.end(); ++it)
    out << (it == gauges.begin() ? "\n" : ",\n") << pad << "    \""
        << json_escape(it->first) << "\": " << format_double(it->second);
  out << (gauges.empty() ? "" : "\n" + pad + "  ") << "},\n";

  out << pad << "  \"histograms\": {";
  for (auto it = histograms.begin(); it != histograms.end(); ++it) {
    const HistogramSnapshot& h = it->second;
    out << (it == histograms.begin() ? "\n" : ",\n");
    out << pad << "    \"" << json_escape(it->first) << "\": {\n";
    out << pad << "      \"count\": " << h.count
        << ", \"sum\": " << format_double(h.sum)
        << ", \"min\": " << format_double(h.min)
        << ", \"max\": " << format_double(h.max)
        << ", \"p50\": " << format_double(h.quantile(0.5))
        << ", \"p99\": " << format_double(h.quantile(0.99)) << ",\n";
    out << pad << "      \"buckets\": [";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      out << (i ? ", " : "") << "{\"le\": "
          << (i < h.bounds.size() ? "\"" + format_double(h.bounds[i]) + "\""
                                  : std::string("\"+Inf\""))
          << ", \"count\": " << h.buckets[i] << "}";
    }
    out << "]\n" << pad << "    }";
  }
  out << (histograms.empty() ? "" : "\n" + pad + "  ") << "}\n";

  out << pad << "}";
  return out.str();
}

std::string MetricsSnapshot::to_prometheus() const {
  // Group series under their family first: map ordering interleaves
  // families otherwise (`name2` sorts before `name{...}`), and the
  // exposition format requires all of a family's series — and its one
  // # HELP / # TYPE pair — to be contiguous.
  const auto emit_header = [this](std::ostringstream& out,
                                  const std::string& family,
                                  const char* type) {
    const std::string p = prometheus_name(family);
    const auto doc = help.find(family);
    if (doc != help.end())
      out << "# HELP " << p << " " << escape_label_value(doc->second)
          << "\n";
    out << "# TYPE " << p << " " << type << "\n";
  };

  std::ostringstream out;
  std::map<std::string, std::vector<std::pair<std::string, std::uint64_t>>>
      counter_families;
  for (const auto& [key, value] : counters) {
    auto [family, labels] = split_series_key(key);
    counter_families[std::move(family)].emplace_back(std::move(labels),
                                                     value);
  }
  for (const auto& [family, series] : counter_families) {
    emit_header(out, family, "counter");
    for (const auto& [labels, value] : series)
      out << prometheus_name(family) << labels << " " << value << "\n";
  }

  std::map<std::string, std::vector<std::pair<std::string, double>>>
      gauge_families;
  for (const auto& [key, value] : gauges) {
    auto [family, labels] = split_series_key(key);
    gauge_families[std::move(family)].emplace_back(std::move(labels), value);
  }
  for (const auto& [family, series] : gauge_families) {
    emit_header(out, family, "gauge");
    for (const auto& [labels, value] : series)
      out << prometheus_name(family) << labels << " "
          << format_double(value) << "\n";
  }

  std::map<std::string,
           std::vector<std::pair<std::string, const HistogramSnapshot*>>>
      histogram_families;
  for (const auto& [key, h] : histograms) {
    auto [family, labels] = split_series_key(key);
    histogram_families[std::move(family)].emplace_back(std::move(labels),
                                                       &h);
  }
  for (const auto& [family, series] : histogram_families) {
    emit_header(out, family, "histogram");
    const std::string p = prometheus_name(family);
    for (const auto& [labels, h] : series) {
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < h->buckets.size(); ++i) {
        cumulative += h->buckets[i];
        out << p << "_bucket"
            << bucket_labels(labels, i < h->bounds.size()
                                         ? format_double(h->bounds[i])
                                         : "+Inf")
            << " " << cumulative << "\n";
      }
      out << p << "_sum" << labels << " " << format_double(h->sum) << "\n";
      out << p << "_count" << labels << " " << h->count << "\n";
    }
  }
  return out.str();
}

void Registry::check_kind(const std::string& family, char kind,
                          const char* where) {
  const auto [it, inserted] = kinds_.emplace(family, kind);
  if (!inserted && it->second != kind)
    throw InvalidArgument(std::string("Registry::") + where + ": '" +
                          family + "' is registered as another metric kind");
}

Counter& Registry::overflow_counter_locked() {
  // Direct map access: we already hold mutex_, and the bookkeeping
  // counter must never itself trip the cardinality path.
  auto& slot = counters_["obs.metrics.series_overflow"];
  if (!slot) {
    slot = std::make_unique<Counter>();
    kinds_.emplace("obs.metrics.series_overflow", 'c');
    series_["obs.metrics.series_overflow"] = 1;
  }
  return *slot;
}

bool Registry::admit_series(const std::string& family) {
  std::size_t& count = series_[family];
  if (count >= kMaxSeriesPerFamily) {
    overflow_counter_locked().add();
    return false;
  }
  ++count;
  return true;
}

Counter& Registry::counter(const std::string& name, const Labels& labels) {
  std::string key = series_key(name, labels);
  const std::lock_guard<std::mutex> lock(mutex_);
  check_kind(name, 'c', "counter");
  if (const auto it = counters_.find(key); it != counters_.end())
    return *it->second;
  if (!admit_series(name))
    key = series_key(name, {{"overflow", "true"}});
  auto& slot = counters_[key];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels) {
  std::string key = series_key(name, labels);
  const std::lock_guard<std::mutex> lock(mutex_);
  check_kind(name, 'g', "gauge");
  if (const auto it = gauges_.find(key); it != gauges_.end())
    return *it->second;
  if (!admit_series(name))
    key = series_key(name, {{"overflow", "true"}});
  auto& slot = gauges_[key];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  return histogram(name, Labels{}, std::move(bounds));
}

Histogram& Registry::histogram(const std::string& name, const Labels& labels,
                               std::vector<double> bounds) {
  std::string key = series_key(name, labels);
  const std::lock_guard<std::mutex> lock(mutex_);
  check_kind(name, 'h', "histogram");
  // Boundaries are a family-wide property: every label set shares them
  // so the _bucket rows line up across series.
  if (const auto it = histogram_bounds_.find(name);
      it != histogram_bounds_.end()) {
    if (it->second != bounds)
      throw InvalidArgument("Registry::histogram: '" + name +
                            "' re-registered with different boundaries");
  } else {
    histogram_bounds_[name] = bounds;
  }
  if (const auto it = histograms_.find(key); it != histograms_.end())
    return *it->second;
  if (windowed_.count(key) != 0)
    throw InvalidArgument("Registry::histogram: '" + key +
                          "' is already a windowed histogram series");
  if (!admit_series(name))
    key = series_key(name, {{"overflow", "true"}});
  auto& slot = histograms_[key];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

WindowedHistogram& Registry::windowed_histogram(const std::string& name,
                                                const Labels& labels,
                                                std::vector<double> bounds,
                                                double window_seconds) {
  std::string key = series_key(name, labels);
  const std::lock_guard<std::mutex> lock(mutex_);
  check_kind(name, 'h', "windowed_histogram");
  // Reserve the exported `.window` family too, so no other metric can
  // claim the name the window snapshot renders under.
  check_kind(name + ".window", 'h', "windowed_histogram");
  if (histograms_.count(key) != 0)
    throw InvalidArgument("Registry::windowed_histogram: '" + key +
                          "' is already a plain histogram series");
  if (const auto it = histogram_bounds_.find(name);
      it != histogram_bounds_.end()) {
    if (it->second != bounds)
      throw InvalidArgument("Registry::histogram: '" + name +
                            "' re-registered with different boundaries");
  } else {
    histogram_bounds_[name] = bounds;
  }
  if (const auto it = window_seconds_.find(name);
      it != window_seconds_.end()) {
    if (it->second != window_seconds)
      throw InvalidArgument("Registry::windowed_histogram: '" + name +
                            "' re-registered with a different window");
  } else {
    window_seconds_[name] = window_seconds;
  }
  if (const auto it = windowed_.find(key); it != windowed_.end())
    return *it->second;
  if (!admit_series(name))
    key = series_key(name, {{"overflow", "true"}});
  auto& slot = windowed_[key];
  if (!slot)
    slot = std::make_unique<WindowedHistogram>(std::move(bounds),
                                               window_seconds);
  return *slot;
}

void Registry::describe(const std::string& name, const std::string& text) {
  const std::lock_guard<std::mutex> lock(mutex_);
  help_[name] = text;
}

MetricsSnapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_)
    snap.histograms[name] = h->snapshot();
  for (const auto& [key, w] : windowed_) {
    snap.histograms[key] = w->snapshot();
    const auto [family, labels] = split_series_key(key);
    snap.histograms[family + ".window" + labels] = w->window_snapshot();
  }
  snap.help = help_;
  return snap;
}

void Registry::reset_values() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, h] : histograms_) h->reset();
  for (const auto& [name, w] : windowed_) w->reset();
}

Registry& Registry::global() {
  static Registry* instance = new Registry();  // never destroyed: handles
  return *instance;                            // outlive static teardown
}

}  // namespace sunchase::obs
