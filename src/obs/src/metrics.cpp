#include "sunchase/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "sunchase/common/error.h"

namespace sunchase::obs {

namespace {

/// Lowers a relaxed atomic min/max watermark via CAS.
template <class Cmp>
void update_watermark(std::atomic<double>& mark, double v, Cmp better) {
  double cur = mark.load(std::memory_order_relaxed);
  while (better(v, cur) &&
         !mark.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// Prometheus metric names allow [a-zA-Z0-9_:] only; the registry's
/// dotted names map '.' (and anything else) to '_'.
std::string prometheus_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

/// Shortest round-trippable rendering without trailing-zero noise.
std::string format_double(double v) {
  std::ostringstream out;
  out.precision(12);
  out << v;
  return out.str();
}

}  // namespace

double HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t next = cumulative + buckets[i];
    if (static_cast<double>(next) >= target && buckets[i] > 0) {
      // Interpolate within bucket i between its lower and upper edge.
      const double lo = i == 0 ? min : bounds[i - 1];
      const double hi = i < bounds.size() ? bounds[i] : max;
      const double fraction =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(buckets[i]);
      return std::clamp(lo + (hi - lo) * fraction, min, max);
    }
    cumulative = next;
  }
  return max;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  if (bounds_.empty())
    throw InvalidArgument("Histogram: at least one bucket boundary required");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end())
    throw InvalidArgument("Histogram: boundaries must be strictly increasing");
}

void Histogram::observe(double v) noexcept {
  // Prometheus `le` semantics: bucket i counts bounds[i-1] < v <=
  // bounds[i], so the first boundary >= v is the home bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto bucket =
      static_cast<std::size_t>(std::distance(bounds_.begin(), it));
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  update_watermark(min_, v, std::less<>{});
  update_watermark(max_, v, std::greater<>{});
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.buckets.reserve(buckets_.size());
  for (const auto& b : buckets_)
    snap.buckets.push_back(b.load(std::memory_order_relaxed));
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = snap.count ? min_.load(std::memory_order_relaxed) : 0.0;
  snap.max = snap.count ? max_.load(std::memory_order_relaxed) : 0.0;
  return snap;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

std::vector<double> latency_bounds() {
  return {1e-4,   2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2,
          5e-2,   1e-1,   0.25, 0.5,  1.0,    2.5,  5.0,  10.0};
}

std::string MetricsSnapshot::to_json(int indent) const {
  const std::string pad(static_cast<std::size_t>(std::max(indent, 0)), ' ');
  std::ostringstream out;
  out << pad << "{\n";

  out << pad << "  \"counters\": {";
  for (auto it = counters.begin(); it != counters.end(); ++it)
    out << (it == counters.begin() ? "\n" : ",\n") << pad << "    \""
        << it->first << "\": " << it->second;
  out << (counters.empty() ? "" : "\n" + pad + "  ") << "},\n";

  out << pad << "  \"gauges\": {";
  for (auto it = gauges.begin(); it != gauges.end(); ++it)
    out << (it == gauges.begin() ? "\n" : ",\n") << pad << "    \""
        << it->first << "\": " << format_double(it->second);
  out << (gauges.empty() ? "" : "\n" + pad + "  ") << "},\n";

  out << pad << "  \"histograms\": {";
  for (auto it = histograms.begin(); it != histograms.end(); ++it) {
    const HistogramSnapshot& h = it->second;
    out << (it == histograms.begin() ? "\n" : ",\n");
    out << pad << "    \"" << it->first << "\": {\n";
    out << pad << "      \"count\": " << h.count
        << ", \"sum\": " << format_double(h.sum)
        << ", \"min\": " << format_double(h.min)
        << ", \"max\": " << format_double(h.max) << ",\n";
    out << pad << "      \"buckets\": [";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      out << (i ? ", " : "") << "{\"le\": "
          << (i < h.bounds.size() ? "\"" + format_double(h.bounds[i]) + "\""
                                  : std::string("\"+Inf\""))
          << ", \"count\": " << h.buckets[i] << "}";
    }
    out << "]\n" << pad << "    }";
  }
  out << (histograms.empty() ? "" : "\n" + pad + "  ") << "}\n";

  out << pad << "}";
  return out.str();
}

std::string MetricsSnapshot::to_prometheus() const {
  std::ostringstream out;
  for (const auto& [name, value] : counters) {
    const std::string p = prometheus_name(name);
    out << "# TYPE " << p << " counter\n" << p << " " << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    const std::string p = prometheus_name(name);
    out << "# TYPE " << p << " gauge\n" << p << " " << format_double(value)
        << "\n";
  }
  for (const auto& [name, h] : histograms) {
    const std::string p = prometheus_name(name);
    out << "# TYPE " << p << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      cumulative += h.buckets[i];
      out << p << "_bucket{le=\""
          << (i < h.bounds.size() ? format_double(h.bounds[i]) : "+Inf")
          << "\"} " << cumulative << "\n";
    }
    out << p << "_sum " << format_double(h.sum) << "\n";
    out << p << "_count " << h.count << "\n";
  }
  return out.str();
}

Counter& Registry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (gauges_.contains(name) || histograms_.contains(name))
    throw InvalidArgument("Registry::counter: '" + name +
                          "' is registered as another metric kind");
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (counters_.contains(name) || histograms_.contains(name))
    throw InvalidArgument("Registry::gauge: '" + name +
                          "' is registered as another metric kind");
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (counters_.contains(name) || gauges_.contains(name))
    throw InvalidArgument("Registry::histogram: '" + name +
                          "' is registered as another metric kind");
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  } else if (slot->bounds() != bounds) {
    throw InvalidArgument("Registry::histogram: '" + name +
                          "' re-registered with different boundaries");
  }
  return *slot;
}

MetricsSnapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_)
    snap.histograms[name] = h->snapshot();
  return snap;
}

void Registry::reset_values() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, h] : histograms_) h->reset();
}

Registry& Registry::global() {
  static Registry* instance = new Registry();  // never destroyed: handles
  return *instance;                            // outlive static teardown
}

}  // namespace sunchase::obs
