#include "sunchase/obs/query_log.h"

#include <algorithm>
#include <sstream>

#include "sunchase/common/error.h"
#include "sunchase/common/logging.h"

namespace sunchase::obs {

namespace {

/// Shortest round-trippable rendering without trailing-zero noise.
std::string format_double(double v) {
  std::ostringstream out;
  out.precision(12);
  out << v;
  return out.str();
}

/// Escapes the JSON-hostile characters an exception message can carry.
std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string QueryRecord::to_json() const {
  std::ostringstream out;
  out << "{\"mode\":\"" << escape(mode) << "\"";
  if (index >= 0) out << ",\"index\":" << index;
  out << ",\"origin\":" << origin << ",\"destination\":" << destination
      << ",\"departure\":\"" << escape(departure) << "\",\"pricing\":\""
      << escape(pricing) << "\",\"status\":\"" << escape(status) << "\"";
  if (world_version >= 0) out << ",\"world.version\":" << world_version;
  if (!trace_id.empty()) out << ",\"trace_id\":\"" << escape(trace_id) << "\"";
  if (status != "ok") out << ",\"error\":\"" << escape(error) << "\"";
  out << ",\"mlc_seconds\":" << format_double(mlc_seconds)
      << ",\"kmeans_seconds\":" << format_double(kmeans_seconds)
      << ",\"selection_seconds\":" << format_double(selection_seconds)
      << ",\"total_seconds\":" << format_double(total_seconds)
      << ",\"cpu_ms\":" << format_double(cpu_ms)
      << ",\"labels_created\":" << labels_created
      << ",\"labels_dominated\":" << labels_dominated
      << ",\"queue_pops\":" << queue_pops << ",\"pareto_size\":"
      << pareto_size << ",\"labels_pruned_bound\":" << labels_pruned_bound
      << ",\"labels_merged_epsilon\":" << labels_merged_epsilon
      << ",\"lower_bound_seconds\":" << format_double(lower_bound_seconds);
  if (status == "ok")
    out << ",\"candidates\":" << candidate_count << ",\"travel_time_s\":"
        << format_double(travel_time_s) << ",\"shaded_time_s\":"
        << format_double(shaded_time_s) << ",\"energy_out_wh\":"
        << format_double(energy_out_wh) << ",\"energy_in_wh\":"
        << format_double(energy_in_wh);
  out << "}";
  return out.str();
}

QueryLog::QueryLog(const std::string& path)
    : owned_(path),
      sink_(owned_),
      records_metric_(Registry::global().counter("querylog.records")),
      slow_metric_(Registry::global().counter("querylog.slow_queries")) {
  if (!owned_) throw IoError("QueryLog: cannot open " + path);
}

QueryLog::QueryLog(std::ostream& sink)
    : sink_(sink),
      records_metric_(Registry::global().counter("querylog.records")),
      slow_metric_(Registry::global().counter("querylog.slow_queries")) {}

std::vector<std::string> QueryLog::tail(std::size_t n) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t count = std::min(n, tail_.size());
  return std::vector<std::string>(tail_.end() - static_cast<std::ptrdiff_t>(count),
                                  tail_.end());
}

void QueryLog::write(const QueryRecord& record) {
  // Build the full line outside the lock; the critical section is one
  // streamed write, so lines from concurrent workers never interleave.
  std::string line = record.to_json() + "\n";
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    sink_ << line;
    sink_.flush();
    line.pop_back();  // ring holds bare JSON objects, no newline
    if (tail_.size() == kTailCapacity) tail_.pop_front();
    tail_.push_back(std::move(line));
  }
  records_.fetch_add(1, std::memory_order_relaxed);
  records_metric_.add();

  const double threshold =
      slow_threshold_seconds_.load(std::memory_order_relaxed);
  if (threshold > 0.0 && record.total_seconds > threshold) {
    slow_.fetch_add(1, std::memory_order_relaxed);
    slow_metric_.add();
    SUNCHASE_LOG(Warning) << "querylog: slow query " << record.origin << "->"
                          << record.destination << " @ " << record.departure
                          << ": " << record.total_seconds << " s > "
                          << threshold << " s threshold ("
                          << record.labels_created << " labels, Pareto "
                          << record.pareto_size << ")";
  }
}

}  // namespace sunchase::obs
