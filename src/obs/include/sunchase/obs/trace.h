// Scoped span tracing: an RAII SpanTimer records {name, start, dur}
// into a bounded per-thread buffer; the process-wide Tracer collects
// the buffers and exports Chrome trace_event JSON ("X" complete
// events), so a batch run opens directly in chrome://tracing or
// Perfetto. Tracing is off by default: a disabled SpanTimer costs one
// relaxed atomic load and never touches the clock.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sunchase/obs/profiler.h"
#include "sunchase/obs/trace_context.h"

namespace sunchase::obs {

/// One completed span, in microseconds since the tracer's origin.
/// `name` must point at a string literal (static storage duration).
/// The trace/span/parent ids carry request identity across threads:
/// zero ids mean "no context" (a span recorded outside any request).
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  std::uint64_t trace_hi = 0;   ///< request trace id (high 64 bits)
  std::uint64_t trace_lo = 0;   ///< request trace id (low 64 bits)
  std::uint64_t span_id = 0;    ///< this span's own id
  std::uint64_t parent_id = 0;  ///< enclosing span (0 = root)
  int tid = 0;  ///< stamped by ThreadBuffer::record, not by callers
};

namespace detail {

/// Bounded per-thread span store. The owning thread appends under a
/// per-buffer mutex that only the exporter ever contends on.
class ThreadBuffer {
 public:
  explicit ThreadBuffer(int tid) noexcept : tid_(tid) {}
  void record(const TraceEvent& event);

  static constexpr std::size_t kCapacity = 1 << 16;

  int tid() const noexcept { return tid_; }
  /// New occupant of a recycled buffer: retained events keep the tid
  /// they were stamped with; only spans recorded from here on carry
  /// the new one. Called by the owning thread before its first record.
  void rebind(int tid) noexcept { tid_ = tid; }
  [[nodiscard]] std::vector<TraceEvent> drain_copy() const;
  [[nodiscard]] std::uint64_t dropped() const noexcept;
  void clear();

 private:
  int tid_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace detail

/// Process-wide trace collector. Spans recorded on any thread land in
/// that thread's buffer; export walks every buffer ever registered
/// (buffers outlive their threads, so worker spans survive pool join).
class Tracer {
 public:
  static Tracer& global();

  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Microseconds since the tracer came up (the trace time axis).
  [[nodiscard]] std::uint64_t now_us() const noexcept;

  /// Recorded spans as a Chrome trace_event JSON document. `since_us`
  /// keeps only spans that *ended* at or after that tracer timestamp —
  /// the incremental-poll contract of GET /debug/trace?since= (poll,
  /// remember the document's "now_us", pass it back next time). Spans
  /// with a trace context export it under "args" ({trace_id, span_id,
  /// parent_id} hex strings), which is how a viewer — or a test —
  /// re-parents spans across thread boundaries.
  [[nodiscard]] std::string to_chrome_json(std::uint64_t since_us = 0) const;

  /// Spans currently held across all thread buffers.
  [[nodiscard]] std::size_t span_count() const;
  /// Spans lost to full buffers since the last clear().
  [[nodiscard]] std::uint64_t dropped_count() const;

  /// Forgets recorded spans (buffers and thread ids survive).
  void clear();

  /// The calling thread's buffer, registering it on first use. When a
  /// thread exits, its buffer (events intact — worker spans survive
  /// pool join) returns to a free list and the next new thread reuses
  /// it, so a churning ThreadPool cycles a bounded set of buffers
  /// instead of registering one per short-lived thread.
  detail::ThreadBuffer& thread_buffer();

  /// Buffers ever created (live + free-listed). Tests assert this stays
  /// bounded under thread churn.
  [[nodiscard]] std::size_t buffer_count() const;

  /// Returns a buffer to the free list. Called by the thread-exit hook
  /// thread_buffer() installs; not for direct use.
  void release_buffer(std::shared_ptr<detail::ThreadBuffer> buffer);

 private:
  Tracer() = default;

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point origin_ =
      std::chrono::steady_clock::now();
  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<detail::ThreadBuffer>> buffers_;
  std::vector<std::shared_ptr<detail::ThreadBuffer>> free_buffers_;
  int next_tid_ = 1;
};

/// RAII span: times the enclosing scope and records it on destruction.
/// `name` must be a string literal. Nesting is expressed both by scope
/// containment (Perfetto reconstructs same-thread stacks from times)
/// and explicitly: each span adopts the thread's current trace context
/// as its parent, installs itself as current for its scope, and records
/// {trace_id, span_id, parent_id} — so a child span on a ThreadPool
/// worker (re-installed via TraceScope) still parents to the request.
///
/// Every span also pushes its name onto the thread's SpanStack for the
/// sampling Profiler — unconditionally, even with tracing disabled, so
/// profiling can start mid-run. That path is a thread-local lookup plus
/// three relaxed/release atomics; the clock is still only touched when
/// tracing is on.
class SpanTimer {
 public:
  explicit SpanTimer(const char* name) noexcept
      : stack_(&Profiler::global().thread_stack()) {
    stack_->push(name);
    if (Tracer::global().enabled()) {
      name_ = name;
      parent_ = current_trace();
      self_ = parent_;
      self_.span_id = random_span_id();
      detail::set_current_trace(self_);
      start_us_ = Tracer::global().now_us();
    }
  }
  ~SpanTimer() {
    stack_->pop();
    if (name_ != nullptr) {
      const std::uint64_t end_us = Tracer::global().now_us();
      detail::set_current_trace(parent_);
      Tracer::global().thread_buffer().record(
          TraceEvent{name_, start_us_, end_us - start_us_, self_.trace_hi,
                     self_.trace_lo, self_.span_id, parent_.span_id});
    }
  }
  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

 private:
  detail::SpanStack* stack_;    ///< this thread's profiler stack
  const char* name_ = nullptr;  ///< null when tracing was disabled
  std::uint64_t start_us_ = 0;
  TraceContext parent_{};  ///< context to restore (and parent span id)
  TraceContext self_{};    ///< this span's identity while open
};

}  // namespace sunchase::obs
