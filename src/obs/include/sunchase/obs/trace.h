// Scoped span tracing: an RAII SpanTimer records {name, start, dur}
// into a bounded per-thread buffer; the process-wide Tracer collects
// the buffers and exports Chrome trace_event JSON ("X" complete
// events), so a batch run opens directly in chrome://tracing or
// Perfetto. Tracing is off by default: a disabled SpanTimer costs one
// relaxed atomic load and never touches the clock.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sunchase::obs {

/// One completed span, in microseconds since the tracer's origin.
/// `name` must point at a string literal (static storage duration).
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
};

namespace detail {

/// Bounded per-thread span store. The owning thread appends under a
/// per-buffer mutex that only the exporter ever contends on.
class ThreadBuffer {
 public:
  explicit ThreadBuffer(int tid) noexcept : tid_(tid) {}
  void record(const TraceEvent& event);

  static constexpr std::size_t kCapacity = 1 << 16;

  int tid() const noexcept { return tid_; }
  [[nodiscard]] std::vector<TraceEvent> drain_copy() const;
  [[nodiscard]] std::uint64_t dropped() const noexcept;
  void clear();

 private:
  int tid_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace detail

/// Process-wide trace collector. Spans recorded on any thread land in
/// that thread's buffer; export walks every buffer ever registered
/// (buffers outlive their threads, so worker spans survive pool join).
class Tracer {
 public:
  static Tracer& global();

  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Microseconds since the tracer came up (the trace time axis).
  [[nodiscard]] std::uint64_t now_us() const noexcept;

  /// All recorded spans as a Chrome trace_event JSON document.
  [[nodiscard]] std::string to_chrome_json() const;

  /// Spans currently held across all thread buffers.
  [[nodiscard]] std::size_t span_count() const;
  /// Spans lost to full buffers since the last clear().
  [[nodiscard]] std::uint64_t dropped_count() const;

  /// Forgets recorded spans (buffers and thread ids survive).
  void clear();

  /// The calling thread's buffer, registering it on first use.
  detail::ThreadBuffer& thread_buffer();

 private:
  Tracer() = default;

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point origin_ =
      std::chrono::steady_clock::now();
  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<detail::ThreadBuffer>> buffers_;
  int next_tid_ = 1;
};

/// RAII span: times the enclosing scope and records it on destruction.
/// `name` must be a string literal; nesting is expressed purely by
/// scope containment (Perfetto reconstructs the stack from times).
class SpanTimer {
 public:
  explicit SpanTimer(const char* name) noexcept {
    if (Tracer::global().enabled()) {
      name_ = name;
      start_us_ = Tracer::global().now_us();
    }
  }
  ~SpanTimer() {
    if (name_ != nullptr) {
      const std::uint64_t end_us = Tracer::global().now_us();
      Tracer::global().thread_buffer().record(
          TraceEvent{name_, start_us_, end_us - start_us_});
    }
  }
  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

 private:
  const char* name_ = nullptr;  ///< null when tracing was disabled
  std::uint64_t start_us_ = 0;
};

}  // namespace sunchase::obs
