// Process-wide metrics: named counters, gauges, and fixed-boundary
// histograms behind a thread-safe registry. Hot-path updates are single
// relaxed atomic operations (no locks); reading takes a snapshot that
// renders as JSON (for BENCH_*.json / --metrics-out run reports) or
// Prometheus text exposition format. Instrumented code caches the
// handle returned by Registry::{counter,gauge,histogram} — handles stay
// valid for the registry's lifetime.
//
// Metrics may carry dimensional labels (endpoint, status, pricing
// mode): each distinct {name, label set} is an independent series of
// one family, rendered as a proper Prometheus label set
// (`serve_requests{endpoint="/plan",status="200"} 3`). Cardinality is
// bounded — a family caps out at kMaxSeriesPerFamily label sets, after
// which new sets clamp to one shared {overflow="true"} series (and
// `obs.metrics.series_overflow` counts the clamps), so an unbounded
// label value (a raw URL, a user id) can never OOM the registry.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace sunchase::obs {

/// One metric's dimensional labels: {key, value} pairs. Order does not
/// matter (series identity sorts by key); keys are sanitized to the
/// Prometheus label charset, values may be any UTF-8 (escaped on
/// export). Keep values BOUNDED — enum-like strings, never raw input.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Canonical series identity: `name` alone for empty labels, otherwise
/// `name{k="v",...}` with keys sorted and values escaped — the exact
/// form snapshot maps and exports key on. Throws InvalidArgument on an
/// empty name, empty label key, or duplicate label key.
[[nodiscard]] std::string series_key(const std::string& name,
                                     const Labels& labels);

/// Monotonically increasing event count. add() is a relaxed fetch_add.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A last-written-wins instantaneous value (throughput, pool size, ...).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  /// Relative adjustment for level-style gauges tracked from many
  /// threads (in-flight requests, queue depth): one relaxed atomic
  /// fetch_add, so concurrent +1/-1 pairs never lose updates the way
  /// racing value()+set() would.
  void add(double delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Read-side copy of a histogram: cumulative-free bucket counts plus
/// exact count/sum/min/max taken at snapshot time.
struct HistogramSnapshot {
  std::vector<double> bounds;          ///< upper bounds, strictly increasing
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 (last = +Inf)
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< exact observed minimum (0 when count == 0)
  double max = 0.0;  ///< exact observed maximum (0 when count == 0)

  /// Quantile estimate by linear interpolation inside the target
  /// bucket, clamped to the exact [min, max] range. q in [0, 1].
  [[nodiscard]] double quantile(double q) const noexcept;
};

/// Fixed-boundary histogram: observe() is a binary search plus a few
/// relaxed atomics (bucket, count, sum, min/max CAS) — no locks.
/// Usable standalone (e.g. a per-batch latency histogram) or through
/// the registry.
class Histogram {
 public:
  /// Throws InvalidArgument unless `bounds` is non-empty and strictly
  /// increasing.
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double v) noexcept;
  [[nodiscard]] HistogramSnapshot snapshot() const;
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  ///< bounds+1 slots
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Exponential boundaries from 100 µs to 10 s — the default for
/// latency-in-seconds histograms across the planner.
[[nodiscard]] std::vector<double> latency_bounds();

/// A histogram that answers two questions at once: "since boot"
/// (cumulative, identical to Histogram) and "recently" (a rolling
/// window, default 60 s). The window is a ring of kSlices
/// sub-histograms, each owning one window/kSlices-second time slice;
/// observe() lands in the cumulative histogram plus the current slice,
/// lazily resetting a slice the first time its ring slot is revisited
/// in a new epoch. window_snapshot() merges every slice still inside
/// the window, so the effective span wanders between (kSlices-1)/kSlices
/// and 1 full window — the standard ring-buffer quantization, fine for
/// "p99 over the last minute".
///
/// Hot path: one extra epoch load + slice observe vs a plain
/// Histogram; rotation takes a mutex at most once per slice interval.
/// An observe racing a rotation may land in a slice being recycled —
/// acceptable noise for windowed quantiles (all traffic is atomic, so
/// TSan stays quiet). An EMPTY window reports count == 0 and
/// quantile() == 0.0 (HistogramSnapshot's empty policy) — exporters
/// show 0, not NaN, when no traffic arrived in the last minute.
class WindowedHistogram {
 public:
  static constexpr std::size_t kSlices = 6;

  /// `clock` returns seconds on a monotonic axis; tests inject a fake
  /// for deterministic rotation. Defaults to steady_clock seconds since
  /// construction. Throws like Histogram on bad bounds; additionally
  /// requires window_seconds > 0.
  explicit WindowedHistogram(std::vector<double> bounds,
                             double window_seconds = 60.0,
                             std::function<double()> clock = {});
  WindowedHistogram(const WindowedHistogram&) = delete;
  WindowedHistogram& operator=(const WindowedHistogram&) = delete;

  void observe(double v);
  /// Cumulative (since boot / last reset) — same meaning as Histogram.
  [[nodiscard]] HistogramSnapshot snapshot() const;
  /// Merge of the slices still inside the window: the last ~60 s.
  [[nodiscard]] HistogramSnapshot window_snapshot() const;
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return cumulative_.bounds();
  }
  [[nodiscard]] double window_seconds() const noexcept {
    return slice_seconds_ * static_cast<double>(kSlices);
  }
  void reset();

 private:
  [[nodiscard]] std::int64_t epoch_now() const;

  Histogram cumulative_;
  double slice_seconds_;
  std::function<double()> clock_;
  std::vector<std::unique_ptr<Histogram>> slices_;  ///< kSlices ring
  /// Epoch each ring slot currently holds data for; -1 = never used.
  std::array<std::atomic<std::int64_t>, kSlices> slice_epochs_;
  mutable std::mutex rotate_mutex_;
};

/// Point-in-time copy of every registered metric, ready to export.
/// Keys are series keys (see series_key): plain names for unlabeled
/// metrics, `name{k="v",...}` for labeled series.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  /// Family name -> HELP text (Registry::describe).
  std::map<std::string, std::string> help;

  /// Pretty-printed JSON object ({"counters": {...}, "gauges": {...},
  /// "histograms": {...}}); every line is prefixed with `indent` spaces
  /// so the object can be embedded inside another JSON document.
  [[nodiscard]] std::string to_json(int indent = 0) const;

  /// Prometheus text exposition format ('.' in names becomes '_').
  /// Series are grouped by family so # HELP / # TYPE render exactly
  /// once per family; labeled histograms merge the `le` bucket label
  /// into the user label set.
  [[nodiscard]] std::string to_prometheus() const;
};

/// Thread-safe name -> metric registry. Registration takes a mutex;
/// the returned references are stable and lock-free to update.
/// Library code uses the process-wide global(); tests may construct
/// private registries for isolation.
class Registry {
 public:
  /// Distinct label sets one family tolerates before clamping new ones
  /// to the shared {overflow="true"} series.
  static constexpr std::size_t kMaxSeriesPerFamily = 64;

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Finds or creates the named metric (one series per {name, labels}).
  /// Throws InvalidArgument when the name already names a metric of a
  /// different kind, or (histograms) when the boundaries differ from
  /// the registered ones. Past kMaxSeriesPerFamily distinct label sets,
  /// returns the family's overflow series instead of creating more.
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = latency_bounds());
  /// Labeled series require explicit bounds (a default here would make
  /// `histogram("h", {1.0})` ambiguous against the overload above).
  Histogram& histogram(const std::string& name, const Labels& labels,
                       std::vector<double> bounds);
  /// A histogram series with a rolling window attached. Snapshots
  /// export it twice: cumulative under `name{labels}` and the last
  /// ~window_seconds under `name.window{labels}` — so /metrics carries
  /// both quantile sources side by side. Shares the family's kind and
  /// boundary checks with plain histogram series (an unlabeled plain
  /// `name` series may coexist), but one series key must be either
  /// plain or windowed — re-registering the same key as the other
  /// flavor throws InvalidArgument, as does a window_seconds mismatch
  /// within the family.
  WindowedHistogram& windowed_histogram(const std::string& name,
                                        const Labels& labels,
                                        std::vector<double> bounds,
                                        double window_seconds = 60.0);

  /// Attaches a # HELP text to a family (shown on /metrics).
  void describe(const std::string& name, const std::string& text);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every value; handles stay valid. For tests and benches that
  /// want a clean slate without re-registering.
  void reset_values();

  /// The process-wide registry all library instrumentation targets.
  static Registry& global();

 private:
  /// Enforces one kind per family ('c'/'g'/'h'); throws on collision.
  void check_kind(const std::string& family, char kind, const char* where);
  /// True when the family may still add a series; false means the
  /// caller must clamp to the overflow series.
  bool admit_series(const std::string& family);
  Counter& overflow_counter_locked();

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<WindowedHistogram>> windowed_;
  /// family -> window length; all windowed series of a family share it.
  std::map<std::string, double> window_seconds_;
  std::map<std::string, char> kinds_;         ///< family -> kind
  std::map<std::string, std::size_t> series_; ///< family -> series count
  std::map<std::string, std::string> help_;   ///< family -> HELP text
  /// family -> bucket boundaries; every series of a histogram family
  /// must share them so _bucket rows line up across label sets.
  std::map<std::string, std::vector<double>> histogram_bounds_;
};

}  // namespace sunchase::obs
