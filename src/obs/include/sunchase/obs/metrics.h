// Process-wide metrics: named counters, gauges, and fixed-boundary
// histograms behind a thread-safe registry. Hot-path updates are single
// relaxed atomic operations (no locks); reading takes a snapshot that
// renders as JSON (for BENCH_*.json / --metrics-out run reports) or
// Prometheus text exposition format. Instrumented code caches the
// handle returned by Registry::{counter,gauge,histogram} — handles stay
// valid for the registry's lifetime.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sunchase::obs {

/// Monotonically increasing event count. add() is a relaxed fetch_add.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A last-written-wins instantaneous value (throughput, pool size, ...).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  /// Relative adjustment for level-style gauges tracked from many
  /// threads (in-flight requests, queue depth): one relaxed atomic
  /// fetch_add, so concurrent +1/-1 pairs never lose updates the way
  /// racing value()+set() would.
  void add(double delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Read-side copy of a histogram: cumulative-free bucket counts plus
/// exact count/sum/min/max taken at snapshot time.
struct HistogramSnapshot {
  std::vector<double> bounds;          ///< upper bounds, strictly increasing
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 (last = +Inf)
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< exact observed minimum (0 when count == 0)
  double max = 0.0;  ///< exact observed maximum (0 when count == 0)

  /// Quantile estimate by linear interpolation inside the target
  /// bucket, clamped to the exact [min, max] range. q in [0, 1].
  [[nodiscard]] double quantile(double q) const noexcept;
};

/// Fixed-boundary histogram: observe() is a binary search plus a few
/// relaxed atomics (bucket, count, sum, min/max CAS) — no locks.
/// Usable standalone (e.g. a per-batch latency histogram) or through
/// the registry.
class Histogram {
 public:
  /// Throws InvalidArgument unless `bounds` is non-empty and strictly
  /// increasing.
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double v) noexcept;
  [[nodiscard]] HistogramSnapshot snapshot() const;
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  ///< bounds+1 slots
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Exponential boundaries from 100 µs to 10 s — the default for
/// latency-in-seconds histograms across the planner.
[[nodiscard]] std::vector<double> latency_bounds();

/// Point-in-time copy of every registered metric, ready to export.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Pretty-printed JSON object ({"counters": {...}, "gauges": {...},
  /// "histograms": {...}}); every line is prefixed with `indent` spaces
  /// so the object can be embedded inside another JSON document.
  [[nodiscard]] std::string to_json(int indent = 0) const;

  /// Prometheus text exposition format ('.' in names becomes '_').
  [[nodiscard]] std::string to_prometheus() const;
};

/// Thread-safe name -> metric registry. Registration takes a mutex;
/// the returned references are stable and lock-free to update.
/// Library code uses the process-wide global(); tests may construct
/// private registries for isolation.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Finds or creates the named metric. Throws InvalidArgument when the
  /// name already names a metric of a different kind, or (histograms)
  /// when the boundaries differ from the registered ones.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = latency_bounds());

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every value; handles stay valid. For tests and benches that
  /// want a clean slate without re-registering.
  void reset_values();

  /// The process-wide registry all library instrumentation targets.
  static Registry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace sunchase::obs
