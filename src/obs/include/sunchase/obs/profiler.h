// Sampling span-stack profiler: every SpanTimer pushes its name onto a
// lock-free per-thread SpanStack (a fixed array of atomic string-literal
// pointers plus an atomic depth), and a background sampler thread walks
// every registered stack at a fixed interval, folding what it sees into
// `outer;inner;leaf -> count` aggregates — the collapsed-stack format
// flamegraph tooling consumes directly. Because the profiler reads the
// spans the code already declares (serve.request, batch.query,
// mlc.search, ...) instead of unwinding machine frames, it needs no
// signals, no ptrace, no frame pointers, and it is safe under TSan: all
// cross-thread traffic is atomic loads/stores, and a sample that races
// a push/pop merely lands in the old or new stack — acceptable noise
// for a statistical profile.
//
// The push/pop path runs unconditionally (profiler started or not) so
// sampling can begin mid-run; it costs one thread-local lookup and
// three relaxed/release atomics per span — far below the microsecond
// scale of the spans being profiled.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace sunchase::obs {

/// CPU seconds consumed by the calling thread (CLOCK_THREAD_CPUTIME_ID).
/// Two calls bracketing a query give its exact CPU cost regardless of
/// scheduler preemption — the basis for QueryRecord.cpu_ms and the
/// mlc.cpu_seconds / serve.cpu_seconds metrics. Returns 0.0 where the
/// clock is unavailable.
[[nodiscard]] double thread_cpu_seconds() noexcept;

namespace detail {

/// One thread's current span nesting, readable by the sampler thread.
/// The owning thread pushes/pops string literals; the sampler takes a
/// point-in-time copy via sample(). Depth counts pushes even past
/// kMaxDepth (frames beyond it are simply not recorded) so deeply
/// nested push/pop sequences stay balanced.
class SpanStack {
 public:
  static constexpr std::uint32_t kMaxDepth = 64;

  void push(const char* name) noexcept {
    const std::uint32_t d = depth_.load(std::memory_order_relaxed);
    if (d < kMaxDepth) frames_[d].store(name, std::memory_order_relaxed);
    // Release: a sampler that observes the new depth also observes the
    // frame stored above.
    depth_.store(d + 1, std::memory_order_release);
  }

  void pop() noexcept {
    const std::uint32_t d = depth_.load(std::memory_order_relaxed);
    if (d > 0) depth_.store(d - 1, std::memory_order_release);
  }

  /// Copies up to `max` frames outermost-first into `out`, returning
  /// the number written (0 = thread currently outside any span). Null
  /// frames — possible when the sample races a push — are skipped, so
  /// the result is always a well-formed (if occasionally torn) stack.
  std::uint32_t sample(const char** out, std::uint32_t max) const noexcept {
    std::uint32_t d = depth_.load(std::memory_order_acquire);
    if (d > kMaxDepth) d = kMaxDepth;
    if (d > max) d = max;
    std::uint32_t written = 0;
    for (std::uint32_t i = 0; i < d; ++i) {
      const char* frame = frames_[i].load(std::memory_order_relaxed);
      if (frame != nullptr) out[written++] = frame;
    }
    return written;
  }

  [[nodiscard]] std::uint32_t depth() const noexcept {
    return depth_.load(std::memory_order_acquire);
  }

  /// Fresh-thread state for a stack recycled off the free list.
  void reset() noexcept { depth_.store(0, std::memory_order_relaxed); }

 private:
  std::array<std::atomic<const char*>, kMaxDepth> frames_{};
  std::atomic<std::uint32_t> depth_{0};
};

}  // namespace detail

/// One folded stack and how many samples landed in it.
struct ProfileEntry {
  std::string stack;  ///< outermost-first, ';'-joined span names
  std::uint64_t count = 0;
};

/// The calling thread's currently open span names, outermost first.
/// Span names are string literals with static storage, so the captured
/// pointers stay valid on any thread — capture this at ThreadPool
/// submit time and re-install it on the worker with SpanStackScope
/// (the profiler analog of capturing current_trace() for TraceScope),
/// so pool-side samples fold under the request that submitted them
/// (serve.request;batch.query;... instead of a detached batch.query
/// root).
[[nodiscard]] std::vector<const char*> current_span_stack();

/// RAII prefix installation on the calling thread's span stack: pushes
/// the captured frames outermost-first on construction, pops them on
/// destruction. Spans opened inside the scope nest under the prefix.
class SpanStackScope {
 public:
  explicit SpanStackScope(const std::vector<const char*>& frames);
  ~SpanStackScope();
  SpanStackScope(const SpanStackScope&) = delete;
  SpanStackScope& operator=(const SpanStackScope&) = delete;

 private:
  detail::SpanStack* stack_;
  std::size_t pushed_;
};

/// Process-wide sampling profiler. Threads register a SpanStack on
/// first span (or explicitly via thread_stack()); start() launches a
/// sampler thread that walks every registered stack each interval.
/// Stacks are recycled through a free list when threads exit, so a
/// churning ThreadPool reuses a bounded set instead of growing the
/// registry forever — and a registered-but-idle thread samples as
/// "idle", never as a crash.
class Profiler {
 public:
  struct Options {
    int interval_ms = 10;  ///< sampling period (clamped to >= 1)
  };

  static Profiler& global();

  /// Launches the sampler thread. Restarting while running is a no-op
  /// (the first options win until stop()).
  void start(Options options);
  void start() { start(Options{}); }
  /// Stops and joins the sampler thread; accumulated folds survive.
  void stop();
  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] int interval_ms() const noexcept {
    return interval_ms_.load(std::memory_order_relaxed);
  }

  /// The calling thread's span stack, registering (or recycling) one on
  /// first use. Stable for the thread's lifetime.
  detail::SpanStack& thread_stack();

  /// Walks every registered stack once and folds what it sees. The
  /// sampler thread calls this on its interval; tests call it directly
  /// for deterministic sampling.
  void sample_once();

  /// Per-thread samples taken / samples that found an empty stack.
  [[nodiscard]] std::uint64_t samples_total() const noexcept {
    return samples_total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t samples_idle() const noexcept {
    return samples_idle_.load(std::memory_order_relaxed);
  }

  /// Registered stacks (live + free-listed) — bounded under thread
  /// churn, which tests assert.
  [[nodiscard]] std::size_t registered_stacks() const;

  /// Folded stacks sorted by count descending (ties alphabetical);
  /// n = 0 returns all.
  [[nodiscard]] std::vector<ProfileEntry> entries(std::size_t n = 0) const;

  /// Collapsed-stack text, one `outer;inner;leaf COUNT` line per fold —
  /// pipe into flamegraph.pl / speedscope as-is.
  [[nodiscard]] std::string collapsed() const;

  /// {"running": ..., "interval_ms": ..., "samples_total": ...,
  ///  "samples_idle": ..., "stacks": [{"stack": ..., "count": ...}]}
  /// sorted like entries(); every line indented by `indent` spaces.
  [[nodiscard]] std::string to_json(int indent = 0) const;

  /// Drops accumulated folds and sample counters (registration and the
  /// running sampler are unaffected).
  void reset();

  /// Returns a stack to the free list. Called by the thread-exit hook
  /// thread_stack() installs; not for direct use.
  void release_stack(std::shared_ptr<detail::SpanStack> stack);

 private:
  Profiler() = default;
  void sampler_loop();

  mutable std::mutex mutex_;  ///< guards stacks_ / free_
  std::vector<std::shared_ptr<detail::SpanStack>> stacks_;
  std::vector<std::shared_ptr<detail::SpanStack>> free_;

  mutable std::mutex folds_mutex_;
  std::map<std::string, std::uint64_t> folds_;

  std::atomic<bool> running_{false};
  std::atomic<int> interval_ms_{10};
  std::atomic<std::uint64_t> samples_total_{0};
  std::atomic<std::uint64_t> samples_idle_{0};

  std::mutex sampler_mutex_;  ///< guards sampler_ start/stop + cv waits
  std::condition_variable sampler_cv_;
  std::thread sampler_;
};

}  // namespace sunchase::obs
