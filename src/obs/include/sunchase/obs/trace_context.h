// Request-scoped trace identity, propagated W3C Trace Context style: a
// 128-bit trace id names one end-to-end request, a 64-bit span id names
// the currently open span within it. The context travels implicitly on
// the thread (TraceScope installs/restores a thread-local), and
// explicitly across ThreadPool boundaries (capture current_trace() at
// submit time, re-install it in the worker) — so a span recorded on a
// batch worker still knows which HTTP request it belongs to. Parsing
// and formatting follow the W3C `traceparent` header
// (https://www.w3.org/TR/trace-context/):
//
//   00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>
//
// Propagation is independent of Tracer::enabled(): request-id echo and
// query-log stamping work even when span recording is off.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace sunchase::obs {

struct TraceContext {
  std::uint64_t trace_hi = 0;  ///< high 64 bits of the 128-bit trace id
  std::uint64_t trace_lo = 0;  ///< low 64 bits
  std::uint64_t span_id = 0;   ///< the currently open span (children's parent)

  /// A context with an all-zero trace id carries no request identity
  /// (the W3C invalid trace-id).
  [[nodiscard]] bool valid() const noexcept {
    return (trace_hi | trace_lo) != 0;
  }

  /// 32 lowercase hex chars — the request id echoed to HTTP clients and
  /// stamped into query-log records.
  [[nodiscard]] std::string trace_id_hex() const;
  /// 16 lowercase hex chars.
  [[nodiscard]] std::string span_id_hex() const;
  /// "00-<trace_id>-<span_id>-01" (always sampled; we never head-drop).
  [[nodiscard]] std::string to_traceparent() const;

  /// Strict W3C parse: version 00, non-zero trace and parent ids,
  /// lowercase-or-uppercase hex accepted. nullopt on anything else —
  /// the caller falls back to generate().
  [[nodiscard]] static std::optional<TraceContext> from_traceparent(
      std::string_view header);

  /// A fresh random trace id + root span id.
  [[nodiscard]] static TraceContext generate();
};

/// A fresh non-zero 64-bit span id (thread-local SplitMix64; unique
/// enough for correlation, not cryptographic).
[[nodiscard]] std::uint64_t random_span_id() noexcept;

/// The calling thread's current trace context ({0,0,0} when none).
[[nodiscard]] const TraceContext& current_trace() noexcept;

namespace detail {
/// Overwrites the thread-local context. SpanTimer uses this to install
/// itself as the parent of nested spans; everyone else should go
/// through TraceScope.
void set_current_trace(const TraceContext& context) noexcept;
}  // namespace detail

/// RAII installation of a trace context on the current thread: the
/// ingress point (HTTP handler) installs the request's context, a
/// ThreadPool worker re-installs the context captured at submit time.
/// Restores the previous context on destruction, so scopes nest.
class TraceScope {
 public:
  explicit TraceScope(const TraceContext& context) noexcept;
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceContext previous_;
};

}  // namespace sunchase::obs
