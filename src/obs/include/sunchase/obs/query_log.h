// Per-query structured logging: the planner emits one QueryRecord per
// planned query, and QueryLog appends it as a single JSONL line to a
// shared sink. Where the metrics Registry answers "how is the process
// doing", the query log answers "which query was slow and why" — the
// unit of observation is one (origin, destination, departure) request,
// with its per-phase durations, search effort and chosen-route energy
// summary. Writes are serialized under a mutex so concurrent workers
// never interleave lines; records above a configurable slow-query
// threshold are additionally logged at Warn.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <fstream>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "sunchase/common/units.h"
#include "sunchase/obs/metrics.h"

namespace sunchase::obs {

/// Everything one planned query leaves behind. Plain data: core fills
/// it, QueryLog serializes it; obs stays ignorant of routing types.
struct QueryRecord {
  std::string mode = "plan";     ///< "plan" or "batch"
  std::int64_t index = -1;       ///< position within a batch; -1 single
  std::uint64_t origin = 0;      ///< origin node id
  std::uint64_t destination = 0; ///< destination node id
  std::string departure;         ///< "HH:MM:SS"
  std::string pricing = "exact"; ///< edge pricing mode: "exact" or "slot"
  std::string status = "ok";     ///< "ok" or "error"
  std::string error;             ///< exception message when status=error
  /// Version of the world snapshot the query was priced against
  /// (core::World::version()); emitted as "world.version". -1 (the
  /// default) omits the field for callers without snapshot context.
  std::int64_t world_version = -1;
  /// 32-hex W3C trace id of the request that planned this query
  /// (obs::TraceContext::trace_id_hex()); emitted as "trace_id" when
  /// non-empty, so one id joins the HTTP response header, this record
  /// and the /debug/trace span export.
  std::string trace_id;

  // Per-phase durations, in seconds.
  double mlc_seconds = 0.0;        ///< multi-label correcting search
  double kmeans_seconds = 0.0;     ///< bisecting k-means inside selection
  double selection_seconds = 0.0;  ///< whole selection pipeline
  double total_seconds = 0.0;      ///< submit-to-record wall clock
  /// Thread CPU milliseconds the query actually burned
  /// (CLOCK_THREAD_CPUTIME_ID delta across search + selection) — the
  /// resource-accounting companion to the wall-clock fields: wall ≫ cpu
  /// means the query waited, cpu ≈ wall means it computed.
  double cpu_ms = 0.0;

  // Search effort (MlcStats of the query).
  std::uint64_t labels_created = 0;
  std::uint64_t labels_dominated = 0;
  std::uint64_t queue_pops = 0;
  std::uint64_t pareto_size = 0;
  std::uint64_t labels_pruned_bound = 0;   ///< time-budget prune rejections
  std::uint64_t labels_merged_epsilon = 0; ///< relaxed-dominance merges
  double lower_bound_seconds = 0.0;        ///< reverse-Dijkstra build time

  // Chosen-route summary (the recommended candidate; zero on error).
  std::uint64_t candidate_count = 0;
  double travel_time_s = 0.0;
  double shaded_time_s = 0.0;
  double energy_out_wh = 0.0;  ///< EV consumption (Eq. 6)
  double energy_in_wh = 0.0;   ///< solar harvested (Eq. 2)

  /// One JSON object on a single line (no trailing newline). Error and
  /// route-summary fields appear only when meaningful.
  [[nodiscard]] std::string to_json() const;
};

/// Thread-safe JSONL sink. Serialization happens outside the lock; the
/// lock only covers the single-line append, so concurrent planner
/// workers get exactly one unbroken line per record.
class QueryLog {
 public:
  /// Opens (truncates) `path`; throws IoError when unwritable.
  explicit QueryLog(const std::string& path);
  /// Appends to a caller-owned stream (tests, in-memory sinks); the
  /// stream must outlive the log.
  explicit QueryLog(std::ostream& sink);
  QueryLog(const QueryLog&) = delete;
  QueryLog& operator=(const QueryLog&) = delete;

  /// Queries slower than this (total_seconds) are also logged at Warn;
  /// zero (the default) disables the slow-query path entirely.
  void set_slow_threshold(Seconds threshold) noexcept {
    slow_threshold_seconds_.store(threshold.value(),
                                  std::memory_order_relaxed);
  }
  [[nodiscard]] Seconds slow_threshold() const noexcept {
    return Seconds{slow_threshold_seconds_.load(std::memory_order_relaxed)};
  }

  /// Appends `record` as one JSONL line (flushed, so a crashed run
  /// keeps every completed query).
  void write(const QueryRecord& record);

  /// Serialized lines the in-memory ring still holds (most recent
  /// kTailCapacity). The backend of GET /debug/queries?n= — live
  /// introspection without re-reading (or even having) the log file.
  static constexpr std::size_t kTailCapacity = 256;
  [[nodiscard]] std::vector<std::string> tail(std::size_t n) const;

  [[nodiscard]] std::uint64_t record_count() const noexcept {
    return records_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t slow_count() const noexcept {
    return slow_.load(std::memory_order_relaxed);
  }

 private:
  std::ofstream owned_;   ///< backing file for the path constructor
  std::ostream& sink_;    ///< owned_ or the caller's stream
  mutable std::mutex mutex_;  ///< serializes appends and tail reads
  std::deque<std::string> tail_;  ///< last kTailCapacity lines
  std::atomic<double> slow_threshold_seconds_{0.0};
  std::atomic<std::uint64_t> records_{0};
  std::atomic<std::uint64_t> slow_{0};
  Counter& records_metric_;  ///< "querylog.records"
  Counter& slow_metric_;     ///< "querylog.slow_queries"
};

}  // namespace sunchase::obs
