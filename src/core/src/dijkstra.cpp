#include "sunchase/core/dijkstra.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <vector>

#include "sunchase/common/error.h"
#include "sunchase/core/world.h"

namespace sunchase::core {

std::optional<ShortestTimeResult> shortest_time_path(
    const WorldPtr& world, roadnet::NodeId origin,
    roadnet::NodeId destination, TimeOfDay departure) {
  if (!world) throw InvalidArgument("shortest_time_path: null world");
  return detail::shortest_time_path(world->graph(), world->traffic(), origin,
                                    destination, departure);
}

namespace detail {

std::optional<ShortestTimeResult> shortest_time_path(
    const roadnet::RoadGraph& graph, const roadnet::TrafficModel& traffic,
    roadnet::NodeId origin, roadnet::NodeId destination, TimeOfDay departure) {
  const std::size_t n = graph.node_count();
  if (origin >= n || destination >= n)
    throw GraphError("shortest_time_path: unknown node");

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(n, kInf);
  std::vector<roadnet::EdgeId> via(n, roadnet::kInvalidEdge);
  std::vector<bool> settled(n, false);

  using QueueItem = std::pair<double, roadnet::NodeId>;  // (elapsed s, node)
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> queue;
  dist[origin] = 0.0;
  queue.emplace(0.0, origin);

  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (settled[u]) continue;
    settled[u] = true;
    if (u == destination) break;
    const TimeOfDay now = departure.advanced_by(Seconds{d});
    for (const roadnet::EdgeId e : graph.out_edges(u)) {
      const roadnet::NodeId v = graph.edge(e).to;
      if (settled[v]) continue;
      const double nd = d + traffic.travel_time(graph, e, now).value();
      if (nd < dist[v]) {
        dist[v] = nd;
        via[v] = e;
        queue.emplace(nd, v);
      }
    }
  }

  if (dist[destination] == kInf) return std::nullopt;

  ShortestTimeResult result;
  result.travel_time = Seconds{dist[destination]};
  for (roadnet::NodeId u = destination; u != origin;) {
    const roadnet::EdgeId e = via[u];
    result.path.edges.push_back(e);
    u = graph.edge(e).from;
  }
  std::reverse(result.path.edges.begin(), result.path.edges.end());
  return result;
}

std::vector<double> time_lower_bounds(const roadnet::RoadGraph& graph,
                                      const roadnet::TrafficModel& traffic,
                                      roadnet::NodeId destination) {
  const std::size_t n = graph.node_count();
  if (destination >= n) throw GraphError("time_lower_bounds: unknown node");

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(n, kInf);
  std::vector<bool> settled(n, false);

  using QueueItem = std::pair<double, roadnet::NodeId>;  // (bound s, node)
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> queue;
  dist[destination] = 0.0;
  queue.emplace(0.0, destination);

  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (settled[u]) continue;
    settled[u] = true;
    for (const roadnet::EdgeId e : graph.in_edges(u)) {
      const roadnet::NodeId v = graph.edge(e).from;
      if (settled[v]) continue;
      const double nd = d + traffic.min_travel_time(graph, e).value();
      if (nd < dist[v]) {
        dist[v] = nd;
        queue.emplace(nd, v);
      }
    }
  }

  return dist;
}

}  // namespace detail

}  // namespace sunchase::core
