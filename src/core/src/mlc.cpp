#include "sunchase/core/mlc.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <queue>

#include <utility>

#include "sunchase/common/error.h"
#include "sunchase/common/logging.h"
#include "sunchase/core/dijkstra.h"
#include "sunchase/core/slot_cost_cache.h"
#include "sunchase/core/world.h"
#include "sunchase/obs/metrics.h"
#include "sunchase/obs/trace.h"

namespace sunchase::core {

namespace {

/// Registry handles for the search counters, resolved once. Stats are
/// bulk-added per query so the inner loop pays no atomics.
struct MlcMetrics {
  obs::Counter& labels_created;
  obs::Counter& labels_dominated;
  obs::Counter& queue_pops;
  obs::Counter& queries;
  obs::Counter& label_cap_hits;
  obs::Counter& labels_pruned_bound;
  obs::Counter& labels_merged_epsilon;
  obs::Histogram& lower_bound_latency;
  obs::Histogram& latency;

  static const MlcMetrics& get() {
    static MlcMetrics metrics{
        obs::Registry::global().counter("mlc.labels_created"),
        obs::Registry::global().counter("mlc.labels_dominated"),
        obs::Registry::global().counter("mlc.queue_pops"),
        obs::Registry::global().counter("mlc.queries"),
        obs::Registry::global().counter("mlc.label_cap_hits"),
        obs::Registry::global().counter("mlc.labels_pruned_bound"),
        obs::Registry::global().counter("mlc.labels_merged_epsilon"),
        obs::Registry::global().histogram("mlc.lower_bound_seconds"),
        obs::Registry::global().histogram("mlc.query_latency_seconds")};
    return metrics;
  }
};

/// A search label: cost vector at `node`, reached via `via_edge` from
/// the label at index `parent` (-1 for the origin label).
struct Label {
  Criteria cost;
  roadnet::NodeId node = roadnet::kInvalidNode;
  roadnet::EdgeId via_edge = roadnet::kInvalidEdge;
  std::int32_t parent = -1;
  bool alive = true;  ///< false once dominated (lazy queue deletion)
};

struct QueueEntry {
  Criteria cost;  ///< snapshot for ordering
  std::uint32_t label;
};

struct LexGreater {
  bool operator()(const QueueEntry& a, const QueueEntry& b) const noexcept {
    return lex_less(b.cost, a.cost);
  }
};

}  // namespace

MultiLabelCorrecting::MultiLabelCorrecting(WorldPtr world, MlcOptions options)
    : world_(std::move(world)), options_(options) {
  if (!world_) throw InvalidArgument("MultiLabelCorrecting: null world");
  static_cast<void>(world_->vehicle(options.vehicle));  // validates the index
  if (options.pricing == PricingMode::SlotQuantized)
    cache_ = &world_->slot_cache(options.vehicle);
  // Non-finite first: NaN slips through every ordered comparison below
  // (NaN < 0 is false), and an unchecked NaN/inf poisons time_bound and
  // silently disables the only prune the search has.
  if (!std::isfinite(options.max_time_factor))
    throw InvalidArgument("MultiLabelCorrecting: non-finite time factor");
  if (options.max_time_factor < 0.0)
    throw InvalidArgument("MultiLabelCorrecting: negative time factor");
  if (options.max_time_factor > 0.0 && options.max_time_factor < 1.0)
    throw InvalidArgument(
        "MultiLabelCorrecting: time factor below 1 excludes the shortest "
        "path itself");
  if (!std::isfinite(options.epsilon) || options.epsilon < 0.0)
    throw InvalidArgument(
        "MultiLabelCorrecting: epsilon must be finite and >= 0");
}

MlcResult MultiLabelCorrecting::search(roadnet::NodeId origin,
                                       roadnet::NodeId destination,
                                       TimeOfDay departure) const {
  const solar::SolarInputMap& map = world_->solar_map();
  const ev::ConsumptionModel& vehicle = world_->vehicle(options_.vehicle);
  const auto& graph = map.graph();
  if (origin >= graph.node_count() || destination >= graph.node_count())
    throw GraphError("MultiLabelCorrecting::search: unknown node");

  const obs::SpanTimer span("mlc.search");
  const auto search_start = std::chrono::steady_clock::now();

  MlcResult result;

  // Time bound from the shortest-time baseline (also proves
  // reachability before the multi-criteria expansion starts).
  const auto shortest = detail::shortest_time_path(
      graph, map.traffic(), origin, destination, departure);
  if (!shortest)
    throw RoutingError("MultiLabelCorrecting::search: destination unreachable");
  result.stats.shortest_travel_time = shortest->travel_time;
  const double time_bound =
      options_.max_time_factor > 0.0
          ? shortest->travel_time.value() * options_.max_time_factor
          : 0.0;

  // Time-to-destination lower bounds (the ROADMAP's ellipse pruning):
  // a reverse Dijkstra with static admissible edge weights, settled over
  // the whole component so every node a label can touch has a bound.
  // Admissibility makes the prune exact — a label it kills can only lead
  // to arrivals past the budget, and domination is downward-closed under
  // it (a dominating label has <= travel time, so it survives whenever
  // its victim would). Empty when pruning is off or no budget is set;
  // lower_bounds[destination] == 0, so in-budget arrivals never prune.
  std::vector<double> lower_bounds;
  if (time_bound > 0.0 && options_.prune_with_lower_bounds) {
    const obs::SpanTimer lb_span("mlc.lower_bounds");
    const auto lb_start = std::chrono::steady_clock::now();
    lower_bounds = detail::time_lower_bounds(graph, map.traffic(), destination);
    result.stats.lower_bound_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      lb_start)
            .count();
  }

  std::vector<Label> arena;
  arena.reserve(1024);
  std::vector<std::vector<std::uint32_t>> bags(graph.node_count());
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, LexGreater> queue;

  // Initialization: L(origin) = (origin, (0,0,0), NULL).
  arena.push_back(Label{Criteria{}, origin, roadnet::kInvalidEdge, -1, true});
  bags[origin].push_back(0);
  queue.push(QueueEntry{Criteria{}, 0});
  result.stats.labels_created = 1;

  // Inserts `cost` at node v if non-dominated; prunes the bag.
  auto try_insert = [&](roadnet::NodeId v, const Criteria& cost,
                        roadnet::EdgeId via, std::int32_t parent) {
    auto& bag = bags[v];
    for (const std::uint32_t idx : bag) {
      const Criteria& existing = arena[idx].cost;
      if (equivalent(existing, cost) || dominates(existing, cost)) return;
      // Relaxed merge: only consulted when epsilon > 0, so the exact
      // (epsilon = 0) search takes the identical code path above.
      if (options_.epsilon > 0.0 &&
          epsilon_dominates(existing, cost, options_.epsilon)) {
        ++result.stats.labels_merged_epsilon;
        return;
      }
    }
    // Remove bag labels the new cost dominates (step 2c of Algorithm 1;
    // queue entries die lazily via the alive flag).
    std::erase_if(bag, [&](std::uint32_t idx) {
      if (dominates(cost, arena[idx].cost)) {
        arena[idx].alive = false;
        ++result.stats.labels_dominated;
        return true;
      }
      return false;
    });
    if (arena.size() >= options_.max_labels) {
      MlcMetrics::get().label_cap_hits.add();
      SUNCHASE_LOG(Info) << "mlc: label budget of " << options_.max_labels
                         << " exhausted at node " << v << " ("
                         << result.stats.labels_dominated
                         << " labels dominated so far)";
      throw RoutingError("MultiLabelCorrecting::search: label budget of " +
                         std::to_string(options_.max_labels) + " exhausted");
    }
    const auto idx = static_cast<std::uint32_t>(arena.size());
    arena.push_back(Label{cost, v, via, parent, true});
    ++result.stats.labels_created;
    bag.push_back(idx);
    queue.push(QueueEntry{cost, idx});
  };

  while (!queue.empty()) {
    const QueueEntry entry = queue.top();
    queue.pop();
    ++result.stats.queue_pops;
    const Label current = arena[entry.label];  // copy: arena may grow
    if (!current.alive) continue;  // lazily deleted
    // Expanding from the destination only finds cycles back to it, and
    // every cycle is dominated (criteria are non-negative additive).
    if (current.node == destination) continue;

    const TimeOfDay now =
        options_.time_dependent
            ? departure.advanced_by(current.cost.travel_time)
            : departure;
    // Under SlotQuantized all expansions from this label share one slot
    // column: resolve the slot once, then each edge is an array read.
    const int slot = cache_ ? now.slot_index() : 0;
    for (const roadnet::EdgeId e : graph.out_edges(current.node)) {
      const Criteria next =
          current.cost +
          (cache_ ? cache_->at(e, slot).criteria
                  : detail::edge_criteria(map, vehicle, e, now));
      const roadnet::NodeId to = graph.edge(e).to;
      if (time_bound > 0.0) {
        // With lower bounds: can this label still reach the destination
        // inside the budget? Without: the plain arrival-time filter
        // (lb == 0 everywhere, which the bounds subsume since lb >= 0).
        const double slack =
            lower_bounds.empty() ? 0.0 : lower_bounds[to];
        if (next.travel_time.value() + slack > time_bound) {
          ++result.stats.labels_pruned_bound;
          continue;  // cannot make the acceptable arrival time
        }
      }
      try_insert(to, next, e, static_cast<std::int32_t>(entry.label));
    }
  }

  // Harvest the destination bag and rebuild paths parent-by-parent.
  for (const std::uint32_t idx : bags[destination]) {
    if (origin == destination && arena[idx].parent == -1) {
      result.routes.push_back(ParetoRoute{{}, arena[idx].cost});
      continue;
    }
    ParetoRoute route;
    route.cost = arena[idx].cost;
    for (std::int32_t i = static_cast<std::int32_t>(idx);
         arena[static_cast<std::uint32_t>(i)].parent != -1;
         i = arena[static_cast<std::uint32_t>(i)].parent)
      route.path.edges.push_back(arena[static_cast<std::uint32_t>(i)].via_edge);
    std::reverse(route.path.edges.begin(), route.path.edges.end());
    result.routes.push_back(std::move(route));
  }
  std::sort(result.routes.begin(), result.routes.end(),
            [](const ParetoRoute& a, const ParetoRoute& b) {
              return lex_less(a.cost, b.cost);
            });
  result.stats.pareto_size = result.routes.size();

  result.stats.search_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    search_start)
          .count();
  const MlcMetrics& metrics = MlcMetrics::get();
  metrics.labels_created.add(result.stats.labels_created);
  metrics.labels_dominated.add(result.stats.labels_dominated);
  metrics.queue_pops.add(result.stats.queue_pops);
  metrics.queries.add();
  metrics.labels_pruned_bound.add(result.stats.labels_pruned_bound);
  metrics.labels_merged_epsilon.add(result.stats.labels_merged_epsilon);
  if (result.stats.lower_bound_seconds > 0.0)
    metrics.lower_bound_latency.observe(result.stats.lower_bound_seconds);
  metrics.latency.observe(result.stats.search_seconds);
  SUNCHASE_LOG(Debug) << "mlc: " << origin << "->" << destination << " @ "
                      << departure.to_string() << ": "
                      << result.stats.labels_created << " labels, "
                      << result.stats.labels_dominated << " dominated, "
                      << result.stats.queue_pops << " pops, Pareto set "
                      << result.stats.pareto_size;
  return result;
}

}  // namespace sunchase::core
