#include "sunchase/core/explain.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>

#include "sunchase/common/error.h"
#include "sunchase/core/world.h"

namespace sunchase::core {

namespace {

std::string format_double(double v) {
  std::ostringstream out;
  out.precision(12);
  out << v;
  return out.str();
}

}  // namespace

double RouteLedger::max_deviation(const Criteria& cost) const noexcept {
  const Criteria sum = steps.empty() ? Criteria{} : steps.back().cumulative;
  return std::max({std::fabs(sum.travel_time.value() -
                             cost.travel_time.value()),
                   std::fabs(sum.shaded_time.value() -
                             cost.shaded_time.value()),
                   std::fabs(sum.energy_out.value() -
                             cost.energy_out.value())});
}

std::string RouteLedger::to_json() const {
  std::ostringstream out;
  out << "{\n  \"departure\": \"" << departure.to_string() << "\",\n";
  out << "  \"steps\": [";
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const ExplainStep& s = steps[i];
    out << (i ? ",\n" : "\n");
    out << "    {\"seq\": " << i << ", \"edge\": " << s.edge
        << ", \"from\": " << s.from << ", \"to\": " << s.to
        << ", \"entry\": \"" << s.entry.to_string() << "\", \"slot\": "
        << s.slot << ",\n     \"length_m\": "
        << format_double(s.length.value()) << ", \"speed_kmh\": "
        << format_double(to_kmh(s.speed)) << ", \"shade_ratio\": "
        << format_double(s.shade_ratio) << ",\n     \"travel_time_s\": "
        << format_double(s.travel_time.value()) << ", \"solar_time_s\": "
        << format_double(s.solar_time.value()) << ", \"shaded_time_s\": "
        << format_double(s.shaded_time.value()) << ",\n     \"energy_in_wh\": "
        << format_double(s.energy_in.value()) << ", \"energy_out_wh\": "
        << format_double(s.energy_out.value())
        << ",\n     \"cum_travel_time_s\": "
        << format_double(s.cumulative.travel_time.value())
        << ", \"cum_shaded_time_s\": "
        << format_double(s.cumulative.shaded_time.value())
        << ", \"cum_energy_out_wh\": "
        << format_double(s.cumulative.energy_out.value())
        << ", \"cum_energy_in_wh\": "
        << format_double(s.cumulative_energy_in.value()) << "}";
  }
  out << (steps.empty() ? "" : "\n  ") << "],\n";
  out << "  \"totals\": {\"length_m\": "
      << format_double(totals.total_length.value()) << ", \"travel_time_s\": "
      << format_double(totals.travel_time.value()) << ", \"solar_time_s\": "
      << format_double(totals.solar_time.value()) << ", \"shaded_time_s\": "
      << format_double(totals.shaded_time.value()) << ", \"energy_in_wh\": "
      << format_double(totals.energy_in.value()) << ", \"energy_out_wh\": "
      << format_double(totals.energy_out.value()) << "}\n}\n";
  return out.str();
}

std::string RouteLedger::to_csv() const {
  std::ostringstream out;
  out << "seq,edge,from,to,entry,slot,length_m,speed_kmh,shade_ratio,"
         "travel_time_s,solar_time_s,shaded_time_s,energy_in_wh,"
         "energy_out_wh,cum_travel_time_s,cum_shaded_time_s,"
         "cum_energy_out_wh,cum_energy_in_wh\n";
  char row[512];
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const ExplainStep& s = steps[i];
    std::snprintf(row, sizeof row,
                  "%zu,%u,%u,%u,%s,%d,%.3f,%.3f,%.6f,%.6f,%.6f,%.6f,%.6f,"
                  "%.6f,%.6f,%.6f,%.6f,%.6f\n",
                  i, s.edge, s.from, s.to, s.entry.to_string().c_str(),
                  s.slot, s.length.value(), to_kmh(s.speed), s.shade_ratio,
                  s.travel_time.value(), s.solar_time.value(),
                  s.shaded_time.value(), s.energy_in.value(),
                  s.energy_out.value(), s.cumulative.travel_time.value(),
                  s.cumulative.shaded_time.value(),
                  s.cumulative.energy_out.value(),
                  s.cumulative_energy_in.value());
    out << row;
  }
  return out.str();
}

RouteExplainer::RouteExplainer(WorldPtr world, std::size_t vehicle)
    : world_(std::move(world)), vehicle_(vehicle) {
  if (!world_) throw InvalidArgument("RouteExplainer: null world");
  static_cast<void>(world_->vehicle(vehicle_));  // validates the index
}

RouteLedger RouteExplainer::explain(const roadnet::Path& path,
                                    TimeOfDay departure, bool time_dependent,
                                    PricingMode pricing) const {
  RouteLedger ledger;
  ledger.departure = departure;
  ledger.steps.reserve(path.size());
  const solar::SolarInputMap& map = world_->solar_map();
  const ev::ConsumptionModel& vehicle = world_->vehicle(vehicle_);
  const auto& graph = map.graph();

  Criteria cumulative;
  WattHours cumulative_in{0.0};
  for (const roadnet::EdgeId e : path.edges) {
    // The entry clock mirrors Algorithm 1: the label entering this edge
    // carries the cumulative travel time, and the search prices the
    // edge at departure advanced by it — not an iteratively advanced
    // clock — so the ledger reproduces the criteria vector bit for bit.
    const TimeOfDay entry =
        time_dependent ? departure.advanced_by(cumulative.travel_time)
                       : departure;
    // Replay the pricing mode too: a SlotQuantized route was costed at
    // the slot start, so the ledger must price there as well or the
    // conservation sums drift by the within-slot difference.
    const TimeOfDay priced_at = pricing_time(entry, pricing);
    const solar::EdgeSolar es = map.evaluate(e, priced_at);
    const auto& edge = graph.edge(e);
    const MetersPerSecond v = map.traffic().speed(graph, e, priced_at);
    const WattHours out = vehicle.consumption(edge.length, v);

    ExplainStep step;
    step.edge = e;
    step.from = edge.from;
    step.to = edge.to;
    step.entry = entry;
    step.slot = entry.slot_index();
    step.length = edge.length;
    step.speed = v;
    step.shade_ratio = es.shade_ratio;
    step.travel_time = es.travel_time;
    step.solar_time = es.solar_time;
    step.shaded_time = es.shaded_time;
    step.energy_in = es.energy_in;
    step.energy_out = out;

    // Identical arithmetic to edge_criteria + Criteria::operator+= so
    // the conservation check holds exactly, not just within tolerance.
    cumulative += Criteria{es.travel_time, es.shaded_time, out};
    cumulative_in += es.energy_in;
    step.cumulative = cumulative;
    step.cumulative_energy_in = cumulative_in;
    ledger.steps.push_back(step);

    ledger.totals.total_length += edge.length;
    ledger.totals.travel_time += es.travel_time;
    ledger.totals.solar_time += es.solar_time;
    ledger.totals.shaded_time += es.shaded_time;
    ledger.totals.energy_in += es.energy_in;
    ledger.totals.energy_out += out;
  }
  return ledger;
}

}  // namespace sunchase::core
