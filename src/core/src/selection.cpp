#include "sunchase/core/selection.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <set>

#include "sunchase/common/error.h"
#include "sunchase/common/logging.h"
#include "sunchase/core/world.h"
#include "sunchase/obs/trace.h"

namespace sunchase::core {

namespace {

/// Index of the route minimizing a single criterion (ties -> first).
template <class Key>
std::size_t argmin(const std::vector<ParetoRoute>& routes, Key key) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < routes.size(); ++i)
    if (key(routes[i]) < key(routes[best])) best = i;
  return best;
}

}  // namespace

SelectionResult select_representative_routes(
    const std::vector<ParetoRoute>& pareto, const WorldPtr& world,
    TimeOfDay departure, const SelectionOptions& options,
    std::size_t vehicle) {
  if (!world)
    throw InvalidArgument("select_representative_routes: null world");
  return detail::select_representative_routes(
      pareto, world->solar_map(), world->vehicle(vehicle), departure, options);
}

namespace detail {

SelectionResult select_representative_routes(
    const std::vector<ParetoRoute>& pareto, const solar::SolarInputMap& map,
    const ev::ConsumptionModel& vehicle, TimeOfDay departure,
    const SelectionOptions& options) {
  const obs::SpanTimer span("core.selection");
  const auto selection_start = std::chrono::steady_clock::now();
  const auto seconds_since = [](std::chrono::steady_clock::time_point from) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         from)
        .count();
  };
  SelectionResult result;
  if (pareto.empty()) return result;

  // Label vectors (normalized) for clustering.
  std::vector<LabelVector> points;
  points.reserve(pareto.size());
  for (const ParetoRoute& r : pareto)
    points.push_back(LabelVector{r.cost.travel_time.value(),
                                 r.cost.shaded_time.value(),
                                 r.cost.energy_out.value()});
  const std::vector<LabelVector> normalized = normalize_dimensions(points);

  const auto kmeans_start = std::chrono::steady_clock::now();
  const Clustering clustering =
      bisecting_kmeans(normalized, options.clustering);
  result.kmeans_seconds = seconds_since(kmeans_start);
  result.cluster_count = clustering.clusters.size();

  // Step 1: single-cost-optimum routes.
  std::set<std::size_t> chosen;
  chosen.insert(argmin(pareto, [](const ParetoRoute& r) {
    return r.cost.travel_time.value();
  }));
  chosen.insert(argmin(pareto, [](const ParetoRoute& r) {
    return r.cost.shaded_time.value();
  }));
  chosen.insert(argmin(pareto, [](const ParetoRoute& r) {
    return r.cost.energy_out.value();
  }));

  // Step 2: for clusters holding no single-cost optimum, take the
  // route closest to the cluster centroid (Manhattan distance).
  for (const auto& cluster : clustering.clusters) {
    const bool has_optimum =
        std::any_of(cluster.begin(), cluster.end(),
                    [&](std::size_t i) { return chosen.contains(i); });
    if (has_optimum || cluster.empty()) continue;
    const LabelVector c = centroid(normalized, cluster);
    std::size_t medoid = cluster.front();
    double best_d = std::numeric_limits<double>::infinity();
    for (const std::size_t i : cluster) {
      const double d = manhattan(normalized[i], c);
      if (d < best_d) {
        best_d = d;
        medoid = i;
      }
    }
    chosen.insert(medoid);
  }
  result.representative_count = chosen.size();

  // The baseline: shortest-time route (always reported first).
  const std::size_t shortest = argmin(pareto, [](const ParetoRoute& r) {
    return r.cost.travel_time.value();
  });
  const RouteMetrics baseline =
      evaluate_route(map, vehicle, pareto[shortest].path, departure);

  const auto feasible = [&](const RouteMetrics& m) {
    return !options.battery_budget ||
           m.energy_out - m.energy_in <= *options.battery_budget;
  };

  CandidateRoute base;
  base.route = pareto[shortest];
  base.metrics = baseline;
  base.is_shortest_time = true;
  base.battery_feasible = feasible(baseline);
  result.candidates.push_back(std::move(base));

  // Step 3: Eq. 5 filter on the remaining representatives.
  std::vector<CandidateRoute> better;
  for (const std::size_t i : chosen) {
    if (i == shortest) continue;
    CandidateRoute cand;
    cand.route = pareto[i];
    cand.metrics = evaluate_route(map, vehicle, pareto[i].path, departure);
    cand.extra_energy = energy_extra(cand.metrics, baseline);
    cand.extra_time = cand.metrics.travel_time - baseline.travel_time;
    // A "better solar" candidate must actually harvest more than the
    // baseline (the paper's premise) AND pass the Eq. 5 net test; a
    // route that merely consumes less is not a solar route.
    if (options.require_positive_energy_extra &&
        (cand.extra_energy.value() <= 0.0 ||
         cand.metrics.energy_in <= baseline.energy_in))
      continue;
    cand.battery_feasible = feasible(cand.metrics);
    if (!cand.battery_feasible) continue;
    better.push_back(std::move(cand));
  }
  std::sort(better.begin(), better.end(),
            [](const CandidateRoute& a, const CandidateRoute& b) {
              return a.extra_energy > b.extra_energy;
            });
  for (auto& cand : better) result.candidates.push_back(std::move(cand));
  result.selection_seconds = seconds_since(selection_start);
  SUNCHASE_LOG(Debug) << "selection: " << pareto.size() << " Pareto routes, "
                      << result.cluster_count << " clusters, "
                      << result.representative_count
                      << " representatives -> " << result.candidates.size()
                      << " candidates";
  return result;
}

}  // namespace detail

}  // namespace sunchase::core
