#include "sunchase/core/slot_cost_cache.h"

#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "sunchase/common/error.h"

namespace sunchase::core {

SlotCostCache::SlotCostCache(const solar::SolarInputMap& map,
                             const ev::ConsumptionModel& vehicle)
    : map_(map),
      vehicle_(vehicle),
      hits_(obs::Registry::global().counter("slotcache.hits")),
      misses_(obs::Registry::global().counter("slotcache.misses")),
      fill_seconds_(
          obs::Registry::global().histogram("slotcache.fill_seconds")),
      bytes_gauge_(obs::Registry::global().gauge("slotcache.bytes")),
      slots_gauge_(obs::Registry::global().gauge("slotcache.filled_slots")) {}

const SlotCostCache::Entry& SlotCostCache::at(roadnet::EdgeId edge,
                                              int slot) const {
  if (slot < 0 || slot >= TimeOfDay::kSlotsPerDay)
    throw InvalidArgument("SlotCostCache::at: slot index " +
                          std::to_string(slot) + " outside [0, " +
                          std::to_string(TimeOfDay::kSlotsPerDay) + ")");
  Column& column = columns_[static_cast<std::size_t>(slot)];
  if (column.ready.load(std::memory_order_acquire)) {
    hits_.add();
  } else {
    // First touch of this slot (or racing with the filler): everyone who
    // arrives before the column publishes counts as a miss.
    misses_.add();
    std::call_once(column.once, [&] { fill(column, slot); });
  }
  // Edge ids are dense (add_edge hands them out starting at 0), so the
  // id doubles as the row index; a stale id is rejected here.
  if (edge >= column.entries.size())
    throw InvalidArgument("SlotCostCache::at: edge id " +
                          std::to_string(edge) + " outside [0, " +
                          std::to_string(column.entries.size()) + ")");
  return column.entries[edge];
}

std::span<const SlotCostCache::Entry> SlotCostCache::column_view(
    int slot) const {
  if (slot < 0 || slot >= TimeOfDay::kSlotsPerDay)
    throw InvalidArgument("SlotCostCache::column_view: slot index " +
                          std::to_string(slot) + " outside [0, " +
                          std::to_string(TimeOfDay::kSlotsPerDay) + ")");
  const Column& column = columns_[static_cast<std::size_t>(slot)];
  if (!column.ready.load(std::memory_order_acquire)) return {};
  return column.entries.span();
}

void SlotCostCache::fill(Column& column, int slot) const {
  const auto start = std::chrono::steady_clock::now();
  const TimeOfDay when = TimeOfDay::slot_start(slot);
  const auto& graph = map_.graph();
  const std::size_t n = graph.edge_count();
  std::vector<Entry> entries;
  entries.reserve(n);
  // Bit-identical to edge_criteria(): the same evaluate/speed/consumption
  // calls in the same order, just hoisted out of the search loop.
  for (roadnet::EdgeId e = 0; e < n; ++e) {
    const solar::EdgeSolar es = map_.evaluate(e, when);
    const MetersPerSecond v = map_.traffic().speed(graph, e, when);
    entries.push_back(
        Entry{Criteria{es.travel_time, es.shaded_time,
                       vehicle_.consumption(graph.edge(e).length, v)},
              es});
  }
  column.entries = common::FrozenArray<Entry>(std::move(entries));
  publish_column(
      column,
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
}

void SlotCostCache::adopt_column(int slot,
                                 common::FrozenArray<Entry> entries) const {
  if (slot < 0 || slot >= TimeOfDay::kSlotsPerDay)
    throw InvalidArgument("SlotCostCache::adopt_column: slot index " +
                          std::to_string(slot) + " outside [0, " +
                          std::to_string(TimeOfDay::kSlotsPerDay) + ")");
  if (entries.size() != map_.graph().edge_count())
    throw InvalidArgument("SlotCostCache::adopt_column: column has " +
                          std::to_string(entries.size()) + " rows for " +
                          std::to_string(map_.graph().edge_count()) +
                          " edges");
  Column& column = columns_[static_cast<std::size_t>(slot)];
  // Under the same once_flag as fill(): if the column somehow filled
  // first, the adoption is a no-op rather than a tear.
  std::call_once(column.once, [&] {
    column.entries = std::move(entries);
    publish_column(column, 0.0);
  });
}

void SlotCostCache::publish_column(Column& column,
                                   double fill_seconds) const {
  column.ready.store(true, std::memory_order_release);
  const std::size_t filled =
      filled_.fetch_add(1, std::memory_order_relaxed) + 1;
  slots_gauge_.set(static_cast<double>(filled));
  bytes_gauge_.set(static_cast<double>(
      filled * map_.graph().edge_count() * sizeof(Entry)));
  fill_seconds_.observe(fill_seconds);
}

}  // namespace sunchase::core
