#include "sunchase/core/replanner.h"

#include <cmath>

#include "sunchase/common/error.h"
#include "sunchase/core/world.h"

namespace sunchase::core {

namespace {

/// Follows `path` from the current clock, accruing live-power harvest,
/// until either the path ends or `stop_at_node` says to break (used to
/// pause for replanning decisions). Returns the index of the first
/// unfollowed edge.
struct FollowState {
  TimeOfDay clock;
  DriveOutcome* outcome;
};

void traverse_edge(const World& world, const solar::PanelPowerFn& live_power,
                   std::size_t vehicle_index, roadnet::EdgeId e,
                   FollowState& state) {
  const roadnet::RoadGraph& graph = world.graph();
  const ev::ConsumptionModel& vehicle = world.vehicle(vehicle_index);
  const MetersPerSecond v = world.traffic().speed(graph, e, state.clock);
  const Meters length = graph.edge(e).length;
  const Meters solar_len = world.shading().solar_length(graph, e, state.clock);
  const Seconds tt = length / v;
  const Seconds solar_time = solar_len / v;
  state.outcome->driven.edges.push_back(e);
  state.outcome->total_time += tt;
  state.outcome->energy_in += energy(live_power(state.clock), solar_time);
  state.outcome->energy_out += vehicle.consumption(length, v);
  state.clock = state.clock.advanced_by(tt);
}

/// The ephemeral planning snapshot for one (re)plan: the base world's
/// recipe with panel power replaced by the sampled constant forecast.
/// Unchanged components (graph, traffic, shading, vehicles) stay
/// shared; only the solar map and slot caches are rebuilt.
WorldPtr forecast_world(const World& base, Watts forecast) {
  WorldInit init = base.recipe();
  init.panel_power = solar::constant_panel_power(forecast);
  return World::create(std::move(init), base.version());
}

}  // namespace

DriveOutcome drive_with_replanning(const WorldPtr& world,
                                   const solar::PanelPowerFn& live_power,
                                   roadnet::NodeId origin,
                                   roadnet::NodeId destination,
                                   TimeOfDay departure,
                                   const ReplanOptions& options) {
  if (!world) throw InvalidArgument("drive_with_replanning: null world");
  if (!live_power)
    throw InvalidArgument("drive_with_replanning: null live power");
  const std::size_t vehicle = options.planner.mlc.vehicle;
  DriveOutcome outcome;
  FollowState state{departure, &outcome};
  roadnet::NodeId at = origin;
  double forecast_w = live_power(departure).value();
  TimeOfDay last_plan_time = departure;
  bool first_plan = true;

  while (at != destination) {
    // (Re)plan from the current position with the current forecast.
    const SunChasePlanner planner(forecast_world(*world, Watts{forecast_w}),
                                  options.planner);
    const PlanResult plan = planner.plan(at, destination, state.clock);
    const roadnet::Path& route = plan.recommended().route.path;
    if (!first_plan) ++outcome.replans;
    first_plan = false;

    // Follow until the live power drifts off the forecast (checked at
    // every intersection) or the route completes.
    for (const roadnet::EdgeId e : route.edges) {
      traverse_edge(*world, live_power, vehicle, e, state);
      at = world->graph().edge(e).to;
      if (at == destination) break;
      const double live_w = live_power(state.clock).value();
      const double drift =
          forecast_w > 0.0 ? std::abs(live_w - forecast_w) / forecast_w
                           : (live_w > 0.0 ? 1e9 : 0.0);
      const bool cooled_down =
          state.clock.since(last_plan_time) >= options.min_replan_interval;
      if (drift > options.power_drift_threshold && cooled_down) {
        forecast_w = live_w;
        last_plan_time = state.clock;
        break;  // re-enter the planning loop from `at`
      }
    }
  }
  return outcome;
}

DriveOutcome drive_without_replanning(const WorldPtr& world,
                                      const solar::PanelPowerFn& live_power,
                                      roadnet::NodeId origin,
                                      roadnet::NodeId destination,
                                      TimeOfDay departure,
                                      const PlannerOptions& planner_options) {
  if (!world) throw InvalidArgument("drive_without_replanning: null world");
  if (!live_power)
    throw InvalidArgument("drive_without_replanning: null live power");
  const SunChasePlanner planner(
      forecast_world(*world, live_power(departure)), planner_options);
  const PlanResult plan = planner.plan(origin, destination, departure);

  DriveOutcome outcome;
  FollowState state{departure, &outcome};
  for (const roadnet::EdgeId e : plan.recommended().route.path.edges)
    traverse_edge(*world, live_power, planner_options.mlc.vehicle, e, state);
  return outcome;
}

}  // namespace sunchase::core
