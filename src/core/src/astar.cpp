#include "sunchase/core/astar.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <vector>

#include "sunchase/common/error.h"
#include "sunchase/core/world.h"

namespace sunchase::core {

std::optional<AStarResult> shortest_time_path_astar(
    const WorldPtr& world, roadnet::NodeId origin,
    roadnet::NodeId destination, TimeOfDay departure,
    MetersPerSecond speed_upper_bound) {
  if (!world) throw InvalidArgument("shortest_time_path_astar: null world");
  return detail::shortest_time_path_astar(world->graph(), world->traffic(),
                                          origin, destination, departure,
                                          speed_upper_bound);
}

namespace detail {

std::optional<AStarResult> shortest_time_path_astar(
    const roadnet::RoadGraph& graph, const roadnet::TrafficModel& traffic,
    roadnet::NodeId origin, roadnet::NodeId destination, TimeOfDay departure,
    MetersPerSecond speed_upper_bound) {
  const std::size_t n = graph.node_count();
  if (origin >= n || destination >= n)
    throw GraphError("shortest_time_path_astar: unknown node");
  if (speed_upper_bound.value() <= 0.0)
    throw InvalidArgument("shortest_time_path_astar: non-positive bound");

  const geo::LatLon goal = graph.node(destination).position;
  auto heuristic = [&](roadnet::NodeId u) {
    return geo::haversine_distance(graph.node(u).position, goal).value() /
           speed_upper_bound.value();
  };

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> g(n, kInf);
  std::vector<roadnet::EdgeId> via(n, roadnet::kInvalidEdge);
  std::vector<bool> settled(n, false);

  using QueueItem = std::pair<double, roadnet::NodeId>;  // (f, node)
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> open;
  g[origin] = 0.0;
  open.emplace(heuristic(origin), origin);

  AStarResult result;
  while (!open.empty()) {
    const auto [f, u] = open.top();
    open.pop();
    if (settled[u]) continue;
    settled[u] = true;
    ++result.nodes_settled;
    if (u == destination) break;
    const TimeOfDay now = departure.advanced_by(Seconds{g[u]});
    for (const roadnet::EdgeId e : graph.out_edges(u)) {
      const roadnet::NodeId v = graph.edge(e).to;
      if (settled[v]) continue;
      const double candidate = g[u] + traffic.travel_time(graph, e, now).value();
      if (candidate < g[v]) {
        g[v] = candidate;
        via[v] = e;
        open.emplace(candidate + heuristic(v), v);
      }
    }
  }

  if (g[destination] == kInf) return std::nullopt;
  result.travel_time = Seconds{g[destination]};
  for (roadnet::NodeId u = destination; u != origin;) {
    const roadnet::EdgeId e = via[u];
    result.path.edges.push_back(e);
    u = graph.edge(e).from;
  }
  std::reverse(result.path.edges.begin(), result.path.edges.end());
  return result;
}

}  // namespace detail

}  // namespace sunchase::core
