#include "sunchase/core/planner.h"

#include "sunchase/common/error.h"
#include "sunchase/obs/trace.h"

namespace sunchase::core {

const CandidateRoute& PlanResult::recommended() const {
  if (candidates.empty())
    throw RoutingError("PlanResult::recommended: empty plan");
  return candidates.size() > 1 ? candidates[1] : candidates[0];
}

SunChasePlanner::SunChasePlanner(const solar::SolarInputMap& map,
                                 const ev::ConsumptionModel& vehicle,
                                 PlannerOptions options)
    : map_(map),
      vehicle_(vehicle),
      options_(options),
      solver_(map, vehicle, options.mlc) {}

PlanResult SunChasePlanner::plan(roadnet::NodeId origin,
                                 roadnet::NodeId destination,
                                 TimeOfDay departure) const {
  const obs::SpanTimer span("core.plan");
  const MlcResult search = solver_.search(origin, destination, departure);

  SelectionResult selection = select_representative_routes(
      search.routes, map_, vehicle_, departure, options_.selection);

  PlanResult plan;
  plan.candidates = std::move(selection.candidates);
  plan.pareto_route_count = search.routes.size();
  plan.cluster_count = selection.cluster_count;
  plan.search_stats = search.stats;
  return plan;
}

}  // namespace sunchase::core
