#include "sunchase/core/planner.h"

#include <chrono>
#include <utility>

#include "sunchase/common/error.h"
#include "sunchase/core/world.h"
#include "sunchase/obs/profiler.h"
#include "sunchase/obs/query_log.h"
#include "sunchase/obs/trace.h"

namespace sunchase::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point from) {
  return std::chrono::duration<double>(Clock::now() - from).count();
}

}  // namespace

const CandidateRoute& PlanResult::recommended() const {
  if (candidates.empty())
    throw RoutingError("PlanResult::recommended: empty plan");
  return candidates.size() > 1 ? candidates[1] : candidates[0];
}

SunChasePlanner::SunChasePlanner(WorldPtr world, PlannerOptions options)
    : options_(options), solver_(std::move(world), options.mlc) {}

const ev::ConsumptionModel& SunChasePlanner::vehicle() const {
  return world()->vehicle(options_.mlc.vehicle);
}

PlanResult SunChasePlanner::plan(roadnet::NodeId origin,
                                 roadnet::NodeId destination,
                                 TimeOfDay departure) const {
  const obs::SpanTimer span("core.plan");
  const auto started = Clock::now();
  const double cpu_started = obs::thread_cpu_seconds();
  obs::QueryLog* const log = options_.query_log;
  obs::QueryRecord record;
  if (log != nullptr) {
    record.mode = "plan";
    record.origin = origin;
    record.destination = destination;
    record.departure = departure.to_string();
    record.pricing = pricing_name(options_.mlc.pricing);
    record.world_version = static_cast<std::int64_t>(world()->version());
    // Joins this record to the HTTP request that planned it (same id
    // the server echoes in x-sunchase-request-id and the trace export).
    if (obs::current_trace().valid())
      record.trace_id = obs::current_trace().trace_id_hex();
  }

  try {
    const MlcResult search = solver_.search(origin, destination, departure);
    SelectionResult selection = detail::select_representative_routes(
        search.routes, world()->solar_map(), vehicle(), departure,
        options_.selection);

    PlanResult plan;
    plan.candidates = std::move(selection.candidates);
    plan.pareto_route_count = search.routes.size();
    plan.cluster_count = selection.cluster_count;
    plan.search_stats = search.stats;
    plan.cpu_seconds = obs::thread_cpu_seconds() - cpu_started;
    // Gauge rather than Counter: CPU seconds are fractional, and
    // Gauge::add is the registry's only atomic float accumulator. The
    // series is monotone in practice — treat it like a counter when
    // graphing rates.
    obs::Registry::global()
        .gauge("mlc.cpu_seconds",
               {{"pricing", pricing_name(options_.mlc.pricing)}})
        .add(plan.cpu_seconds);

    if (log != nullptr) {
      record.mlc_seconds = search.stats.search_seconds;
      record.kmeans_seconds = selection.kmeans_seconds;
      record.selection_seconds = selection.selection_seconds;
      record.labels_created = search.stats.labels_created;
      record.labels_dominated = search.stats.labels_dominated;
      record.queue_pops = search.stats.queue_pops;
      record.pareto_size = search.stats.pareto_size;
      record.labels_pruned_bound = search.stats.labels_pruned_bound;
      record.labels_merged_epsilon = search.stats.labels_merged_epsilon;
      record.lower_bound_seconds = search.stats.lower_bound_seconds;
      record.candidate_count = plan.candidates.size();
      const RouteMetrics& best = plan.recommended().metrics;
      record.travel_time_s = best.travel_time.value();
      record.shaded_time_s = best.shaded_time.value();
      record.energy_out_wh = best.energy_out.value();
      record.energy_in_wh = best.energy_in.value();
      record.total_seconds = seconds_since(started);
      record.cpu_ms = plan.cpu_seconds * 1000.0;
      log->write(record);
    }
    return plan;
  } catch (const std::exception& e) {
    if (log != nullptr) {
      record.status = "error";
      record.error = e.what();
      record.total_seconds = seconds_since(started);
      record.cpu_ms = (obs::thread_cpu_seconds() - cpu_started) * 1000.0;
      log->write(record);
    }
    throw;
  }
}

}  // namespace sunchase::core
