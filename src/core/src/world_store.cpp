#include "sunchase/core/world_store.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <span>
#include <utility>

#include "sunchase/common/error.h"
#include "sunchase/common/logging.h"
#include "sunchase/core/world_codec.h"
#include "sunchase/obs/metrics.h"
#include "sunchase/snapshot/writer.h"

namespace sunchase::core {

namespace {

std::string snapshot_file_name(std::uint64_t version) {
  return "world-" + std::to_string(version) + ".scsnap";
}

/// The version encoded in a `world-<version>.scsnap` file name, or 0
/// when the name does not match the pattern (versions start at 1).
std::uint64_t version_of_file_name(const std::string& name) {
  const std::string prefix = "world-";
  const std::string suffix = ".scsnap";
  if (name.size() <= prefix.size() + suffix.size()) return 0;
  if (name.compare(0, prefix.size(), prefix) != 0) return 0;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
    return 0;
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.empty()) return 0;
  std::uint64_t version = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return 0;
    version = version * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return version;
}

/// First line of the MANIFEST, or empty when absent/unreadable.
std::string read_manifest(const std::filesystem::path& directory) {
  std::ifstream in(directory / "MANIFEST");
  std::string line;
  if (!in || !std::getline(in, line)) return {};
  return line;
}

}  // namespace

WorldStore::WorldStore(WorldInit initial)
    : current_(World::create(std::move(initial), 1)), next_version_(2) {
  remember(current());
}

WorldStore::WorldStore(WorldPtr initial) {
  if (!initial) throw InvalidArgument("WorldStore: null initial world");
  next_version_ = initial->version() + 1;
  current_.store(initial, std::memory_order_release);
  remember(initial);
}

WorldPtr WorldStore::publish(WorldInit next) {
  // Build outside the swap: a slow construction (solar map, caches)
  // must never make readers wait. Only the version counter, the
  // journal persist, and the final pointer swap are serialized across
  // publishers.
  std::lock_guard<std::mutex> lock(publish_mutex_);
  const std::uint64_t version = next_version_;
  WorldPtr world = World::create(std::move(next), version);
  if (journal_enabled_) {
    // Persist before the swap: a durable publish that cannot reach
    // disk must not become visible (and must not consume the version
    // number — the retry gets the same one). Non-durable journaling
    // degrades to best-effort.
    try {
      persist_locked(world);
    } catch (const Error& e) {
      ++journal_persist_failures_;
      obs::Registry::global().counter("journal.persist_failures").add();
      if (journal_.durable) {
        SUNCHASE_LOG(Error)
            << "worldstore: durable publish of version " << version
            << " aborted: " << e.what();
        throw;
      }
      SUNCHASE_LOG(Warning) << "worldstore: journal persist of version "
                         << version << " failed (continuing, non-durable): "
                         << e.what();
    }
  }
  next_version_ = version + 1;
  current_.store(world, std::memory_order_release);
  remember(world);
  obs::Registry::global().gauge("world.version").set(
      static_cast<double>(version));
  obs::Registry::global().counter("world.publishes").add();
  SUNCHASE_LOG(Info) << "worldstore: published version " << version;
  return world;
}

void WorldStore::enable_journal(JournalOptions options) {
  namespace fs = std::filesystem;
  std::lock_guard<std::mutex> lock(publish_mutex_);
  std::error_code ec;
  fs::create_directories(options.directory, ec);
  if (ec)
    throw SnapshotError("journal: cannot create directory '" +
                        options.directory + "': " + ec.message());
  journal_ = std::move(options);
  journal_enabled_ = true;
  const WorldPtr world = current();
  const fs::path existing =
      fs::path(journal_.directory) / snapshot_file_name(world->version());
  if (fs::exists(existing, ec)) {
    // Adopted from load_latest(): the snapshot we just mapped is the
    // journal tail; rewriting it would race our own mapping.
    journal_persisted_version_ = world->version();
    SUNCHASE_LOG(Info) << "worldstore: journaling to " << journal_.directory
                       << " (version " << world->version()
                       << " already on disk)";
    return;
  }
  persist_locked(world);
  SUNCHASE_LOG(Info) << "worldstore: journaling to " << journal_.directory
                     << " (persisted version " << world->version() << ")";
}

void WorldStore::persist_locked(const WorldPtr& world) {
  const std::string file = snapshot_file_name(world->version());
  const std::string path = journal_.directory + "/" + file;
  SaveOptions options;
  options.include_slot_cache = journal_.include_slot_cache;
  options.durable = journal_.durable;
  save_world_snapshot(*world, path, options);
  const std::string manifest = file + "\n";
  snapshot::atomic_write_file(
      journal_.directory + "/MANIFEST",
      std::as_bytes(std::span<const char>(manifest.data(), manifest.size())),
      journal_.durable);
  journal_persisted_version_ = world->version();
  obs::Registry::global().counter("journal.persists").add();
  obs::Registry::global().gauge("journal.persisted_version").set(
      static_cast<double>(world->version()));
}

JournalState WorldStore::journal_state() const {
  namespace fs = std::filesystem;
  JournalState state;
  std::lock_guard<std::mutex> lock(publish_mutex_);
  state.enabled = journal_enabled_;
  if (!journal_enabled_) return state;
  state.directory = journal_.directory;
  state.durable = journal_.durable;
  state.include_slot_cache = journal_.include_slot_cache;
  state.persisted_version = journal_persisted_version_;
  state.persist_failures = journal_persist_failures_;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(journal_.directory, ec))
    if (version_of_file_name(entry.path().filename().string()) != 0)
      ++state.snapshots_on_disk;
  return state;
}

LoadLatestResult WorldStore::load_latest(const std::string& directory) {
  namespace fs = std::filesystem;
  LoadLatestResult result;
  std::error_code ec;
  if (!fs::is_directory(directory, ec)) return result;

  // Candidates newest-first; the MANIFEST target (normally the newest
  // intact file) is tried first when it parses.
  std::vector<std::pair<std::uint64_t, std::string>> candidates;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    const std::string name = entry.path().filename().string();
    const std::uint64_t version = version_of_file_name(name);
    if (version != 0) candidates.emplace_back(version, name);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  const std::string manifest = read_manifest(directory);
  if (version_of_file_name(manifest) != 0) {
    const auto it = std::find_if(
        candidates.begin(), candidates.end(),
        [&manifest](const auto& c) { return c.second == manifest; });
    if (it != candidates.end()) std::rotate(candidates.begin(), it, it + 1);
  }

  for (const auto& [version, name] : candidates) {
    const std::string path = directory + "/" + name;
    try {
      result.world = load_world_snapshot(path);
      result.loaded_from = path;
      SUNCHASE_LOG(Info) << "worldstore: loaded version "
                         << result.world->version() << " from " << path;
      return result;
    } catch (const Error& e) {
      ++result.skipped_corrupt;
      result.errors.emplace_back(e.what());
      obs::Registry::global().counter("journal.load_skipped_corrupt").add();
      SUNCHASE_LOG(Warning) << "worldstore: skipping corrupt snapshot: "
                         << e.what();
    }
  }
  return result;
}

void WorldStore::remember(const WorldPtr& world) {
  const std::lock_guard<std::mutex> lock(lineage_mutex_);
  if (lineage_.size() == kLineageCapacity) lineage_.pop_front();
  lineage_.emplace_back(world->version(), std::weak_ptr<const World>(world));
}

std::vector<WorldVersionInfo> WorldStore::lineage() const {
  const std::uint64_t current_version = current()->version();
  std::vector<WorldVersionInfo> rows;
  {
    const std::lock_guard<std::mutex> lock(lineage_mutex_);
    rows.reserve(lineage_.size());
    for (const auto& [version, weak] : lineage_) {
      WorldVersionInfo info;
      info.version = version;
      info.current = version == current_version;
      if (const WorldPtr pinned = weak.lock()) {
        info.alive = true;
        // Discount our own temporary pin and, for the current version,
        // the store's reference — what remains is outside readers.
        const auto count = static_cast<std::size_t>(pinned.use_count());
        const std::size_t own = info.current ? 2u : 1u;
        info.pins = count > own ? count - own : 0u;
      }
      rows.push_back(info);
    }
  }
  // Aggregate gauges only: per-version series would grow with every
  // publish, so version-level detail stays in /debug/worlds.
  std::size_t live = 0, pins = 0;
  for (const WorldVersionInfo& row : rows) {
    live += row.alive ? 1u : 0u;
    pins += row.pins;
  }
  obs::Registry::global().gauge("world.live_versions").set(
      static_cast<double>(live));
  obs::Registry::global().gauge("world.pinned_readers").set(
      static_cast<double>(pins));
  return rows;
}

}  // namespace sunchase::core
