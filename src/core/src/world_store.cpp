#include "sunchase/core/world_store.h"

#include <utility>

#include "sunchase/common/error.h"
#include "sunchase/common/logging.h"
#include "sunchase/obs/metrics.h"

namespace sunchase::core {

WorldStore::WorldStore(WorldInit initial)
    : current_(World::create(std::move(initial), 1)), next_version_(2) {}

WorldStore::WorldStore(WorldPtr initial) {
  if (!initial) throw InvalidArgument("WorldStore: null initial world");
  next_version_ = initial->version() + 1;
  current_.store(std::move(initial), std::memory_order_release);
}

WorldPtr WorldStore::publish(WorldInit next) {
  // Build outside the swap: a slow construction (solar map, caches)
  // must never make readers wait. Only the version counter and the
  // final pointer swap are serialized across publishers.
  std::lock_guard<std::mutex> lock(publish_mutex_);
  const std::uint64_t version = next_version_++;
  WorldPtr world = World::create(std::move(next), version);
  current_.store(world, std::memory_order_release);
  obs::Registry::global().gauge("world.version").set(
      static_cast<double>(version));
  obs::Registry::global().counter("world.publishes").add();
  SUNCHASE_LOG(Info) << "worldstore: published version " << version;
  return world;
}

}  // namespace sunchase::core
