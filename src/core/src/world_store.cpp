#include "sunchase/core/world_store.h"

#include <utility>

#include "sunchase/common/error.h"
#include "sunchase/common/logging.h"
#include "sunchase/obs/metrics.h"

namespace sunchase::core {

WorldStore::WorldStore(WorldInit initial)
    : current_(World::create(std::move(initial), 1)), next_version_(2) {
  remember(current());
}

WorldStore::WorldStore(WorldPtr initial) {
  if (!initial) throw InvalidArgument("WorldStore: null initial world");
  next_version_ = initial->version() + 1;
  current_.store(initial, std::memory_order_release);
  remember(initial);
}

WorldPtr WorldStore::publish(WorldInit next) {
  // Build outside the swap: a slow construction (solar map, caches)
  // must never make readers wait. Only the version counter and the
  // final pointer swap are serialized across publishers.
  std::lock_guard<std::mutex> lock(publish_mutex_);
  const std::uint64_t version = next_version_++;
  WorldPtr world = World::create(std::move(next), version);
  current_.store(world, std::memory_order_release);
  remember(world);
  obs::Registry::global().gauge("world.version").set(
      static_cast<double>(version));
  obs::Registry::global().counter("world.publishes").add();
  SUNCHASE_LOG(Info) << "worldstore: published version " << version;
  return world;
}

void WorldStore::remember(const WorldPtr& world) {
  const std::lock_guard<std::mutex> lock(lineage_mutex_);
  if (lineage_.size() == kLineageCapacity) lineage_.pop_front();
  lineage_.emplace_back(world->version(), std::weak_ptr<const World>(world));
}

std::vector<WorldVersionInfo> WorldStore::lineage() const {
  const std::uint64_t current_version = current()->version();
  std::vector<WorldVersionInfo> rows;
  {
    const std::lock_guard<std::mutex> lock(lineage_mutex_);
    rows.reserve(lineage_.size());
    for (const auto& [version, weak] : lineage_) {
      WorldVersionInfo info;
      info.version = version;
      info.current = version == current_version;
      if (const WorldPtr pinned = weak.lock()) {
        info.alive = true;
        // Discount our own temporary pin and, for the current version,
        // the store's reference — what remains is outside readers.
        const auto count = static_cast<std::size_t>(pinned.use_count());
        const std::size_t own = info.current ? 2u : 1u;
        info.pins = count > own ? count - own : 0u;
      }
      rows.push_back(info);
    }
  }
  // Aggregate gauges only: per-version series would grow with every
  // publish, so version-level detail stays in /debug/worlds.
  std::size_t live = 0, pins = 0;
  for (const WorldVersionInfo& row : rows) {
    live += row.alive ? 1u : 0u;
    pins += row.pins;
  }
  obs::Registry::global().gauge("world.live_versions").set(
      static_cast<double>(live));
  obs::Registry::global().gauge("world.pinned_readers").set(
      static_cast<double>(pins));
  return rows;
}

}  // namespace sunchase::core
