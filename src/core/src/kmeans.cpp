#include "sunchase/core/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sunchase/common/assert.h"
#include "sunchase/common/logging.h"
#include "sunchase/common/rng.h"
#include "sunchase/obs/trace.h"

namespace sunchase::core {

double manhattan(const LabelVector& a, const LabelVector& b) noexcept {
  return std::abs(a[0] - b[0]) + std::abs(a[1] - b[1]) + std::abs(a[2] - b[2]);
}

LabelVector centroid(const std::vector<LabelVector>& points,
                     const std::vector<std::size_t>& members) {
  SUNCHASE_EXPECTS(!members.empty());
  LabelVector c{0.0, 0.0, 0.0};
  for (const std::size_t i : members)
    for (std::size_t d = 0; d < 3; ++d) c[d] += points[i][d];
  for (std::size_t d = 0; d < 3; ++d)
    c[d] /= static_cast<double>(members.size());
  return c;
}

double cluster_quality(const std::vector<LabelVector>& points,
                       const std::vector<std::size_t>& members) {
  if (members.empty()) return 0.0;
  const LabelVector c = centroid(points, members);
  double sum = 0.0;
  for (const std::size_t i : members) sum += manhattan(points[i], c);
  return sum / static_cast<double>(members.size());
}

namespace {

/// One 2-means split (Lloyd with Manhattan distance, mean centroids as
/// the paper specifies). Returns the two member lists; either may be
/// empty if the points coincide.
std::pair<std::vector<std::size_t>, std::vector<std::size_t>> two_means(
    const std::vector<LabelVector>& points,
    const std::vector<std::size_t>& members,
    const BisectKMeansOptions& options, Rng& rng) {
  std::pair<std::vector<std::size_t>, std::vector<std::size_t>> best;
  double best_sse = std::numeric_limits<double>::infinity();

  for (int attempt = 0; attempt < options.split_attempts; ++attempt) {
    // Seed with two distinct random members.
    const std::size_t ia = members[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(members.size()) - 1))];
    std::size_t ib = ia;
    for (int tries = 0; tries < 16 && ib == ia; ++tries)
      ib = members[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(members.size()) - 1))];
    LabelVector ca = points[ia];
    LabelVector cb = points[ib];

    std::vector<std::size_t> a, b;
    for (int iter = 0; iter < options.kmeans_iterations; ++iter) {
      a.clear();
      b.clear();
      for (const std::size_t i : members) {
        (manhattan(points[i], ca) <= manhattan(points[i], cb) ? a : b)
            .push_back(i);
      }
      if (a.empty() || b.empty()) break;
      const LabelVector na = centroid(points, a);
      const LabelVector nb = centroid(points, b);
      if (na == ca && nb == cb) break;
      ca = na;
      cb = nb;
    }
    if (a.empty() || b.empty()) continue;
    double sse = 0.0;
    for (const std::size_t i : a) sse += manhattan(points[i], ca);
    for (const std::size_t i : b) sse += manhattan(points[i], cb);
    if (sse < best_sse) {
      best_sse = sse;
      best = {a, b};
    }
  }
  return best;
}

}  // namespace

Clustering bisecting_kmeans(const std::vector<LabelVector>& points,
                            const BisectKMeansOptions& options) {
  const obs::SpanTimer span("core.kmeans");
  Clustering result;
  if (points.empty()) return result;

  Rng rng(options.seed);
  std::vector<std::size_t> all(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) all[i] = i;
  result.clusters.push_back(std::move(all));
  std::vector<bool> unsplittable{false};

  while (true) {
    // Pick the worst-quality splittable cluster.
    double worst_q = options.quality_threshold;
    std::size_t worst = result.clusters.size();
    for (std::size_t c = 0; c < result.clusters.size(); ++c) {
      if (result.clusters[c].size() < 2 || unsplittable[c]) continue;
      const double q = cluster_quality(points, result.clusters[c]);
      if (q >= worst_q) {  // >= so exactly-at-threshold still splits
        worst_q = q;
        worst = c;
      }
    }
    if (worst == result.clusters.size()) break;  // all clusters good

    auto [a, b] = two_means(points, result.clusters[worst], options, rng);
    if (a.empty() || b.empty()) {
      // Degenerate split (e.g. coincident member vectors): leave the
      // cluster whole and never retry it.
      unsplittable[worst] = true;
      continue;
    }
    result.clusters[worst] = std::move(a);
    result.clusters.push_back(std::move(b));
    unsplittable.push_back(false);
  }
  SUNCHASE_LOG(Debug) << "kmeans: " << points.size() << " label vectors -> "
                      << result.clusters.size() << " clusters (threshold "
                      << options.quality_threshold << ")";
  return result;
}

std::vector<LabelVector> normalize_dimensions(std::vector<LabelVector> points) {
  if (points.empty()) return points;
  for (std::size_t d = 0; d < 3; ++d) {
    double lo = points[0][d], hi = points[0][d];
    for (const LabelVector& p : points) {
      lo = std::min(lo, p[d]);
      hi = std::max(hi, p[d]);
    }
    const double span = hi - lo;
    for (LabelVector& p : points)
      p[d] = span > 0.0 ? (p[d] - lo) / span : 0.0;
  }
  return points;
}

}  // namespace sunchase::core
