#include "sunchase/core/batch_planner.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <utility>

#include "sunchase/common/error.h"
#include "sunchase/common/logging.h"
#include "sunchase/common/thread_pool.h"
#include "sunchase/core/metrics.h"
#include "sunchase/core/world.h"
#include "sunchase/core/world_store.h"
#include "sunchase/obs/metrics.h"
#include "sunchase/obs/profiler.h"
#include "sunchase/obs/query_log.h"
#include "sunchase/obs/trace.h"

namespace sunchase::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

void accumulate(MlcStats& into, const MlcStats& stats) {
  into.labels_created += stats.labels_created;
  into.labels_dominated += stats.labels_dominated;
  into.queue_pops += stats.queue_pops;
  into.pareto_size += stats.pareto_size;
  into.labels_pruned_bound += stats.labels_pruned_bound;
  into.labels_merged_epsilon += stats.labels_merged_epsilon;
  into.shortest_travel_time += stats.shortest_travel_time;
  into.search_seconds += stats.search_seconds;
  into.lower_bound_seconds += stats.lower_bound_seconds;
}

/// Starts a batch-mode QueryRecord for `query`; the worker (or the
/// collect loop, on failure) fills in the rest.
obs::QueryRecord start_record(const BatchQuery& query, std::size_t index,
                              PricingMode pricing) {
  obs::QueryRecord record;
  record.mode = "batch";
  record.index = static_cast<std::int64_t>(index);
  record.origin = query.origin;
  record.destination = query.destination;
  record.departure = query.departure.to_string();
  record.pricing = pricing_name(pricing);
  return record;
}

/// Registry handles for the batch-level metrics, resolved once.
struct BatchMetrics {
  obs::Histogram& queue_wait;  ///< submit-to-worker-start, per task
  obs::Histogram& run_time;    ///< in-worker per-query time
  obs::Gauge& throughput;      ///< last batch's queries/second
  obs::Counter& queries_ok;
  obs::Counter& queries_failed;

  static const BatchMetrics& get() {
    static BatchMetrics metrics{
        obs::Registry::global().histogram("batch.queue_wait_seconds"),
        obs::Registry::global().histogram("batch.run_seconds"),
        obs::Registry::global().gauge("batch.throughput_qps"),
        obs::Registry::global().counter("batch.queries_ok"),
        obs::Registry::global().counter("batch.queries_failed")};
    return metrics;
  }
};

/// What one worker task hands back through its future.
struct QueryOutcome {
  MlcResult result;
  std::optional<SelectionResult> selection;
  WorldPtr world;  ///< the snapshot the worker pinned for this query
  double cpu_seconds = 0.0;  ///< worker-thread CPU burned on this query
};

}  // namespace

BatchPlanner::BatchPlanner(WorldPtr world, BatchPlannerOptions options)
    : pinned_(std::move(world)), options_(options) {
  if (!pinned_) throw InvalidArgument("BatchPlanner: null world");
  // Rejects a bad vehicle index or MLC option set now, not per query.
  static_cast<void>(MultiLabelCorrecting(pinned_, options.mlc));
}

BatchPlanner::BatchPlanner(const WorldStore& store,
                           BatchPlannerOptions options)
    : store_(&store), options_(options) {
  static_cast<void>(MultiLabelCorrecting(store.current(), options.mlc));
}

WorldPtr BatchPlanner::world() const {
  return store_ != nullptr ? store_->current() : pinned_;
}

BatchResult BatchPlanner::plan_all(
    const std::vector<BatchQuery>& queries) const {
  BatchResult result;
  result.queries.resize(queries.size());
  result.stats.query_count = queries.size();
  if (queries.empty()) return result;

  const std::size_t workers = std::min(
      queries.size(), options_.workers > 0
                          ? options_.workers
                          : common::ThreadPool::default_worker_count());
  result.stats.workers = workers;

  const BatchMetrics& metrics = BatchMetrics::get();
  // Batch-local latency histogram (same class as the registry's): the
  // per-batch p50/p95/max must not mix with earlier batches.
  obs::Histogram latency(obs::latency_bounds());

  // Capture the submitting thread's trace context once: every worker
  // task reinstalls it, so batch.query (and the mlc.search / kmeans
  // spans beneath it) parent to the originating request even though
  // they run on pool threads with empty thread-local context.
  const obs::TraceContext trace_parent = obs::current_trace();
  const std::string trace_hex =
      trace_parent.valid() ? trace_parent.trace_id_hex() : std::string();
  // The profiler analog of the trace capture above: the submitting
  // thread's open span names (e.g. serve.request), re-installed on each
  // worker so its samples fold under the originating request instead of
  // appearing as a detached batch.query root.
  const std::vector<const char*> span_parent = obs::current_span_stack();

  const auto start = Clock::now();
  {
    common::ThreadPool pool(workers);
    std::vector<std::future<QueryOutcome>> futures;
    futures.reserve(queries.size());
    obs::QueryLog* const log = options_.query_log;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const BatchQuery query = queries[i];
      const auto submitted = Clock::now();
      futures.push_back(pool.submit([this, query, i, submitted, &metrics,
                                     &latency, log, trace_parent,
                                     &trace_hex, &span_parent] {
        const auto begun = Clock::now();
        metrics.queue_wait.observe(seconds_between(submitted, begun));
        const obs::TraceScope trace_scope(trace_parent);
        const obs::SpanStackScope stack_scope(span_parent);
        const obs::SpanTimer span("batch.query");
        const double cpu_started = obs::thread_cpu_seconds();
        // Pin this query's snapshot: in live mode each query loads the
        // store's current world when its worker picks it up, and prices
        // every edge against that one version end to end — a publish()
        // racing this batch never tears a query.
        const WorldPtr world = store_ != nullptr ? store_->current() : pinned_;
        const MultiLabelCorrecting solver(world, options_.mlc);
        QueryOutcome outcome;
        outcome.world = world;
        outcome.result = solver.search(query.origin, query.destination,
                                       query.departure);
        if (options_.run_selection)
          outcome.selection = detail::select_representative_routes(
              outcome.result.routes, world->solar_map(),
              world->vehicle(options_.mlc.vehicle), query.departure,
              options_.selection);
        const double run_seconds = seconds_between(begun, Clock::now());
        outcome.cpu_seconds = obs::thread_cpu_seconds() - cpu_started;
        metrics.run_time.observe(run_seconds);
        latency.observe(run_seconds);
        // Gauge::add: the registry's atomic float accumulator (CPU
        // seconds are fractional; Counter is integer-only).
        obs::Registry::global()
            .gauge("mlc.cpu_seconds",
                   {{"pricing", pricing_name(options_.mlc.pricing)}})
            .add(outcome.cpu_seconds);
        if (log != nullptr) {
          obs::QueryRecord record = start_record(query, i,
                                                 options_.mlc.pricing);
          record.trace_id = trace_hex;
          record.world_version = static_cast<std::int64_t>(world->version());
          const MlcStats& stats = outcome.result.stats;
          record.mlc_seconds = stats.search_seconds;
          record.labels_created = stats.labels_created;
          record.labels_dominated = stats.labels_dominated;
          record.queue_pops = stats.queue_pops;
          record.pareto_size = stats.pareto_size;
          record.labels_pruned_bound = stats.labels_pruned_bound;
          record.labels_merged_epsilon = stats.labels_merged_epsilon;
          record.lower_bound_seconds = stats.lower_bound_seconds;
          if (outcome.selection.has_value()) {
            const SelectionResult& sel = *outcome.selection;
            record.kmeans_seconds = sel.kmeans_seconds;
            record.selection_seconds = sel.selection_seconds;
            record.candidate_count = sel.candidates.size();
            if (!sel.candidates.empty()) {
              const CandidateRoute& best = sel.candidates.size() > 1
                                               ? sel.candidates[1]
                                               : sel.candidates[0];
              record.travel_time_s = best.metrics.travel_time.value();
              record.shaded_time_s = best.metrics.shaded_time.value();
              record.energy_out_wh = best.metrics.energy_out.value();
              record.energy_in_wh = best.metrics.energy_in.value();
            }
          } else if (!outcome.result.routes.empty()) {
            // No selection pipeline: summarize the shortest-time Pareto
            // route (what the paper falls back to).
            const auto fastest = std::min_element(
                outcome.result.routes.begin(), outcome.result.routes.end(),
                [](const ParetoRoute& a, const ParetoRoute& b) {
                  return a.cost.travel_time.value() <
                         b.cost.travel_time.value();
                });
            const RouteMetrics best = detail::evaluate_route(
                world->solar_map(), world->vehicle(options_.mlc.vehicle),
                fastest->path, query.departure);
            record.candidate_count = outcome.result.routes.size();
            record.travel_time_s = best.travel_time.value();
            record.shaded_time_s = best.shaded_time.value();
            record.energy_out_wh = best.energy_out.value();
            record.energy_in_wh = best.energy_in.value();
          }
          record.total_seconds = run_seconds;
          record.cpu_ms = outcome.cpu_seconds * 1000.0;
          log->write(record);
        }
        return outcome;
      }));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      try {
        QueryOutcome outcome = futures[i].get();
        result.queries[i].result = std::move(outcome.result);
        result.queries[i].selection = std::move(outcome.selection);
        result.queries[i].world = std::move(outcome.world);
        result.queries[i].cpu_seconds = outcome.cpu_seconds;
      } catch (const std::exception& e) {
        result.queries[i].error = e.what();
        if (log != nullptr) {
          obs::QueryRecord record =
              start_record(queries[i], i, options_.mlc.pricing);
          record.trace_id = trace_hex;
          // The failing query's own snapshot died with its exception;
          // the planner's current view is the best available stamp.
          record.world_version =
              static_cast<std::int64_t>(world()->version());
          record.status = "error";
          record.error = e.what();
          log->write(record);
        }
        SUNCHASE_LOG(Info) << "batch: query " << i << " ("
                           << queries[i].origin << "->"
                           << queries[i].destination << " @ "
                           << queries[i].departure.to_string()
                           << ") failed: " << e.what();
      }
    }
  }
  const double elapsed = seconds_between(start, Clock::now());

  for (const BatchQueryResult& qr : result.queries) {
    if (qr.ok()) {
      ++result.stats.succeeded;
      accumulate(result.stats.totals, qr.result->stats);
    } else {
      ++result.stats.failed;
    }
    result.stats.cpu_seconds += qr.cpu_seconds;
  }
  result.stats.wall_seconds = elapsed;
  if (result.stats.wall_seconds > 0.0)
    result.stats.queries_per_second =
        static_cast<double>(queries.size()) / result.stats.wall_seconds;

  result.stats.latency = latency.snapshot();

  metrics.throughput.set(result.stats.queries_per_second);
  metrics.queries_ok.add(result.stats.succeeded);
  metrics.queries_failed.add(result.stats.failed);
  // Labeled per-pricing-mode breakdown alongside the plain totals (the
  // plain names stay — CI and bench_compare read them). Pricing mode is
  // a two-value enum, so cardinality is bounded by construction.
  const obs::Labels pricing_labels{
      {"pricing", pricing_name(options_.mlc.pricing)}};
  obs::Registry::global()
      .counter("batch.queries_by_pricing", pricing_labels)
      .add(result.stats.succeeded + result.stats.failed);
  obs::Registry::global()
      .histogram("batch.run_seconds_by_pricing", pricing_labels,
                 obs::latency_bounds())
      .observe(result.stats.wall_seconds);
  SUNCHASE_LOG(Debug) << "batch: " << result.stats.succeeded << "/"
                      << queries.size() << " queries ok on " << workers
                      << " workers in " << elapsed << " s ("
                      << result.stats.queries_per_second << " q/s)";
  return result;
}

}  // namespace sunchase::core
