#include "sunchase/core/batch_planner.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <utility>

#include "sunchase/common/thread_pool.h"

namespace sunchase::core {

namespace {

void accumulate(MlcStats& into, const MlcStats& stats) {
  into.labels_created += stats.labels_created;
  into.labels_dominated += stats.labels_dominated;
  into.queue_pops += stats.queue_pops;
  into.pareto_size += stats.pareto_size;
  into.shortest_travel_time += stats.shortest_travel_time;
}

}  // namespace

BatchPlanner::BatchPlanner(const solar::SolarInputMap& map,
                           const ev::ConsumptionModel& vehicle,
                           BatchPlannerOptions options)
    : map_(map),
      vehicle_(vehicle),
      options_(options),
      solver_(map, vehicle, options.mlc) {}

BatchResult BatchPlanner::plan_all(
    const std::vector<BatchQuery>& queries) const {
  BatchResult result;
  result.queries.resize(queries.size());
  result.stats.query_count = queries.size();
  if (queries.empty()) return result;

  // Freeze the lazy CSR adjacency before any worker touches it: the
  // graph is the one piece of shared state with mutable internals.
  map_.graph().finalize();

  const std::size_t workers = std::min(
      queries.size(), options_.workers > 0
                          ? options_.workers
                          : common::ThreadPool::default_worker_count());
  result.stats.workers = workers;

  const auto start = std::chrono::steady_clock::now();
  {
    common::ThreadPool pool(workers);
    std::vector<std::future<MlcResult>> futures;
    futures.reserve(queries.size());
    for (const BatchQuery& query : queries)
      futures.push_back(pool.submit([this, query] {
        return solver_.search(query.origin, query.destination,
                              query.departure);
      }));
    for (std::size_t i = 0; i < futures.size(); ++i) {
      try {
        result.queries[i].result = futures[i].get();
      } catch (const std::exception& e) {
        result.queries[i].error = e.what();
      }
    }
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;

  for (const BatchQueryResult& qr : result.queries) {
    if (qr.ok()) {
      ++result.stats.succeeded;
      accumulate(result.stats.totals, qr.result->stats);
    } else {
      ++result.stats.failed;
    }
  }
  result.stats.wall_seconds = elapsed.count();
  if (result.stats.wall_seconds > 0.0)
    result.stats.queries_per_second =
        static_cast<double>(queries.size()) / result.stats.wall_seconds;
  return result;
}

}  // namespace sunchase::core
