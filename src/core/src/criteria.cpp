#include "sunchase/core/criteria.h"

#include <cmath>

namespace sunchase::core {

namespace {
// -1 / 0 / +1 comparison with the shared tolerance.
int fuzzy_cmp(double a, double b) noexcept {
  if (a < b - kCriteriaEpsilon) return -1;
  if (a > b + kCriteriaEpsilon) return +1;
  return 0;
}
}  // namespace

bool dominates(const Criteria& a, const Criteria& b) noexcept {
  const int c1 = fuzzy_cmp(a.travel_time.value(), b.travel_time.value());
  const int c2 = fuzzy_cmp(a.shaded_time.value(), b.shaded_time.value());
  const int c3 = fuzzy_cmp(a.energy_out.value(), b.energy_out.value());
  if (c1 > 0 || c2 > 0 || c3 > 0) return false;
  return c1 < 0 || c2 < 0 || c3 < 0;
}

bool equivalent(const Criteria& a, const Criteria& b) noexcept {
  return fuzzy_cmp(a.travel_time.value(), b.travel_time.value()) == 0 &&
         fuzzy_cmp(a.shaded_time.value(), b.shaded_time.value()) == 0 &&
         fuzzy_cmp(a.energy_out.value(), b.energy_out.value()) == 0;
}

bool epsilon_dominates(const Criteria& a, const Criteria& b,
                       double epsilon) noexcept {
  const double scale = 1.0 + epsilon;
  return a.travel_time.value() <=
             scale * b.travel_time.value() + kCriteriaEpsilon &&
         a.shaded_time.value() <=
             scale * b.shaded_time.value() + kCriteriaEpsilon &&
         a.energy_out.value() <=
             scale * b.energy_out.value() + kCriteriaEpsilon;
}

bool lex_less(const Criteria& a, const Criteria& b) noexcept {
  if (const int c = fuzzy_cmp(a.travel_time.value(), b.travel_time.value()))
    return c < 0;
  if (const int c = fuzzy_cmp(a.shaded_time.value(), b.shaded_time.value()))
    return c < 0;
  return fuzzy_cmp(a.energy_out.value(), b.energy_out.value()) < 0;
}

}  // namespace sunchase::core
