#include "sunchase/core/world.h"

#include <utility>

#include "sunchase/common/error.h"
#include "sunchase/common/logging.h"

namespace sunchase::core {

World::World(WorldInit init, std::uint64_t version)
    : init_(std::move(init)),
      version_(version),
      map_(*init_.graph, *init_.shading, *init_.traffic, init_.panel_power) {
  caches_.reserve(init_.vehicles.size());
  for (const auto& vehicle : init_.vehicles)
    caches_.push_back(std::unique_ptr<SlotCostCache>(
        new SlotCostCache(map_, *vehicle)));
}

namespace {

void validate_init(const WorldInit& init) {
  if (!init.graph) throw InvalidArgument("World: null graph");
  if (!init.traffic) throw InvalidArgument("World: null traffic model");
  if (!init.shading) throw InvalidArgument("World: null shading profile");
  if (!init.panel_power)
    throw InvalidArgument("World: null panel power function");
  if (init.vehicles.empty())
    throw InvalidArgument("World: at least one vehicle is required");
  for (const auto& vehicle : init.vehicles)
    if (!vehicle) throw InvalidArgument("World: null vehicle model");
}

}  // namespace

WorldPtr World::create(WorldInit init, std::uint64_t version) {
  validate_init(init);
  // Not make_shared: the constructor is private, and the object must
  // never move (the solar map and caches hold references into it).
  return WorldPtr(new World(std::move(init), version));
}

WorldPtr World::create_prefilled(WorldInit init, std::uint64_t version,
                                 std::vector<SlotCachePrefill> prefill) {
  validate_init(init);
  std::unique_ptr<World> world(new World(std::move(init), version));
  for (SlotCachePrefill& column : prefill) {
    if (column.vehicle >= world->caches_.size())
      throw InvalidArgument(
          "World::create_prefilled: vehicle index " +
          std::to_string(column.vehicle) + " outside [0, " +
          std::to_string(world->caches_.size()) + ")");
    // Installed before anyone else can see the world — adopt_column
    // itself validates the slot range and the row count.
    world->caches_[column.vehicle]->adopt_column(column.slot,
                                                 std::move(column.entries));
  }
  return WorldPtr(world.release());
}

const ev::ConsumptionModel& World::vehicle(std::size_t index) const {
  if (index >= init_.vehicles.size())
    throw InvalidArgument("World::vehicle: index " + std::to_string(index) +
                          " outside [0, " +
                          std::to_string(init_.vehicles.size()) + ")");
  return *init_.vehicles[index];
}

const SlotCostCache& World::slot_cache(std::size_t index) const {
  if (index >= caches_.size())
    throw InvalidArgument("World::slot_cache: index " +
                          std::to_string(index) + " outside [0, " +
                          std::to_string(caches_.size()) + ")");
  return *caches_[index];
}

}  // namespace sunchase::core
