#include "sunchase/core/world_codec.h"

#include <array>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "sunchase/common/error.h"
#include "sunchase/core/world.h"
#include "sunchase/snapshot/format.h"
#include "sunchase/snapshot/reader.h"
#include "sunchase/snapshot/writer.h"

namespace sunchase::core {

namespace {

// The big arrays are written to disk verbatim and reinterpreted in
// place on load, so their layout is part of the format: pin the sizes
// (padding-free) and triviality here, where a drifting struct breaks
// the build instead of the files.
static_assert(std::is_trivially_copyable_v<roadnet::Node> &&
              sizeof(roadnet::Node) == 16);
static_assert(std::is_trivially_copyable_v<roadnet::Edge> &&
              sizeof(roadnet::Edge) == 16);
static_assert(std::is_trivially_copyable_v<SlotCostCache::Entry> &&
              sizeof(SlotCostCache::Entry) == 64);

/// kShadingMeta payload.
struct ShadingMetaRecord {
  std::uint64_t edge_count;
  std::int32_t first_slot;
  std::int32_t last_slot;
};
static_assert(sizeof(ShadingMetaRecord) == 16);

/// kTraffic payload. kind 1 = UniformTraffic (p0 = speed in m/s),
/// kind 2 = UrbanTraffic (p0/p1 = min/max speed in m/s, p2 = rush-hour
/// slowdown, seed = its deterministic per-edge seed).
struct TrafficRecord {
  std::uint32_t kind;
  std::uint32_t reserved;
  double p0;
  double p1;
  double p2;
  std::uint64_t seed;
};
static_assert(sizeof(TrafficRecord) == 40);
inline constexpr std::uint32_t kTrafficUniform = 1;
inline constexpr std::uint32_t kTrafficUrban = 2;

/// One kVehicles row. kind 1 = QuadraticConsumption (Eq. 6).
struct VehicleRecord {
  std::uint32_t kind;
  std::uint32_t reserved;
  double a;
  double b;
  char name[64];  ///< NUL-terminated display name
};
static_assert(sizeof(VehicleRecord) == 88);
inline constexpr std::uint32_t kVehicleQuadratic = 1;

std::uint32_t column_aux(std::size_t vehicle, int slot) {
  return static_cast<std::uint32_t>(vehicle) *
             static_cast<std::uint32_t>(TimeOfDay::kSlotsPerDay) +
         static_cast<std::uint32_t>(slot);
}

TrafficRecord encode_traffic(const roadnet::TrafficModel& traffic) {
  TrafficRecord rec{};
  if (const auto* uniform =
          dynamic_cast<const roadnet::UniformTraffic*>(&traffic)) {
    rec.kind = kTrafficUniform;
    rec.p0 = uniform->uniform_speed().value();
    return rec;
  }
  if (const auto* urban =
          dynamic_cast<const roadnet::UrbanTraffic*>(&traffic)) {
    const roadnet::UrbanTraffic::Options& opt = urban->options();
    rec.kind = kTrafficUrban;
    rec.p0 = opt.min_speed.value();
    rec.p1 = opt.max_speed.value();
    rec.p2 = opt.rush_hour_slowdown;
    rec.seed = opt.seed;
    return rec;
  }
  throw SnapshotError(
      "save_world_snapshot: traffic model is not a serializable type "
      "(UniformTraffic or UrbanTraffic)");
}

std::shared_ptr<const roadnet::TrafficModel> decode_traffic(
    const TrafficRecord& rec, const std::string& path) {
  switch (rec.kind) {
    case kTrafficUniform:
      return std::make_shared<const roadnet::UniformTraffic>(
          MetersPerSecond{rec.p0});
    case kTrafficUrban: {
      roadnet::UrbanTraffic::Options opt;
      opt.min_speed = MetersPerSecond{rec.p0};
      opt.max_speed = MetersPerSecond{rec.p1};
      opt.rush_hour_slowdown = rec.p2;
      opt.seed = rec.seed;
      return std::make_shared<const roadnet::UrbanTraffic>(opt);
    }
    default:
      throw SnapshotError("snapshot: " + path +
                          ": section traffic: unknown traffic kind " +
                          std::to_string(rec.kind));
  }
}

VehicleRecord encode_vehicle(const ev::ConsumptionModel& vehicle) {
  const auto* quadratic =
      dynamic_cast<const ev::QuadraticConsumption*>(&vehicle);
  if (quadratic == nullptr)
    throw SnapshotError(
        "save_world_snapshot: vehicle model '" + vehicle.name() +
        "' is not a serializable type (QuadraticConsumption)");
  VehicleRecord rec{};
  rec.kind = kVehicleQuadratic;
  rec.a = quadratic->a();
  rec.b = quadratic->b();
  const std::string name = quadratic->name();
  if (name.size() >= sizeof(rec.name))
    throw SnapshotError("save_world_snapshot: vehicle name '" + name +
                        "' exceeds " +
                        std::to_string(sizeof(rec.name) - 1) + " bytes");
  std::memcpy(rec.name, name.data(), name.size());
  return rec;
}

std::shared_ptr<const ev::ConsumptionModel> decode_vehicle(
    const VehicleRecord& rec, const std::string& path) {
  if (rec.kind != kVehicleQuadratic)
    throw SnapshotError("snapshot: " + path +
                        ": section vehicles: unknown vehicle kind " +
                        std::to_string(rec.kind));
  const std::size_t len = ::strnlen(rec.name, sizeof(rec.name));
  if (len == sizeof(rec.name))
    throw SnapshotError("snapshot: " + path +
                        ": section vehicles: vehicle name is not "
                        "NUL-terminated");
  return std::make_shared<const ev::QuadraticConsumption>(
      rec.a, rec.b, std::string(rec.name, len));
}

}  // namespace

void save_world_snapshot(const World& world, const std::string& path,
                         const SaveOptions& options) {
  snapshot::SnapshotWriter writer(world.version());

  const roadnet::RoadGraph::FrozenParts& parts = world.graph().parts();
  writer.add_array(snapshot::kNodes, 0, parts.nodes.span());
  writer.add_array(snapshot::kEdges, 0, parts.edges.span());
  writer.add_array(snapshot::kOutOffsets, 0, parts.out_offsets.span());
  writer.add_array(snapshot::kOutSorted, 0, parts.out_sorted.span());
  writer.add_array(snapshot::kInOffsets, 0, parts.in_offsets.span());
  writer.add_array(snapshot::kInSorted, 0, parts.in_sorted.span());

  const shadow::ShadingProfile& shading = world.shading();
  const ShadingMetaRecord meta{shading.edge_count(),
                               shading.first_slot(), shading.last_slot()};
  writer.add_array(snapshot::kShadingMeta, 0,
                   std::span<const ShadingMetaRecord>(&meta, 1));
  writer.add_array(snapshot::kShadingFractions, 0, shading.fractions());

  const TrafficRecord traffic = encode_traffic(world.traffic());
  writer.add_array(snapshot::kTraffic, 0,
                   std::span<const TrafficRecord>(&traffic, 1));

  // The panel-power curve as its 96 slot-start samples: every built-in
  // model is constant within a slot, so this is a lossless capture.
  std::array<double, TimeOfDay::kSlotsPerDay> panel{};
  for (int slot = 0; slot < TimeOfDay::kSlotsPerDay; ++slot)
    panel[static_cast<std::size_t>(slot)] =
        world.solar_map().panel_power(TimeOfDay::slot_start(slot)).value();
  writer.add_array(snapshot::kPanel, 0,
                   std::span<const double>(panel.data(), panel.size()));

  std::vector<VehicleRecord> vehicles;
  vehicles.reserve(world.vehicle_count());
  for (std::size_t v = 0; v < world.vehicle_count(); ++v)
    vehicles.push_back(encode_vehicle(world.vehicle(v)));
  writer.add_array(snapshot::kVehicles, 0,
                   std::span<const VehicleRecord>(vehicles));

  if (options.include_slot_cache) {
    for (std::size_t v = 0; v < world.vehicle_count(); ++v) {
      for (int slot = 0; slot < TimeOfDay::kSlotsPerDay; ++slot) {
        const std::span<const SlotCostCache::Entry> column =
            world.slot_cache(v).column_view(slot);
        if (!column.empty())
          writer.add_array(snapshot::kSlotCacheColumn, column_aux(v, slot),
                           column);
      }
    }
  }

  snapshot::WriteOptions write_options;
  write_options.durable = options.durable;
  writer.write_file(path, write_options);
}

WorldPtr load_world_snapshot(const std::string& path) {
  const snapshot::SnapshotReader reader = snapshot::SnapshotReader::open(path);
  try {
    roadnet::RoadGraph::FrozenParts parts;
    parts.nodes = reader.array<roadnet::Node>(snapshot::kNodes);
    parts.edges = reader.array<roadnet::Edge>(snapshot::kEdges);
    parts.out_offsets = reader.array<std::uint32_t>(snapshot::kOutOffsets);
    parts.out_sorted = reader.array<roadnet::EdgeId>(snapshot::kOutSorted);
    parts.in_offsets = reader.array<std::uint32_t>(snapshot::kInOffsets);
    parts.in_sorted = reader.array<roadnet::EdgeId>(snapshot::kInSorted);

    WorldInit init;
    init.graph = std::make_shared<const roadnet::RoadGraph>(
        roadnet::RoadGraph::from_parts(std::move(parts)));

    const auto meta =
        reader.record<ShadingMetaRecord>(snapshot::kShadingMeta);
    init.shading = std::make_shared<const shadow::ShadingProfile>(
        shadow::ShadingProfile::from_parts(
            meta.edge_count, meta.first_slot, meta.last_slot,
            reader.array<float>(snapshot::kShadingFractions)));

    init.traffic = decode_traffic(
        reader.record<TrafficRecord>(snapshot::kTraffic), path);

    common::FrozenArray<double> panel =
        reader.array<double>(snapshot::kPanel);
    if (panel.size() != static_cast<std::size_t>(TimeOfDay::kSlotsPerDay))
      throw SnapshotError("snapshot: " + path + ": section panel has " +
                          std::to_string(panel.size()) +
                          " samples, expected " +
                          std::to_string(TimeOfDay::kSlotsPerDay));
    // Piecewise-constant per slot, like every model that can be saved;
    // the FrozenArray capture pins the mapping.
    init.panel_power = [panel](TimeOfDay when) {
      return Watts{panel[static_cast<std::size_t>(when.slot_index())]};
    };

    common::FrozenArray<VehicleRecord> vehicles =
        reader.array<VehicleRecord>(snapshot::kVehicles);
    if (vehicles.empty())
      throw SnapshotError("snapshot: " + path +
                          ": section vehicles is empty");
    for (const VehicleRecord& rec : vehicles)
      init.vehicles.push_back(decode_vehicle(rec, path));
    const std::size_t vehicle_count = init.vehicles.size();

    std::vector<SlotCachePrefill> prefill;
    for (std::size_t i = 0; i < reader.section_count(); ++i) {
      const snapshot::SectionEntry& entry = reader.entry(i);
      if (entry.id != snapshot::kSlotCacheColumn) continue;
      SlotCachePrefill column;
      column.vehicle =
          entry.aux / static_cast<std::uint32_t>(TimeOfDay::kSlotsPerDay);
      column.slot = static_cast<int>(
          entry.aux % static_cast<std::uint32_t>(TimeOfDay::kSlotsPerDay));
      if (column.vehicle >= vehicle_count)
        throw SnapshotError(
            "snapshot: " + path + ": section slot_cache_column (aux " +
            std::to_string(entry.aux) + ") names vehicle " +
            std::to_string(column.vehicle) + " of " +
            std::to_string(vehicle_count));
      column.entries = reader.array<SlotCostCache::Entry>(
          snapshot::kSlotCacheColumn, entry.aux);
      prefill.push_back(std::move(column));
    }

    return World::create_prefilled(std::move(init), reader.world_version(),
                                   std::move(prefill));
  } catch (const SnapshotError&) {
    throw;
  } catch (const Error& e) {
    // Structural validation (graph/shading/world invariants) on data
    // that passed its checksums: report it as a snapshot problem
    // naming the file.
    throw SnapshotError("snapshot: " + path + ": " + e.what());
  }
}

SnapshotInfo inspect_world_snapshot(const std::string& path) {
  snapshot::ReadOptions options;
  options.verify_section_checksums = false;
  const snapshot::SnapshotReader reader =
      snapshot::SnapshotReader::open(path, options);
  SnapshotInfo info;
  info.path = path;
  info.world_version = reader.world_version();
  info.file_bytes = reader.file_bytes();
  info.intact = true;
  info.sections.reserve(reader.section_count());
  for (std::size_t i = 0; i < reader.section_count(); ++i) {
    const snapshot::SectionEntry& entry = reader.entry(i);
    SnapshotSectionInfo section;
    section.id = entry.id;
    section.name = snapshot::section_name(entry.id);
    section.aux = entry.aux;
    section.offset = entry.offset;
    section.bytes = entry.bytes;
    section.crc = entry.crc;
    section.crc_ok = reader.section_crc_ok(i);
    info.intact = info.intact && section.crc_ok;
    info.sections.push_back(std::move(section));
  }
  return info;
}

}  // namespace sunchase::core
