#include "sunchase/core/metrics.h"

#include "sunchase/common/error.h"
#include "sunchase/core/world.h"

namespace sunchase::core {

namespace detail {

Criteria edge_criteria(const solar::SolarInputMap& map,
                       const ev::ConsumptionModel& vehicle,
                       roadnet::EdgeId edge, TimeOfDay when) {
  const solar::EdgeSolar es = map.evaluate(edge, when);
  const auto& graph = map.graph();
  const MetersPerSecond v = map.traffic().speed(graph, edge, when);
  return Criteria{es.travel_time, es.shaded_time,
                  vehicle.consumption(graph.edge(edge).length, v)};
}

RouteMetrics evaluate_route(const solar::SolarInputMap& map,
                            const ev::ConsumptionModel& vehicle,
                            const roadnet::Path& path, TimeOfDay departure) {
  RouteMetrics m;
  TimeOfDay clock = departure;
  const auto& graph = map.graph();
  for (const roadnet::EdgeId e : path.edges) {
    const solar::EdgeSolar es = map.evaluate(e, clock);
    const MetersPerSecond v = map.traffic().speed(graph, e, clock);
    m.total_length += graph.edge(e).length;
    m.travel_time += es.travel_time;
    m.solar_time += es.solar_time;
    m.shaded_time += es.shaded_time;
    m.energy_in += es.energy_in;
    m.energy_out += vehicle.consumption(graph.edge(e).length, v);
    clock = clock.advanced_by(es.travel_time);
  }
  return m;
}

}  // namespace detail

Criteria edge_criteria(const WorldPtr& world, roadnet::EdgeId edge,
                       TimeOfDay when, std::size_t vehicle) {
  if (!world) throw InvalidArgument("edge_criteria: null world");
  return detail::edge_criteria(world->solar_map(), world->vehicle(vehicle),
                               edge, when);
}

RouteMetrics evaluate_route(const WorldPtr& world, const roadnet::Path& path,
                            TimeOfDay departure, std::size_t vehicle) {
  if (!world) throw InvalidArgument("evaluate_route: null world");
  return detail::evaluate_route(world->solar_map(), world->vehicle(vehicle),
                                path, departure);
}

WattHours energy_extra(const RouteMetrics& candidate,
                       const RouteMetrics& baseline) noexcept {
  // Eq. 5: (EI_i - EI_1) - (EC_i - EC_1) > 0.
  return (candidate.energy_in - baseline.energy_in) -
         (candidate.energy_out - baseline.energy_out);
}

}  // namespace sunchase::core
