// The world snapshot: one immutable, versioned bundle of everything a
// planner consumes — the frozen road graph, traffic model, shading
// profile, the solar input map derived from them, the vehicle
// consumption models, and one shared per-(edge, slot) cost cache per
// vehicle. Every planning-layer object (planner, batch workers,
// explainer, replanner) holds a `WorldPtr = shared_ptr<const World>`:
// copying the pointer pins the snapshot, so live updates (crowdsensed
// shading, refreshed solar maps — the paper's Sec. VI future work and
// the SCORE server deployment model) publish a *new* version through
// `WorldStore` while in-flight queries keep reading the one they
// started on. Nothing mutates under a reader, nothing blocks, nothing
// tears.
//
// Components are held by shared_ptr so successive versions share
// structure (MVCC-snapshot style): folding a new shading profile into
// the next version reuses the same graph and traffic model allocation.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sunchase/core/slot_cost_cache.h"
#include "sunchase/core/world_fwd.h"
#include "sunchase/ev/consumption.h"
#include "sunchase/roadnet/traffic.h"
#include "sunchase/shadow/shading.h"
#include "sunchase/solar/input_map.h"

namespace sunchase::core {

/// The ingredients of a snapshot. Components are shared so that a
/// derived version (see World::recipe) replaces only what changed.
struct WorldInit {
  std::shared_ptr<const roadnet::RoadGraph> graph;
  std::shared_ptr<const roadnet::TrafficModel> traffic;
  std::shared_ptr<const shadow::ShadingProfile> shading;
  solar::PanelPowerFn panel_power;
  /// At least one; index 0 is the default vehicle. MlcOptions::vehicle
  /// selects by index.
  std::vector<std::shared_ptr<const ev::ConsumptionModel>> vehicles;
};

/// One pre-priced slot-cache column carried by a binary snapshot:
/// installed into vehicle `vehicle`'s cache at `slot` during
/// World::create_prefilled, so a loaded world starts with the columns
/// the saved workload had already materialized (typically zero-copy
/// views into the mapped file).
struct SlotCachePrefill {
  std::size_t vehicle = 0;
  int slot = 0;
  common::FrozenArray<SlotCostCache::Entry> entries;
};

class World {
 public:
  /// Builds a snapshot. Throws InvalidArgument when any component is
  /// null or no vehicle is given. `version` identifies the snapshot in
  /// query logs and benches; WorldStore assigns monotonically
  /// increasing versions, standalone snapshots default to 1.
  [[nodiscard]] static WorldPtr create(WorldInit init,
                                       std::uint64_t version = 1);

  /// create() plus pre-filled slot-cache columns (the snapshot load
  /// path). Each prefill entry is validated (vehicle index, slot
  /// range, row count = edge count) and installed before the world is
  /// shared, so readers cannot race the installation. Throws
  /// InvalidArgument on any invalid component or prefill entry.
  [[nodiscard]] static WorldPtr create_prefilled(
      WorldInit init, std::uint64_t version,
      std::vector<SlotCachePrefill> prefill);

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

  [[nodiscard]] const roadnet::RoadGraph& graph() const noexcept {
    return *init_.graph;
  }
  [[nodiscard]] const roadnet::TrafficModel& traffic() const noexcept {
    return *init_.traffic;
  }
  [[nodiscard]] const shadow::ShadingProfile& shading() const noexcept {
    return *init_.shading;
  }
  [[nodiscard]] const solar::SolarInputMap& solar_map() const noexcept {
    return map_;
  }

  [[nodiscard]] std::size_t vehicle_count() const noexcept {
    return init_.vehicles.size();
  }
  /// Throws InvalidArgument for an out-of-range index.
  [[nodiscard]] const ev::ConsumptionModel& vehicle(
      std::size_t index = 0) const;

  /// The slot-quantized cost cache for a vehicle — ONE instance per
  /// (world version, vehicle), shared by every planner, batch worker
  /// and explainer on this snapshot. Throws InvalidArgument for an
  /// out-of-range index.
  [[nodiscard]] const SlotCostCache& slot_cache(std::size_t index = 0) const;

  /// A copy of this snapshot's ingredients, for deriving the next
  /// version: tweak one component (say, a crowd-corrected shading
  /// profile) and publish — the untouched components stay shared.
  [[nodiscard]] WorldInit recipe() const { return init_; }

 private:
  World(WorldInit init, std::uint64_t version);

  WorldInit init_;
  std::uint64_t version_;
  solar::SolarInputMap map_;
  std::vector<std::unique_ptr<SlotCostCache>> caches_;  ///< per vehicle
};

}  // namespace sunchase::core
