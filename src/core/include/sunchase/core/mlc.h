// The multi-label correcting algorithm (paper Algorithm 1): computes
// the full Pareto set of routes under the three criteria. Labels carry
// one cost per criterion; a priority queue pops the lexicographic
// minimum; per-node bags keep only non-dominated labels; dominated
// labels are removed (lazily) from the queue.
#pragma once

#include <cstddef>
#include <vector>

#include "sunchase/core/criteria.h"
#include "sunchase/core/edge_cost.h"
#include "sunchase/core/world_fwd.h"
#include "sunchase/roadnet/path.h"

namespace sunchase::core {

struct MlcOptions {
  /// Time budget as a multiple of the shortest travel time: labels whose
  /// travel time exceeds factor * T_shortest are pruned — the paper's
  /// "acceptable arrival time" constraint. Set to 0 to disable (the
  /// full, unconstrained Pareto set; can be large).
  double max_time_factor = 1.5;
  /// Hard safety cap on created labels; RoutingError beyond it.
  std::size_t max_labels = 5'000'000;
  /// When true (default), edge criteria are evaluated at the clock time
  /// the label enters the edge (departure + accumulated travel time),
  /// so a route crossing a 15-minute boundary sees the shading/panel
  /// state change mid-route. When false, all edges are priced at the
  /// departure instant (the static approximation).
  bool time_dependent = true;
  /// How the entry clock is turned into an edge price: Exact evaluates
  /// the solar map per expansion; SlotQuantized rounds the clock down to
  /// the 15-minute slot start and reads the shared SlotCostCache.
  /// Bit-identical on a slot-constant world; see PricingMode.
  PricingMode pricing = PricingMode::Exact;
  /// Which of the world's vehicles the energy-consumption criterion is
  /// priced for (an index into World's vehicle list).
  std::size_t vehicle = 0;
  /// When true (default) and a time budget is active, a reverse Dijkstra
  /// from the destination (static lower-bound edge weights, no early
  /// exit) is run once per query and any label whose travel time plus
  /// its node's time-to-destination lower bound exceeds the budget is
  /// never inserted. Admissible, so the destination Pareto set is
  /// bit-identical to the plain filter — only the explored frontier
  /// shrinks. No effect when max_time_factor == 0.
  bool prune_with_lower_bounds = true;
  /// Epsilon-dominance merge: a new label is dropped when an existing
  /// bag label is within a factor (1 + epsilon) of it in EVERY
  /// criterion. 0 (default) keeps the search exact (the relaxed test is
  /// never evaluated); > 0 trades Pareto-set completeness for speed with
  /// a per-merge relative error of at most epsilon (errors can compound
  /// along a route — measure with the bench sweep, see EXPERIMENTS.md).
  double epsilon = 0.0;
};

/// One non-dominated route with its criteria vector.
struct ParetoRoute {
  roadnet::Path path;
  Criteria cost;
};

/// Search instrumentation (scalability benches report these).
struct MlcStats {
  std::size_t labels_created = 0;
  std::size_t labels_dominated = 0;
  std::size_t queue_pops = 0;
  std::size_t pareto_size = 0;
  /// Expansions rejected because travel time plus the node's
  /// time-to-destination lower bound exceeded the time budget (counts
  /// the old plain filter too when lower-bound pruning is off).
  std::size_t labels_pruned_bound = 0;
  /// Labels dropped by the relaxed epsilon-dominance merge (0 unless
  /// options.epsilon > 0).
  std::size_t labels_merged_epsilon = 0;
  Seconds shortest_travel_time{0.0};
  /// Wall clock of this search (the query log's mlc phase duration).
  double search_seconds = 0.0;
  /// Wall clock of the reverse-Dijkstra lower-bound build (inside
  /// search_seconds; 0 when pruning is off or no budget is set).
  double lower_bound_seconds = 0.0;
};

struct MlcResult {
  std::vector<ParetoRoute> routes;  ///< full Pareto set at the target
  MlcStats stats;
};

/// The solver. Pins one immutable world snapshot for its lifetime —
/// construction is cheap (under SlotQuantized pricing it resolves the
/// world-owned, shared SlotCostCache; it never builds one), so a
/// per-query solver over a freshly loaded snapshot is the idiomatic
/// hot-swap pattern. Throws InvalidArgument for a null world or an
/// unknown vehicle index.
class MultiLabelCorrecting {
 public:
  explicit MultiLabelCorrecting(WorldPtr world,
                                MlcOptions options = MlcOptions{});

  /// Full Pareto set from `origin` to `destination` leaving at
  /// `departure`, sorted lexicographically. Throws RoutingError when
  /// the destination is unreachable or the label budget is exhausted;
  /// GraphError for unknown nodes.
  [[nodiscard]] MlcResult search(roadnet::NodeId origin,
                                 roadnet::NodeId destination,
                                 TimeOfDay departure) const;

  [[nodiscard]] const MlcOptions& options() const noexcept {
    return options_;
  }

  /// The snapshot every search() prices against.
  [[nodiscard]] const WorldPtr& world() const noexcept { return world_; }

  /// The world-owned slot cost cache backing SlotQuantized pricing;
  /// nullptr under Exact. Shared with every other solver, batch worker
  /// and explainer on the same (world version, vehicle).
  [[nodiscard]] const SlotCostCache* cache() const noexcept {
    return cache_;
  }

 private:
  WorldPtr world_;
  MlcOptions options_;
  const SlotCostCache* cache_ = nullptr;  ///< only when SlotQuantized
};

}  // namespace sunchase::core
