// Parallel batch-query planning: fan a vector of (origin, destination,
// departure) requests across a worker pool running the multi-label
// correcting search against shared immutable state (graph, solar input
// map, consumption model). This is the server-side pre-computation
// shape of the SCORE deployment model — one process answering many
// route queries per solar-map refresh.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "sunchase/core/mlc.h"
#include "sunchase/core/selection.h"
#include "sunchase/obs/metrics.h"

namespace sunchase::obs {
class QueryLog;
}  // namespace sunchase::obs

namespace sunchase::core {

/// One route request of a batch.
struct BatchQuery {
  roadnet::NodeId origin = roadnet::kInvalidNode;
  roadnet::NodeId destination = roadnet::kInvalidNode;
  TimeOfDay departure;
};

/// Outcome of one query: the full MlcResult on success, otherwise the
/// message of the exception the search threw. One failed query never
/// affects its neighbours.
struct BatchQueryResult {
  std::optional<MlcResult> result;
  /// The selection pipeline's candidates, when the batch ran with
  /// run_selection (what a route server would actually return).
  std::optional<SelectionResult> selection;
  std::string error;

  [[nodiscard]] bool ok() const noexcept { return result.has_value(); }
};

struct BatchPlannerOptions {
  /// Worker threads; 0 means one per hardware thread.
  std::size_t workers = 0;
  MlcOptions mlc{};
  /// Also run clustering + representative-route selection per query
  /// (inside the worker), filling BatchQueryResult::selection.
  bool run_selection = false;
  SelectionOptions selection{};
  /// When set, every query of every batch appends one structured
  /// QueryRecord (written from inside the worker, success or failure).
  /// Borrowed; keep the log alive while planning.
  obs::QueryLog* query_log = nullptr;
};

/// Batch-level instrumentation: per-search stats summed over the
/// successful queries, plus wall-clock throughput of the whole batch.
struct BatchStats {
  std::size_t query_count = 0;
  std::size_t succeeded = 0;
  std::size_t failed = 0;
  MlcStats totals;            ///< summed over successful searches
  std::size_t workers = 0;    ///< workers actually used
  double wall_seconds = 0.0;  ///< submit-to-last-result wall clock
  double queries_per_second = 0.0;
  /// Per-query in-worker latency distribution over successful queries,
  /// snapshotted from the batch-local histogram (empty when none
  /// succeed). Consumers derive percentiles via
  /// HistogramSnapshot::quantile — e.g. latency.quantile(0.95) — so the
  /// percentile math lives in one place.
  obs::HistogramSnapshot latency;
};

struct BatchResult {
  std::vector<BatchQueryResult> queries;  ///< in input order
  BatchStats stats;
};

/// Borrows the map and vehicle (keep them alive); every worker shares
/// them read-only. The road graph's adjacency index is finalized before
/// the fan-out so no worker mutates lazy state.
class BatchPlanner {
 public:
  BatchPlanner(const solar::SolarInputMap& map,
               const ev::ConsumptionModel& vehicle,
               BatchPlannerOptions options = BatchPlannerOptions{});

  /// Runs every query, in parallel, returning per-query results in
  /// input order. Per-query errors (unreachable destination, label
  /// budget, unknown node) are captured into the corresponding
  /// BatchQueryResult; the batch itself only throws on setup problems
  /// (e.g. invalid options).
  [[nodiscard]] BatchResult plan_all(
      const std::vector<BatchQuery>& queries) const;

  [[nodiscard]] const BatchPlannerOptions& options() const noexcept {
    return options_;
  }

 private:
  const solar::SolarInputMap& map_;
  const ev::ConsumptionModel& vehicle_;
  BatchPlannerOptions options_;
  MultiLabelCorrecting solver_;
};

}  // namespace sunchase::core
