// Parallel batch-query planning: fan a vector of (origin, destination,
// departure) requests across a worker pool running the multi-label
// correcting search against a shared immutable world snapshot. This is
// the server-side pre-computation shape of the SCORE deployment model —
// one process answering many route queries per solar-map refresh, with
// live refreshes published through WorldStore while in-flight queries
// keep the snapshot they started on.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "sunchase/core/mlc.h"
#include "sunchase/core/selection.h"
#include "sunchase/obs/metrics.h"

namespace sunchase::obs {
class QueryLog;
}  // namespace sunchase::obs

namespace sunchase::core {

/// One route request of a batch.
struct BatchQuery {
  roadnet::NodeId origin = roadnet::kInvalidNode;
  roadnet::NodeId destination = roadnet::kInvalidNode;
  TimeOfDay departure;
};

/// Outcome of one query: the full MlcResult on success, otherwise the
/// message of the exception the search threw. One failed query never
/// affects its neighbours.
struct BatchQueryResult {
  std::optional<MlcResult> result;
  /// The selection pipeline's candidates, when the batch ran with
  /// run_selection (what a route server would actually return).
  std::optional<SelectionResult> selection;
  std::string error;
  /// The exact snapshot this query was priced against — the pin the
  /// worker took when it picked the query up. In live (WorldStore)
  /// mode neighbouring queries of one batch may carry different
  /// versions when a publish landed mid-batch; consumers that replay
  /// or explain a result (the route server's /explain ledger) must use
  /// this pointer, not the store's current world. Null on error.
  WorldPtr world;
  /// Worker-thread CPU time this query consumed (search + selection),
  /// via CLOCK_THREAD_CPUTIME_ID. 0.0 on error.
  double cpu_seconds = 0.0;

  [[nodiscard]] bool ok() const noexcept { return result.has_value(); }
};

struct BatchPlannerOptions {
  /// Worker threads; 0 means one per hardware thread.
  std::size_t workers = 0;
  MlcOptions mlc{};
  /// Also run clustering + representative-route selection per query
  /// (inside the worker), filling BatchQueryResult::selection.
  bool run_selection = false;
  SelectionOptions selection{};
  /// When set, every query of every batch appends one structured
  /// QueryRecord (written from inside the worker, success or failure).
  /// Borrowed; keep the log alive while planning.
  obs::QueryLog* query_log = nullptr;
};

/// Batch-level instrumentation: per-search stats summed over the
/// successful queries, plus wall-clock throughput of the whole batch.
struct BatchStats {
  std::size_t query_count = 0;
  std::size_t succeeded = 0;
  std::size_t failed = 0;
  MlcStats totals;            ///< summed over successful searches
  std::size_t workers = 0;    ///< workers actually used
  double wall_seconds = 0.0;  ///< submit-to-last-result wall clock
  double queries_per_second = 0.0;
  /// Per-query in-worker latency distribution over successful queries,
  /// snapshotted from the batch-local histogram (empty when none
  /// succeed). Consumers derive percentiles via
  /// HistogramSnapshot::quantile — e.g. latency.quantile(0.95) — so the
  /// percentile math lives in one place.
  obs::HistogramSnapshot latency;
  /// Total worker CPU seconds across the batch. cpu_seconds /
  /// (wall_seconds * workers) is the pool's compute utilization.
  double cpu_seconds = 0.0;
};

struct BatchResult {
  std::vector<BatchQueryResult> queries;  ///< in input order
  BatchStats stats;
};

/// Every worker prices against an immutable world snapshot, so the
/// fan-out shares no mutable state at all. Two modes:
///
///  - Pinned (WorldPtr ctor): every query of every batch reads the one
///    snapshot given at construction — results are reproducible no
///    matter what is published elsewhere.
///  - Live (WorldStore ctor): each query loads the store's current
///    snapshot when its worker picks it up, then keeps it for the whole
///    query. A publish() mid-batch never blocks workers and never
///    changes a query already in flight; later queries see the new
///    version (check the query log's "world.version").
class BatchPlanner {
 public:
  explicit BatchPlanner(WorldPtr world,
                        BatchPlannerOptions options = BatchPlannerOptions{});
  /// Live mode; the store must outlive the planner.
  explicit BatchPlanner(const WorldStore& store,
                        BatchPlannerOptions options = BatchPlannerOptions{});

  /// Runs every query, in parallel, returning per-query results in
  /// input order. Per-query errors (unreachable destination, label
  /// budget, unknown node) are captured into the corresponding
  /// BatchQueryResult; the batch itself only throws on setup problems
  /// (e.g. invalid options).
  [[nodiscard]] BatchResult plan_all(
      const std::vector<BatchQuery>& queries) const;

  [[nodiscard]] const BatchPlannerOptions& options() const noexcept {
    return options_;
  }

  /// The snapshot the next query would price against: the pinned world,
  /// or the store's current version in live mode.
  [[nodiscard]] WorldPtr world() const;

 private:
  WorldPtr pinned_;               ///< pinned mode; null in live mode
  const WorldStore* store_ = nullptr;  ///< live mode; null when pinned
  BatchPlannerOptions options_;
};

}  // namespace sunchase::core
