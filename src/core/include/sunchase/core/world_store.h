// Versioned publication point for world snapshots — the server-side
// half of the live-update story. `current()` is a lock-free-for-readers
// atomic shared_ptr load: a query pins the snapshot it starts on by
// copying the pointer. `publish()` builds the next version and swaps it
// in atomically: queries already running keep their pinned snapshot
// (its refcount keeps it alive), queries arriving after the swap see
// the new one, and no reader ever observes a half-built world. This is
// the MVCC-snapshot pattern (cf. couchbase-lite-core): writers never
// block readers, readers never block writers.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "sunchase/core/world.h"

namespace sunchase::core {

/// One row of WorldStore::lineage(): a published version, whether any
/// reader still holds its snapshot, and an estimate of how many pins
/// are outstanding. Backs GET /debug/worlds.
struct WorldVersionInfo {
  std::uint64_t version = 0;
  bool current = false;  ///< the store's latest published version
  bool alive = false;    ///< snapshot still referenced somewhere
  /// Outstanding reader pins: shared_ptr use_count minus the store's
  /// own reference. Approximate under concurrency (use_count is a
  /// racy read), exact once the world is quiescent.
  std::size_t pins = 0;
};

class WorldStore {
 public:
  /// Publishes the initial snapshot as version 1.
  explicit WorldStore(WorldInit initial);
  /// Adopts an existing snapshot; the next publish gets version
  /// `initial->version() + 1`. Throws InvalidArgument on null.
  explicit WorldStore(WorldPtr initial);

  WorldStore(const WorldStore&) = delete;
  WorldStore& operator=(const WorldStore&) = delete;

  /// The latest published snapshot. Wait-free for readers; call once
  /// per query and keep the returned pointer — that is the pin.
  [[nodiscard]] WorldPtr current() const noexcept {
    return current_.load(std::memory_order_acquire);
  }

  /// Version of the latest published snapshot.
  [[nodiscard]] std::uint64_t version() const noexcept {
    return current()->version();
  }

  /// Builds `next` as a new World with the next version number and
  /// swaps it in atomically. Concurrent publishers are serialized
  /// (versions stay dense and monotonic); readers are never blocked.
  /// Returns the newly published snapshot.
  WorldPtr publish(WorldInit next);

  /// Versions this store ever published remembers (most recent
  /// kLineageCapacity, oldest first), with liveness and pin estimates
  /// from the weak references it keeps — publishing never extends a
  /// snapshot's lifetime. Refreshes the `world.live_versions` and
  /// `world.pinned_readers` gauges as a side effect.
  static constexpr std::size_t kLineageCapacity = 32;
  [[nodiscard]] std::vector<WorldVersionInfo> lineage() const;

 private:
  /// Records `world` in the lineage ring (evicting the oldest row).
  void remember(const WorldPtr& world);

  std::atomic<WorldPtr> current_;
  std::uint64_t next_version_;   ///< guarded by publish_mutex_
  std::mutex publish_mutex_;     ///< serializes publishers only
  mutable std::mutex lineage_mutex_;  ///< guards lineage_ only
  std::deque<std::pair<std::uint64_t, std::weak_ptr<const World>>> lineage_;
};

}  // namespace sunchase::core
