// Versioned publication point for world snapshots — the server-side
// half of the live-update story. `current()` is a lock-free-for-readers
// atomic shared_ptr load: a query pins the snapshot it starts on by
// copying the pointer. `publish()` builds the next version and swaps it
// in atomically: queries already running keep their pinned snapshot
// (its refcount keeps it alive), queries arriving after the swap see
// the new one, and no reader ever observes a half-built world. This is
// the MVCC-snapshot pattern (cf. couchbase-lite-core): writers never
// block readers, readers never block writers.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "sunchase/core/world.h"

namespace sunchase::core {

/// Persistence mode for a WorldStore: an append-only journal directory
/// of `world-<version>.scsnap` snapshots plus an atomically renamed
/// MANIFEST naming the newest one. With a journal enabled, publish()
/// persists the new version before swapping it in.
struct JournalOptions {
  std::string directory;  ///< created if missing
  /// Durable publishes: the snapshot is fsync'd before the swap, and a
  /// persist failure aborts the publish (readers keep the old version,
  /// the version number is not consumed). Non-durable journaling is
  /// best-effort: a failed persist is logged and counted, and the
  /// in-memory publish proceeds.
  bool durable = true;
  /// Persist materialized SlotCostCache columns too (bigger files,
  /// warm-started loads). Off by default: columns refill lazily and
  /// bit-identically.
  bool include_slot_cache = false;
};

/// Journal status for introspection (GET /debug/worlds).
struct JournalState {
  bool enabled = false;
  std::string directory;
  bool durable = false;
  bool include_slot_cache = false;
  std::uint64_t persisted_version = 0;  ///< newest version on disk (0 = none)
  std::uint64_t persist_failures = 0;   ///< non-durable best-effort failures
  std::uint64_t snapshots_on_disk = 0;  ///< world-*.scsnap files present
};

/// Result of WorldStore::load_latest: the newest intact snapshot in a
/// journal directory, with an account of every corrupt or torn file
/// that was skipped on the way to it.
struct LoadLatestResult {
  WorldPtr world;           ///< nullptr when the directory holds none
  std::string loaded_from;  ///< path of the snapshot behind `world`
  std::uint64_t skipped_corrupt = 0;
  std::vector<std::string> errors;  ///< one message per skipped file
};

/// One row of WorldStore::lineage(): a published version, whether any
/// reader still holds its snapshot, and an estimate of how many pins
/// are outstanding. Backs GET /debug/worlds.
struct WorldVersionInfo {
  std::uint64_t version = 0;
  bool current = false;  ///< the store's latest published version
  bool alive = false;    ///< snapshot still referenced somewhere
  /// Outstanding reader pins: shared_ptr use_count minus the store's
  /// own reference. Approximate under concurrency (use_count is a
  /// racy read), exact once the world is quiescent.
  std::size_t pins = 0;
};

class WorldStore {
 public:
  /// Publishes the initial snapshot as version 1.
  explicit WorldStore(WorldInit initial);
  /// Adopts an existing snapshot; the next publish gets version
  /// `initial->version() + 1`. Throws InvalidArgument on null.
  explicit WorldStore(WorldPtr initial);

  WorldStore(const WorldStore&) = delete;
  WorldStore& operator=(const WorldStore&) = delete;

  /// The latest published snapshot. Wait-free for readers; call once
  /// per query and keep the returned pointer — that is the pin.
  [[nodiscard]] WorldPtr current() const noexcept {
    return current_.load(std::memory_order_acquire);
  }

  /// Version of the latest published snapshot.
  [[nodiscard]] std::uint64_t version() const noexcept {
    return current()->version();
  }

  /// Builds `next` as a new World with the next version number and
  /// swaps it in atomically. Concurrent publishers are serialized
  /// (versions stay dense and monotonic); readers are never blocked.
  /// With a journal enabled the version is persisted first — see
  /// JournalOptions::durable for the failure contract. Returns the
  /// newly published snapshot.
  WorldPtr publish(WorldInit next);

  /// Turns on journaling to `options.directory` (created if missing)
  /// and persists the current version immediately when the directory
  /// does not already hold it — so a store adopted from load_latest()
  /// does not rewrite the snapshot it just mapped. Throws
  /// common::SnapshotError when the directory cannot be created or the
  /// initial persist fails.
  void enable_journal(JournalOptions options);

  /// Journal status (scans the directory for the on-disk count).
  [[nodiscard]] JournalState journal_state() const;

  /// Boot-time recovery: loads the newest intact snapshot from a
  /// journal directory, preferring the MANIFEST target, then falling
  /// back through older `world-<version>.scsnap` files when the newest
  /// are torn or corrupt (each skip is logged, counted, and reported
  /// in the result — a damaged tail never aborts the boot). A missing
  /// or empty directory yields a null world, not an error.
  [[nodiscard]] static LoadLatestResult load_latest(
      const std::string& directory);

  /// Versions this store ever published remembers (most recent
  /// kLineageCapacity, oldest first), with liveness and pin estimates
  /// from the weak references it keeps — publishing never extends a
  /// snapshot's lifetime. Refreshes the `world.live_versions` and
  /// `world.pinned_readers` gauges as a side effect.
  static constexpr std::size_t kLineageCapacity = 32;
  [[nodiscard]] std::vector<WorldVersionInfo> lineage() const;

 private:
  /// Records `world` in the lineage ring (evicting the oldest row).
  void remember(const WorldPtr& world);

  /// Writes `world` to the journal directory and repoints MANIFEST.
  /// Caller holds publish_mutex_. Throws common::SnapshotError.
  void persist_locked(const WorldPtr& world);

  std::atomic<WorldPtr> current_;
  std::uint64_t next_version_;   ///< guarded by publish_mutex_
  /// Serializes publishers (and journal persists) only.
  mutable std::mutex publish_mutex_;
  mutable std::mutex lineage_mutex_;  ///< guards lineage_ only
  std::deque<std::pair<std::uint64_t, std::weak_ptr<const World>>> lineage_;
  // Journal fields, all guarded by publish_mutex_.
  bool journal_enabled_ = false;
  JournalOptions journal_;
  std::uint64_t journal_persisted_version_ = 0;
  std::uint64_t journal_persist_failures_ = 0;
};

}  // namespace sunchase::core
