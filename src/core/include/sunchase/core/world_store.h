// Versioned publication point for world snapshots — the server-side
// half of the live-update story. `current()` is a lock-free-for-readers
// atomic shared_ptr load: a query pins the snapshot it starts on by
// copying the pointer. `publish()` builds the next version and swaps it
// in atomically: queries already running keep their pinned snapshot
// (its refcount keeps it alive), queries arriving after the swap see
// the new one, and no reader ever observes a half-built world. This is
// the MVCC-snapshot pattern (cf. couchbase-lite-core): writers never
// block readers, readers never block writers.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "sunchase/core/world.h"

namespace sunchase::core {

class WorldStore {
 public:
  /// Publishes the initial snapshot as version 1.
  explicit WorldStore(WorldInit initial);
  /// Adopts an existing snapshot; the next publish gets version
  /// `initial->version() + 1`. Throws InvalidArgument on null.
  explicit WorldStore(WorldPtr initial);

  WorldStore(const WorldStore&) = delete;
  WorldStore& operator=(const WorldStore&) = delete;

  /// The latest published snapshot. Wait-free for readers; call once
  /// per query and keep the returned pointer — that is the pin.
  [[nodiscard]] WorldPtr current() const noexcept {
    return current_.load(std::memory_order_acquire);
  }

  /// Version of the latest published snapshot.
  [[nodiscard]] std::uint64_t version() const noexcept {
    return current()->version();
  }

  /// Builds `next` as a new World with the next version number and
  /// swaps it in atomically. Concurrent publishers are serialized
  /// (versions stay dense and monotonic); readers are never blocked.
  /// Returns the newly published snapshot.
  WorldPtr publish(WorldInit next);

 private:
  std::atomic<WorldPtr> current_;
  std::uint64_t next_version_;   ///< guarded by publish_mutex_
  std::mutex publish_mutex_;     ///< serializes publishers only
};

}  // namespace sunchase::core
