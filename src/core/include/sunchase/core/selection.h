// Optimal route selection (Sec. IV-D): compress the Pareto set with
// bisecting k-means, keep the single-cost-optimum routes plus one
// representative (medoid) per remaining cluster, then keep only the
// candidates whose EnergyExtra (Eq. 5) over the shortest-time path is
// positive. The shortest-time path itself is always reported.
#pragma once

#include <optional>

#include "sunchase/core/kmeans.h"
#include "sunchase/core/metrics.h"
#include "sunchase/core/mlc.h"

namespace sunchase::core {

struct SelectionOptions {
  BisectKMeansOptions clustering{};
  /// Keep only candidates with EnergyExtra > 0 AND more harvested
  /// energy than the baseline (the paper's Eq. 5 test on genuinely
  /// better-solar routes). Disable to inspect all representatives.
  bool require_positive_energy_extra = true;
  /// When set, a candidate is battery-feasible iff its net drain
  /// (energy_out - energy_in) fits in this budget — the range-anxiety
  /// check motivating the paper ("may not have enough energy to reach
  /// the destination"). Infeasible better-solar candidates are
  /// dropped; the shortest-time route is kept but flagged.
  std::optional<WattHours> battery_budget;
};

/// A selected route with everything the paper's tables print.
struct CandidateRoute {
  ParetoRoute route;
  RouteMetrics metrics;
  bool is_shortest_time = false;
  WattHours extra_energy{0.0};  ///< Eq. 5 vs the shortest-time path
  Seconds extra_time{0.0};      ///< TT difference vs shortest-time
  bool battery_feasible = true; ///< net drain within the battery budget

  /// Battery drained by the trip after solar harvest (negative when
  /// the trip is a net gain).
  [[nodiscard]] WattHours net_drain() const noexcept {
    return metrics.energy_out - metrics.energy_in;
  }
};

struct SelectionResult {
  /// candidates[0] is always the shortest-time route; the rest are the
  /// surviving better-solar routes, best extra-energy first.
  std::vector<CandidateRoute> candidates;
  std::size_t cluster_count = 0;
  std::size_t representative_count = 0;  ///< before the Eq. 5 filter
  /// Phase durations for the query log: the bisecting k-means step
  /// alone, and the whole selection pipeline.
  double kmeans_seconds = 0.0;
  double selection_seconds = 0.0;
};

/// Runs the full selection pipeline on a Pareto set, pricing routes
/// against the world's `vehicle`. An empty Pareto set yields an empty
/// result. Throws InvalidArgument for a null world or an unknown
/// vehicle index.
[[nodiscard]] SelectionResult select_representative_routes(
    const std::vector<ParetoRoute>& pareto, const WorldPtr& world,
    TimeOfDay departure, const SelectionOptions& options = SelectionOptions{},
    std::size_t vehicle = 0);

namespace detail {

/// Implementation primitive over snapshot components (see edge_cost.h).
[[nodiscard]] SelectionResult select_representative_routes(
    const std::vector<ParetoRoute>& pareto, const solar::SolarInputMap& map,
    const ev::ConsumptionModel& vehicle, TimeOfDay departure,
    const SelectionOptions& options = SelectionOptions{});

}  // namespace detail

}  // namespace sunchase::core
