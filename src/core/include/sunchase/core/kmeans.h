// Bisecting k-means over route label vectors (Sec. IV-D): starts with
// one cluster of all routes, repeatedly splits the worst-quality
// cluster in two, and stops when every cluster's quality q(C) — the
// mean Manhattan distance to the cluster centroid — falls below the
// threshold delta.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace sunchase::core {

/// A route's label vector in criteria space (travel time, shaded time,
/// energy), typically normalized before clustering.
using LabelVector = std::array<double, 3>;

/// Manhattan distance — the paper's distance measure.
[[nodiscard]] double manhattan(const LabelVector& a,
                               const LabelVector& b) noexcept;

/// Component-wise mean of the members' vectors.
[[nodiscard]] LabelVector centroid(const std::vector<LabelVector>& points,
                                   const std::vector<std::size_t>& members);

/// q(C) = (1/n) sum |x_i - c| : smaller is better. Empty cluster -> 0.
[[nodiscard]] double cluster_quality(const std::vector<LabelVector>& points,
                                     const std::vector<std::size_t>& members);

struct BisectKMeansOptions {
  /// delta, in normalized units. The default targets the paper's
  /// "small set of candidate routes (e.g., 2-3 routes)" per trip;
  /// bench/ablation_cluster_delta quantifies the trade-off.
  double quality_threshold = 0.3;
  int kmeans_iterations = 25;       ///< Lloyd iterations per split
  int split_attempts = 4;           ///< random restarts per split
  std::uint64_t seed = 13;
};

/// Result: each cluster is a list of indices into the input points.
struct Clustering {
  std::vector<std::vector<std::size_t>> clusters;
};

/// Bisecting k-means with Manhattan distance. Clusters of size 1 are
/// never split; the algorithm always terminates. Empty input yields an
/// empty clustering.
[[nodiscard]] Clustering bisecting_kmeans(
    const std::vector<LabelVector>& points,
    const BisectKMeansOptions& options = BisectKMeansOptions{});

/// Min-max normalization of each dimension to [0,1] (constant
/// dimensions map to 0), so delta is scale-free across trips.
[[nodiscard]] std::vector<LabelVector> normalize_dimensions(
    std::vector<LabelVector> points);

}  // namespace sunchase::core
