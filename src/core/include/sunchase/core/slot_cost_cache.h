// Slot-quantized edge-cost cache: a lazily-materialized, thread-safe
// table of {Criteria, EdgeSolar} keyed by (EdgeId, 15-minute slot) for
// one fixed (SolarInputMap, ConsumptionModel) pair. The paper holds
// panel power C and the shading profile constant within each slot
// (Sec. IV, Eq. 2-3), so every label entering an edge during a slot can
// share one precomputed cost instead of re-deriving it per expansion —
// the multi-label correcting hot path becomes an array read, and
// concurrent batch workers share a single materialization.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <mutex>
#include <span>
#include <vector>

#include "sunchase/common/frozen_array.h"
#include "sunchase/core/edge_cost.h"
#include "sunchase/obs/metrics.h"

namespace sunchase::core {

/// Owned by (and only constructible through) core::World, which
/// guarantees the map and vehicle it reads outlive it: one cache per
/// (world version, vehicle), shared by every planner, batch worker and
/// explainer on that snapshot — obtain it via World::slot_cache().
/// Columns (one per slot, covering every edge) fill on first
/// touch under a per-slot once_flag, then publish via an acquire/release
/// flag — later lookups are wait-free reads of immutable rows. Memory is
/// bounded by kSlotsPerDay columns of edge_count entries; actual usage
/// (only the slots a workload touches materialize) is reported through
/// the "slotcache.bytes" / "slotcache.filled_slots" gauges, alongside
/// "slotcache.hits" / "slotcache.misses" counters and the
/// "slotcache.fill_seconds" histogram of per-column fill times.
class SlotCostCache {
 public:
  /// One (edge, slot) row: the search's criteria vector plus the full
  /// solar accounting, both priced at the slot start.
  struct Entry {
    Criteria criteria;
    solar::EdgeSolar solar;
  };

  SlotCostCache(const SlotCostCache&) = delete;
  SlotCostCache& operator=(const SlotCostCache&) = delete;

  /// The cost of entering `edge` during slot `slot`, priced at
  /// TimeOfDay::slot_start(slot) — bit-identical to edge_criteria at
  /// that clock. The first caller of a slot fills its whole column
  /// (concurrent callers of the same slot block on the fill, counted as
  /// misses); every later lookup is a hit. Throws InvalidArgument for a
  /// slot outside [0, kSlotsPerDay); edges are bounds-checked against
  /// the map's graph.
  [[nodiscard]] const Entry& at(roadnet::EdgeId edge, int slot) const;

  /// Columns materialized so far.
  [[nodiscard]] std::size_t filled_slots() const noexcept {
    return filled_.load(std::memory_order_relaxed);
  }
  /// Bytes held by materialized columns (the bounded-memory accounting
  /// the "slotcache.bytes" gauge reports).
  [[nodiscard]] std::size_t bytes() const noexcept {
    return filled_slots() * map_.graph().edge_count() * sizeof(Entry);
  }

  /// The materialized column for `slot`, or an empty span when it has
  /// not filled yet (acquire-synchronized with the filler). Snapshot
  /// serialization walks this to persist exactly the columns the
  /// workload touched. Throws InvalidArgument for a slot outside
  /// [0, kSlotsPerDay).
  [[nodiscard]] std::span<const Entry> column_view(int slot) const;

 private:
  friend class World;
  SlotCostCache(const solar::SolarInputMap& map,
                const ev::ConsumptionModel& vehicle);

  struct Column {
    std::once_flag once;
    std::atomic<bool> ready{false};
    /// edge_count rows once filled: heap-built by fill(), or a
    /// zero-copy view into a mapped snapshot (adopt_column).
    common::FrozenArray<Entry> entries;
  };

  void fill(Column& column, int slot) const;

  /// Pre-fills `slot` with an already-priced column (a snapshot
  /// section mapped from disk) instead of computing it. Runs under the
  /// column's once_flag, so a later at() treats it as filled; counted
  /// in filled_slots()/bytes() like a computed column. Throws
  /// InvalidArgument when the slot is out of range or the row count is
  /// not edge_count. Called by World during construction only (before
  /// the cache is shared).
  void adopt_column(int slot, common::FrozenArray<Entry> entries) const;

  /// Common publication tail of fill/adopt: flips `ready`, bumps the
  /// filled counter and refreshes the gauges.
  void publish_column(Column& column, double fill_seconds) const;

  const solar::SolarInputMap& map_;
  const ev::ConsumptionModel& vehicle_;
  mutable std::array<Column, TimeOfDay::kSlotsPerDay> columns_;
  mutable std::atomic<std::size_t> filled_{0};
  obs::Counter& hits_;            ///< "slotcache.hits"
  obs::Counter& misses_;          ///< "slotcache.misses"
  obs::Histogram& fill_seconds_;  ///< "slotcache.fill_seconds"
  obs::Gauge& bytes_gauge_;       ///< "slotcache.bytes"
  obs::Gauge& slots_gauge_;       ///< "slotcache.filled_slots"
};

}  // namespace sunchase::core
