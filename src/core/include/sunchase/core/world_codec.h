// Serialization of a core::World to and from the binary snapshot
// format (snapshot::SnapshotWriter/SnapshotReader). Saving writes the
// world's frozen arrays verbatim — the CSR road graph (both
// directions), the shading fraction table, the traffic and vehicle
// parameters, the panel-power curve sampled per 15-minute slot, and
// optionally every materialized SlotCostCache column. Loading mmaps
// the file and rebuilds the World over zero-copy views of those same
// bytes: the big arrays are never copied, and plan results on the
// loaded world are bit-identical to the world that was saved.
//
// Model serialization is by parameters, not by pickling: the traffic
// and vehicle models the library ships are pure functions of their
// construction options, so persisting the options reproduces them
// exactly. A world built on a custom model type fails to save with a
// SnapshotError (rather than silently saving something else). The
// panel-power function is captured as its 96 slot-start samples —
// exact for every built-in model, all of which are constant within a
// slot (the paper's "value update every 15 minutes").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sunchase/core/world_fwd.h"

namespace sunchase::core {

struct SaveOptions {
  /// Persist every SlotCostCache column materialized so far, so the
  /// loaded world starts warm. Off for minimal files (columns refill
  /// lazily on first touch, bit-identically).
  bool include_slot_cache = true;
  /// fsync file and directory (see snapshot::WriteOptions).
  bool durable = true;
};

/// Writes `world` to `path` atomically (tmp + rename). Throws
/// common::SnapshotError on I/O failure or an unserializable
/// traffic/vehicle model.
void save_world_snapshot(const World& world, const std::string& path,
                         const SaveOptions& options = {});

/// Maps `path` and reconstructs its World (version from the file
/// header). Validates every checksum eagerly; throws
/// common::SnapshotError naming the file, section, and offset on any
/// corruption. The returned world pins the mapping for its lifetime.
[[nodiscard]] WorldPtr load_world_snapshot(const std::string& path);

/// One section row of inspect_world_snapshot.
struct SnapshotSectionInfo {
  std::uint32_t id = 0;
  std::string name;
  std::uint32_t aux = 0;
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  std::uint32_t crc = 0;
  bool crc_ok = false;
};

/// Header and per-section summary of a snapshot file.
struct SnapshotInfo {
  std::string path;
  std::uint64_t world_version = 0;
  std::uint64_t file_bytes = 0;
  bool intact = false;  ///< every section's checksum verified
  std::vector<SnapshotSectionInfo> sections;
};

/// Reads header and section table and verifies each section's CRC
/// without loading the world — tolerant of payload corruption (that
/// is reported per section), strict about a damaged header or table
/// (throws common::SnapshotError: nothing can be reported then).
[[nodiscard]] SnapshotInfo inspect_world_snapshot(const std::string& path);

}  // namespace sunchase::core
