// The SunChase planner facade: one call from (origin, destination,
// departure, vehicle) to the paper's output — the shortest-time route
// plus the better-solar candidates that pass the Eq. 5 test.
#pragma once

#include "sunchase/core/mlc.h"
#include "sunchase/core/selection.h"

namespace sunchase::obs {
class QueryLog;
}  // namespace sunchase::obs

namespace sunchase::core {

struct PlannerOptions {
  MlcOptions mlc{};
  SelectionOptions selection{};
  /// When set, every plan() appends one structured QueryRecord —
  /// per-phase durations, search effort, chosen-route energy summary,
  /// or the error. Borrowed; keep the log alive while planning.
  obs::QueryLog* query_log = nullptr;
};

/// A complete plan for one trip.
struct PlanResult {
  /// candidates[0]: shortest-time route; the rest: better-solar routes
  /// (positive EnergyExtra), best first.
  std::vector<CandidateRoute> candidates;
  std::size_t pareto_route_count = 0;  ///< "N candidate Pareto routes"
  std::size_t cluster_count = 0;
  MlcStats search_stats;
  /// Thread CPU time the plan actually consumed (search + selection),
  /// via CLOCK_THREAD_CPUTIME_ID — callers stamp it into ledgers and
  /// responses without re-measuring.
  double cpu_seconds = 0.0;

  /// The recommended route: the best better-solar candidate when one
  /// exists, otherwise the shortest-time path — exactly the paper's
  /// "if there is no better route, we selected the shortest-time path".
  [[nodiscard]] const CandidateRoute& recommended() const;
  [[nodiscard]] bool has_better_solar() const noexcept {
    return candidates.size() > 1;
  }
};

class SunChasePlanner {
 public:
  /// Pins one immutable world snapshot for the planner's lifetime; the
  /// vehicle is options.mlc.vehicle. Throws InvalidArgument for a null
  /// world or an unknown vehicle index.
  explicit SunChasePlanner(WorldPtr world,
                           PlannerOptions options = PlannerOptions{});

  /// Plans a trip. Throws RoutingError when the destination is
  /// unreachable within the time budget.
  [[nodiscard]] PlanResult plan(roadnet::NodeId origin,
                                roadnet::NodeId destination,
                                TimeOfDay departure) const;

  [[nodiscard]] const PlannerOptions& options() const noexcept {
    return options_;
  }
  /// The snapshot every plan() prices against.
  [[nodiscard]] const WorldPtr& world() const noexcept {
    return solver_.world();
  }
  [[nodiscard]] const ev::ConsumptionModel& vehicle() const;

 private:
  PlannerOptions options_;
  MultiLabelCorrecting solver_;
};

}  // namespace sunchase::core
