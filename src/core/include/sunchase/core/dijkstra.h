// Time-dependent shortest-travel-time search: the paper's baseline
// ("the shortest-path (shortest travel time) algorithm") and the source
// of the arrival-time bound that makes longer candidate routes
// "acceptable".
#pragma once

#include <optional>
#include <vector>

#include "sunchase/common/time_of_day.h"
#include "sunchase/core/world_fwd.h"
#include "sunchase/roadnet/path.h"
#include "sunchase/roadnet/traffic.h"

namespace sunchase::core {

struct ShortestTimeResult {
  roadnet::Path path;
  Seconds travel_time{0.0};
};

/// Dijkstra over travel time on the snapshot's graph and traffic model,
/// with each edge's speed evaluated at the clock time the vehicle
/// enters it (departure + elapsed). Travel times are positive, so
/// label-settling optimality holds (FIFO network). Returns nullopt when
/// `destination` is unreachable from `origin`. Throws InvalidArgument
/// for a null world; GraphError for unknown nodes.
[[nodiscard]] std::optional<ShortestTimeResult> shortest_time_path(
    const WorldPtr& world, roadnet::NodeId origin,
    roadnet::NodeId destination, TimeOfDay departure);

namespace detail {

/// Implementation primitive over snapshot components (see edge_cost.h).
[[nodiscard]] std::optional<ShortestTimeResult> shortest_time_path(
    const roadnet::RoadGraph& graph, const roadnet::TrafficModel& traffic,
    roadnet::NodeId origin, roadnet::NodeId destination, TimeOfDay departure);

/// Admissible time-to-destination lower bounds for every node: a reverse
/// Dijkstra from `destination` over the reversed adjacency, with the
/// static per-edge weight `length / max_speed(edge)` (a lower bound on
/// the edge's travel time at ANY clock, TrafficModel::min_travel_time).
/// The search settles the whole reachable component — it must NOT
/// early-exit, because the caller (MLC budget pruning) consults the
/// bound at every node a label touches, not at one target. Nodes that
/// cannot reach `destination` get +infinity (any label there is dead and
/// prunes immediately). Throws GraphError for an unknown node.
[[nodiscard]] std::vector<double> time_lower_bounds(
    const roadnet::RoadGraph& graph, const roadnet::TrafficModel& traffic,
    roadnet::NodeId destination);

}  // namespace detail

}  // namespace sunchase::core
