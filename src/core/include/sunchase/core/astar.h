// A* shortest-travel-time search with a great-circle/speed-bound
// heuristic. Produces the same routes as the Dijkstra baseline while
// settling far fewer nodes — the practical baseline for interactive
// replanning on larger cities.
#pragma once

#include <optional>

#include "sunchase/core/dijkstra.h"

namespace sunchase::core {

struct AStarResult {
  roadnet::Path path;
  Seconds travel_time{0.0};
  std::size_t nodes_settled = 0;  ///< search effort, for comparisons
};

/// Time-dependent A* on the snapshot's graph and traffic model:
/// g = elapsed travel time, h = Haversine distance to the destination
/// divided by `speed_upper_bound`. The heuristic is admissible iff no
/// edge is ever traversed faster than the bound — pass the traffic
/// model's ceiling (e.g. its max free-flow speed). Throws
/// InvalidArgument for a null world or non-positive bound; GraphError
/// for unknown nodes. Returns nullopt when unreachable.
[[nodiscard]] std::optional<AStarResult> shortest_time_path_astar(
    const WorldPtr& world, roadnet::NodeId origin,
    roadnet::NodeId destination, TimeOfDay departure,
    MetersPerSecond speed_upper_bound);

namespace detail {

/// Implementation primitive over snapshot components (see edge_cost.h).
[[nodiscard]] std::optional<AStarResult> shortest_time_path_astar(
    const roadnet::RoadGraph& graph, const roadnet::TrafficModel& traffic,
    roadnet::NodeId origin, roadnet::NodeId destination, TimeOfDay departure,
    MetersPerSecond speed_upper_bound);

}  // namespace detail

}  // namespace sunchase::core
