// Route explanation: a per-edge ledger that ties a planned route back
// to the paper's per-edge quantities — segment length (Eq. 7 Haversine
// edges), shade ratio at the active 15-minute solar-map slot, solar
// input (Eq. 2), EV consumption (Eq. 6) — with running cumulative
// totals. The ledger replays exactly the clock convention of the
// multi-label correcting search (edge priced at departure advanced by
// the cumulative travel time), so its sums reproduce the route's
// criteria vector: the conservation invariant that proves the energy
// accounting has not drifted.
#pragma once

#include <string>
#include <vector>

#include "sunchase/core/metrics.h"
#include "sunchase/core/mlc.h"

namespace sunchase::core {

/// One edge of the ledger: where, when, how sunny, and what it cost.
struct ExplainStep {
  roadnet::EdgeId edge = roadnet::kInvalidEdge;
  roadnet::NodeId from = roadnet::kInvalidNode;
  roadnet::NodeId to = roadnet::kInvalidNode;
  TimeOfDay entry;            ///< clock time entering the edge
  int slot = 0;               ///< active 15-min solar-map slot
  Meters length{0.0};
  MetersPerSecond speed{0.0};
  double shade_ratio = 0.0;   ///< shaded fraction in [0, 1]
  Seconds travel_time{0.0};
  Seconds solar_time{0.0};    ///< Eq. 3
  Seconds shaded_time{0.0};
  WattHours energy_in{0.0};   ///< Eq. 2: C * t_solar
  WattHours energy_out{0.0};  ///< Eq. 6 consumption
  Criteria cumulative;        ///< running criteria after this edge
  WattHours cumulative_energy_in{0.0};
};

/// The full per-edge story of one route.
struct RouteLedger {
  TimeOfDay departure;
  std::vector<ExplainStep> steps;
  RouteMetrics totals;  ///< ledger sums (same accounting as the steps)

  /// Largest absolute difference between the ledger sums and a route's
  /// criteria vector (travel time, shaded time, energy out).
  [[nodiscard]] double max_deviation(const Criteria& cost) const noexcept;

  /// The conservation invariant: the per-edge sums reproduce the
  /// search's criteria vector within `tolerance`.
  [[nodiscard]] bool conserves(const Criteria& cost,
                               double tolerance = 1e-6) const noexcept {
    return max_deviation(cost) <= tolerance;
  }

  /// Pretty-printed JSON document (departure, steps, totals).
  [[nodiscard]] std::string to_json() const;
  /// One header line plus one row per step.
  [[nodiscard]] std::string to_csv() const;
};

/// Builds ledgers for routes planned against one world snapshot,
/// pinned at construction. Throws InvalidArgument for a null world or
/// an unknown vehicle index.
class RouteExplainer {
 public:
  explicit RouteExplainer(WorldPtr world, std::size_t vehicle = 0);

  /// Walks `path` from `departure` and prices every edge exactly as the
  /// search did: entry time is the departure advanced by the cumulative
  /// travel time when `time_dependent` (MlcOptions default), otherwise
  /// the departure instant (static pricing); the pricing clock is then
  /// quantized per `pricing` — pass the mode the route was planned with
  /// so the conservation invariant holds bit-exactly. The ledger's
  /// `entry` column always records the real entry clock; only the price
  /// is quantized. Throws GraphError for unknown edges; an empty path
  /// yields an empty ledger.
  [[nodiscard]] RouteLedger explain(
      const roadnet::Path& path, TimeOfDay departure,
      bool time_dependent = true,
      PricingMode pricing = PricingMode::Exact) const;

  /// Convenience: explain a Pareto route of an MlcResult.
  [[nodiscard]] RouteLedger explain(
      const ParetoRoute& route, TimeOfDay departure,
      bool time_dependent = true,
      PricingMode pricing = PricingMode::Exact) const {
    return explain(route.path, departure, time_dependent, pricing);
  }

  /// The snapshot every ledger prices against.
  [[nodiscard]] const WorldPtr& world() const noexcept { return world_; }

 private:
  WorldPtr world_;
  std::size_t vehicle_;
};

}  // namespace sunchase::core
