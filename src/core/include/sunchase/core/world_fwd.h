// Forward declarations for the world-snapshot types, so hot-path
// headers (edge_cost, metrics) can name WorldPtr without pulling in the
// full World definition.
#pragma once

#include <memory>

namespace sunchase::core {

class World;
class WorldStore;
class SlotCostCache;
struct WorldInit;

/// How every layer holds planning state: a shared immutable snapshot.
/// Copying the pointer pins the version; the snapshot it points at
/// never changes.
using WorldPtr = std::shared_ptr<const World>;

}  // namespace sunchase::core
