// En-route dynamic replanning. The paper notes that "passing by clouds
// will change the solar radiation in a specific area and reduce the
// power input efficiency. However, such real-time information is not
// accessible via public databases" (Sec. VI) — so a live plan can go
// stale mid-trip. This module drives a planned route edge by edge
// against *live* panel power and re-plans the remainder at
// intersections whenever the live power has drifted from the forecast
// the current plan was built on. Each (re)plan derives an ephemeral
// forecast snapshot from the base world's recipe (constant panel power
// sampled at the planning instant), so the graph, traffic and shading
// allocations stay shared across every replan.
#pragma once

#include "sunchase/core/planner.h"

namespace sunchase::core {

struct ReplanOptions {
  PlannerOptions planner{};
  /// Re-plan when |live - forecast| / forecast exceeds this (0 = every
  /// node; set huge to disable).
  double power_drift_threshold = 0.15;
  /// Never re-plan more often than this.
  Seconds min_replan_interval{60.0};
};

/// What actually happened on the drive.
struct DriveOutcome {
  roadnet::Path driven;         ///< edges actually traversed
  Seconds total_time{0.0};
  WattHours energy_in{0.0};     ///< harvested under *live* power
  WattHours energy_out{0.0};
  int replans = 0;
};

/// Drives from `origin` to `destination` on the world's graph with its
/// `vehicle`: plans with a constant-power forecast (the live power
/// sampled at each (re)planning instant), then follows the recommended
/// route, accruing harvest under `live_power`. At each intersection, if
/// the live power has drifted beyond the threshold since the plan was
/// made, the remainder is re-planned. Throws RoutingError when no route
/// exists; InvalidArgument for a null world or live-power function.
[[nodiscard]] DriveOutcome drive_with_replanning(
    const WorldPtr& world, const solar::PanelPowerFn& live_power,
    roadnet::NodeId origin, roadnet::NodeId destination, TimeOfDay departure,
    const ReplanOptions& options = ReplanOptions{});

/// The baseline: plan once at departure (forecast = live power at
/// departure), never re-plan, but still accrue harvest under the live
/// power. Same outcome type for comparison.
[[nodiscard]] DriveOutcome drive_without_replanning(
    const WorldPtr& world, const solar::PanelPowerFn& live_power,
    roadnet::NodeId origin, roadnet::NodeId destination, TimeOfDay departure,
    const PlannerOptions& planner_options = PlannerOptions{});

}  // namespace sunchase::core
