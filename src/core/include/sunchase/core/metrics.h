// Route-level accounting: the TL / TT / EI / EC columns of the paper's
// routing tables, and the EnergyExtra feasibility test of Eq. 5.
#pragma once

#include "sunchase/core/edge_cost.h"
#include "sunchase/roadnet/path.h"

namespace sunchase::core {

/// Everything the paper reports per route.
struct RouteMetrics {
  Meters total_length{0.0};   ///< TL
  Seconds travel_time{0.0};   ///< TT
  Seconds solar_time{0.0};    ///< time on illuminated segments (Eq. 3)
  Seconds shaded_time{0.0};
  WattHours energy_in{0.0};   ///< EI (Eq. 2, summed per edge)
  WattHours energy_out{0.0};  ///< EC for the evaluated vehicle (Eq. 6)
};

/// Walks the path with a running clock (edge criteria at entry time)
/// and accumulates the metrics for the world's `vehicle`. Empty path
/// -> all-zero metrics. Throws InvalidArgument for a null world or an
/// unknown vehicle index.
[[nodiscard]] RouteMetrics evaluate_route(const WorldPtr& world,
                                          const roadnet::Path& path,
                                          TimeOfDay departure,
                                          std::size_t vehicle = 0);

namespace detail {

/// Internal primitive over snapshot components (see edge_cost.h).
[[nodiscard]] RouteMetrics evaluate_route(const solar::SolarInputMap& map,
                                          const ev::ConsumptionModel& vehicle,
                                          const roadnet::Path& path,
                                          TimeOfDay departure);

}  // namespace detail

/// Eq. 5: extra solar input of `candidate` over `baseline` minus its
/// extra consumption. A candidate is worth driving iff this is > 0.
[[nodiscard]] WattHours energy_extra(const RouteMetrics& candidate,
                                     const RouteMetrics& baseline) noexcept;

}  // namespace sunchase::core
