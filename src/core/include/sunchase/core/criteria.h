// The k = 3 criteria vector of the multi-criteria routing model
// (Sec. III-B): travel time, solar input, and EV energy consumption.
// All three are minimized — solar input enters as *shaded travel time*,
// following the paper: "We compute the csi(v) by calculating the EV
// travel time on shaded road segments. Since less shadows means more
// solar input."
#pragma once

#include "sunchase/common/units.h"

namespace sunchase::core {

/// Additive route cost vector (c_tt, c_si, c_ec).
struct Criteria {
  Seconds travel_time{0.0};
  Seconds shaded_time{0.0};
  WattHours energy_out{0.0};

  Criteria& operator+=(const Criteria& o) noexcept {
    travel_time += o.travel_time;
    shaded_time += o.shaded_time;
    energy_out += o.energy_out;
    return *this;
  }
  friend Criteria operator+(Criteria a, const Criteria& b) noexcept {
    return a += b;
  }
  friend bool operator==(const Criteria&, const Criteria&) noexcept = default;
};

/// Comparison tolerance: differences below this are treated as ties so
/// floating-point dust cannot inflate the Pareto set.
inline constexpr double kCriteriaEpsilon = 1e-9;

/// Pareto dominance: a dominates b iff a <= b in every criterion and
/// a < b in at least one (Sec. III-B), with epsilon tolerance.
[[nodiscard]] bool dominates(const Criteria& a, const Criteria& b) noexcept;

/// True when the two vectors are equal within tolerance.
[[nodiscard]] bool equivalent(const Criteria& a, const Criteria& b) noexcept;

/// Relaxed (epsilon-)dominance for approximate Pareto merging: true when
/// a.c <= (1 + epsilon) * b.c in every criterion, i.e. `a` is at worst a
/// factor (1+epsilon) of `b` everywhere. With epsilon = 0 this degrades
/// to "a <= b componentwise" (weak dominance, no strictness clause) —
/// callers that need exactness must not route through it at epsilon = 0;
/// the MLC merge only consults it when epsilon > 0.
[[nodiscard]] bool epsilon_dominates(const Criteria& a, const Criteria& b,
                                     double epsilon) noexcept;

/// Lexicographic order (travel time, then shaded time, then energy):
/// the priority-queue order of the multi-label correcting algorithm
/// ("extract the minimum label (in lexicographic order)").
[[nodiscard]] bool lex_less(const Criteria& a, const Criteria& b) noexcept;

}  // namespace sunchase::core
