// Bridges the solar input map and an EV consumption model into the
// criteria vector the router searches over.
#pragma once

#include "sunchase/core/criteria.h"
#include "sunchase/core/world_fwd.h"
#include "sunchase/ev/consumption.h"
#include "sunchase/solar/input_map.h"

namespace sunchase::core {

/// When an edge's criteria vector is priced relative to the label's
/// entry clock. The paper holds the panel power C and the shading
/// profile constant within each 15-minute slot (Sec. IV, Eq. 2-3), so
/// quantizing the pricing clock to the slot start loses nothing on a
/// slot-constant world — and lets every label entering an edge within
/// the same slot share one precomputed cost (core::SlotCostCache).
enum class PricingMode {
  /// Price at the label's exact entry clock (departure advanced by the
  /// accumulated travel time). The historical behavior.
  Exact,
  /// Price at TimeOfDay::slot_start(when.slot_index()) through the
  /// shared per-(edge, slot) cost cache. Bit-identical to Exact when
  /// every time-dependent input is slot-constant (uniform traffic,
  /// constant or per-slot panel power); bounded divergence under the
  /// continuous rush-hour traffic model (see EXPERIMENTS.md).
  SlotQuantized,
};

/// The clock an edge entered at `when` is priced at under `mode`.
[[nodiscard]] inline TimeOfDay pricing_time(TimeOfDay when,
                                            PricingMode mode) {
  return mode == PricingMode::SlotQuantized
             ? TimeOfDay::slot_start(when.slot_index())
             : when;
}

/// The CLI / query-log spelling of a mode: "exact" or "slot".
[[nodiscard]] constexpr const char* pricing_name(PricingMode mode) noexcept {
  return mode == PricingMode::SlotQuantized ? "slot" : "exact";
}

/// Criteria accrued by entering `edge` at `when` with the world's
/// `vehicle`. Throws InvalidArgument for a null world or an unknown
/// vehicle index.
[[nodiscard]] Criteria edge_criteria(const WorldPtr& world,
                                     roadnet::EdgeId edge, TimeOfDay when,
                                     std::size_t vehicle = 0);

namespace detail {

/// Implementation primitive over the snapshot's components — internal;
/// public callers go through the WorldPtr overload above so no
/// long-lived layer ever borrows raw world data.
[[nodiscard]] Criteria edge_criteria(const solar::SolarInputMap& map,
                                     const ev::ConsumptionModel& vehicle,
                                     roadnet::EdgeId edge, TimeOfDay when);

}  // namespace detail

}  // namespace sunchase::core
