// Bridges the solar input map and an EV consumption model into the
// criteria vector the router searches over.
#pragma once

#include "sunchase/core/criteria.h"
#include "sunchase/ev/consumption.h"
#include "sunchase/solar/input_map.h"

namespace sunchase::core {

/// Criteria accrued by entering `edge` at `when` with the given EV.
[[nodiscard]] Criteria edge_criteria(const solar::SolarInputMap& map,
                                     const ev::ConsumptionModel& vehicle,
                                     roadnet::EdgeId edge, TimeOfDay when);

}  // namespace sunchase::core
