// The EV's roof-mounted solar panel. The paper estimates the panel
// input power C from the ~20% cell efficiency of commercial panels and
// holds it constant within each 15-minute interval (Sec. III-C2).
#pragma once

#include <functional>

#include "sunchase/common/time_of_day.h"
#include "sunchase/common/units.h"
#include "sunchase/solar/dataset.h"

namespace sunchase::solar {

/// A flat panel: output power = irradiance x area x efficiency.
class SolarPanel {
 public:
  /// Throws InvalidArgument unless area > 0 and efficiency in (0, 1].
  SolarPanel(SquareMeters area, double efficiency);

  [[nodiscard]] Watts output(WattsPerSquareMeter irradiance) const noexcept;
  [[nodiscard]] SquareMeters area() const noexcept { return area_; }
  [[nodiscard]] double efficiency() const noexcept { return efficiency_; }

 private:
  SquareMeters area_;
  double efficiency_;
};

/// Panel input power C as a function of time — the paper's
/// "value update every 15 minutes".
using PanelPowerFn = std::function<Watts(TimeOfDay)>;

/// A constant C (the routing simulations fix C = 200/210/160 W at
/// 10:00/12:00/16:00).
[[nodiscard]] PanelPowerFn constant_panel_power(Watts c);

/// C from a simulated irradiance dataset: the 15-minute slot average
/// through a panel. The dataset and panel are captured by value.
[[nodiscard]] PanelPowerFn dataset_panel_power(IrradianceDataset dataset,
                                               SolarPanel panel);

/// Piecewise-constant C per 15-minute slot over a window, linearly
/// matching the paper's one-day scenario ("from 160 W to 210 W based on
/// the datasets"): rises from `edge` at 9:00 to `peak` at 13:00 and
/// back by 17:00.
[[nodiscard]] PanelPowerFn paper_daytime_panel_power(Watts edge = Watts{160.0},
                                                     Watts peak = Watts{210.0});

}  // namespace sunchase::solar
