// Clear-sky ground irradiance on a horizontal surface (the EV's flat
// roof panel). Reproduces the shape of the paper's Fig. 4 (NRCan
// Quebec, July): low morning/evening, ~1150 W/m^2 midday peak.
#pragma once

#include "sunchase/common/time_of_day.h"
#include "sunchase/common/units.h"
#include "sunchase/geo/latlon.h"
#include "sunchase/geo/sunpos.h"

namespace sunchase::solar {

/// Haurwitz-style clear-sky model scaled so that a July Montreal noon
/// reaches the ~1150 W/m^2 the NRCan measurements in the paper show
/// (ground data includes slight cloud-edge enhancement over the pure
/// clear-sky value).
class ClearSkyModel {
 public:
  struct Options {
    geo::LatLon site{45.4995, -73.5700};  ///< Montreal
    geo::DayOfYear day{196};              ///< mid-July
    double utc_offset_hours = -4.0;
    double scale = 1.22;  ///< calibration to the measured noon peak
  };

  /// Default: Montreal, mid-July, calibrated scale.
  ClearSkyModel();
  explicit ClearSkyModel(Options options);

  /// Global horizontal irradiance at a local clock time; zero when the
  /// sun is below the horizon.
  [[nodiscard]] WattsPerSquareMeter irradiance(TimeOfDay when) const noexcept;

  /// Irradiance for an explicit solar elevation (radians), exposed so
  /// tests can probe the attenuation curve directly.
  [[nodiscard]] WattsPerSquareMeter irradiance_at_elevation(
      double elevation_rad) const noexcept;

  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  Options options_;
};

}  // namespace sunchase::solar
