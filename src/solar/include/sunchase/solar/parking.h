// Parking-spot solar ranking. The paper's premise includes harvesting
// "not only at parking but also travelling on the road" — and parked
// hours dwarf driving minutes, so where the car sits matters more than
// how it got there. This ranks curbside spots near a destination by
// the energy a panel would collect over the parked window, as shadows
// sweep across the streets.
#pragma once

#include <vector>

#include "sunchase/roadnet/graph.h"
#include "sunchase/shadow/shading.h"
#include "sunchase/solar/panel.h"

namespace sunchase::solar {

struct ParkingOptions {
  /// Maximum walking distance from the destination intersection to the
  /// parking street.
  Meters search_radius{250.0};
};

/// One candidate curbside spot (an edge of the road graph).
struct ParkingSpot {
  roadnet::EdgeId edge = roadnet::kInvalidEdge;
  WattHours expected_harvest{0.0};  ///< over the whole parked window
  double mean_shaded_fraction = 0.0;
  Meters walk_distance{0.0};  ///< destination to the nearer street end
};

/// Ranks every street within walking distance of `destination` by the
/// solar energy a parked panel would collect from `arrival` to
/// `departure`, integrating the 15-minute shading profile and panel
/// power. Best spot first. Throws InvalidArgument for an empty window
/// and GraphError for an unknown destination.
[[nodiscard]] std::vector<ParkingSpot> rank_parking_spots(
    const roadnet::RoadGraph& graph, const shadow::ShadingProfile& shading,
    const PanelPowerFn& panel_power, roadnet::NodeId destination,
    TimeOfDay arrival, TimeOfDay departure,
    const ParkingOptions& options = ParkingOptions{});

}  // namespace sunchase::solar
