// Simulated high-resolution irradiance dataset. The paper reads a
// 17-unit NRCan sensor network sampled at up to 10 ms, with "surges ...
// mainly caused by obstructions (e.g., birds) passing over or variable
// cloud cover conditions" (Fig. 4). This module synthesizes an
// equivalent measured-irradiance time series: clear-sky base curve,
// cloud passages, momentary obstruction dips, and cloud-edge
// enhancement surges — all deterministic from a seed.
#pragma once

#include <vector>

#include "sunchase/common/rng.h"
#include "sunchase/solar/irradiance.h"

namespace sunchase::solar {

struct DatasetOptions {
  ClearSkyModel::Options clear_sky{};
  /// Cloud passages: Poisson arrivals through the day.
  double clouds_per_hour = 1.2;
  double cloud_min_duration_s = 40.0;
  double cloud_max_duration_s = 600.0;
  double cloud_min_attenuation = 0.25;  ///< fraction of GHI let through
  double cloud_max_attenuation = 0.75;
  /// Momentary obstructions (birds, debris): deep but very short.
  double obstructions_per_hour = 3.0;
  double obstruction_duration_s = 1.5;
  double obstruction_attenuation = 0.1;
  /// Cloud-edge enhancement: brief surges above clear sky.
  double surges_per_hour = 1.0;
  double surge_duration_s = 20.0;
  double surge_gain = 1.12;
  /// Sensor noise (relative standard deviation).
  double noise_rel_std = 0.01;
  std::uint64_t seed = 2017;
};

/// One simulated ground-station day of irradiance.
class IrradianceDataset {
 public:
  /// Default: the standard simulated July day (seed 2017).
  IrradianceDataset();
  explicit IrradianceDataset(DatasetOptions options);

  /// Instantaneous measured irradiance at a local clock time.
  [[nodiscard]] WattsPerSquareMeter sample(TimeOfDay when) const;

  /// Mean irradiance over [start, start+duration], integrating at 1 s
  /// resolution — this is what refreshes the panel power C every
  /// 15 minutes in the paper.
  [[nodiscard]] WattsPerSquareMeter average(TimeOfDay start,
                                            Seconds duration) const;

  /// Mean over the enclosing 15-minute solar-map slot.
  [[nodiscard]] WattsPerSquareMeter slot_average(TimeOfDay when) const;

  [[nodiscard]] const ClearSkyModel& clear_sky() const noexcept {
    return clear_sky_;
  }

 private:
  struct Event {
    double start_s;   ///< seconds since midnight
    double end_s;
    double factor;    ///< multiplier applied to clear-sky GHI
  };

  [[nodiscard]] double event_factor(double t_s) const noexcept;

  DatasetOptions options_;
  ClearSkyModel clear_sky_;
  std::vector<Event> events_;  ///< sorted by start time
};

}  // namespace sunchase::solar
