// The solar input map: for any edge at any time, the solar travel time
// (Eq. 3), the harvested energy (Eq. 2), and the shaded travel time the
// router minimizes ("less shadows means more solar input", Sec. IV-C).
// Combines the shading profile, the traffic model, and the panel power.
#pragma once

#include <atomic>

#include "sunchase/common/time_of_day.h"
#include "sunchase/obs/metrics.h"
#include "sunchase/roadnet/traffic.h"
#include "sunchase/shadow/shading.h"
#include "sunchase/solar/panel.h"

namespace sunchase::solar {

/// Per-edge quantities at a given entry time.
struct EdgeSolar {
  Seconds travel_time{0.0};   ///< full edge traversal time
  Seconds solar_time{0.0};    ///< t_solar = S_solar / V (Eq. 3)
  Seconds shaded_time{0.0};   ///< travel_time - solar_time
  WattHours energy_in{0.0};   ///< C * t_solar (Eq. 2)
  double shade_ratio = 0.0;   ///< shaded fraction at the 15-min slot
};

/// Borrows the graph, shading profile and traffic model (callers keep
/// them alive); owns the panel-power function.
class SolarInputMap {
 public:
  SolarInputMap(const roadnet::RoadGraph& graph,
                const shadow::ShadingProfile& shading,
                const roadnet::TrafficModel& traffic,
                PanelPowerFn panel_power);

  /// All solar quantities for entering `edge` at `when`.
  [[nodiscard]] EdgeSolar evaluate(roadnet::EdgeId edge, TimeOfDay when) const;

  /// Panel input power C at `when` (constant within a 15-min slot).
  [[nodiscard]] Watts panel_power(TimeOfDay when) const;

  [[nodiscard]] const roadnet::RoadGraph& graph() const noexcept {
    return graph_;
  }
  [[nodiscard]] const roadnet::TrafficModel& traffic() const noexcept {
    return traffic_;
  }
  [[nodiscard]] const shadow::ShadingProfile& shading() const noexcept {
    return shading_;
  }

 private:
  const roadnet::RoadGraph& graph_;
  const shadow::ShadingProfile& shading_;
  const roadnet::TrafficModel& traffic_;
  PanelPowerFn panel_power_;
  obs::Counter& evaluate_calls_;  ///< "solar.evaluate_calls"
  /// Last 15-min slot a debug narrative was logged for (evaluate() is
  /// const and concurrent, hence atomic; -1 = none yet).
  mutable std::atomic<int> last_logged_slot_{-1};
};

}  // namespace sunchase::solar
