#include "sunchase/solar/input_map.h"

#include "sunchase/common/error.h"
#include "sunchase/common/logging.h"

namespace sunchase::solar {

SolarInputMap::SolarInputMap(const roadnet::RoadGraph& graph,
                             const shadow::ShadingProfile& shading,
                             const roadnet::TrafficModel& traffic,
                             PanelPowerFn panel_power)
    : graph_(graph),
      shading_(shading),
      traffic_(traffic),
      panel_power_(std::move(panel_power)),
      evaluate_calls_(
          obs::Registry::global().counter("solar.evaluate_calls")) {
  if (!panel_power_)
    throw InvalidArgument("SolarInputMap: null panel power function");
  if (shading.edge_count() != graph.edge_count())
    throw InvalidArgument(
        "SolarInputMap: shading profile does not match the graph");
}

EdgeSolar SolarInputMap::evaluate(roadnet::EdgeId edge, TimeOfDay when) const {
  evaluate_calls_.add();
  // Narrate 15-min interval refreshes only when someone is listening:
  // the exchange keeps the message once-per-slot under concurrency.
  if (log_enabled(LogLevel::Debug)) {
    const int slot = when.slot_index();
    if (last_logged_slot_.exchange(slot, std::memory_order_relaxed) != slot)
      SUNCHASE_LOG(Debug) << "input map: entering 15-min slot " << slot
                          << " (" << TimeOfDay::slot_start(slot).to_string()
                          << ", panel C = " << panel_power_(when).value()
                          << " W)";
  }
  const MetersPerSecond v = traffic_.speed(graph_, edge, when);
  const Meters length = graph_.edge(edge).length;
  const double shaded = shading_.shaded_fraction(edge, when);
  // Same arithmetic as ShadingProfile::solar_length, but the fraction
  // is also reported (the explain ledger renders it per edge).
  const Meters solar_len = length * (1.0 - shaded);

  EdgeSolar out;
  out.travel_time = length / v;
  out.solar_time = solar_len / v;
  out.shaded_time = out.travel_time - out.solar_time;
  out.energy_in = energy(panel_power_(when), out.solar_time);
  out.shade_ratio = shaded;
  return out;
}

Watts SolarInputMap::panel_power(TimeOfDay when) const {
  return panel_power_(when);
}

}  // namespace sunchase::solar
