#include "sunchase/solar/input_map.h"

#include "sunchase/common/error.h"

namespace sunchase::solar {

SolarInputMap::SolarInputMap(const roadnet::RoadGraph& graph,
                             const shadow::ShadingProfile& shading,
                             const roadnet::TrafficModel& traffic,
                             PanelPowerFn panel_power)
    : graph_(graph),
      shading_(shading),
      traffic_(traffic),
      panel_power_(std::move(panel_power)) {
  if (!panel_power_)
    throw InvalidArgument("SolarInputMap: null panel power function");
  if (shading.edge_count() != graph.edge_count())
    throw InvalidArgument(
        "SolarInputMap: shading profile does not match the graph");
}

EdgeSolar SolarInputMap::evaluate(roadnet::EdgeId edge, TimeOfDay when) const {
  const MetersPerSecond v = traffic_.speed(graph_, edge, when);
  const Meters length = graph_.edge(edge).length;
  const Meters solar_len = shading_.solar_length(graph_, edge, when);

  EdgeSolar out;
  out.travel_time = length / v;
  out.solar_time = solar_len / v;
  out.shaded_time = out.travel_time - out.solar_time;
  out.energy_in = energy(panel_power_(when), out.solar_time);
  return out;
}

Watts SolarInputMap::panel_power(TimeOfDay when) const {
  return panel_power_(when);
}

}  // namespace sunchase::solar
