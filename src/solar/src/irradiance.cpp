#include "sunchase/solar/irradiance.h"

#include <cmath>

#include "sunchase/common/error.h"

namespace sunchase::solar {

ClearSkyModel::ClearSkyModel() : ClearSkyModel(Options{}) {}

ClearSkyModel::ClearSkyModel(Options options) : options_(options) {
  if (options.scale <= 0.0)
    throw InvalidArgument("ClearSkyModel: non-positive scale");
}

WattsPerSquareMeter ClearSkyModel::irradiance_at_elevation(
    double elevation_rad) const noexcept {
  if (elevation_rad <= 0.0) return WattsPerSquareMeter{0.0};
  const double s = std::sin(elevation_rad);
  // Haurwitz (1945): GHI = 1098 * sin(el) * exp(-0.057 / sin(el)).
  const double ghi = 1098.0 * s * std::exp(-0.057 / s);
  return WattsPerSquareMeter{options_.scale * ghi};
}

WattsPerSquareMeter ClearSkyModel::irradiance(TimeOfDay when) const noexcept {
  const auto sun = geo::sun_position(options_.site, options_.day, when,
                                     options_.utc_offset_hours);
  return irradiance_at_elevation(sun.elevation_rad);
}

}  // namespace sunchase::solar
