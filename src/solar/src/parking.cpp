#include "sunchase/solar/parking.h"

#include <algorithm>

#include "sunchase/common/error.h"

namespace sunchase::solar {

std::vector<ParkingSpot> rank_parking_spots(
    const roadnet::RoadGraph& graph, const shadow::ShadingProfile& shading,
    const PanelPowerFn& panel_power, roadnet::NodeId destination,
    TimeOfDay arrival, TimeOfDay departure, const ParkingOptions& options) {
  if (departure <= arrival)
    throw InvalidArgument("rank_parking_spots: empty parking window");
  if (!panel_power)
    throw InvalidArgument("rank_parking_spots: null panel power");
  if (options.search_radius.value() <= 0.0)
    throw InvalidArgument("rank_parking_spots: non-positive radius");
  const geo::LatLon dest = graph.node(destination).position;

  std::vector<ParkingSpot> spots;
  for (roadnet::EdgeId e = 0; e < graph.edge_count(); ++e) {
    const auto& edge = graph.edge(e);
    const Meters walk =
        std::min(geo::haversine_distance(dest, graph.node(edge.from).position),
                 geo::haversine_distance(dest, graph.node(edge.to).position));
    if (walk > options.search_radius) continue;

    // Integrate slot by slot across the parked window.
    double harvest_wh = 0.0;
    double shade_time_weighted = 0.0;
    double total_s = 0.0;
    const int first = arrival.slot_index();
    const int last = departure.slot_index();
    for (int slot = first; slot <= last; ++slot) {
      const TimeOfDay slot_begin = TimeOfDay::slot_start(slot);
      const double begin_s =
          std::max(arrival.seconds_since_midnight(),
                   slot_begin.seconds_since_midnight());
      const double end_s =
          std::min(departure.seconds_since_midnight(),
                   slot_begin.seconds_since_midnight() +
                       TimeOfDay::kSlotSeconds);
      const double dt = end_s - begin_s;
      if (dt <= 0.0) continue;
      const double shaded = shading.shaded_fraction(e, slot_begin);
      harvest_wh +=
          panel_power(slot_begin).value() * (1.0 - shaded) * dt / 3600.0;
      shade_time_weighted += shaded * dt;
      total_s += dt;
    }
    spots.push_back(ParkingSpot{
        e, WattHours{harvest_wh},
        total_s > 0.0 ? shade_time_weighted / total_s : 0.0, walk});
  }
  std::sort(spots.begin(), spots.end(),
            [](const ParkingSpot& a, const ParkingSpot& b) {
              return a.expected_harvest > b.expected_harvest;
            });
  return spots;
}

}  // namespace sunchase::solar
