#include "sunchase/solar/dataset.h"

#include <algorithm>
#include <cmath>

#include "sunchase/common/error.h"

namespace sunchase::solar {

IrradianceDataset::IrradianceDataset() : IrradianceDataset(DatasetOptions{}) {}

IrradianceDataset::IrradianceDataset(DatasetOptions options)
    : options_(options), clear_sky_(options.clear_sky) {
  if (options.noise_rel_std < 0.0)
    throw InvalidArgument("IrradianceDataset: negative noise");

  Rng rng(options.seed);
  auto add_poisson_events = [&](double per_hour, auto make_event) {
    if (per_hour <= 0.0) return;
    double t = 0.0;
    while (true) {
      t += rng.exponential(3600.0 / per_hour);
      if (t >= TimeOfDay::kSecondsPerDay) break;
      events_.push_back(make_event(t, rng));
    }
  };

  add_poisson_events(options.clouds_per_hour, [&](double t, Rng& r) {
    const double dur =
        r.uniform(options_.cloud_min_duration_s, options_.cloud_max_duration_s);
    const double att = r.uniform(options_.cloud_min_attenuation,
                                 options_.cloud_max_attenuation);
    return Event{t, t + dur, att};
  });
  add_poisson_events(options.obstructions_per_hour, [&](double t, Rng&) {
    return Event{t, t + options_.obstruction_duration_s,
                 options_.obstruction_attenuation};
  });
  add_poisson_events(options.surges_per_hour, [&](double t, Rng&) {
    return Event{t, t + options_.surge_duration_s, options_.surge_gain};
  });
  std::sort(events_.begin(), events_.end(),
            [](const Event& a, const Event& b) { return a.start_s < b.start_s; });
}

double IrradianceDataset::event_factor(double t_s) const noexcept {
  // Overlapping events multiply (a bird under a cloud dims further);
  // the event list is small (tens per day), linear scan with early-out.
  double factor = 1.0;
  for (const Event& e : events_) {
    if (e.start_s > t_s) break;
    if (t_s < e.end_s) factor *= e.factor;
  }
  return factor;
}

WattsPerSquareMeter IrradianceDataset::sample(TimeOfDay when) const {
  const double t = when.seconds_since_midnight();
  const double base = clear_sky_.irradiance(when).value();
  if (base <= 0.0) return WattsPerSquareMeter{0.0};
  // Deterministic per-instant noise: hash the integer millisecond.
  Rng noise_rng(options_.seed ^ static_cast<std::uint64_t>(t * 1000.0));
  const double noisy =
      base * event_factor(t) *
      (1.0 + options_.noise_rel_std * noise_rng.normal());
  return WattsPerSquareMeter{std::max(noisy, 0.0)};
}

WattsPerSquareMeter IrradianceDataset::average(TimeOfDay start,
                                               Seconds duration) const {
  if (duration.value() <= 0.0)
    throw InvalidArgument("IrradianceDataset::average: non-positive window");
  const int steps = std::max(1, static_cast<int>(duration.value()));
  double sum = 0.0;
  for (int i = 0; i < steps; ++i) {
    const TimeOfDay t = start.advanced_by(
        Seconds{(i + 0.5) * duration.value() / steps});
    sum += sample(t).value();
  }
  return WattsPerSquareMeter{sum / steps};
}

WattsPerSquareMeter IrradianceDataset::slot_average(TimeOfDay when) const {
  const TimeOfDay start = TimeOfDay::slot_start(when.slot_index());
  return average(start, Seconds{TimeOfDay::kSlotSeconds});
}

}  // namespace sunchase::solar
