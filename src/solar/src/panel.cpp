#include "sunchase/solar/panel.h"

#include <cmath>

#include "sunchase/common/error.h"

namespace sunchase::solar {

SolarPanel::SolarPanel(SquareMeters area, double efficiency)
    : area_(area), efficiency_(efficiency) {
  if (area.value() <= 0.0)
    throw InvalidArgument("SolarPanel: non-positive area");
  if (efficiency <= 0.0 || efficiency > 1.0)
    throw InvalidArgument("SolarPanel: efficiency outside (0,1]");
}

Watts SolarPanel::output(WattsPerSquareMeter irradiance) const noexcept {
  if (irradiance.value() <= 0.0) return Watts{0.0};
  return Watts{irradiance.value() * area_.value() * efficiency_};
}

PanelPowerFn constant_panel_power(Watts c) {
  if (c.value() < 0.0)
    throw InvalidArgument("constant_panel_power: negative power");
  return [c](TimeOfDay) { return c; };
}

PanelPowerFn dataset_panel_power(IrradianceDataset dataset, SolarPanel panel) {
  return [dataset = std::move(dataset), panel](TimeOfDay when) {
    return panel.output(dataset.slot_average(when));
  };
}

PanelPowerFn paper_daytime_panel_power(Watts edge, Watts peak) {
  if (peak < edge)
    throw InvalidArgument("paper_daytime_panel_power: peak below edge");
  return [edge, peak](TimeOfDay when) {
    // Triangle profile over 9:00-17:00 peaking at 13:00, evaluated at
    // the enclosing slot start so C is constant within a slot.
    const double h =
        TimeOfDay::slot_start(when.slot_index()).hours_since_midnight();
    const double ramp = 1.0 - std::min(std::abs(h - 13.0) / 4.0, 1.0);
    return Watts{edge.value() + (peak.value() - edge.value()) * ramp};
  };
}

}  // namespace sunchase::solar
