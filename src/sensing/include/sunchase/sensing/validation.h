// The validation experiment of Sec. V-A / Table V-I: drive a path,
// detect illuminated intervals from the dual-phone light readings,
// map-match the GPS track, and compare the measured solar distance and
// solar travel time (RSD/RSTT) against the model estimates (MSD/MSTT).
#pragma once

#include "sunchase/sensing/drive.h"
#include "sunchase/shadow/shading.h"

namespace sunchase::sensing {

/// One row of the paper's Table V-I.
struct PathValidation {
  Meters real_solar_distance{0.0};    ///< RSD (measured)
  Meters model_solar_distance{0.0};   ///< MSD (estimated)
  Seconds real_solar_time{0.0};       ///< RSTT (measured)
  Seconds model_solar_time{0.0};      ///< MSTT (estimated)
  Seconds real_total_time{0.0};
  Seconds model_total_time{0.0};
  MetersPerSecond traffic_speed{0.0}; ///< TS (predicted average)
};

struct ValidationOptions {
  DriveOptions drive{};
  /// Illuminated iff the dual-phone average exceeds this fraction of
  /// the brightest reading seen in the log.
  double lux_threshold_fraction = 0.45;
  /// The paper averages three experiment runs per path.
  int runs = 3;
};

/// Detected illuminated flags per sample (dual-phone average vs the
/// adaptive threshold) — exposed for tests of the detector itself.
[[nodiscard]] std::vector<bool> detect_illumination(
    const DriveLog& log, double threshold_fraction);

/// Measured solar distance: the GPS track is map-matched onto the path
/// geometry and along-path arc length is accumulated over illuminated
/// samples (raw GPS step sums would random-walk upward).
[[nodiscard]] Meters measured_solar_distance(
    const roadnet::RoadGraph& graph, const shadow::Scene& scene,
    const roadnet::Path& path, const DriveLog& log,
    const std::vector<bool>& illuminated);

/// Runs the full validation for one path: `runs` simulated drives
/// (different seeds) averaged, against the model's estimate from the
/// shading profile and predicted traffic speeds.
[[nodiscard]] PathValidation validate_path(
    const roadnet::RoadGraph& graph, const shadow::Scene& scene,
    const shadow::ShadingProfile& profile,
    const roadnet::TrafficModel& traffic, const roadnet::Path& path,
    TimeOfDay departure, const ValidationOptions& options);

}  // namespace sunchase::sensing
