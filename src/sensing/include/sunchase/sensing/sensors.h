// Sensor models for the validation platform (Sec. V): two smartphone
// ambient-light sensors at different mounting positions (windshield and
// sunroof) plus GPS. The paper averages the two light readings to
// decide illuminated vs shaded, and notes view-angle variance and
// glitches as the reason for using two phones.
#pragma once

#include "sunchase/common/rng.h"
#include "sunchase/common/units.h"
#include "sunchase/geo/vec2.h"

namespace sunchase::sensing {

/// A smartphone ambient-light sensor behind glass.
class LightSensor {
 public:
  struct Options {
    /// Optical attenuation of the mounting position (tinted glass,
    /// oblique view angle): multiplies the incoming illuminance.
    double mount_attenuation = 0.8;
    /// Relative Gaussian noise of a reading.
    double noise_rel_std = 0.05;
    /// Probability a reading is a glitch (random junk), the artifact
    /// the paper's dual-phone averaging suppresses.
    double glitch_probability = 0.01;
    /// Illuminance seen in full sun vs in building shade; direct
    /// sunlight is ~100k lux, open shade ~10k lux.
    double sun_lux = 100000.0;
    double shade_lux = 10000.0;
  };

  LightSensor(Options options, Rng rng);

  /// One reading given ground truth: whether the car is in shadow and
  /// the current clear-sky irradiance fraction (0..1 of midday peak)
  /// which scales ambient light through the day.
  [[nodiscard]] double read(bool in_shadow, double irradiance_fraction);

 private:
  Options options_;
  Rng rng_;
};

/// GPS with isotropic Gaussian position error (the paper blames part
/// of the solar-distance gap on "GPS errors on real road").
class GpsSensor {
 public:
  struct Options {
    double sigma_m = 4.0;  ///< typical urban-canyon GPS error
  };

  GpsSensor(Options options, Rng rng);

  /// Noisy fix of a true local position.
  [[nodiscard]] geo::Vec2 fix(geo::Vec2 true_position);

 private:
  Options options_;
  Rng rng_;
};

}  // namespace sunchase::sensing
