// Drive simulation: moves a virtual petrol car along a planned path
// through the shadow field and records what the two phones and the GPS
// would log — the "real-road" side of the paper's validation. Driver
// behaviour deviates from the predicted traffic speed (the paper
// observes real travel times consistently below the model estimate).
#pragma once

#include <vector>

#include "sunchase/common/rng.h"
#include "sunchase/common/time_of_day.h"
#include "sunchase/roadnet/path.h"
#include "sunchase/roadnet/traffic.h"
#include "sunchase/sensing/sensors.h"
#include "sunchase/shadow/caster.h"
#include "sunchase/shadow/scene.h"

namespace sunchase::sensing {

/// One 1 Hz log record of the validation drive.
struct DriveSample {
  TimeOfDay when;
  geo::Vec2 true_position;
  geo::Vec2 gps_position;
  bool truly_shaded = false;   ///< ground truth at the true position
  double lux_windshield = 0.0; ///< phone 1 reading
  double lux_sunroof = 0.0;    ///< phone 2 reading
};

struct DriveLog {
  std::vector<DriveSample> samples;
  Seconds total_time{0.0};
};

struct DriveOptions {
  /// Mean multiple of the predicted traffic speed the driver actually
  /// holds; > 1 reproduces the paper's "drivers beat the prediction".
  double driver_speed_mean = 1.07;
  double driver_speed_std = 0.05;
  /// Ground-truth shadow field refresh; finer than the model's
  /// 15-minute slots, since reality moves continuously.
  Seconds shadow_refresh{300.0};
  Seconds sample_period{1.0};
  geo::DayOfYear day{196};
  double utc_offset_hours = -4.0;
  LightSensor::Options windshield{};
  LightSensor::Options sunroof{.mount_attenuation = 0.95,
                               .noise_rel_std = 0.04,
                               .glitch_probability = 0.008};
  std::uint64_t seed = 31;
};

/// Simulates driving `path` starting at `departure`. The per-segment
/// cruising speed is the traffic model's prediction scaled by a random
/// driver factor (redrawn each segment). Throws InvalidArgument for an
/// empty path.
[[nodiscard]] DriveLog simulate_drive(const roadnet::RoadGraph& graph,
                                      const shadow::Scene& scene,
                                      const roadnet::TrafficModel& traffic,
                                      const roadnet::Path& path,
                                      TimeOfDay departure,
                                      const DriveOptions& options);

}  // namespace sunchase::sensing
