#include "sunchase/sensing/sensors.h"

#include <algorithm>

#include "sunchase/common/error.h"

namespace sunchase::sensing {

LightSensor::LightSensor(Options options, Rng rng)
    : options_(options), rng_(rng) {
  if (options.mount_attenuation <= 0.0 || options.mount_attenuation > 1.0)
    throw InvalidArgument("LightSensor: attenuation outside (0,1]");
  if (options.sun_lux <= options.shade_lux)
    throw InvalidArgument("LightSensor: sun_lux must exceed shade_lux");
  if (options.glitch_probability < 0.0 || options.glitch_probability > 1.0)
    throw InvalidArgument("LightSensor: glitch probability outside [0,1]");
}

double LightSensor::read(bool in_shadow, double irradiance_fraction) {
  const double frac = std::clamp(irradiance_fraction, 0.0, 1.0);
  if (rng_.bernoulli(options_.glitch_probability)) {
    // A glitch: the sensor reports an arbitrary value in its range.
    return rng_.uniform(0.0, options_.sun_lux);
  }
  const double base = in_shadow ? options_.shade_lux : options_.sun_lux;
  const double lux = base * frac * options_.mount_attenuation *
                     (1.0 + options_.noise_rel_std * rng_.normal());
  return std::max(lux, 0.0);
}

GpsSensor::GpsSensor(Options options, Rng rng) : options_(options), rng_(rng) {
  if (options.sigma_m < 0.0)
    throw InvalidArgument("GpsSensor: negative sigma");
}

geo::Vec2 GpsSensor::fix(geo::Vec2 true_position) {
  return true_position + geo::Vec2{rng_.normal(0.0, options_.sigma_m),
                                   rng_.normal(0.0, options_.sigma_m)};
}

}  // namespace sunchase::sensing
