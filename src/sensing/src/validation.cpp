#include "sunchase/sensing/validation.h"

#include <algorithm>
#include <limits>

#include "sunchase/common/error.h"

namespace sunchase::sensing {

std::vector<bool> detect_illumination(const DriveLog& log,
                                      double threshold_fraction) {
  if (threshold_fraction <= 0.0 || threshold_fraction >= 1.0)
    throw InvalidArgument("detect_illumination: fraction outside (0,1)");
  double max_avg = 0.0;
  std::vector<double> averages;
  averages.reserve(log.samples.size());
  for (const DriveSample& s : log.samples) {
    const double avg = (s.lux_windshield + s.lux_sunroof) / 2.0;
    averages.push_back(avg);
    max_avg = std::max(max_avg, avg);
  }
  const double threshold = threshold_fraction * max_avg;
  std::vector<bool> illuminated(log.samples.size());
  for (std::size_t i = 0; i < averages.size(); ++i)
    illuminated[i] = averages[i] > threshold;
  return illuminated;
}

Meters measured_solar_distance(const roadnet::RoadGraph& graph,
                               const shadow::Scene& scene,
                               const roadnet::Path& path, const DriveLog& log,
                               const std::vector<bool>& illuminated) {
  if (illuminated.size() != log.samples.size())
    throw InvalidArgument("measured_solar_distance: size mismatch");

  // Path geometry with cumulative arc length per edge.
  std::vector<geo::Segment> segments;
  std::vector<double> seg_start;
  double total = 0.0;
  for (const roadnet::EdgeId e : path.edges) {
    const geo::Segment seg = scene.edge_segment(graph, e);
    segments.push_back(seg);
    seg_start.push_back(total);
    total += seg.length();
  }

  // Map-match a GPS fix to along-path arc length (nearest segment).
  auto match = [&](geo::Vec2 p) {
    double best_d = std::numeric_limits<double>::infinity();
    double best_s = 0.0;
    for (std::size_t i = 0; i < segments.size(); ++i) {
      const double t = geo::project_onto_segment(p, segments[i]);
      const double d = geo::distance(p, segments[i].point_at(t));
      if (d < best_d) {
        best_d = d;
        best_s = seg_start[i] + t * segments[i].length();
      }
    }
    return best_s;
  };

  double solar = 0.0;
  double prev_s = 0.0;
  bool have_prev = false;
  for (std::size_t i = 0; i < log.samples.size(); ++i) {
    const double s = match(log.samples[i].gps_position);
    if (have_prev && illuminated[i]) {
      // Signed increments: GPS noise makes individual steps jitter
      // forward and back, but the telescoped sum stays unbiased.
      // One-sided clamping would systematically inflate the distance.
      const double ds = s - prev_s;
      // Guard against wrong-segment matches (large jumps).
      if (std::abs(ds) < 25.0) solar += ds;
    }
    prev_s = s;
    have_prev = true;
  }
  return Meters{std::max(solar, 0.0)};
}

PathValidation validate_path(const roadnet::RoadGraph& graph,
                             const shadow::Scene& scene,
                             const shadow::ShadingProfile& profile,
                             const roadnet::TrafficModel& traffic,
                             const roadnet::Path& path, TimeOfDay departure,
                             const ValidationOptions& options) {
  if (path.empty()) throw InvalidArgument("validate_path: empty path");
  if (options.runs < 1) throw InvalidArgument("validate_path: runs < 1");

  PathValidation row;

  // --- Model side (MSD / MSTT / TS): predicted speeds + solar map.
  TimeOfDay clock = departure;
  double speed_sum = 0.0;
  for (const roadnet::EdgeId e : path.edges) {
    const MetersPerSecond v = traffic.speed(graph, e, clock);
    const Meters solar_len = profile.solar_length(graph, e, clock);
    const Seconds tt = graph.edge(e).length / v;
    row.model_solar_distance += solar_len;
    row.model_solar_time += solar_len / v;
    row.model_total_time += tt;
    speed_sum += v.value();
    clock = clock.advanced_by(tt);
  }
  row.traffic_speed =
      MetersPerSecond{speed_sum / static_cast<double>(path.size())};

  // --- Measured side: average of `runs` independent drives.
  for (int run = 0; run < options.runs; ++run) {
    DriveOptions drive_options = options.drive;
    drive_options.seed =
        options.drive.seed + static_cast<std::uint64_t>(run + 1) * 1000;
    const DriveLog log = simulate_drive(graph, scene, traffic, path,
                                        departure, drive_options);
    const std::vector<bool> illuminated =
        detect_illumination(log, options.lux_threshold_fraction);
    row.real_solar_distance +=
        measured_solar_distance(graph, scene, path, log, illuminated);
    const auto lit =
        std::count(illuminated.begin(), illuminated.end(), true);
    row.real_solar_time += Seconds{static_cast<double>(lit) *
                                   drive_options.sample_period.value()};
    row.real_total_time += log.total_time;
  }
  const double n = options.runs;
  row.real_solar_distance /= n;
  row.real_solar_time /= n;
  row.real_total_time /= n;
  return row;
}

}  // namespace sunchase::sensing
