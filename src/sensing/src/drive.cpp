#include "sunchase/sensing/drive.h"

#include <algorithm>
#include <cmath>

#include "sunchase/common/error.h"
#include "sunchase/geo/sunpos.h"
#include "sunchase/solar/irradiance.h"

namespace sunchase::sensing {

namespace {

/// Ground-truth shadow polygons, refreshed every `refresh` seconds.
class ShadowField {
 public:
  ShadowField(const shadow::Scene& scene, geo::DayOfYear day,
              double utc_offset_hours, Seconds refresh)
      : scene_(scene),
        day_(day),
        utc_offset_(utc_offset_hours),
        refresh_(refresh) {}

  [[nodiscard]] bool shaded(geo::Vec2 p, TimeOfDay when) {
    maybe_refresh(when);
    for (const shadow::ShadowPolygon& s : shadows_) {
      if (p.x < s.bbox_min.x || p.x > s.bbox_max.x || p.y < s.bbox_min.y ||
          p.y > s.bbox_max.y)
        continue;
      if (geo::contains(s.outline, p)) return true;
    }
    return false;
  }

  [[nodiscard]] double elevation(TimeOfDay when) const {
    return geo::sun_position(scene_.projection().origin(), day_, when,
                             utc_offset_)
        .elevation_rad;
  }

 private:
  void maybe_refresh(TimeOfDay when) {
    const double t = when.seconds_since_midnight();
    if (have_shadows_ && std::abs(t - computed_at_s_) < refresh_.value())
      return;
    const auto sun = geo::sun_position(scene_.projection().origin(), day_,
                                       when, utc_offset_);
    shadows_ = cast_shadows(scene_, sun);
    computed_at_s_ = t;
    have_shadows_ = true;
  }

  const shadow::Scene& scene_;
  geo::DayOfYear day_;
  double utc_offset_;
  Seconds refresh_;
  std::vector<shadow::ShadowPolygon> shadows_;
  double computed_at_s_ = 0.0;
  bool have_shadows_ = false;
};

}  // namespace

DriveLog simulate_drive(const roadnet::RoadGraph& graph,
                        const shadow::Scene& scene,
                        const roadnet::TrafficModel& traffic,
                        const roadnet::Path& path, TimeOfDay departure,
                        const DriveOptions& options) {
  if (path.empty()) throw InvalidArgument("simulate_drive: empty path");
  if (options.sample_period.value() <= 0.0)
    throw InvalidArgument("simulate_drive: non-positive sample period");

  Rng rng(options.seed);
  LightSensor windshield(options.windshield, rng.split());
  LightSensor sunroof(options.sunroof, rng.split());
  GpsSensor gps(GpsSensor::Options{}, rng.split());
  ShadowField field(scene, options.day, options.utc_offset_hours,
                    options.shadow_refresh);
  // Scale ambient light by how high the sun is relative to midday.
  const solar::ClearSkyModel clear_sky;
  const double peak =
      clear_sky.irradiance_at_elevation(1.2).value();  // ~midday elevation

  DriveLog log;
  TimeOfDay clock = departure;
  double leftover = 0.0;  // time carried into the next segment

  for (const roadnet::EdgeId e : path.edges) {
    const geo::Segment seg = scene.edge_segment(graph, e);
    const double predicted = traffic.speed(graph, e, clock).value();
    const double factor = std::clamp(
        rng.normal(options.driver_speed_mean, options.driver_speed_std), 0.8,
        1.3);
    const double v = predicted * factor;
    const double seg_time = seg.length() / v;

    // Sample along this edge on the global 1 Hz grid.
    for (double t = leftover; t < seg_time;
         t += options.sample_period.value()) {
      const geo::Vec2 pos = seg.point_at(t / seg_time);
      const TimeOfDay when = clock.advanced_by(Seconds{t});
      const bool shaded = field.shaded(pos, when);
      const double irr_frac = std::clamp(
          clear_sky.irradiance_at_elevation(field.elevation(when)).value() /
              peak,
          0.0, 1.0);
      DriveSample sample;
      sample.when = when;
      sample.true_position = pos;
      sample.gps_position = gps.fix(pos);
      sample.truly_shaded = shaded;
      sample.lux_windshield = windshield.read(shaded, irr_frac);
      sample.lux_sunroof = sunroof.read(shaded, irr_frac);
      log.samples.push_back(sample);
    }
    leftover = std::fmod(leftover - seg_time, options.sample_period.value());
    if (leftover < 0.0) leftover += options.sample_period.value();
    clock = clock.advanced_by(Seconds{seg_time});
    log.total_time += Seconds{seg_time};
  }
  return log;
}

}  // namespace sunchase::sensing
