// GeoJSON export: routes, road graphs, plans and scenes as
// FeatureCollections that drop straight into geojson.io / QGIS /
// Leaflet — the practical way to eyeball a SunChase plan on a map.
#pragma once

#include <map>
#include <string>

#include "sunchase/core/explain.h"
#include "sunchase/core/planner.h"
#include "sunchase/roadnet/path.h"
#include "sunchase/shadow/scene.h"

namespace sunchase::exporter {

/// String-valued feature properties.
using Properties = std::map<std::string, std::string>;

/// One LineString feature following the path's node chain. Throws
/// GraphError for unknown edges; an empty path yields an empty
/// LineString.
[[nodiscard]] std::string geojson_route(const roadnet::RoadGraph& graph,
                                        const roadnet::Path& path,
                                        const Properties& properties = {});

/// Every directed edge as a LineString feature (properties: edge id,
/// from, to, length_m).
[[nodiscard]] std::string geojson_graph(const roadnet::RoadGraph& graph);

/// Building footprints and tree canopies as Polygon features
/// (properties: kind, height_m), georeferenced via the scene's
/// projection.
[[nodiscard]] std::string geojson_scene(const shadow::Scene& scene);

/// A whole plan: the shortest-time route plus every better-solar
/// candidate, each with its metrics as properties (kind,
/// travel_time_s, energy_in_wh, energy_out_wh, extra_energy_wh).
[[nodiscard]] std::string geojson_plan(const roadnet::RoadGraph& graph,
                                       const core::PlanResult& plan);

/// An explained route: one LineString feature per ledger step, carrying
/// the step's full energy accounting as properties (kind
/// "explain-step", seq, edge, entry, slot, length_m, speed_kmh,
/// shade_ratio, travel_time_s, solar_time_s, energy_in_wh,
/// energy_out_wh plus the cumulative totals) — ready for per-edge
/// styling (e.g. color by shade_ratio) in geojson.io / QGIS.
[[nodiscard]] std::string geojson_explained_route(
    const roadnet::RoadGraph& graph, const core::RouteLedger& ledger);

}  // namespace sunchase::exporter
