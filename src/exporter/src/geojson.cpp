#include "sunchase/exporter/geojson.h"

#include <cstdio>
#include <sstream>

namespace sunchase::exporter {

namespace {

/// Escapes the few JSON-hostile characters that can appear in
/// user-supplied property strings.
std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string coord(geo::LatLon p) {
  char buf[64];
  // GeoJSON order is [longitude, latitude]; 7 decimals ~ 1 cm.
  std::snprintf(buf, sizeof buf, "[%.7f,%.7f]", p.lon_deg, p.lat_deg);
  return buf;
}

std::string properties_json(const Properties& properties) {
  std::ostringstream out;
  out << '{';
  bool first = true;
  for (const auto& [key, value] : properties) {
    if (!first) out << ',';
    first = false;
    out << '"' << escape(key) << "\":\"" << escape(value) << '"';
  }
  out << '}';
  return out.str();
}

std::string line_feature(const std::vector<geo::LatLon>& points,
                         const Properties& properties) {
  std::ostringstream out;
  out << R"({"type":"Feature","properties":)" << properties_json(properties)
      << R"(,"geometry":{"type":"LineString","coordinates":[)";
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i) out << ',';
    out << coord(points[i]);
  }
  out << "]}}";
  return out.str();
}

std::string polygon_feature(const std::vector<geo::LatLon>& ring,
                            const Properties& properties) {
  std::ostringstream out;
  out << R"({"type":"Feature","properties":)" << properties_json(properties)
      << R"(,"geometry":{"type":"Polygon","coordinates":[[)";
  for (std::size_t i = 0; i < ring.size(); ++i) {
    if (i) out << ',';
    out << coord(ring[i]);
  }
  if (!ring.empty()) out << ',' << coord(ring.front());  // close the ring
  out << "]]}}";
  return out.str();
}

std::string collection(const std::vector<std::string>& features) {
  std::ostringstream out;
  out << R"({"type":"FeatureCollection","features":[)";
  for (std::size_t i = 0; i < features.size(); ++i) {
    if (i) out << ',';
    out << features[i];
  }
  out << "]}";
  return out.str();
}

std::string fixed(double v, int decimals = 2) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::vector<geo::LatLon> route_points(const roadnet::RoadGraph& graph,
                                      const roadnet::Path& path) {
  std::vector<geo::LatLon> points;
  for (const roadnet::NodeId n : path_nodes(path, graph))
    points.push_back(graph.node(n).position);
  return points;
}

}  // namespace

std::string geojson_route(const roadnet::RoadGraph& graph,
                          const roadnet::Path& path,
                          const Properties& properties) {
  return collection({line_feature(route_points(graph, path), properties)});
}

std::string geojson_graph(const roadnet::RoadGraph& graph) {
  std::vector<std::string> features;
  features.reserve(graph.edge_count());
  for (roadnet::EdgeId e = 0; e < graph.edge_count(); ++e) {
    const auto& edge = graph.edge(e);
    features.push_back(line_feature(
        {graph.node(edge.from).position, graph.node(edge.to).position},
        {{"edge", std::to_string(e)},
         {"from", std::to_string(edge.from)},
         {"to", std::to_string(edge.to)},
         {"length_m", fixed(edge.length.value(), 1)}}));
  }
  return collection(features);
}

std::string geojson_scene(const shadow::Scene& scene) {
  const auto& proj = scene.projection();
  std::vector<std::string> features;
  auto ring_of = [&](const geo::Polygon& poly) {
    std::vector<geo::LatLon> ring;
    ring.reserve(poly.size());
    for (const geo::Vec2& v : poly.vertices) ring.push_back(proj.to_geo(v));
    return ring;
  };
  for (const shadow::Building& b : scene.buildings())
    features.push_back(polygon_feature(
        ring_of(b.footprint),
        {{"kind", "building"}, {"height_m", fixed(b.height_m, 1)}}));
  for (const shadow::Tree& t : scene.trees())
    features.push_back(polygon_feature(
        ring_of(geo::regular_polygon(t.center, t.radius_m, 8)),
        {{"kind", "tree"}, {"height_m", fixed(t.height_m, 1)}}));
  return collection(features);
}

std::string geojson_explained_route(const roadnet::RoadGraph& graph,
                                    const core::RouteLedger& ledger) {
  std::vector<std::string> features;
  features.reserve(ledger.steps.size());
  for (std::size_t i = 0; i < ledger.steps.size(); ++i) {
    const core::ExplainStep& s = ledger.steps[i];
    features.push_back(line_feature(
        {graph.node(s.from).position, graph.node(s.to).position},
        {{"kind", "explain-step"},
         {"seq", std::to_string(i)},
         {"edge", std::to_string(s.edge)},
         {"entry", s.entry.to_string()},
         {"slot", std::to_string(s.slot)},
         {"length_m", fixed(s.length.value(), 1)},
         {"speed_kmh", fixed(to_kmh(s.speed), 1)},
         {"shade_ratio", fixed(s.shade_ratio, 4)},
         {"travel_time_s", fixed(s.travel_time.value(), 3)},
         {"solar_time_s", fixed(s.solar_time.value(), 3)},
         {"energy_in_wh", fixed(s.energy_in.value(), 4)},
         {"energy_out_wh", fixed(s.energy_out.value(), 4)},
         {"cum_travel_time_s", fixed(s.cumulative.travel_time.value(), 3)},
         {"cum_energy_in_wh", fixed(s.cumulative_energy_in.value(), 4)},
         {"cum_energy_out_wh",
          fixed(s.cumulative.energy_out.value(), 4)}}));
  }
  return collection(features);
}

std::string geojson_plan(const roadnet::RoadGraph& graph,
                         const core::PlanResult& plan) {
  std::vector<std::string> features;
  for (const core::CandidateRoute& cand : plan.candidates) {
    Properties props{
        {"kind", cand.is_shortest_time ? "shortest-time" : "better-solar"},
        {"travel_time_s", fixed(cand.metrics.travel_time.value(), 1)},
        {"length_m", fixed(cand.metrics.total_length.value(), 0)},
        {"energy_in_wh", fixed(cand.metrics.energy_in.value())},
        {"energy_out_wh", fixed(cand.metrics.energy_out.value())}};
    if (!cand.is_shortest_time)
      props["extra_energy_wh"] = fixed(cand.extra_energy.value());
    features.push_back(
        line_feature(route_points(graph, cand.route.path), props));
  }
  return collection(features);
}

}  // namespace sunchase::exporter
