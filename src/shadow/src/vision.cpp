#include "sunchase/shadow/vision.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <numbers>

#include "sunchase/common/error.h"

namespace sunchase::shadow {

VisionPipeline::VisionPipeline(const roadnet::RoadGraph& graph,
                               const Scene& scene, VisionOptions options)
    : graph_(graph), scene_(scene), options_(options) {
  if (options.meters_per_px <= 0.0)
    throw InvalidArgument("VisionPipeline: non-positive resolution");
  if (options.binarize_threshold <= options.shadow_value ||
      options.binarize_threshold >= options.road_value)
    throw InvalidArgument(
        "VisionPipeline: threshold must separate shadow and road values");
  // Frame the whole scene plus every road, with a margin.
  geo::Vec2 lo{1e18, 1e18}, hi{-1e18, -1e18};
  auto extend = [&](geo::Vec2 p) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  };
  for (roadnet::NodeId n = 0; n < graph.node_count(); ++n)
    extend(scene.projection().to_local(graph.node(n).position));
  try {
    const auto [slo, shi] = scene.bounds();
    extend(slo);
    extend(shi);
  } catch (const InvalidArgument&) {
    // Empty scene: frame the roads alone.
  }
  if (lo.x > hi.x)
    throw InvalidArgument("VisionPipeline: nothing to image");
  const geo::Vec2 margin{options.margin_m, options.margin_m};
  frame_ = geo::RasterFrame{lo - margin, hi + margin, options.meters_per_px};
}

geo::Raster VisionPipeline::render(const geo::SunPosition& sun) const {
  geo::Raster image(frame_, options_.background);
  // Road surfaces first.
  for (roadnet::EdgeId e = 0; e < graph_.edge_count(); ++e)
    image.fill_corridor(scene_.edge_segment(graph_, e),
                        scene_.road_half_width(), options_.road_value);
  // Ground shadows darken whatever they fall on.
  for (const ShadowPolygon& s : cast_shadows(scene_, sun))
    image.darken_polygon(s.outline, options_.shadow_value);
  // Roofs on top: illuminated, but not road surface.
  for (const Building& b : scene_.buildings())
    image.fill_polygon(b.footprint, options_.building_value);
  return image;
}

std::vector<double> VisionPipeline::estimate_shaded_fractions(
    const geo::SunPosition& sun) const {
  geo::Raster image = render(sun);
  image.binarize(options_.binarize_threshold);  // dark -> 0, lit -> 255

  std::vector<double> fractions(graph_.edge_count(), 0.0);
  if (!sun.is_up()) {
    std::fill(fractions.begin(), fractions.end(), 1.0);
    return fractions;
  }
  for (roadnet::EdgeId e = 0; e < graph_.edge_count(); ++e) {
    const geo::Segment seg = scene_.edge_segment(graph_, e);
    const long shaded = image.count_corridor(
        seg, scene_.road_half_width(),
        [](std::uint8_t v) { return v == 0; });
    const long total = image.count_corridor(
        seg, scene_.road_half_width(), [](std::uint8_t) { return true; });
    fractions[e] =
        total > 0 ? static_cast<double>(shaded) / static_cast<double>(total)
                  : 0.0;
  }
  return fractions;
}

ShadedFractionFn VisionPipeline::make_estimator(
    geo::DayOfYear day, double utc_offset_hours) const {
  auto cache = std::make_shared<std::map<int, std::vector<double>>>();
  return [this, day, utc_offset_hours,
          cache](roadnet::EdgeId edge, TimeOfDay when) -> double {
    const int slot = when.slot_index();
    auto it = cache->find(slot);
    if (it == cache->end()) {
      const auto sun =
          geo::sun_position(scene_.projection().origin(), day,
                            TimeOfDay::slot_start(slot), utc_offset_hours);
      it = cache->emplace(slot, estimate_shaded_fractions(sun)).first;
    }
    return it->second[edge];
  };
}

geo::Raster VisionPipeline::road_mask() const {
  geo::Raster mask(frame_, 0);
  for (roadnet::EdgeId e = 0; e < graph_.edge_count(); ++e)
    mask.fill_corridor(scene_.edge_segment(graph_, e),
                       scene_.road_half_width(), 255);
  return mask;
}

std::vector<geo::HoughLine> VisionPipeline::detect_road_lines(
    const geo::HoughParams& params, Rng& rng) const {
  return geo::hough_lines(road_mask(), params, rng);
}

double VisionPipeline::road_detection_recall(
    const std::vector<geo::HoughLine>& lines, double tolerance_m) const {
  if (graph_.edge_count() == 0) return 1.0;
  geo::Raster probe(frame_, 0);  // only used for line_to_world_segment
  std::vector<geo::Segment> detected;
  detected.reserve(lines.size());
  for (const auto& line : lines)
    detected.push_back(geo::line_to_world_segment(line, probe));

  std::size_t matched = 0;
  for (roadnet::EdgeId e = 0; e < graph_.edge_count(); ++e) {
    const geo::Segment seg = scene_.edge_segment(graph_, e);
    const geo::Vec2 mid = seg.point_at(0.5);
    const geo::Vec2 dir = seg.direction();
    for (const geo::Segment& d : detected) {
      if (geo::distance_to_segment(mid, d) > tolerance_m) continue;
      const double align = std::abs(geo::dot(dir, d.direction()));
      if (align > std::cos(5.0 * std::numbers::pi / 180.0)) {
        ++matched;
        break;
      }
    }
  }
  return static_cast<double>(matched) /
         static_cast<double>(graph_.edge_count());
}

}  // namespace sunchase::shadow
