#include "sunchase/shadow/scene_io.h"

#include <fstream>
#include <optional>
#include <sstream>

#include "sunchase/common/error.h"

namespace sunchase::shadow {

Scene read_scene(std::istream& in, const std::string& source) {
  std::optional<Scene> scene;
  double road_half_width = 5.0;
  std::string line;
  int line_no = 0;
  const std::string where = source.empty() ? "" : source + ": ";
  auto fail = [&](const std::string& why) {
    throw IoError("read_scene: " + where + "line " +
                  std::to_string(line_no) + ": " + why);
  };
  // Buffered until the origin line arrives (roadhalfwidth may precede it).
  std::optional<geo::LatLon> origin;

  auto ensure_scene = [&]() -> Scene& {
    if (!scene) {
      if (!origin) fail("building/tree before the origin line");
      scene.emplace(geo::LocalProjection{*origin}, road_half_width);
    }
    return *scene;
  };

  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream tokens(line);
    std::string kind;
    if (!(tokens >> kind) || kind[0] == '#') continue;
    if (kind == "origin") {
      double lat = 0.0, lon = 0.0;
      if (!(tokens >> lat >> lon)) fail("expected 'origin <lat> <lon>'");
      if (origin) fail("duplicate origin line");
      origin = geo::LatLon{lat, lon};
    } else if (kind == "roadhalfwidth") {
      if (!(tokens >> road_half_width) || road_half_width <= 0.0)
        fail("expected 'roadhalfwidth <positive meters>'");
      if (scene) fail("roadhalfwidth must precede buildings/trees");
    } else if (kind == "building") {
      double height = 0.0;
      int n = 0;
      if (!(tokens >> height >> n) || n < 3)
        fail("expected 'building <height> <n >= 3> <coords...>'");
      geo::Polygon footprint;
      for (int i = 0; i < n; ++i) {
        double x = 0.0, y = 0.0;
        if (!(tokens >> x >> y)) fail("building: too few coordinates");
        footprint.vertices.push_back({x, y});
      }
      try {
        ensure_scene().add_building(Building{std::move(footprint), height});
      } catch (const InvalidArgument& e) {
        fail(e.what());
      }
    } else if (kind == "tree") {
      double x = 0.0, y = 0.0, radius = 0.0, height = 0.0;
      if (!(tokens >> x >> y >> radius >> height))
        fail("expected 'tree <x> <y> <radius> <height>'");
      try {
        ensure_scene().add_tree(Tree{{x, y}, radius, height});
      } catch (const InvalidArgument& e) {
        fail(e.what());
      }
    } else {
      fail("unknown directive '" + kind + "'");
    }
  }
  if (!origin) throw IoError("read_scene: " + where + "missing origin line");
  if (!scene) scene.emplace(geo::LocalProjection{*origin}, road_half_width);
  return std::move(*scene);
}

Scene read_scene_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("read_scene_file: cannot open '" + path + "'");
  return read_scene(in, path);
}

void write_scene(std::ostream& out, const Scene& scene) {
  out.precision(10);
  out << "# sunchase scene: " << scene.buildings().size() << " buildings, "
      << scene.trees().size() << " trees\n";
  const geo::LatLon origin = scene.projection().origin();
  out << "roadhalfwidth " << scene.road_half_width() << '\n';
  out << "origin " << origin.lat_deg << ' ' << origin.lon_deg << '\n';
  for (const Building& b : scene.buildings()) {
    out << "building " << b.height_m << ' ' << b.footprint.size();
    for (const geo::Vec2& v : b.footprint.vertices)
      out << ' ' << v.x << ' ' << v.y;
    out << '\n';
  }
  for (const Tree& t : scene.trees())
    out << "tree " << t.center.x << ' ' << t.center.y << ' ' << t.radius_m
        << ' ' << t.height_m << '\n';
}

void write_scene_file(const std::string& path, const Scene& scene) {
  std::ofstream out(path);
  if (!out) throw IoError("write_scene_file: cannot open '" + path + "'");
  write_scene(out, scene);
  if (!out)
    throw IoError("write_scene_file: write failed for '" + path + "'");
}

}  // namespace sunchase::shadow
