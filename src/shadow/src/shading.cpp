#include "sunchase/shadow/shading.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sunchase/common/assert.h"
#include "sunchase/common/error.h"

namespace sunchase::shadow {

double shaded_fraction(const geo::Segment& segment,
                       std::span<const ShadowPolygon> shadows) {
  if (segment.length() <= 0.0) return 0.0;
  const geo::Vec2 seg_lo{std::min(segment.a.x, segment.b.x),
                         std::min(segment.a.y, segment.b.y)};
  const geo::Vec2 seg_hi{std::max(segment.a.x, segment.b.x),
                         std::max(segment.a.y, segment.b.y)};
  std::vector<geo::Interval> covered;
  for (const ShadowPolygon& shadow : shadows) {
    // Cheap bounding-box rejection before the exact clip.
    if (shadow.bbox_max.x < seg_lo.x || shadow.bbox_min.x > seg_hi.x ||
        shadow.bbox_max.y < seg_lo.y || shadow.bbox_min.y > seg_hi.y)
      continue;
    if (const auto interval =
            geo::clip_segment_to_convex(segment, shadow.outline))
      covered.push_back(*interval);
  }
  const double frac = geo::covered_length(std::move(covered));
  return std::clamp(frac, 0.0, 1.0);
}

ShadingProfile ShadingProfile::compute(const roadnet::RoadGraph& graph,
                                       const ShadedFractionFn& estimator,
                                       TimeOfDay first, TimeOfDay last) {
  if (last < first)
    throw InvalidArgument("ShadingProfile::compute: empty time window");
  ShadingProfile profile;
  profile.edges_ = graph.edge_count();
  profile.first_slot_ = first.slot_index();
  profile.last_slot_ = last.slot_index();
  const int slots = profile.last_slot_ - profile.first_slot_ + 1;
  std::vector<float> fractions(
      profile.edges_ * static_cast<std::size_t>(slots), 0.0f);
  for (int slot = profile.first_slot_; slot <= profile.last_slot_; ++slot) {
    const TimeOfDay when = TimeOfDay::slot_start(slot);
    for (roadnet::EdgeId e = 0; e < profile.edges_; ++e) {
      const double f = estimator(e, when);
      SUNCHASE_ENSURES(f >= 0.0 && f <= 1.0);
      fractions[profile.index_of(e, slot)] = static_cast<float>(f);
    }
  }
  profile.fractions_ = common::FrozenArray<float>(std::move(fractions));
  return profile;
}

ShadingProfile ShadingProfile::from_parts(
    std::size_t edge_count, int first_slot, int last_slot,
    common::FrozenArray<float> fractions) {
  if (last_slot < first_slot || first_slot < 0 ||
      last_slot >= TimeOfDay::kSlotsPerDay)
    throw InvalidArgument("ShadingProfile::from_parts: slot window [" +
                          std::to_string(first_slot) + ", " +
                          std::to_string(last_slot) + "] is invalid");
  const std::size_t slots =
      static_cast<std::size_t>(last_slot - first_slot + 1);
  if (fractions.size() != edge_count * slots)
    throw InvalidArgument(
        "ShadingProfile::from_parts: fraction table has " +
        std::to_string(fractions.size()) + " entries, expected " +
        std::to_string(edge_count * slots));
  ShadingProfile profile;
  profile.edges_ = edge_count;
  profile.first_slot_ = first_slot;
  profile.last_slot_ = last_slot;
  profile.fractions_ = std::move(fractions);
  return profile;
}

ShadingProfile ShadingProfile::compute_exact(const roadnet::RoadGraph& graph,
                                             const Scene& scene,
                                             geo::DayOfYear day,
                                             TimeOfDay first, TimeOfDay last,
                                             double utc_offset_hours) {
  return compute(graph,
                 make_exact_estimator(graph, scene, day, utc_offset_hours),
                 first, last);
}

std::size_t ShadingProfile::index_of(roadnet::EdgeId edge, int slot) const {
  SUNCHASE_EXPECTS(edge < edges_);
  const int slots = last_slot_ - first_slot_ + 1;
  return static_cast<std::size_t>(edge) * static_cast<std::size_t>(slots) +
         static_cast<std::size_t>(slot - first_slot_);
}

double ShadingProfile::shaded_fraction(roadnet::EdgeId edge,
                                       TimeOfDay when) const {
  const int slot =
      std::clamp(when.slot_index(), first_slot_, last_slot_);
  return fractions_[index_of(edge, slot)];
}

Meters ShadingProfile::solar_length(const roadnet::RoadGraph& graph,
                                    roadnet::EdgeId edge,
                                    TimeOfDay when) const {
  const Meters len = graph.edge(edge).length;
  return len * (1.0 - shaded_fraction(edge, when));
}

double ShadingProfile::mean_absolute_difference(
    const ShadingProfile& other) const {
  if (edges_ != other.edges_ || first_slot_ != other.first_slot_ ||
      last_slot_ != other.last_slot_)
    throw InvalidArgument("mean_absolute_difference: shape mismatch");
  if (fractions_.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < fractions_.size(); ++i)
    sum += std::abs(static_cast<double>(fractions_[i]) -
                    static_cast<double>(other.fractions_[i]));
  return sum / static_cast<double>(fractions_.size());
}

ShadedFractionFn make_exact_estimator(const roadnet::RoadGraph& graph,
                                      const Scene& scene, geo::DayOfYear day,
                                      double utc_offset_hours) {
  // Shadows per slot are expensive; memoize them across edges. The
  // cache is shared by copies of the returned function object.
  auto cache =
      std::make_shared<std::map<int, std::vector<ShadowPolygon>>>();
  return [&graph, &scene, day, utc_offset_hours,
          cache](roadnet::EdgeId edge, TimeOfDay when) -> double {
    const int slot = when.slot_index();
    auto it = cache->find(slot);
    if (it == cache->end()) {
      const auto sun =
          geo::sun_position(scene.projection().origin(), day,
                            TimeOfDay::slot_start(slot), utc_offset_hours);
      it = cache->emplace(slot, cast_shadows(scene, sun)).first;
    }
    // Sun below horizon: the whole road is "shaded" (no solar input).
    if (it->second.empty()) {
      const auto sun =
          geo::sun_position(scene.projection().origin(), day,
                            TimeOfDay::slot_start(slot), utc_offset_hours);
      if (!sun.is_up()) return 1.0;
    }
    return shaded_fraction(scene.edge_segment(graph, edge), it->second);
  };
}

}  // namespace sunchase::shadow
