#include "sunchase/shadow/scenegen.h"

#include <algorithm>
#include <unordered_set>

#include "sunchase/common/error.h"
#include "sunchase/common/rng.h"

namespace sunchase::shadow {

namespace {

/// Builds one rectangular lot footprint beside a street.
geo::Polygon lot_footprint(geo::Vec2 lot_start, geo::Vec2 dir, geo::Vec2 side,
                           double frontage, double offset, double depth) {
  const geo::Vec2 a = lot_start + side * offset;
  const geo::Vec2 b = a + dir * frontage;
  const geo::Vec2 c = b + side * depth;
  const geo::Vec2 d = a + side * depth;
  return geo::Polygon{{a, b, c, d}};
}

}  // namespace

Scene generate_scene(const roadnet::RoadGraph& graph,
                     const geo::LocalProjection& projection,
                     const SceneGenOptions& options) {
  if (options.lot_length_m <= 0.0 || options.tree_spacing_m <= 0.0)
    throw InvalidArgument("generate_scene: non-positive spacing");

  Scene scene(projection, options.road_half_width_m);
  Rng rng(options.seed);

  // Deduplicate the two directions of a two-way street.
  std::unordered_set<std::uint64_t> seen;
  for (roadnet::EdgeId e = 0; e < graph.edge_count(); ++e) {
    const auto& edge = graph.edge(e);
    const auto lo = std::min(edge.from, edge.to);
    const auto hi = std::max(edge.from, edge.to);
    if (!seen.insert((static_cast<std::uint64_t>(lo) << 32) | hi).second)
      continue;

    const geo::Segment street = scene.edge_segment(graph, e);
    const double street_len = street.length();
    const geo::Vec2 dir = street.direction();
    const double lot_pitch = options.lot_length_m + options.lot_gap_m;
    const double offset =
        options.road_half_width_m + options.building_setback_m;

    for (const double side_sign : {+1.0, -1.0}) {
      const geo::Vec2 side = geo::perp(dir) * side_sign;
      // Leave a clear zone near intersections so corner shadows come
      // from mid-block buildings, as in real blocks.
      const double corner_margin = options.road_half_width_m + 4.0;
      for (double s = corner_margin;
           s + options.lot_length_m + corner_margin <= street_len;
           s += lot_pitch) {
        if (!rng.bernoulli(options.building_probability)) continue;
        const double depth =
            rng.uniform(options.min_depth_m, options.max_depth_m);
        const double height =
            rng.bernoulli(options.tower_probability)
                ? rng.uniform(options.tower_min_m, options.tower_max_m)
                : rng.uniform(options.lowrise_min_m, options.lowrise_max_m);
        scene.add_building(
            Building{lot_footprint(street.a + dir * s, dir, side,
                                   options.lot_length_m, offset, depth),
                     height});
      }
      // Trees along the curb (between road edge and building line).
      for (double s = corner_margin; s <= street_len - corner_margin;
           s += options.tree_spacing_m) {
        if (!rng.bernoulli(options.tree_probability)) continue;
        const double radius =
            rng.uniform(options.tree_min_radius_m, options.tree_max_radius_m);
        scene.add_tree(
            Tree{street.a + dir * s +
                     side * (options.road_half_width_m + 1.0 + radius),
                 radius,
                 rng.uniform(options.tree_min_height_m,
                             options.tree_max_height_m)});
      }
    }
  }
  return scene;
}

}  // namespace sunchase::shadow
