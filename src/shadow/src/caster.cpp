#include "sunchase/shadow/caster.h"

namespace sunchase::shadow {

geo::Polygon building_shadow(const Building& building,
                             const geo::SunPosition& sun) {
  if (!sun.is_up()) return {};
  const double len = geo::shadow_length(sun, building.height_m);
  const geo::Vec2 offset = geo::shadow_direction(sun) * len;
  // Hull of footprint and the roof outline projected to the ground.
  std::vector<geo::Vec2> points = building.footprint.vertices;
  for (const geo::Vec2& v : building.footprint.vertices)
    points.push_back(v + offset);
  return geo::convex_hull(std::move(points));
}

geo::Polygon tree_shadow(const Tree& tree, const geo::SunPosition& sun) {
  if (!sun.is_up()) return {};
  // The canopy disc floats at tree height on a thin trunk: its shadow is
  // the disc displaced along the shadow direction, not a hull from the
  // base. Canopy thickness ~ radius adds a short smear.
  const geo::Vec2 dir = geo::shadow_direction(sun);
  const double top_len = geo::shadow_length(sun, tree.height_m);
  const double bottom_height =
      tree.height_m > tree.radius_m ? tree.height_m - tree.radius_m : 0.0;
  const double bottom_len = geo::shadow_length(sun, bottom_height);
  const geo::Polygon canopy =
      geo::regular_polygon(tree.center, tree.radius_m, 8);
  std::vector<geo::Vec2> points;
  points.reserve(canopy.size() * 2);
  for (const geo::Vec2& v : canopy.vertices) {
    points.push_back(v + dir * top_len);
    points.push_back(v + dir * bottom_len);
  }
  return geo::convex_hull(std::move(points));
}

std::vector<ShadowPolygon> cast_shadows(const Scene& scene,
                                        const geo::SunPosition& sun) {
  std::vector<ShadowPolygon> shadows;
  if (!sun.is_up()) return shadows;
  shadows.reserve(scene.buildings().size() + scene.trees().size());
  auto push = [&](geo::Polygon poly) {
    if (poly.size() < 3) return;
    const auto [lo, hi] = geo::bounding_box(poly);
    shadows.push_back(ShadowPolygon{std::move(poly), lo, hi});
  };
  for (const Building& b : scene.buildings()) push(building_shadow(b, sun));
  for (const Tree& t : scene.trees()) push(tree_shadow(t, sun));
  return shadows;
}

}  // namespace sunchase::shadow
