#include "sunchase/shadow/scene.h"

#include <algorithm>

#include "sunchase/common/error.h"

namespace sunchase::shadow {

Scene::Scene(geo::LocalProjection projection, double road_half_width_m)
    : projection_(projection), road_half_width_m_(road_half_width_m) {
  if (road_half_width_m <= 0.0)
    throw InvalidArgument("Scene: non-positive road half-width");
}

void Scene::add_building(Building building) {
  if (building.footprint.size() < 3)
    throw InvalidArgument("add_building: footprint needs >= 3 vertices");
  if (building.height_m <= 0.0)
    throw InvalidArgument("add_building: non-positive height");
  geo::make_ccw(building.footprint);
  if (!geo::is_convex(building.footprint))
    throw InvalidArgument("add_building: footprint must be convex");
  buildings_.push_back(std::move(building));
}

void Scene::add_tree(Tree tree) {
  if (tree.radius_m <= 0.0 || tree.height_m <= 0.0)
    throw InvalidArgument("add_tree: non-positive dimensions");
  trees_.push_back(tree);
}

geo::Segment Scene::edge_segment(const roadnet::RoadGraph& graph,
                                 roadnet::EdgeId edge) const {
  const auto& e = graph.edge(edge);
  return {projection_.to_local(graph.node(e.from).position),
          projection_.to_local(graph.node(e.to).position)};
}

std::pair<geo::Vec2, geo::Vec2> Scene::bounds() const {
  if (buildings_.empty() && trees_.empty())
    throw InvalidArgument("Scene::bounds: empty scene");
  geo::Vec2 lo{1e18, 1e18}, hi{-1e18, -1e18};
  auto extend = [&](geo::Vec2 p) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  };
  for (const Building& b : buildings_)
    for (const geo::Vec2& v : b.footprint.vertices) extend(v);
  for (const Tree& t : trees_) {
    extend(t.center + geo::Vec2{t.radius_m, t.radius_m});
    extend(t.center - geo::Vec2{t.radius_m, t.radius_m});
  }
  return {lo, hi};
}

}  // namespace sunchase::shadow
