// The 3D city scene: building prisms and trees around a road graph.
// Substitutes the ArcGIS 3D local scene (building layer + daylight) the
// paper renders for Montreal.
#pragma once

#include <vector>

#include "sunchase/geo/latlon.h"
#include "sunchase/geo/polygon.h"
#include "sunchase/roadnet/graph.h"

namespace sunchase::shadow {

/// A building: a convex footprint (local planar meters, CCW) extruded
/// to `height_m`.
struct Building {
  geo::Polygon footprint;
  double height_m = 0.0;
};

/// A road-side tree: canopy approximated by a disc at `center` with
/// `radius_m`, at `height_m` above ground.
struct Tree {
  geo::Vec2 center;
  double radius_m = 0.0;
  double height_m = 0.0;
};

/// A complete scene: obstructions plus the projection binding local
/// planar coordinates to the road graph's geographic frame.
class Scene {
 public:
  Scene(geo::LocalProjection projection, double road_half_width_m = 5.0);

  /// Adds a building; the footprint is normalized to CCW. Throws
  /// InvalidArgument for degenerate/non-convex footprints or
  /// non-positive heights.
  void add_building(Building building);

  /// Adds a tree; throws InvalidArgument for non-positive dimensions.
  void add_tree(Tree tree);

  [[nodiscard]] const std::vector<Building>& buildings() const noexcept {
    return buildings_;
  }
  [[nodiscard]] const std::vector<Tree>& trees() const noexcept {
    return trees_;
  }
  [[nodiscard]] const geo::LocalProjection& projection() const noexcept {
    return projection_;
  }
  [[nodiscard]] double road_half_width() const noexcept {
    return road_half_width_m_;
  }

  /// Local planar segment of a graph edge (center-line).
  [[nodiscard]] geo::Segment edge_segment(const roadnet::RoadGraph& graph,
                                          roadnet::EdgeId edge) const;

  /// Bounding box of everything in the scene (obstructions only);
  /// throws InvalidArgument when the scene is empty.
  [[nodiscard]] std::pair<geo::Vec2, geo::Vec2> bounds() const;

 private:
  geo::LocalProjection projection_;
  double road_half_width_m_;
  std::vector<Building> buildings_;
  std::vector<Tree> trees_;
};

}  // namespace sunchase::shadow
