// Text serialization of 3D scenes, so shading environments can be
// shipped as data files alongside road graphs (the substitute for the
// paper's ArcGIS scene database).
//
//   # comment
//   origin <lat> <lon>
//   roadhalfwidth <meters>
//   building <height> <n> <x1> <y1> ... <xn> <yn>
//   tree <x> <y> <radius> <height>
//
// Coordinates are local planar meters relative to the origin line,
// which must appear before any building or tree.
#pragma once

#include <iosfwd>
#include <string>

#include "sunchase/shadow/scene.h"

namespace sunchase::shadow {

/// Parses the scene format; throws IoError (with a line number) on
/// malformed input, including a missing origin line. `source` names
/// the input in error messages (the file path when reading a file).
[[nodiscard]] Scene read_scene(std::istream& in,
                               const std::string& source = {});
[[nodiscard]] Scene read_scene_file(const std::string& path);

/// Writes a scene in the same format; round-trips exactly.
void write_scene(std::ostream& out, const Scene& scene);
void write_scene_file(const std::string& path, const Scene& scene);

}  // namespace sunchase::shadow
