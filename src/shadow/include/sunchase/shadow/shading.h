// Shaded-length computation and the per-edge, per-15-minute shading
// profile that backs the solar input map (paper Sec. IV-B).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "sunchase/common/frozen_array.h"
#include "sunchase/common/time_of_day.h"
#include "sunchase/roadnet/graph.h"
#include "sunchase/shadow/caster.h"
#include "sunchase/shadow/scene.h"

namespace sunchase::shadow {

/// Exact shaded fraction of `segment` under the given shadow polygons:
/// clips the segment against every overlapping shadow and merges the
/// resulting parameter intervals (union, so overlapping shadows are not
/// double counted). Returns a value in [0, 1].
[[nodiscard]] double shaded_fraction(
    const geo::Segment& segment, std::span<const ShadowPolygon> shadows);

/// Per-edge estimator signature: shaded fraction of an edge at a time.
using ShadedFractionFn =
    std::function<double(roadnet::EdgeId, TimeOfDay)>;

/// Precomputed shading profile: for every edge and every 15-minute slot
/// in [first, last], the fraction of the edge's length in shadow. This
/// is the paper's "solar map": L_shaded(i) ~ L_i * r_area (Eq. 9).
class ShadingProfile {
 public:
  /// Samples `estimator` for every edge at every slot start. Throws
  /// InvalidArgument when the window is empty.
  static ShadingProfile compute(const roadnet::RoadGraph& graph,
                                const ShadedFractionFn& estimator,
                                TimeOfDay first, TimeOfDay last);

  /// Exact geometric profile from a scene (ground-truth path).
  static ShadingProfile compute_exact(const roadnet::RoadGraph& graph,
                                      const Scene& scene, geo::DayOfYear day,
                                      TimeOfDay first, TimeOfDay last,
                                      double utc_offset_hours = -4.0);

  /// Adopts a pre-computed fraction table (e.g. a view into a mapped
  /// snapshot section) without copying it. Throws InvalidArgument when
  /// the window is empty or the table size is not
  /// edge_count x (last - first + 1).
  static ShadingProfile from_parts(std::size_t edge_count, int first_slot,
                                   int last_slot,
                                   common::FrozenArray<float> fractions);

  /// The frozen fraction table (edge-major, edge_count x slot span) —
  /// the payload a snapshot serializes verbatim.
  [[nodiscard]] std::span<const float> fractions() const noexcept {
    return fractions_.span();
  }

  /// Shaded fraction of an edge at `when`; times outside the sampled
  /// window clamp to the nearest sampled slot.
  [[nodiscard]] double shaded_fraction(roadnet::EdgeId edge,
                                       TimeOfDay when) const;

  /// Illuminated ("solar") length of the edge at `when` (paper: the
  /// s_solar_n of Eq. 4).
  [[nodiscard]] Meters solar_length(const roadnet::RoadGraph& graph,
                                    roadnet::EdgeId edge,
                                    TimeOfDay when) const;

  [[nodiscard]] int first_slot() const noexcept { return first_slot_; }
  [[nodiscard]] int last_slot() const noexcept { return last_slot_; }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_; }

  /// Mean absolute difference in shaded fraction against another
  /// profile of the same shape (used by the vision-error ablation).
  [[nodiscard]] double mean_absolute_difference(
      const ShadingProfile& other) const;

 private:
  ShadingProfile() = default;
  std::size_t edges_ = 0;
  int first_slot_ = 0;
  int last_slot_ = -1;
  // edges_ x (last-first+1), edge-major; heap-built by compute() or a
  // zero-copy view into a mapped snapshot (from_parts).
  common::FrozenArray<float> fractions_;

  [[nodiscard]] std::size_t index_of(roadnet::EdgeId edge, int slot) const;
};

/// Exact estimator bound to a scene: recomputes shadows per distinct
/// slot on demand (memoized).
[[nodiscard]] ShadedFractionFn make_exact_estimator(
    const roadnet::RoadGraph& graph, const Scene& scene, geo::DayOfYear day,
    double utc_offset_hours = -4.0);

}  // namespace sunchase::shadow
