// Procedural scene synthesis: plants buildings and road-side trees
// along the streets of a road graph, producing the downtown shading
// environment the paper's 3D Montreal scene provides.
#pragma once

#include <cstdint>

#include "sunchase/roadnet/graph.h"
#include "sunchase/shadow/scene.h"

namespace sunchase::shadow {

struct SceneGenOptions {
  double road_half_width_m = 5.0;
  double building_setback_m = 3.0;   ///< footprint gap from the curb
  double lot_length_m = 28.0;        ///< frontage per building lot
  double lot_gap_m = 6.0;            ///< alley between adjacent lots
  double building_probability = 0.8; ///< chance a lot is built
  double min_depth_m = 10.0;
  double max_depth_m = 24.0;
  /// Height mixture: mostly low-rise with a tower fraction, like a
  /// downtown core.
  double lowrise_min_m = 8.0;
  double lowrise_max_m = 22.0;
  double tower_min_m = 35.0;
  double tower_max_m = 90.0;
  double tower_probability = 0.25;
  /// Road-side trees.
  double tree_spacing_m = 18.0;
  double tree_probability = 0.35;
  double tree_min_radius_m = 2.0;
  double tree_max_radius_m = 4.0;
  double tree_min_height_m = 6.0;
  double tree_max_height_m = 12.0;
  std::uint64_t seed = 99;
};

/// Builds a Scene for `graph`. Each undirected street gets building
/// lots on both sides (deduplicated across the two directed edges of a
/// two-way street) and intermittent trees along the curb, so shadows
/// fall across roads exactly the way the paper's Fig. 3 renders show.
[[nodiscard]] Scene generate_scene(const roadnet::RoadGraph& graph,
                                   const geo::LocalProjection& projection,
                                   const SceneGenOptions& options);

}  // namespace sunchase::shadow
