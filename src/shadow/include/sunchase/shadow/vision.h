// The paper's vision-based solar access estimator (Sec. IV-B1/2):
// render the 3D scene top-down as 2D imagery, binarize, and measure the
// shaded-area to road-area ratio per segment, which approximates the
// shaded-length ratio (Eq. 8-9). A probabilistic Hough transform
// locates road center-lines in the imagery, as in the paper.
#pragma once

#include <vector>

#include "sunchase/geo/hough.h"
#include "sunchase/geo/raster.h"
#include "sunchase/shadow/shading.h"

namespace sunchase::shadow {

struct VisionOptions {
  double meters_per_px = 1.0;       ///< imagery resolution
  double margin_m = 30.0;           ///< blank border around the scene
  std::uint8_t background = 255;    ///< open, illuminated ground
  std::uint8_t road_value = 200;    ///< illuminated road surface
  std::uint8_t shadow_value = 60;   ///< shaded surface
  std::uint8_t building_value = 30; ///< roof pixels (not road)
  std::uint8_t binarize_threshold = 128;
};

/// Renders imagery of a scene and estimates per-edge shaded fractions
/// from it — the measurement path the paper validates in Table V-I.
class VisionPipeline {
 public:
  /// Throws InvalidArgument on a degenerate scene or options.
  VisionPipeline(const roadnet::RoadGraph& graph, const Scene& scene,
                 VisionOptions options);

  /// Top-down grayscale render at one sun position: roads bright,
  /// shadows dark, roofs darkest (paper Fig. 3 imagery).
  [[nodiscard]] geo::Raster render(const geo::SunPosition& sun) const;

  /// Shaded fraction of every edge, estimated from the binarized render
  /// (area ratio within each road corridor; Eq. 8).
  [[nodiscard]] std::vector<double> estimate_shaded_fractions(
      const geo::SunPosition& sun) const;

  /// Estimator suitable for ShadingProfile::compute — renders once per
  /// 15-minute slot and memoizes the per-edge fractions.
  [[nodiscard]] ShadedFractionFn make_estimator(
      geo::DayOfYear day, double utc_offset_hours = -4.0) const;

  /// Road-line detection on the road-mask imagery (probabilistic Hough);
  /// the paper uses this to locate segments and intersection nodes.
  [[nodiscard]] std::vector<geo::HoughLine> detect_road_lines(
      const geo::HoughParams& params, Rng& rng) const;

  /// Fraction of graph edges whose center-line is matched (within
  /// `tolerance_m` and ~5 degrees) by some detected Hough line. The
  /// paper reports needing manual correction where detection falls
  /// short; this metric quantifies that gap.
  [[nodiscard]] double road_detection_recall(
      const std::vector<geo::HoughLine>& lines, double tolerance_m) const;

  [[nodiscard]] const geo::RasterFrame& frame() const noexcept {
    return frame_;
  }

 private:
  [[nodiscard]] geo::Raster road_mask() const;

  const roadnet::RoadGraph& graph_;
  const Scene& scene_;
  VisionOptions options_;
  geo::RasterFrame frame_;
};

}  // namespace sunchase::shadow
