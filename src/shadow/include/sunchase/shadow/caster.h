// Shadow casting: projects every obstruction in a Scene onto the
// ground plane for a given sun position. The ground shadow of a convex
// prism of height h is the convex hull of its footprint and the
// footprint translated by shadow_length(h) along the shadow direction —
// exactly the geometry ArcGIS renders in the paper's Fig. 3.
#pragma once

#include <vector>

#include "sunchase/geo/polygon.h"
#include "sunchase/geo/sunpos.h"
#include "sunchase/shadow/scene.h"

namespace sunchase::shadow {

/// A ground shadow polygon (convex, CCW) with its precomputed bounding
/// box for fast segment-overlap rejection.
struct ShadowPolygon {
  geo::Polygon outline;
  geo::Vec2 bbox_min;
  geo::Vec2 bbox_max;
};

/// Ground shadow of one building at the given sun position; empty
/// polygon when the sun is down.
[[nodiscard]] geo::Polygon building_shadow(const Building& building,
                                           const geo::SunPosition& sun);

/// Ground shadow of a tree canopy (disc at height h, approximated by an
/// octagon) — the hull of the canopy and its offset image.
[[nodiscard]] geo::Polygon tree_shadow(const Tree& tree,
                                       const geo::SunPosition& sun);

/// All ground shadows in the scene at the given sun position, with
/// bounding boxes. Empty when the sun is below the horizon.
[[nodiscard]] std::vector<ShadowPolygon> cast_shadows(
    const Scene& scene, const geo::SunPosition& sun);

}  // namespace sunchase::shadow
