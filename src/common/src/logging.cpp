#include "sunchase/common/logging.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace sunchase {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warning};
std::mutex g_mutex;

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Warning:
      return "WARN";
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Off:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log_message(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << '[' << level_name(level) << "] " << message << '\n';
}

}  // namespace sunchase
