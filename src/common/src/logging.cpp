#include "sunchase/common/logging.h"

#include <atomic>
#include <iostream>
#include <mutex>

#include "sunchase/common/error.h"

namespace sunchase {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warning};
std::mutex g_mutex;

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Warning:
      return "WARN";
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Off:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

LogLevel parse_log_level(const std::string& name) {
  if (name == "debug") return LogLevel::Debug;
  if (name == "info") return LogLevel::Info;
  if (name == "warning" || name == "warn") return LogLevel::Warning;
  if (name == "error") return LogLevel::Error;
  if (name == "off") return LogLevel::Off;
  throw InvalidArgument("parse_log_level: unknown level '" + name +
                        "' (expected debug|info|warning|error|off)");
}

void log_message(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << '[' << level_name(level) << "] " << message << '\n';
}

}  // namespace sunchase
