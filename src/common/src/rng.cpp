#include "sunchase/common/rng.h"

#include <cmath>
#include <numbers>

namespace sunchase {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // Seed the four xoshiro words from SplitMix64 as its authors recommend;
  // guarantees a non-zero state for any seed.
  for (auto& w : state_) w = splitmix64(seed);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Modulo bias is < 2^-40 for the spans used here (city sizes, indices).
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::normal() noexcept {
  // Box–Muller; draw u1 away from 0 to keep log() finite.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

Rng Rng::split() noexcept { return Rng{next_u64()}; }

}  // namespace sunchase
