#include "sunchase/common/thread_pool.h"

#include <algorithm>

namespace sunchase::common {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0)
    throw InvalidArgument("ThreadPool: worker count must be positive");
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::default_worker_count() noexcept {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();  // exceptions land in the task's future, never escape here
  }
}

}  // namespace sunchase::common
