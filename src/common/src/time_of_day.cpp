#include "sunchase/common/time_of_day.h"

#include <cstdio>

#include "sunchase/common/error.h"

namespace sunchase {

TimeOfDay TimeOfDay::hms(int hour, int minute, int second) {
  if (hour < 0 || hour > 23 || minute < 0 || minute > 59 || second < 0 ||
      second > 59) {
    throw InvalidArgument("TimeOfDay::hms: out-of-range time " +
                          std::to_string(hour) + ":" + std::to_string(minute) +
                          ":" + std::to_string(second));
  }
  return TimeOfDay{static_cast<double>(hour * 3600 + minute * 60 + second)};
}

TimeOfDay TimeOfDay::parse(const std::string& text) {
  int h = 0, m = 0, s = 0;
  const int n = std::sscanf(text.c_str(), "%d:%d:%d", &h, &m, &s);
  if (n < 2) throw IoError("TimeOfDay::parse: malformed time '" + text + "'");
  try {
    return hms(h, m, n == 3 ? s : 0);
  } catch (const InvalidArgument&) {
    throw IoError("TimeOfDay::parse: out-of-range time '" + text + "'");
  }
}

TimeOfDay TimeOfDay::slot_start(int i) {
  if (i < 0 || i >= kSlotsPerDay)
    throw InvalidArgument("TimeOfDay::slot_start: slot index " +
                          std::to_string(i) + " outside [0, " +
                          std::to_string(kSlotsPerDay) + ")");
  return TimeOfDay{static_cast<double>(i * kSlotSeconds)};
}

std::string TimeOfDay::to_string() const {
  const int total = static_cast<int>(seconds_);
  char buf[16];
  std::snprintf(buf, sizeof buf, "%02d:%02d:%02d", total / 3600,
                (total / 60) % 60, total % 60);
  return buf;
}

}  // namespace sunchase
