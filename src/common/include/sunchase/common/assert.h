// Contract-checking macros in the spirit of the GSL's Expects/Ensures
// (C++ Core Guidelines I.6/I.8). Violations throw `ContractViolation` so
// tests can assert on them; they are never compiled out, because every
// caller of this library is either a test, a bench, or an example where
// the cost is negligible compared to the routing search itself.
#pragma once

#include <stdexcept>
#include <string>

namespace sunchase {

/// Thrown when a precondition (`SUNCHASE_EXPECTS`) or postcondition
/// (`SUNCHASE_ENSURES`) is violated. Carries the failing expression and
/// source location in `what()`.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(const char* kind, const char* expr, const char* file,
                    int line)
      : std::logic_error(std::string(kind) + " failed: `" + expr + "` at " +
                         file + ":" + std::to_string(line)) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(kind, expr, file, line);
}
}  // namespace detail

}  // namespace sunchase

/// Precondition check: document and enforce what a function requires.
#define SUNCHASE_EXPECTS(cond)                                            \
  do {                                                                    \
    if (!(cond))                                                          \
      ::sunchase::detail::contract_fail("precondition", #cond, __FILE__,  \
                                        __LINE__);                        \
  } while (false)

/// Postcondition check: document and enforce what a function guarantees.
#define SUNCHASE_ENSURES(cond)                                            \
  do {                                                                    \
    if (!(cond))                                                          \
      ::sunchase::detail::contract_fail("postcondition", #cond, __FILE__, \
                                        __LINE__);                        \
  } while (false)
