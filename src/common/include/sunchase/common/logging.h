// Minimal leveled logger. Benches and examples print their own report
// tables; the logger exists for diagnostics (search statistics, model
// warnings) and defaults to Warning so library output stays quiet.
#pragma once

#include <sstream>
#include <string>

namespace sunchase {

enum class LogLevel { Debug = 0, Info = 1, Warning = 2, Error = 3, Off = 4 };

/// Process-wide minimum level; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// True when a message at `level` would pass the filter. The macro
/// checks this before constructing the LogLine, so a disabled level
/// never formats its message (one relaxed atomic load and done).
[[nodiscard]] inline bool log_enabled(LogLevel level) noexcept {
  return level >= log_level();
}

/// Parses "debug" / "info" / "warning" (or "warn") / "error" / "off";
/// throws InvalidArgument on anything else.
LogLevel parse_log_level(const std::string& name);

/// Emit one line to stderr as "[LEVEL] message" if `level` passes the filter.
void log_message(LogLevel level, const std::string& message);

namespace detail {
/// Stream-style one-shot log line: builds the message in its destructor.
class LogLine {
 public:
  explicit LogLine(LogLevel level) noexcept : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, stream_.str()); }

  template <class T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a streamed LogLine so the ternary below is void on both
/// arms. operator& binds looser than operator<<, so the whole chain
/// runs first (the glog trick).
struct LogVoidify {
  void operator&(const LogLine&) const noexcept {}
};
}  // namespace detail

}  // namespace sunchase

// Short-circuits on a filtered-out level before the LogLine (and its
// ostringstream) exists: `SUNCHASE_LOG(Debug) << expensive()` evaluates
// nothing at all unless the debug level is enabled.
#define SUNCHASE_LOG(level)                                  \
  !::sunchase::log_enabled(::sunchase::LogLevel::level)      \
      ? (void)0                                              \
      : ::sunchase::detail::LogVoidify() &                   \
            ::sunchase::detail::LogLine(::sunchase::LogLevel::level)
