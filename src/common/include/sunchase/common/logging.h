// Minimal leveled logger. Benches and examples print their own report
// tables; the logger exists for diagnostics (search statistics, model
// warnings) and defaults to Warning so library output stays quiet.
#pragma once

#include <sstream>
#include <string>

namespace sunchase {

enum class LogLevel { Debug = 0, Info = 1, Warning = 2, Error = 3, Off = 4 };

/// Process-wide minimum level; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emit one line to stderr as "[LEVEL] message" if `level` passes the filter.
void log_message(LogLevel level, const std::string& message);

namespace detail {
/// Stream-style one-shot log line: builds the message in its destructor.
class LogLine {
 public:
  explicit LogLine(LogLevel level) noexcept : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, stream_.str()); }

  template <class T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace sunchase

#define SUNCHASE_LOG(level) ::sunchase::detail::LogLine(::sunchase::LogLevel::level)
