// Deterministic random number generation. Every stochastic component in
// SunChase (irradiance ramps, sensor noise, city synthesis) takes an
// explicit `Rng` so that experiments reproduce bit-for-bit from a seed.
#pragma once

#include <cstdint>

namespace sunchase {

/// xoshiro256** PRNG (Blackman & Vigna) seeded through SplitMix64.
/// Small, fast, and — unlike std::mt19937 with std::*_distribution —
/// guaranteed to produce identical streams on every platform, which the
/// reproduction benches rely on.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive); precondition lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) noexcept;

  /// A new generator seeded from this one's stream; use to hand
  /// independent sub-streams to components without sharing state.
  Rng split() noexcept;

 private:
  std::uint64_t state_[4];
};

}  // namespace sunchase
