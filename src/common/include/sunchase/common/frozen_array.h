// An immutable array that owns its storage either way: built on the
// heap (a frozen std::vector) or viewed inside a larger mapped region
// (an mmap'd snapshot section). Readers see one interface — a
// contiguous span of trivially-copyable elements — and never learn
// which one they got, so a World can be served from a zero-copy
// on-disk snapshot with the exact code paths that serve a heap-built
// one. Copies are cheap (a shared_ptr bump plus a span): the keepalive
// pointer pins whatever backs the view for as long as any copy lives.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

namespace sunchase::common {

template <typename T>
class FrozenArray {
  static_assert(std::is_trivially_copyable_v<T>,
                "FrozenArray elements must be trivially copyable: mapped "
                "storage is raw bytes reinterpreted in place");

 public:
  /// An empty array (no storage, no keepalive).
  FrozenArray() = default;

  /// Heap path: freezes `values` (moved into shared storage).
  explicit FrozenArray(std::vector<T> values) {
    auto owned = std::make_shared<const std::vector<T>>(std::move(values));
    view_ = std::span<const T>(owned->data(), owned->size());
    keepalive_ = std::move(owned);
  }

  /// View path: borrows `view` from storage pinned by `keepalive`
  /// (e.g. a span into an mmap'd file whose mapping `keepalive` owns).
  FrozenArray(std::span<const T> view, std::shared_ptr<const void> keepalive)
      : keepalive_(std::move(keepalive)), view_(view) {}

  [[nodiscard]] const T* data() const noexcept { return view_.data(); }
  [[nodiscard]] std::size_t size() const noexcept { return view_.size(); }
  [[nodiscard]] bool empty() const noexcept { return view_.empty(); }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return view_[i];
  }
  [[nodiscard]] const T* begin() const noexcept { return view_.data(); }
  [[nodiscard]] const T* end() const noexcept {
    return view_.data() + view_.size();
  }
  [[nodiscard]] std::span<const T> span() const noexcept { return view_; }

 private:
  std::shared_ptr<const void> keepalive_;
  std::span<const T> view_;
};

}  // namespace sunchase::common
