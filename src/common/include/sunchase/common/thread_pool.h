// A small fixed-size worker pool: tasks are submitted as callables and
// their results (or thrown exceptions) come back through std::future.
// This is the concurrency primitive behind core::BatchPlanner and any
// later parallel subsystem (sharded search, cache warming, async
// serving); keep it dependency-free and boring.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "sunchase/common/error.h"

namespace sunchase::common {

/// Fixed worker count, FIFO task queue, exception-propagating futures.
/// Tasks must not block on futures of tasks queued behind them (no
/// work-stealing or queue reordering here); the destructor finishes
/// every queued task before joining the workers.
class ThreadPool {
 public:
  /// Spawns `workers` threads. Throws InvalidArgument when zero.
  explicit ThreadPool(std::size_t workers);

  /// Finishes all queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` and returns the future of its result. An exception
  /// thrown by `fn` is captured and rethrown by future::get().
  template <typename F>
  [[nodiscard]] auto submit(F&& fn) -> std::future<std::invoke_result_t<F&>> {
    using R = std::invoke_result_t<F&>;
    std::packaged_task<R()> task(std::forward<F>(fn));
    std::future<R> future = task.get_future();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_)
        throw InvalidArgument("ThreadPool::submit: pool is shutting down");
      // packaged_task<R()> is move-only, which std::packaged_task (unlike
      // std::function) accepts as a wrapped callable; invoking the outer
      // task runs the inner one, which stores R or the exception.
      tasks_.emplace_back(
          [inner = std::move(task)]() mutable { inner(); });
    }
    ready_.notify_one();
    return future;
  }

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size();
  }

  /// `hardware_concurrency`, with a floor of 1 when it is unknown.
  [[nodiscard]] static std::size_t default_worker_count() noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable ready_;
  bool stopping_ = false;
};

}  // namespace sunchase::common
