// Strong physical-unit types. A `Quantity<Tag>` wraps a double and only
// mixes with other units through the explicitly defined cross-unit
// operators below, so "seconds where meters were meant" is a compile
// error instead of a silent routing bug.
#pragma once

#include <compare>
#include <cmath>

namespace sunchase {

/// A strongly-typed scalar quantity. `Tag` is an empty struct naming the
/// physical dimension; all arithmetic within one dimension is provided,
/// cross-dimension arithmetic is provided as free functions below.
template <class Tag>
class Quantity {
 public:
  constexpr Quantity() noexcept = default;
  constexpr explicit Quantity(double value) noexcept : value_(value) {}

  /// The raw magnitude in this unit's canonical scale.
  [[nodiscard]] constexpr double value() const noexcept { return value_; }

  constexpr Quantity& operator+=(Quantity rhs) noexcept {
    value_ += rhs.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity rhs) noexcept {
    value_ -= rhs.value_;
    return *this;
  }
  constexpr Quantity& operator*=(double s) noexcept {
    value_ *= s;
    return *this;
  }
  constexpr Quantity& operator/=(double s) noexcept {
    value_ /= s;
    return *this;
  }

  friend constexpr Quantity operator+(Quantity a, Quantity b) noexcept {
    return Quantity{a.value_ + b.value_};
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) noexcept {
    return Quantity{a.value_ - b.value_};
  }
  friend constexpr Quantity operator-(Quantity a) noexcept {
    return Quantity{-a.value_};
  }
  friend constexpr Quantity operator*(Quantity a, double s) noexcept {
    return Quantity{a.value_ * s};
  }
  friend constexpr Quantity operator*(double s, Quantity a) noexcept {
    return Quantity{s * a.value_};
  }
  friend constexpr Quantity operator/(Quantity a, double s) noexcept {
    return Quantity{a.value_ / s};
  }
  /// Ratio of two like quantities is a dimensionless double.
  friend constexpr double operator/(Quantity a, Quantity b) noexcept {
    return a.value_ / b.value_;
  }
  friend constexpr auto operator<=>(Quantity a, Quantity b) noexcept = default;

 private:
  double value_ = 0.0;
};

using Meters = Quantity<struct MeterTag>;
using SquareMeters = Quantity<struct SquareMeterTag>;
using Seconds = Quantity<struct SecondTag>;
using MetersPerSecond = Quantity<struct MetersPerSecondTag>;
using Watts = Quantity<struct WattTag>;
using WattHours = Quantity<struct WattHourTag>;
using WattsPerSquareMeter = Quantity<struct WattsPerSquareMeterTag>;

// --- Cross-unit arithmetic -------------------------------------------------

/// distance / time = speed
constexpr MetersPerSecond operator/(Meters d, Seconds t) noexcept {
  return MetersPerSecond{d.value() / t.value()};
}
/// distance / speed = travel time
constexpr Seconds operator/(Meters d, MetersPerSecond v) noexcept {
  return Seconds{d.value() / v.value()};
}
/// speed * time = distance
constexpr Meters operator*(MetersPerSecond v, Seconds t) noexcept {
  return Meters{v.value() * t.value()};
}
constexpr Meters operator*(Seconds t, MetersPerSecond v) noexcept {
  return v * t;
}
/// irradiance * area = power
constexpr Watts operator*(WattsPerSquareMeter g, SquareMeters a) noexcept {
  return Watts{g.value() * a.value()};
}
constexpr Watts operator*(SquareMeters a, WattsPerSquareMeter g) noexcept {
  return g * a;
}

/// power sustained for a duration, in watt-hours (the paper's EI/EC unit).
constexpr WattHours energy(Watts p, Seconds t) noexcept {
  return WattHours{p.value() * t.value() / 3600.0};
}

/// Convenience conversions.
constexpr Seconds hours(double h) noexcept { return Seconds{h * 3600.0}; }
constexpr Seconds minutes(double m) noexcept { return Seconds{m * 60.0}; }
constexpr Meters kilometers(double km) noexcept { return Meters{km * 1000.0}; }
constexpr MetersPerSecond kmh(double v) noexcept {
  return MetersPerSecond{v / 3.6};
}
/// Speed expressed back in km/h, for reporting.
constexpr double to_kmh(MetersPerSecond v) noexcept { return v.value() * 3.6; }

namespace literals {
constexpr Meters operator""_m(long double v) {
  return Meters{static_cast<double>(v)};
}
constexpr Meters operator""_m(unsigned long long v) {
  return Meters{static_cast<double>(v)};
}
constexpr Meters operator""_km(long double v) {
  return kilometers(static_cast<double>(v));
}
constexpr Seconds operator""_s(long double v) {
  return Seconds{static_cast<double>(v)};
}
constexpr Seconds operator""_s(unsigned long long v) {
  return Seconds{static_cast<double>(v)};
}
constexpr Watts operator""_W(long double v) {
  return Watts{static_cast<double>(v)};
}
constexpr Watts operator""_W(unsigned long long v) {
  return Watts{static_cast<double>(v)};
}
constexpr WattHours operator""_Wh(long double v) {
  return WattHours{static_cast<double>(v)};
}
constexpr MetersPerSecond operator""_kmh(long double v) {
  return kmh(static_cast<double>(v));
}
constexpr MetersPerSecond operator""_kmh(unsigned long long v) {
  return kmh(static_cast<double>(v));
}
}  // namespace literals

}  // namespace sunchase
