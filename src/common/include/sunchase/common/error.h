// Exception hierarchy for the SunChase library (Core Guidelines I.10:
// use exceptions to signal a failure to perform a required task).
#pragma once

#include <stdexcept>
#include <string>

namespace sunchase {

/// Base class of every error the library throws deliberately.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A caller passed an argument outside the documented domain.
class InvalidArgument : public Error {
 public:
  using Error::Error;
};

/// A file or stream could not be read/written or failed to parse.
class IoError : public Error {
 public:
  using Error::Error;
};

/// The road graph is malformed (dangling edge, unknown node, ...).
class GraphError : public Error {
 public:
  using Error::Error;
};

/// A route query cannot be satisfied (e.g. destination unreachable).
class RoutingError : public Error {
 public:
  using Error::Error;
};

/// A binary world snapshot is unreadable: bad magic, unsupported
/// format version, foreign endianness, truncation, or a checksum
/// mismatch. Messages name the file, the section, and the byte offset
/// so a corrupt journal entry can be located with a hex dump.
class SnapshotError : public Error {
 public:
  using Error::Error;
};

}  // namespace sunchase
