// Local clock time within one day. All solar geometry, shading profiles
// and traffic speeds in SunChase are keyed by time-of-day; the paper's
// solar-input map is refreshed every 15 minutes, which defines the slot
// granularity used throughout.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "sunchase/common/units.h"

namespace sunchase {

/// A local time of day, stored as seconds since midnight [0, 86400).
/// Arithmetic saturates at the day boundaries rather than wrapping: a trip
/// in this system never crosses midnight (the paper plans daytime trips).
class TimeOfDay {
 public:
  static constexpr int kSecondsPerDay = 86400;
  /// The paper updates the solar-input map every 15 minutes.
  static constexpr int kSlotSeconds = 15 * 60;
  static constexpr int kSlotsPerDay = kSecondsPerDay / kSlotSeconds;

  constexpr TimeOfDay() noexcept = default;

  /// From hour/minute/second; throws InvalidArgument when out of range.
  static TimeOfDay hms(int hour, int minute = 0, int second = 0);

  /// From seconds since midnight, clamped into [0, 86400). Non-finite
  /// input clamps too: NaN and -inf land at midnight, +inf saturates to
  /// the last second — so slot_index() never casts a NaN to int (UB).
  static constexpr TimeOfDay from_seconds(double s) noexcept {
    // NaN fails every ordered comparison, so the lower clamp is written
    // as a negation: !(NaN >= 0) is true and NaN is replaced.
    if (!(s >= 0)) s = 0;
    if (s >= kSecondsPerDay) s = kSecondsPerDay - 1;
    return TimeOfDay{s};
  }

  /// Parses "HH:MM" or "HH:MM:SS"; throws IoError on malformed input.
  static TimeOfDay parse(const std::string& text);

  [[nodiscard]] constexpr double seconds_since_midnight() const noexcept {
    return seconds_;
  }
  [[nodiscard]] constexpr double hours_since_midnight() const noexcept {
    return seconds_ / 3600.0;
  }

  /// Index of the enclosing 15-minute solar-map slot, in [0, 96).
  [[nodiscard]] constexpr int slot_index() const noexcept {
    return static_cast<int>(seconds_) / kSlotSeconds;
  }

  /// Start of slot `i`; throws InvalidArgument unless
  /// 0 <= i < kSlotsPerDay.
  static TimeOfDay slot_start(int i);

  /// This time advanced by `dt` (saturating at end of day). A
  /// non-finite `dt` clamps through from_seconds like any other
  /// out-of-day value (NaN/-inf to midnight, +inf to the last second).
  [[nodiscard]] constexpr TimeOfDay advanced_by(Seconds dt) const noexcept {
    return from_seconds(seconds_ + dt.value());
  }

  /// Elapsed time from `earlier` to this time.
  [[nodiscard]] constexpr Seconds since(TimeOfDay earlier) const noexcept {
    return Seconds{seconds_ - earlier.seconds_};
  }

  /// "HH:MM:SS" rendering for reports.
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(TimeOfDay a, TimeOfDay b) noexcept =
      default;

 private:
  constexpr explicit TimeOfDay(double s) noexcept : seconds_(s) {}
  double seconds_ = 0.0;
};

}  // namespace sunchase
