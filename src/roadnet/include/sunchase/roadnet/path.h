// A path is the paper's P(A,B) = <S_start, S_1, ..., S_n, S_end>: a
// sequence of consecutive directed edges. Helpers compute lengths and
// check connectivity.
#pragma once

#include <vector>

#include "sunchase/roadnet/graph.h"

namespace sunchase::roadnet {

/// An ordered sequence of edge ids forming a walk through the graph.
struct Path {
  std::vector<EdgeId> edges;

  [[nodiscard]] bool empty() const noexcept { return edges.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return edges.size(); }
};

/// True when consecutive edges share endpoints (a valid walk).
[[nodiscard]] bool is_connected(const Path& path, const RoadGraph& graph);

/// Sum of edge lengths. Throws GraphError for unknown edges.
[[nodiscard]] Meters path_length(const Path& path, const RoadGraph& graph);

/// The node sequence visited, origin first. Empty path -> empty vector.
[[nodiscard]] std::vector<NodeId> path_nodes(const Path& path,
                                             const RoadGraph& graph);

/// Origin / destination nodes; throw GraphError for an empty path.
[[nodiscard]] NodeId path_origin(const Path& path, const RoadGraph& graph);
[[nodiscard]] NodeId path_destination(const Path& path,
                                      const RoadGraph& graph);

/// Fraction of edge ids shared between two paths (Jaccard index); the
/// paper notes many Pareto routes share ~90% of nodes and edges.
[[nodiscard]] double edge_overlap(const Path& a, const Path& b);

}  // namespace sunchase::roadnet
