// Synthetic downtown generator. Substitutes the paper's
// OpenStreetMap/downtown-Montreal extract with a reproducible
// Montreal-style grid: rectangular blocks, alternating one-way streets,
// slight node jitter. Trip lengths and street patterns match the
// paper's simulation scale (1-2.5 km trips).
#pragma once

#include <cstdint>

#include "sunchase/geo/latlon.h"
#include "sunchase/roadnet/graph.h"

namespace sunchase::roadnet {

/// One-way layout of a generated street.
enum class StreetFlow : std::uint8_t {
  TwoWay,
  OneWayForward,   ///< increasing row/column index only
  OneWayBackward,  ///< decreasing row/column index only
};

struct GridCityOptions {
  int rows = 12;           ///< east-west streets
  int cols = 12;           ///< north-south streets
  double block_east_m = 110.0;   ///< Montreal-ish short block
  double block_north_m = 90.0;
  /// Fraction of streets that are one-way (alternating direction), as
  /// in downtown grids; drives the A1->B1 vs A2->B2 asymmetry of
  /// Table R-I.
  double one_way_fraction = 0.5;
  double node_jitter_m = 4.0;  ///< intersection position noise
  geo::LatLon origin{45.4995, -73.5700};  ///< downtown Montreal
  std::uint64_t seed = 7;
};

/// A generated city: the road graph plus the row/column lattice mapping
/// needed by scene generators and experiment scripts.
class GridCity {
 public:
  explicit GridCity(const GridCityOptions& options);

  [[nodiscard]] const RoadGraph& graph() const noexcept { return graph_; }
  [[nodiscard]] const GridCityOptions& options() const noexcept {
    return options_;
  }

  /// Node at lattice coordinates; throws InvalidArgument out of range.
  [[nodiscard]] NodeId node_at(int row, int col) const;

  /// Flow direction assigned to an east-west street (row) or a
  /// north-south street (column).
  [[nodiscard]] StreetFlow row_flow(int row) const;
  [[nodiscard]] StreetFlow col_flow(int col) const;

 private:
  GridCityOptions options_;
  RoadGraph graph_;
  std::vector<NodeId> lattice_;     // rows*cols node ids
  std::vector<StreetFlow> row_flow_;
  std::vector<StreetFlow> col_flow_;
};

}  // namespace sunchase::roadnet
