// Traffic flow model. The paper reads current traffic speed from
// Google Maps and assumes constant speed per road segment (Sec. III-A);
// its simulations use an urban 14-17 km/h band. This module substitutes
// a deterministic per-edge, time-of-day speed model.
#pragma once

#include <cstdint>

#include "sunchase/common/time_of_day.h"
#include "sunchase/common/units.h"
#include "sunchase/roadnet/graph.h"

namespace sunchase::roadnet {

/// Interface: expected cruising speed on an edge at a time of day.
/// Implementations must return strictly positive speeds.
class TrafficModel {
 public:
  virtual ~TrafficModel() = default;
  [[nodiscard]] virtual MetersPerSecond speed(const RoadGraph& graph,
                                              EdgeId edge,
                                              TimeOfDay when) const = 0;

  /// Travel time on an edge = length / speed (paper: constant speed per
  /// segment, time driven by traffic flow and length).
  [[nodiscard]] Seconds travel_time(const RoadGraph& graph, EdgeId edge,
                                    TimeOfDay when) const;

  /// An upper bound on speed(graph, edge, t) over EVERY time of day —
  /// the admissibility contract behind min_travel_time and the MLC
  /// lower-bound pruning built on it: returning less than any
  /// instantaneous speed would make the search prune reachable routes.
  /// The default samples the 96 slot starts and takes the maximum,
  /// which is exact for slot-constant models; models whose speed varies
  /// within a slot must override with a true bound.
  [[nodiscard]] virtual MetersPerSecond max_speed(const RoadGraph& graph,
                                                  EdgeId edge) const;

  /// A lower bound on travel_time(graph, edge, t) over every time of
  /// day: length / max_speed. The static edge weight of the reverse
  /// Dijkstra that computes time-to-destination lower bounds.
  [[nodiscard]] Seconds min_travel_time(const RoadGraph& graph,
                                        EdgeId edge) const;
};

/// Same speed on every edge at every time. Useful for tests and for
/// isolating solar effects in ablations.
class UniformTraffic final : public TrafficModel {
 public:
  explicit UniformTraffic(MetersPerSecond speed);
  [[nodiscard]] MetersPerSecond speed(const RoadGraph&, EdgeId,
                                      TimeOfDay) const override;
  [[nodiscard]] MetersPerSecond max_speed(const RoadGraph&,
                                          EdgeId) const override;

  /// The single constant speed (snapshot serialization reads it back).
  [[nodiscard]] MetersPerSecond uniform_speed() const noexcept {
    return speed_;
  }

 private:
  MetersPerSecond speed_;
};

/// Urban traffic: each edge gets a stable free-flow speed drawn
/// deterministically from [min, max] (seed + edge id), then modulated by
/// a rush-hour profile (slower 7:30-9:30 and 16:00-18:30). The default
/// band reproduces the paper's simulated 14-17 km/h range across the
/// day: free flow near 16.2-17 km/h, rush hour pulling it toward
/// ~13.8 km/h. The per-street spread at any single instant is kept
/// narrow so that consumption differences between candidate routes are
/// driven by route length, as in the paper's tables.
class UrbanTraffic final : public TrafficModel {
 public:
  struct Options {
    MetersPerSecond min_speed = kmh(16.2);
    MetersPerSecond max_speed = kmh(17.0);
    double rush_hour_slowdown = 0.85;  ///< multiplier at rush-hour peak
    std::uint64_t seed = 42;
  };

  explicit UrbanTraffic(Options options);
  [[nodiscard]] MetersPerSecond speed(const RoadGraph& graph, EdgeId edge,
                                      TimeOfDay when) const override;
  /// The edge's free-flow speed: congestion_factor is <= 1 everywhere
  /// (continuous in time, so slot-start sampling would undershoot).
  [[nodiscard]] MetersPerSecond max_speed(const RoadGraph& graph,
                                          EdgeId edge) const override;

  /// The time-of-day congestion multiplier in (0, 1], exposed for tests.
  [[nodiscard]] double congestion_factor(TimeOfDay when) const noexcept;

  /// The construction options (snapshot serialization reads them back;
  /// the model is a pure function of them, so persisting the options
  /// reproduces the model bit-exactly).
  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  Options options_;
};

}  // namespace sunchase::roadnet
