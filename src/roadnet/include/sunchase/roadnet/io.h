// Text serialization of road graphs: a small line-oriented format in
// the spirit of an OSM extract, so scenarios can be shipped as data
// files and inspected by hand.
//
//   # comment
//   node <lat> <lon>
//   edge <from-index> <to-index> [oneway]
//
// `edge` without `oneway` emits both directions. Node indices refer to
// the order of `node` lines (0-based).
#pragma once

#include <iosfwd>
#include <string>

#include "sunchase/roadnet/graph.h"

namespace sunchase::roadnet {

/// Parses the text format; throws IoError with a line number on any
/// malformed input. `source` names the input in error messages (the
/// file path when reading a file; defaults to the bare stream form
/// "read_graph: line N: ..." when empty).
[[nodiscard]] RoadGraph read_graph(std::istream& in,
                                   const std::string& source = {});
[[nodiscard]] RoadGraph read_graph_file(const std::string& path);

/// Writes the graph in the same format. Two opposite directed edges are
/// not merged back into a single `edge` line — every directed edge
/// becomes one `oneway` line, which round-trips exactly.
void write_graph(std::ostream& out, const RoadGraph& graph);
void write_graph_file(const std::string& path, const RoadGraph& graph);

}  // namespace sunchase::roadnet
