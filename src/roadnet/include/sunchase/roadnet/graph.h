// The directed weighted road graph of Sec. III-B: nodes are
// intersections with geographic coordinates, edges are road segments,
// and edge lengths come from the Haversine formula (Eq. 7).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "sunchase/common/units.h"
#include "sunchase/geo/latlon.h"

namespace sunchase::roadnet {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

/// An intersection.
struct Node {
  geo::LatLon position;
};

/// A directed road segment between two intersections.
struct Edge {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  Meters length{0.0};
};

/// Directed road graph with CSR-style adjacency built lazily: edges can
/// be appended freely; the first adjacency query (or an explicit
/// `finalize()`) freezes the index, and later mutation rebuilds it.
class RoadGraph {
 public:
  /// Adds an intersection; returns its id (dense, starting at 0).
  NodeId add_node(geo::LatLon position);

  /// Adds a directed edge; length defaults to the Haversine distance
  /// between the endpoints (Eq. 7). Throws GraphError on unknown nodes
  /// or a self-loop.
  EdgeId add_edge(NodeId from, NodeId to);
  EdgeId add_edge(NodeId from, NodeId to, Meters length);

  /// Adds the pair of directed edges of a two-way street; returns the
  /// forward edge id (the reverse is the next id).
  EdgeId add_two_way(NodeId u, NodeId v);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return edges_.size();
  }

  /// Accessors; throw GraphError on out-of-range ids.
  [[nodiscard]] const Node& node(NodeId id) const;
  [[nodiscard]] const Edge& edge(EdgeId id) const;

  /// Outgoing edge ids of a node (triggers finalize on first use).
  [[nodiscard]] std::span<const EdgeId> out_edges(NodeId id) const;

  /// The edge from `u` to `v`, or kInvalidEdge when absent.
  [[nodiscard]] EdgeId find_edge(NodeId u, NodeId v) const;

  /// Node nearest to a coordinate (linear scan; graphs here are small).
  /// Throws GraphError on an empty graph.
  [[nodiscard]] NodeId nearest_node(geo::LatLon p) const;

  /// Structural checks: every edge endpoint exists, no zero/negative
  /// lengths, no duplicate directed edges. Throws GraphError.
  void validate() const;

  /// Builds the adjacency index now (otherwise built on first query).
  void finalize() const;

 private:
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  // Lazy CSR adjacency: offsets_[n]..offsets_[n+1] index into sorted_.
  mutable std::vector<std::uint32_t> offsets_;
  mutable std::vector<EdgeId> sorted_;
  mutable bool index_valid_ = false;
};

}  // namespace sunchase::roadnet
