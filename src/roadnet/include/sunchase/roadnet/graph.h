// The directed weighted road graph of Sec. III-B: nodes are
// intersections with geographic coordinates, edges are road segments,
// and edge lengths come from the Haversine formula (Eq. 7).
//
// Construction and querying are split into two types so that the query
// side is immutable and therefore safe to share across threads and
// world snapshots (core::World):
//
//   - `GraphBuilder` accumulates nodes and edges (the only mutable
//     stage), then `build()` produces a frozen graph;
//   - `RoadGraph` is the frozen result: its CSR adjacency index is
//     built eagerly at construction, every accessor is a pure read,
//     and nothing is lazily materialized — concurrent readers never
//     race (the historical lazy-`finalize()` rebuild was a data race
//     waiting for its first pair of simultaneous readers).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "sunchase/common/frozen_array.h"
#include "sunchase/common/units.h"
#include "sunchase/geo/latlon.h"

namespace sunchase::roadnet {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

/// An intersection.
struct Node {
  geo::LatLon position;
};

/// A directed road segment between two intersections.
struct Edge {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  Meters length{0.0};
};

class GraphBuilder;

/// Immutable directed road graph with an eagerly-built CSR adjacency
/// index. Obtain one from `GraphBuilder::build()` (the default
/// constructor yields an empty graph). Every member function is a
/// const pure read — instances can be shared freely across threads.
class RoadGraph {
 public:
  /// The frozen storage of a graph: the node/edge arrays plus both CSR
  /// indexes, each held as a FrozenArray so they can live on the heap
  /// (GraphBuilder::build) or alias an mmap'd snapshot section
  /// (from_parts) behind the same read interface.
  struct FrozenParts {
    common::FrozenArray<Node> nodes;
    common::FrozenArray<Edge> edges;
    common::FrozenArray<std::uint32_t> out_offsets;  ///< node_count + 1
    common::FrozenArray<EdgeId> out_sorted;          ///< edge_count
    common::FrozenArray<std::uint32_t> in_offsets;   ///< node_count + 1
    common::FrozenArray<EdgeId> in_sorted;           ///< edge_count
  };

  /// An empty graph (no nodes, no edges).
  RoadGraph() = default;

  /// Adopts pre-frozen storage (e.g. views into a mapped snapshot)
  /// without rebuilding the CSR indexes. Validates the structural
  /// invariants GraphBuilder guarantees — array sizes agree, offsets
  /// are monotone and bounded, every sorted entry is a valid edge id
  /// grouped under the right node, edge endpoints exist — and throws
  /// GraphError naming the first violated one, so a codec bug (or a
  /// forged file that passes its checksums) cannot produce a graph
  /// whose accessors read out of bounds.
  [[nodiscard]] static RoadGraph from_parts(FrozenParts parts);

  /// This graph's frozen storage (cheap shared views — copying a part
  /// pins the backing storage, heap or mapping alike).
  [[nodiscard]] const FrozenParts& parts() const noexcept { return parts_; }

  [[nodiscard]] std::size_t node_count() const noexcept {
    return parts_.nodes.size();
  }
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return parts_.edges.size();
  }

  /// Accessors; throw GraphError on out-of-range ids.
  [[nodiscard]] const Node& node(NodeId id) const;
  [[nodiscard]] const Edge& edge(EdgeId id) const;

  /// Outgoing edge ids of a node (a span into the frozen CSR index).
  [[nodiscard]] std::span<const EdgeId> out_edges(NodeId id) const;

  /// Incoming edge ids of a node (a span into the frozen reverse CSR
  /// index, built eagerly like the forward one). This is the reverse
  /// adjacency a backward search walks — e.g. the reverse Dijkstra
  /// that computes time-to-destination lower bounds for MLC pruning.
  [[nodiscard]] std::span<const EdgeId> in_edges(NodeId id) const;

  /// The edge from `u` to `v`, or kInvalidEdge when absent.
  [[nodiscard]] EdgeId find_edge(NodeId u, NodeId v) const;

  /// Node nearest to a coordinate (linear scan; graphs here are small).
  /// Throws GraphError on an empty graph.
  [[nodiscard]] NodeId nearest_node(geo::LatLon p) const;

  /// Structural checks: every edge endpoint exists, no zero/negative
  /// lengths, no duplicate directed edges. Throws GraphError.
  void validate() const;

 private:
  friend class GraphBuilder;
  RoadGraph(std::vector<Node> nodes, std::vector<Edge> edges);
  explicit RoadGraph(FrozenParts parts) : parts_(std::move(parts)) {}

  // CSR adjacency: out_offsets[n]..out_offsets[n+1] index into
  // out_sorted; the `in_` pair is the reverse index keyed by edge .to.
  FrozenParts parts_;
};

/// The mutable construction stage: append nodes and edges freely, then
/// `build()` a frozen RoadGraph. A builder can keep appending after a
/// build and build again — each build is an independent snapshot.
class GraphBuilder {
 public:
  /// Adds an intersection; returns its id (dense, starting at 0).
  NodeId add_node(geo::LatLon position);

  /// Adds a directed edge; length defaults to the Haversine distance
  /// between the endpoints (Eq. 7). Throws GraphError on unknown nodes
  /// or a self-loop.
  EdgeId add_edge(NodeId from, NodeId to);
  EdgeId add_edge(NodeId from, NodeId to, Meters length);

  /// Adds the pair of directed edges of a two-way street; returns the
  /// forward edge id (the reverse is the next id).
  EdgeId add_two_way(NodeId u, NodeId v);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return edges_.size();
  }

  /// Freezes the current nodes/edges into an immutable graph (builds
  /// the CSR adjacency index eagerly).
  [[nodiscard]] RoadGraph build() const&;
  [[nodiscard]] RoadGraph build() &&;

 private:
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
};

}  // namespace sunchase::roadnet
