// Turn-by-turn directions for a routed path: compass bearings and turn
// classification at every intersection, so a plan can be read to a
// driver instead of as an edge list.
#pragma once

#include <string>
#include <vector>

#include "sunchase/roadnet/path.h"

namespace sunchase::roadnet {

enum class Turn : std::uint8_t {
  Depart,      ///< first instruction
  Straight,    ///< |heading change| < 30 degrees
  SlightLeft,  ///< 30..60 left
  Left,        ///< 60..135 left
  SharpLeft,   ///< > 135 left
  SlightRight,
  Right,
  SharpRight,
  UTurn,  ///< ~reverse (> 165 either way)
  Arrive,
};

/// One instruction: the maneuver, then continue `distance` along
/// `bearing` (degrees clockwise from north).
struct Direction {
  Turn turn = Turn::Straight;
  Meters distance{0.0};
  double bearing_deg = 0.0;
  NodeId at_node = kInvalidNode;  ///< where the maneuver happens
};

/// Compass bearing of an edge (degrees clockwise from north, [0, 360)).
[[nodiscard]] double edge_bearing_deg(const RoadGraph& graph, EdgeId edge);

/// Turn classification for a heading change in degrees (signed,
/// positive = right/clockwise, normalized to (-180, 180]).
[[nodiscard]] Turn classify_turn(double heading_change_deg) noexcept;

/// Full instruction list for a path. Consecutive near-straight edges
/// merge into one instruction. Throws GraphError for a disconnected
/// path; an empty path yields only an Arrive instruction.
[[nodiscard]] std::vector<Direction> directions_for(const RoadGraph& graph,
                                                    const Path& path);

/// Human-readable rendering ("turn left, continue 210 m heading east").
[[nodiscard]] std::string to_string(const Direction& direction);
[[nodiscard]] std::string to_string(Turn turn);

}  // namespace sunchase::roadnet
