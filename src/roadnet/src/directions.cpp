#include "sunchase/roadnet/directions.h"

#include <cmath>
#include <cstdio>
#include <numbers>

#include "sunchase/common/error.h"

namespace sunchase::roadnet {

namespace {

/// Normalizes an angle difference to (-180, 180].
double normalize_deg(double deg) noexcept {
  while (deg > 180.0) deg -= 360.0;
  while (deg <= -180.0) deg += 360.0;
  return deg;
}

const char* cardinal(double bearing_deg) noexcept {
  static const char* const names[] = {"north", "north-east", "east",
                                      "south-east", "south", "south-west",
                                      "west", "north-west"};
  const int idx =
      static_cast<int>(std::lround(bearing_deg / 45.0)) % 8;
  return names[(idx + 8) % 8];
}

}  // namespace

double edge_bearing_deg(const RoadGraph& graph, EdgeId edge) {
  const auto& e = graph.edge(edge);
  const geo::LatLon a = graph.node(e.from).position;
  const geo::LatLon b = graph.node(e.to).position;
  // Local planar approximation is ample at street scale.
  const double east = (b.lon_deg - a.lon_deg) *
                      std::cos(a.lat_deg * std::numbers::pi / 180.0);
  const double north = b.lat_deg - a.lat_deg;
  double bearing = std::atan2(east, north) * 180.0 / std::numbers::pi;
  if (bearing < 0.0) bearing += 360.0;
  return bearing;
}

Turn classify_turn(double heading_change_deg) noexcept {
  const double d = normalize_deg(heading_change_deg);
  const double mag = std::abs(d);
  if (mag > 165.0) return Turn::UTurn;
  if (mag < 30.0) return Turn::Straight;
  if (d > 0.0) {  // clockwise = right
    if (mag < 60.0) return Turn::SlightRight;
    return mag < 135.0 ? Turn::Right : Turn::SharpRight;
  }
  if (mag < 60.0) return Turn::SlightLeft;
  return mag < 135.0 ? Turn::Left : Turn::SharpLeft;
}

std::vector<Direction> directions_for(const RoadGraph& graph,
                                      const Path& path) {
  std::vector<Direction> out;
  if (path.empty()) {
    out.push_back(Direction{Turn::Arrive, Meters{0.0}, 0.0, kInvalidNode});
    return out;
  }
  if (!is_connected(path, graph))
    throw GraphError("directions_for: path is not connected");

  double prev_bearing = edge_bearing_deg(graph, path.edges.front());
  Direction current{Turn::Depart, graph.edge(path.edges.front()).length,
                    prev_bearing, graph.edge(path.edges.front()).from};
  for (std::size_t i = 1; i < path.edges.size(); ++i) {
    const EdgeId e = path.edges[i];
    const double bearing = edge_bearing_deg(graph, e);
    const Turn turn = classify_turn(bearing - prev_bearing);
    if (turn == Turn::Straight) {
      current.distance += graph.edge(e).length;  // merge
    } else {
      out.push_back(current);
      current = Direction{turn, graph.edge(e).length, bearing,
                          graph.edge(e).from};
    }
    prev_bearing = bearing;
  }
  out.push_back(current);
  out.push_back(Direction{Turn::Arrive, Meters{0.0}, prev_bearing,
                          graph.edge(path.edges.back()).to});
  return out;
}

std::string to_string(Turn turn) {
  switch (turn) {
    case Turn::Depart:
      return "depart";
    case Turn::Straight:
      return "continue straight";
    case Turn::SlightLeft:
      return "bear left";
    case Turn::Left:
      return "turn left";
    case Turn::SharpLeft:
      return "turn sharply left";
    case Turn::SlightRight:
      return "bear right";
    case Turn::Right:
      return "turn right";
    case Turn::SharpRight:
      return "turn sharply right";
    case Turn::UTurn:
      return "make a U-turn";
    case Turn::Arrive:
      return "arrive at your destination";
  }
  return "?";
}

std::string to_string(const Direction& direction) {
  if (direction.turn == Turn::Arrive) return to_string(direction.turn);
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s, continue %.0f m heading %s",
                to_string(direction.turn).c_str(),
                direction.distance.value(), cardinal(direction.bearing_deg));
  return buf;
}

}  // namespace sunchase::roadnet
