#include "sunchase/roadnet/path.h"

#include <algorithm>

#include "sunchase/common/error.h"

namespace sunchase::roadnet {

bool is_connected(const Path& path, const RoadGraph& graph) {
  for (std::size_t i = 0; i + 1 < path.edges.size(); ++i) {
    if (graph.edge(path.edges[i]).to != graph.edge(path.edges[i + 1]).from)
      return false;
  }
  return true;
}

Meters path_length(const Path& path, const RoadGraph& graph) {
  Meters total{0.0};
  for (const EdgeId e : path.edges) total += graph.edge(e).length;
  return total;
}

std::vector<NodeId> path_nodes(const Path& path, const RoadGraph& graph) {
  std::vector<NodeId> nodes;
  if (path.empty()) return nodes;
  nodes.reserve(path.size() + 1);
  nodes.push_back(graph.edge(path.edges.front()).from);
  for (const EdgeId e : path.edges) nodes.push_back(graph.edge(e).to);
  return nodes;
}

NodeId path_origin(const Path& path, const RoadGraph& graph) {
  if (path.empty()) throw GraphError("path_origin: empty path");
  return graph.edge(path.edges.front()).from;
}

NodeId path_destination(const Path& path, const RoadGraph& graph) {
  if (path.empty()) throw GraphError("path_destination: empty path");
  return graph.edge(path.edges.back()).to;
}

double edge_overlap(const Path& a, const Path& b) {
  if (a.empty() && b.empty()) return 1.0;
  std::vector<EdgeId> sa = a.edges;
  std::vector<EdgeId> sb = b.edges;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  std::vector<EdgeId> common;
  std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::back_inserter(common));
  std::vector<EdgeId> all;
  std::set_union(sa.begin(), sa.end(), sb.begin(), sb.end(),
                 std::back_inserter(all));
  return all.empty() ? 1.0
                     : static_cast<double>(common.size()) /
                           static_cast<double>(all.size());
}

}  // namespace sunchase::roadnet
