#include "sunchase/roadnet/traffic.h"

#include <algorithm>
#include <cmath>

#include "sunchase/common/error.h"

namespace sunchase::roadnet {

Seconds TrafficModel::travel_time(const RoadGraph& graph, EdgeId edge,
                                  TimeOfDay when) const {
  return graph.edge(edge).length / speed(graph, edge, when);
}

MetersPerSecond TrafficModel::max_speed(const RoadGraph& graph,
                                        EdgeId edge) const {
  double best = 0.0;
  for (int slot = 0; slot < TimeOfDay::kSlotsPerDay; ++slot) {
    const auto when = TimeOfDay::slot_start(slot);
    best = std::max(best, speed(graph, edge, when).value());
  }
  return MetersPerSecond{best};
}

Seconds TrafficModel::min_travel_time(const RoadGraph& graph,
                                      EdgeId edge) const {
  return graph.edge(edge).length / max_speed(graph, edge);
}

UniformTraffic::UniformTraffic(MetersPerSecond speed) : speed_(speed) {
  if (speed.value() <= 0.0)
    throw InvalidArgument("UniformTraffic: non-positive speed");
}

MetersPerSecond UniformTraffic::speed(const RoadGraph&, EdgeId,
                                      TimeOfDay) const {
  return speed_;
}

MetersPerSecond UniformTraffic::max_speed(const RoadGraph&, EdgeId) const {
  return speed_;
}

UrbanTraffic::UrbanTraffic(Options options) : options_(options) {
  if (options.min_speed.value() <= 0.0 ||
      options.max_speed < options.min_speed)
    throw InvalidArgument("UrbanTraffic: bad speed band");
  if (options.rush_hour_slowdown <= 0.0 || options.rush_hour_slowdown > 1.0)
    throw InvalidArgument("UrbanTraffic: slowdown must be in (0,1]");
}

double UrbanTraffic::congestion_factor(TimeOfDay when) const noexcept {
  // Two smooth rush-hour dips (morning 8:30, evening 17:15), each ~1h
  // wide, floor at rush_hour_slowdown.
  const double h = when.hours_since_midnight();
  auto dip = [&](double center, double width) {
    const double z = (h - center) / width;
    return (1.0 - options_.rush_hour_slowdown) * std::exp(-z * z);
  };
  const double factor = 1.0 - dip(8.5, 1.0) - dip(17.25, 1.25);
  return factor < options_.rush_hour_slowdown ? options_.rush_hour_slowdown
                                              : factor;
}

MetersPerSecond UrbanTraffic::max_speed(const RoadGraph& graph,
                                        EdgeId edge) const {
  (void)graph.edge(edge);  // range-check the id
  // Stable per-edge hash -> [0,1); mix with the seed (SplitMix64 finalizer).
  std::uint64_t z = options_.seed + 0x9e3779b97f4a7c15ULL * (edge + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  const double u =
      static_cast<double>(z >> 11) * 0x1.0p-53;  // uniform in [0,1)
  const double base = options_.min_speed.value() +
                      u * (options_.max_speed.value() -
                           options_.min_speed.value());
  return MetersPerSecond{base};
}

MetersPerSecond UrbanTraffic::speed(const RoadGraph& graph, EdgeId edge,
                                    TimeOfDay when) const {
  return MetersPerSecond{max_speed(graph, edge).value() *
                         congestion_factor(when)};
}

}  // namespace sunchase::roadnet
