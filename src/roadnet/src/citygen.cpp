#include "sunchase/roadnet/citygen.h"

#include <utility>

#include "sunchase/common/error.h"
#include "sunchase/common/rng.h"

namespace sunchase::roadnet {

GridCity::GridCity(const GridCityOptions& options) : options_(options) {
  if (options.rows < 2 || options.cols < 2)
    throw InvalidArgument("GridCity: need at least a 2x2 lattice");
  if (options.block_east_m <= 0.0 || options.block_north_m <= 0.0)
    throw InvalidArgument("GridCity: non-positive block size");
  if (options.one_way_fraction < 0.0 || options.one_way_fraction > 1.0)
    throw InvalidArgument("GridCity: one_way_fraction outside [0,1]");

  Rng rng(options.seed);
  const geo::LocalProjection proj(options.origin);
  GraphBuilder builder;

  // Place jittered intersections on the lattice.
  lattice_.reserve(static_cast<std::size_t>(options.rows) *
                   static_cast<std::size_t>(options.cols));
  for (int r = 0; r < options.rows; ++r) {
    for (int c = 0; c < options.cols; ++c) {
      const double jx = options.node_jitter_m > 0.0
                            ? rng.uniform(-options.node_jitter_m,
                                          options.node_jitter_m)
                            : 0.0;
      const double jy = options.node_jitter_m > 0.0
                            ? rng.uniform(-options.node_jitter_m,
                                          options.node_jitter_m)
                            : 0.0;
      const geo::Vec2 local{c * options.block_east_m + jx,
                            r * options.block_north_m + jy};
      lattice_.push_back(builder.add_node(proj.to_geo(local)));
    }
  }

  // Assign flow directions: one-way streets alternate direction with
  // their neighbours, as downtown grids do. Boundary streets stay
  // two-way so no corner intersection can degenerate into a pure
  // source or sink (which would break strong connectivity).
  auto assign_flows = [&](int count) {
    std::vector<StreetFlow> flows(static_cast<std::size_t>(count));
    bool forward = rng.bernoulli(0.5);
    for (int i = 0; i < count; ++i) {
      const bool boundary = (i == 0 || i == count - 1);
      if (!boundary && rng.bernoulli(options_.one_way_fraction)) {
        flows[static_cast<std::size_t>(i)] =
            forward ? StreetFlow::OneWayForward : StreetFlow::OneWayBackward;
        forward = !forward;
      } else {
        flows[static_cast<std::size_t>(i)] = StreetFlow::TwoWay;
      }
    }
    return flows;
  };
  row_flow_ = assign_flows(options.rows);
  col_flow_ = assign_flows(options.cols);

  auto connect = [&](NodeId a, NodeId b, StreetFlow flow) {
    switch (flow) {
      case StreetFlow::TwoWay:
        builder.add_two_way(a, b);
        break;
      case StreetFlow::OneWayForward:
        builder.add_edge(a, b);
        break;
      case StreetFlow::OneWayBackward:
        builder.add_edge(b, a);
        break;
    }
  };

  // East-west streets (within a row, increasing column index).
  for (int r = 0; r < options.rows; ++r)
    for (int c = 0; c + 1 < options.cols; ++c)
      connect(node_at(r, c), node_at(r, c + 1),
              row_flow_[static_cast<std::size_t>(r)]);
  // North-south streets (within a column, increasing row index).
  for (int c = 0; c < options.cols; ++c)
    for (int r = 0; r + 1 < options.rows; ++r)
      connect(node_at(r, c), node_at(r + 1, c),
              col_flow_[static_cast<std::size_t>(c)]);

  graph_ = std::move(builder).build();
  graph_.validate();
}

NodeId GridCity::node_at(int row, int col) const {
  if (row < 0 || row >= options_.rows || col < 0 || col >= options_.cols)
    throw InvalidArgument("GridCity::node_at: lattice index out of range");
  return lattice_[static_cast<std::size_t>(row) *
                      static_cast<std::size_t>(options_.cols) +
                  static_cast<std::size_t>(col)];
}

StreetFlow GridCity::row_flow(int row) const {
  if (row < 0 || row >= options_.rows)
    throw InvalidArgument("GridCity::row_flow: out of range");
  return row_flow_[static_cast<std::size_t>(row)];
}

StreetFlow GridCity::col_flow(int col) const {
  if (col < 0 || col >= options_.cols)
    throw InvalidArgument("GridCity::col_flow: out of range");
  return col_flow_[static_cast<std::size_t>(col)];
}

}  // namespace sunchase::roadnet
