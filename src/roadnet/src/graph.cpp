#include "sunchase/roadnet/graph.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "sunchase/common/error.h"

namespace sunchase::roadnet {

RoadGraph::RoadGraph(std::vector<Node> nodes, std::vector<Edge> edges) {
  std::vector<EdgeId> out_sorted(edges.size());
  for (EdgeId e = 0; e < edges.size(); ++e) out_sorted[e] = e;
  std::sort(out_sorted.begin(), out_sorted.end(),
            [&edges](EdgeId a, EdgeId b) {
              return edges[a].from < edges[b].from;
            });
  std::vector<std::uint32_t> out_offsets(nodes.size() + 1, 0);
  for (const Edge& e : edges) ++out_offsets[e.from + 1];
  for (std::size_t n = 1; n < out_offsets.size(); ++n)
    out_offsets[n] += out_offsets[n - 1];

  std::vector<EdgeId> in_sorted(edges.size());
  for (EdgeId e = 0; e < edges.size(); ++e) in_sorted[e] = e;
  std::sort(in_sorted.begin(), in_sorted.end(),
            [&edges](EdgeId a, EdgeId b) {
              return edges[a].to < edges[b].to;
            });
  std::vector<std::uint32_t> in_offsets(nodes.size() + 1, 0);
  for (const Edge& e : edges) ++in_offsets[e.to + 1];
  for (std::size_t n = 1; n < in_offsets.size(); ++n)
    in_offsets[n] += in_offsets[n - 1];

  parts_.nodes = common::FrozenArray<Node>(std::move(nodes));
  parts_.edges = common::FrozenArray<Edge>(std::move(edges));
  parts_.out_offsets =
      common::FrozenArray<std::uint32_t>(std::move(out_offsets));
  parts_.out_sorted = common::FrozenArray<EdgeId>(std::move(out_sorted));
  parts_.in_offsets = common::FrozenArray<std::uint32_t>(std::move(in_offsets));
  parts_.in_sorted = common::FrozenArray<EdgeId>(std::move(in_sorted));
}

RoadGraph RoadGraph::from_parts(FrozenParts parts) {
  const std::size_t nodes = parts.nodes.size();
  const std::size_t edges = parts.edges.size();
  auto check_index = [&](const char* which,
                         const common::FrozenArray<std::uint32_t>& offsets,
                         const common::FrozenArray<EdgeId>& sorted,
                         bool forward) {
    const std::string where = std::string("from_parts: ") + which;
    if (sorted.size() != edges)
      throw GraphError(where + ": sorted index has " +
                       std::to_string(sorted.size()) + " entries for " +
                       std::to_string(edges) + " edges");
    if (offsets.size() != nodes + 1) {
      // A default-constructed (fully empty) graph has no offset arrays
      // at all; anything else must carry node_count + 1 offsets.
      if (!(nodes == 0 && edges == 0 && offsets.empty()))
        throw GraphError(where + ": offsets array has " +
                         std::to_string(offsets.size()) + " entries for " +
                         std::to_string(nodes) + " nodes");
      return;
    }
    if (offsets[0] != 0)
      throw GraphError(where + ": offsets do not start at 0");
    for (std::size_t n = 1; n <= nodes; ++n)
      if (offsets[n] < offsets[n - 1])
        throw GraphError(where + ": offsets decrease at node " +
                         std::to_string(n - 1));
    if (offsets[nodes] != edges)
      throw GraphError(where + ": offsets end at " +
                       std::to_string(offsets[nodes]) + ", expected " +
                       std::to_string(edges));
    for (std::size_t n = 0; n < nodes; ++n) {
      for (std::uint32_t k = offsets[n]; k < offsets[n + 1]; ++k) {
        const EdgeId e = sorted[k];
        if (e >= edges)
          throw GraphError(where + ": sorted entry " + std::to_string(k) +
                           " names unknown edge " + std::to_string(e));
        const NodeId endpoint =
            forward ? parts.edges[e].from : parts.edges[e].to;
        if (endpoint != n)
          throw GraphError(where + ": edge " + std::to_string(e) +
                           " grouped under node " + std::to_string(n) +
                           " but its endpoint is " + std::to_string(endpoint));
      }
    }
  };
  for (std::size_t e = 0; e < edges; ++e)
    if (parts.edges[e].from >= nodes || parts.edges[e].to >= nodes)
      throw GraphError("from_parts: edge " + std::to_string(e) +
                       " references unknown node");
  check_index("out", parts.out_offsets, parts.out_sorted, true);
  check_index("in", parts.in_offsets, parts.in_sorted, false);
  return RoadGraph(std::move(parts));
}

const Node& RoadGraph::node(NodeId id) const {
  if (id >= parts_.nodes.size()) throw GraphError("node: id out of range");
  return parts_.nodes[id];
}

const Edge& RoadGraph::edge(EdgeId id) const {
  if (id >= parts_.edges.size()) throw GraphError("edge: id out of range");
  return parts_.edges[id];
}

std::span<const EdgeId> RoadGraph::out_edges(NodeId id) const {
  if (id >= parts_.nodes.size())
    throw GraphError("out_edges: id out of range");
  return {parts_.out_sorted.data() + parts_.out_offsets[id],
          parts_.out_offsets[id + 1] - parts_.out_offsets[id]};
}

std::span<const EdgeId> RoadGraph::in_edges(NodeId id) const {
  if (id >= parts_.nodes.size())
    throw GraphError("in_edges: id out of range");
  return {parts_.in_sorted.data() + parts_.in_offsets[id],
          parts_.in_offsets[id + 1] - parts_.in_offsets[id]};
}

EdgeId RoadGraph::find_edge(NodeId u, NodeId v) const {
  for (const EdgeId e : out_edges(u))
    if (parts_.edges[e].to == v) return e;
  return kInvalidEdge;
}

NodeId RoadGraph::nearest_node(geo::LatLon p) const {
  if (parts_.nodes.empty()) throw GraphError("nearest_node: empty graph");
  NodeId best = 0;
  Meters best_d = geo::haversine_distance(p, parts_.nodes[0].position);
  for (NodeId n = 1; n < parts_.nodes.size(); ++n) {
    const Meters d = geo::haversine_distance(p, parts_.nodes[n].position);
    if (d < best_d) {
      best_d = d;
      best = n;
    }
  }
  return best;
}

void RoadGraph::validate() const {
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(parts_.edges.size());
  for (const Edge& e : parts_.edges) {
    if (e.from >= parts_.nodes.size() || e.to >= parts_.nodes.size())
      throw GraphError("validate: edge references unknown node");
    if (e.from == e.to) throw GraphError("validate: self-loop");
    if (e.length.value() <= 0.0)
      throw GraphError("validate: non-positive edge length");
    const std::uint64_t key =
        (static_cast<std::uint64_t>(e.from) << 32) | e.to;
    if (!seen.insert(key).second)
      throw GraphError("validate: duplicate directed edge " +
                       std::to_string(e.from) + "->" + std::to_string(e.to));
  }
}

NodeId GraphBuilder::add_node(geo::LatLon position) {
  if (!geo::is_valid(position))
    throw GraphError("add_node: invalid coordinate");
  nodes_.push_back(Node{position});
  return static_cast<NodeId>(nodes_.size() - 1);
}

EdgeId GraphBuilder::add_edge(NodeId from, NodeId to) {
  if (from >= nodes_.size() || to >= nodes_.size())
    throw GraphError("add_edge: unknown endpoint node");
  return add_edge(from, to,
                  geo::haversine_distance(nodes_[from].position,
                                          nodes_[to].position));
}

EdgeId GraphBuilder::add_edge(NodeId from, NodeId to, Meters length) {
  if (from >= nodes_.size() || to >= nodes_.size())
    throw GraphError("add_edge: unknown endpoint node");
  if (from == to) throw GraphError("add_edge: self-loop");
  if (length.value() <= 0.0)
    throw GraphError("add_edge: non-positive length");
  edges_.push_back(Edge{from, to, length});
  return static_cast<EdgeId>(edges_.size() - 1);
}

EdgeId GraphBuilder::add_two_way(NodeId u, NodeId v) {
  const EdgeId forward = add_edge(u, v);
  add_edge(v, u);
  return forward;
}

RoadGraph GraphBuilder::build() const& {
  return RoadGraph(nodes_, edges_);
}

RoadGraph GraphBuilder::build() && {
  return RoadGraph(std::move(nodes_), std::move(edges_));
}

}  // namespace sunchase::roadnet
