#include "sunchase/roadnet/graph.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "sunchase/common/error.h"

namespace sunchase::roadnet {

RoadGraph::RoadGraph(std::vector<Node> nodes, std::vector<Edge> edges)
    : nodes_(std::move(nodes)), edges_(std::move(edges)) {
  sorted_.resize(edges_.size());
  for (EdgeId e = 0; e < edges_.size(); ++e) sorted_[e] = e;
  std::sort(sorted_.begin(), sorted_.end(), [this](EdgeId a, EdgeId b) {
    return edges_[a].from < edges_[b].from;
  });
  offsets_.assign(nodes_.size() + 1, 0);
  for (const Edge& e : edges_) ++offsets_[e.from + 1];
  for (std::size_t n = 1; n < offsets_.size(); ++n)
    offsets_[n] += offsets_[n - 1];

  in_sorted_.resize(edges_.size());
  for (EdgeId e = 0; e < edges_.size(); ++e) in_sorted_[e] = e;
  std::sort(in_sorted_.begin(), in_sorted_.end(), [this](EdgeId a, EdgeId b) {
    return edges_[a].to < edges_[b].to;
  });
  in_offsets_.assign(nodes_.size() + 1, 0);
  for (const Edge& e : edges_) ++in_offsets_[e.to + 1];
  for (std::size_t n = 1; n < in_offsets_.size(); ++n)
    in_offsets_[n] += in_offsets_[n - 1];
}

const Node& RoadGraph::node(NodeId id) const {
  if (id >= nodes_.size()) throw GraphError("node: id out of range");
  return nodes_[id];
}

const Edge& RoadGraph::edge(EdgeId id) const {
  if (id >= edges_.size()) throw GraphError("edge: id out of range");
  return edges_[id];
}

std::span<const EdgeId> RoadGraph::out_edges(NodeId id) const {
  if (id >= nodes_.size()) throw GraphError("out_edges: id out of range");
  return {sorted_.data() + offsets_[id], offsets_[id + 1] - offsets_[id]};
}

std::span<const EdgeId> RoadGraph::in_edges(NodeId id) const {
  if (id >= nodes_.size()) throw GraphError("in_edges: id out of range");
  return {in_sorted_.data() + in_offsets_[id],
          in_offsets_[id + 1] - in_offsets_[id]};
}

EdgeId RoadGraph::find_edge(NodeId u, NodeId v) const {
  for (const EdgeId e : out_edges(u))
    if (edges_[e].to == v) return e;
  return kInvalidEdge;
}

NodeId RoadGraph::nearest_node(geo::LatLon p) const {
  if (nodes_.empty()) throw GraphError("nearest_node: empty graph");
  NodeId best = 0;
  Meters best_d = geo::haversine_distance(p, nodes_[0].position);
  for (NodeId n = 1; n < nodes_.size(); ++n) {
    const Meters d = geo::haversine_distance(p, nodes_[n].position);
    if (d < best_d) {
      best_d = d;
      best = n;
    }
  }
  return best;
}

void RoadGraph::validate() const {
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(edges_.size());
  for (const Edge& e : edges_) {
    if (e.from >= nodes_.size() || e.to >= nodes_.size())
      throw GraphError("validate: edge references unknown node");
    if (e.from == e.to) throw GraphError("validate: self-loop");
    if (e.length.value() <= 0.0)
      throw GraphError("validate: non-positive edge length");
    const std::uint64_t key =
        (static_cast<std::uint64_t>(e.from) << 32) | e.to;
    if (!seen.insert(key).second)
      throw GraphError("validate: duplicate directed edge " +
                       std::to_string(e.from) + "->" + std::to_string(e.to));
  }
}

NodeId GraphBuilder::add_node(geo::LatLon position) {
  if (!geo::is_valid(position))
    throw GraphError("add_node: invalid coordinate");
  nodes_.push_back(Node{position});
  return static_cast<NodeId>(nodes_.size() - 1);
}

EdgeId GraphBuilder::add_edge(NodeId from, NodeId to) {
  if (from >= nodes_.size() || to >= nodes_.size())
    throw GraphError("add_edge: unknown endpoint node");
  return add_edge(from, to,
                  geo::haversine_distance(nodes_[from].position,
                                          nodes_[to].position));
}

EdgeId GraphBuilder::add_edge(NodeId from, NodeId to, Meters length) {
  if (from >= nodes_.size() || to >= nodes_.size())
    throw GraphError("add_edge: unknown endpoint node");
  if (from == to) throw GraphError("add_edge: self-loop");
  if (length.value() <= 0.0)
    throw GraphError("add_edge: non-positive length");
  edges_.push_back(Edge{from, to, length});
  return static_cast<EdgeId>(edges_.size() - 1);
}

EdgeId GraphBuilder::add_two_way(NodeId u, NodeId v) {
  const EdgeId forward = add_edge(u, v);
  add_edge(v, u);
  return forward;
}

RoadGraph GraphBuilder::build() const& {
  return RoadGraph(nodes_, edges_);
}

RoadGraph GraphBuilder::build() && {
  return RoadGraph(std::move(nodes_), std::move(edges_));
}

}  // namespace sunchase::roadnet
