#include "sunchase/roadnet/io.h"

#include <utility>

#include <fstream>
#include <sstream>

#include "sunchase/common/error.h"

namespace sunchase::roadnet {

RoadGraph read_graph(std::istream& in, const std::string& source) {
  GraphBuilder builder;
  std::string line;
  int line_no = 0;
  // With a source name the message reads
  // "read_graph: data/demo.graph: line 7: why" — the path plus the
  // line number locate the bad input directly.
  auto fail = [&](const std::string& why) {
    const std::string where = source.empty() ? "" : source + ": ";
    throw IoError("read_graph: " + where + "line " +
                  std::to_string(line_no) + ": " + why);
  };
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream tokens(line);
    std::string kind;
    if (!(tokens >> kind) || kind[0] == '#') continue;
    if (kind == "node") {
      double lat = 0.0, lon = 0.0;
      if (!(tokens >> lat >> lon)) fail("expected 'node <lat> <lon>'");
      try {
        builder.add_node({lat, lon});
      } catch (const GraphError& e) {
        fail(e.what());
      }
    } else if (kind == "edge") {
      NodeId from = 0, to = 0;
      if (!(tokens >> from >> to)) fail("expected 'edge <from> <to>'");
      std::string flag;
      const bool oneway = (tokens >> flag) && flag == "oneway";
      try {
        if (oneway)
          builder.add_edge(from, to);
        else
          builder.add_two_way(from, to);
      } catch (const GraphError& e) {
        fail(e.what());
      }
    } else {
      fail("unknown directive '" + kind + "'");
    }
  }
  return std::move(builder).build();
}

RoadGraph read_graph_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("read_graph_file: cannot open '" + path + "'");
  return read_graph(in, path);
}

void write_graph(std::ostream& out, const RoadGraph& graph) {
  out << "# sunchase road graph: " << graph.node_count() << " nodes, "
      << graph.edge_count() << " directed edges\n";
  out.precision(10);
  for (NodeId n = 0; n < graph.node_count(); ++n) {
    const auto& p = graph.node(n).position;
    out << "node " << p.lat_deg << ' ' << p.lon_deg << '\n';
  }
  for (EdgeId e = 0; e < graph.edge_count(); ++e) {
    const auto& edge = graph.edge(e);
    out << "edge " << edge.from << ' ' << edge.to << " oneway\n";
  }
}

void write_graph_file(const std::string& path, const RoadGraph& graph) {
  std::ofstream out(path);
  if (!out) throw IoError("write_graph_file: cannot open '" + path + "'");
  write_graph(out, graph);
  if (!out) throw IoError("write_graph_file: write failed for '" + path + "'");
}

}  // namespace sunchase::roadnet
