// A small blocking HTTP/1.1 client for the load generator, the CI
// smoke test, and the server's own tests. One instance drives one
// keep-alive connection; it reconnects transparently when the server
// closed it (drain, Connection: close). Not a general-purpose client —
// IPv4, no TLS, no redirects: exactly what talking to the route server
// on localhost needs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sunchase/serve/http.h"

namespace sunchase::serve {

class HttpClient {
 public:
  /// Connects lazily on the first request. `timeout_seconds` bounds
  /// each connect and each whole-response read.
  HttpClient(std::string host, std::uint16_t port,
             double timeout_seconds = 10.0);
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// One round trip. Throws IoError when the server cannot be reached
  /// or the response is malformed; HTTP error statuses are returned,
  /// not thrown.
  HttpResponse request(
      std::string_view method, std::string_view target,
      std::string_view body = {},
      const std::vector<std::pair<std::string, std::string>>& headers = {});

  HttpResponse get(std::string_view target) { return request("GET", target); }
  HttpResponse post(std::string_view target, std::string_view body) {
    return request("POST", target, body);
  }

  /// Low-level halves for wire-behavior tests (partial sends, raw
  /// malformed bytes). send_bytes connects if needed and writes
  /// exactly `bytes`; read_response blocks for one full response.
  void send_bytes(std::string_view bytes);
  HttpResponse read_response();

  /// Drops the connection; the next request reconnects.
  void close() noexcept;
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

 private:
  void connect();

  std::string host_;
  std::uint16_t port_;
  double timeout_seconds_;
  int fd_ = -1;
};

}  // namespace sunchase::serve
