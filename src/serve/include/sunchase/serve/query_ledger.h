// The server-side memory behind GET /explain/{query_id}: a bounded
// ring of recently answered queries, each holding the WorldPtr pin of
// the snapshot that priced it, the recommended route, and the search's
// criteria vector. An explain request replays the route with
// core::RouteExplainer against that exact pinned snapshot — never the
// store's current one — so the ledger stays bit-identical to the
// response the client saw, no matter how many worlds were published in
// between. The ring bounds how many old snapshots explainability keeps
// alive: an evicted id answers 404, and its pin is dropped.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "sunchase/common/time_of_day.h"
#include "sunchase/core/criteria.h"
#include "sunchase/core/edge_cost.h"
#include "sunchase/core/world_fwd.h"
#include "sunchase/roadnet/path.h"

namespace sunchase::serve {

/// Everything needed to re-derive one answered query's per-edge ledger.
struct LedgerEntry {
  std::uint64_t query_id = 0;  ///< assigned by QueryLedger::record
  core::WorldPtr world;        ///< the snapshot that priced the query
  roadnet::NodeId origin = roadnet::kInvalidNode;
  roadnet::NodeId destination = roadnet::kInvalidNode;
  TimeOfDay departure;
  core::PricingMode pricing = core::PricingMode::Exact;
  bool time_dependent = true;
  std::size_t vehicle = 0;
  roadnet::Path route;   ///< the recommended route of the response
  core::Criteria cost;   ///< its search criteria (conservation reference)
  /// 32-hex trace id of the request that answered the query; lets an
  /// /explain response point back at the original request's trace.
  std::string trace_id;
  /// Resource accounting stamped when the query was answered: worker
  /// CPU milliseconds plus the search-effort counters that explain
  /// them. /explain surfaces these as the "what did this query cost"
  /// record alongside the energy ledger.
  double cpu_ms = 0.0;
  std::uint64_t labels_created = 0;
  std::uint64_t queue_pops = 0;
};

/// Thread-safe fixed-capacity ring keyed by a dense monotonic query id.
/// record() under concurrent batch workers never blocks readers for
/// long: both sides take one short mutex hold.
class QueryLedger {
 public:
  /// Throws InvalidArgument when capacity is zero.
  explicit QueryLedger(std::size_t capacity = 256);

  /// Assigns the next query id, stores the entry (evicting the entry
  /// `capacity` ids older), and returns the id.
  std::uint64_t record(LedgerEntry entry);

  /// The entry for `id`, or nullopt when unknown or already evicted.
  [[nodiscard]] std::optional<LedgerEntry> find(std::uint64_t id) const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Total queries ever recorded (ids run 1..recorded()).
  [[nodiscard]] std::uint64_t recorded() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::uint64_t next_id_ = 1;        ///< guarded by mutex_
  std::vector<LedgerEntry> ring_;    ///< slot (id - 1) % capacity_
};

}  // namespace sunchase::serve
