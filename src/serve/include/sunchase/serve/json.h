// Minimal JSON document model + recursive-descent parser for request
// bodies. The rest of the codebase only *writes* JSON (metrics, query
// log, ledgers — all hand-serialized); the route server is the first
// consumer of untrusted JSON input, so this parser is strict: full
// RFC 8259 grammar, \uXXXX escapes (incl. surrogate pairs), a depth
// limit against stack-exhaustion bodies, and InvalidArgument with a
// byte offset on any violation. Objects preserve member order.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sunchase::serve {

class JsonValue {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  using Array = std::vector<JsonValue>;
  using Member = std::pair<std::string, JsonValue>;
  using Object = std::vector<Member>;

  /// A null value.
  JsonValue() = default;

  /// Parses a complete JSON document (one value, optional surrounding
  /// whitespace, nothing after it). Throws InvalidArgument with the
  /// offending byte offset on malformed input or nesting deeper than
  /// `max_depth`.
  [[nodiscard]] static JsonValue parse(std::string_view text,
                                       std::size_t max_depth = 64);

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::Null; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::Bool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::Number;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::String;
  }
  [[nodiscard]] bool is_array() const noexcept {
    return type_ == Type::Array;
  }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::Object;
  }

  /// Typed accessors; each throws InvalidArgument when the value holds
  /// a different type (the caller's 400, not a crash).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Member lookup on an object: nullptr when absent or when this value
  /// is not an object (so optional fields read as one call).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Optional-field conveniences: the member's value when present
  /// (throwing on a type mismatch), otherwise the fallback.
  [[nodiscard]] double number_or(std::string_view key,
                                 double fallback) const;
  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string_view fallback) const;

  /// Factory helpers (used by tests; the server hand-writes output).
  [[nodiscard]] static JsonValue make_bool(bool b);
  [[nodiscard]] static JsonValue make_number(double n);
  [[nodiscard]] static JsonValue make_string(std::string s);

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;

  friend class JsonParser;
};

/// `text` with JSON string escaping applied (quotes not included):
/// backslash, quote, control characters as \uXXXX or short escapes.
[[nodiscard]] std::string json_escape(std::string_view text);

/// `text` escaped and wrapped in double quotes — the building block the
/// server's hand-written response bodies use.
[[nodiscard]] std::string json_quote(std::string_view text);

}  // namespace sunchase::serve
