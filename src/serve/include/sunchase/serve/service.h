// The route server's request handlers, separated from the socket
// front-end (couchbase-lite-core's REST-vs-Networking split): a
// RouteService maps parsed HttpRequests to HttpResponses over the
// embedded planning engine and owns no connection state, so every
// endpoint is unit-testable without a socket and the listener stays a
// dumb byte pump. Endpoints:
//
//   POST /plan            one query -> candidate routes (+ query_id)
//   POST /batch           query array -> BatchPlanner live mode
//   GET  /explain/{id}    per-edge energy ledger of an answered query,
//                         replayed on its pinned world snapshot
//   GET  /metrics         Prometheus text from the global obs registry
//   GET  /healthz         liveness + current world version + drain state
//   POST /world/publish   fold crowd observations (or just re-publish)
//                         into the next world version via WorldStore
//   GET  /debug/trace     Chrome trace JSON of recorded spans
//                         (?since=<us> polls incrementally)
//   GET  /debug/queries   last n QueryLog records (?n=, default 32)
//   GET  /debug/worlds    WorldStore lineage: live versions + pins
//   GET  /debug/profile   sampling profiler folds as collapsed-stack
//                         text (flamegraph-ready); ?format=json for a
//                         structured document, ?reset=1 to drop the
//                         folds after snapshotting
//
// Every query resolves store.current() when picked up; a concurrent
// /world/publish never blocks or tears an in-flight query (the World
// MVCC contract), which is what makes the admin endpoint safe to call
// under full load.
//
// Request tracing: handle() adopts the caller's W3C `traceparent` (or
// generates a fresh 128-bit trace id), installs it as the thread's
// current trace context for the whole request, and echoes it in the
// `x-sunchase-request-id` and `traceparent` response headers. Planner
// spans — batch.query on pool workers included — parent back to the
// ingress serve.request span, and QueryLog records carry the same
// trace_id, so one id joins response, log line and trace export.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>

#include "sunchase/core/batch_planner.h"
#include "sunchase/core/planner.h"
#include "sunchase/core/world_store.h"
#include "sunchase/serve/http.h"
#include "sunchase/serve/query_ledger.h"

namespace sunchase::obs {
class QueryLog;
}  // namespace sunchase::obs

namespace sunchase::serve {

class JsonValue;

struct RouteServiceOptions {
  RouteServiceOptions() {
    // A route server is the fleet workload: slot-quantized pricing
    // through the world-owned shared cost cache (the batch default).
    mlc.pricing = core::PricingMode::SlotQuantized;
  }

  core::MlcOptions mlc{};
  core::SelectionOptions selection{};
  /// Worker threads per /batch request; 0 means one per hardware
  /// thread. Kept small by default — request-level parallelism comes
  /// from the HTTP worker pool.
  std::size_t batch_workers = 2;
  /// /batch bodies with more queries than this answer 413.
  std::size_t max_batch_queries = 512;
  /// How many answered queries stay explainable (each holds a world
  /// snapshot pin; see QueryLedger).
  std::size_t ledger_capacity = 256;
  /// When set, every planned query appends one JSONL QueryRecord
  /// (borrowed; keep alive while serving).
  obs::QueryLog* query_log = nullptr;
};

class RouteService {
 public:
  /// The store must outlive the service. Throws InvalidArgument when
  /// the options are rejected by the planning layer (bad MLC options,
  /// unknown vehicle index) — at construction, not per request.
  explicit RouteService(core::WorldStore& store,
                        RouteServiceOptions options = RouteServiceOptions{});

  /// Dispatches one request. Never throws: planning/parse errors map to
  /// 400/404/405/413/422, anything unexpected to 500.
  [[nodiscard]] HttpResponse handle(const HttpRequest& request);

  /// Drain flag surfaced in /healthz and the serve.draining gauge; the
  /// listener sets it when shutdown begins.
  void set_draining(bool draining) noexcept;
  [[nodiscard]] bool draining() const noexcept {
    return draining_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const core::WorldStore& store() const noexcept {
    return store_;
  }
  [[nodiscard]] const QueryLedger& ledger() const noexcept {
    return ledger_;
  }
  [[nodiscard]] const RouteServiceOptions& options() const noexcept {
    return options_;
  }

  /// A response with Content-Type application/json and `body`.
  [[nodiscard]] static HttpResponse json_response(int status,
                                                  std::string body);
  /// {"error": message} with the right Content-Type — also used by the
  /// listener for 408/429/504 answers so every error body has one shape.
  [[nodiscard]] static HttpResponse error_response(int status,
                                                   std::string_view message);

  /// Maps a request target onto the server's bounded endpoint set
  /// ("/plan", "/explain", "/debug", ..., "other") — the only endpoint
  /// value metrics labels may carry, so a hostile target can never
  /// explode `serve.requests{endpoint=...}` cardinality.
  [[nodiscard]] static const char* route_label(
      std::string_view target) noexcept;

 private:
  HttpResponse dispatch(const HttpRequest& request);
  HttpResponse handle_plan(const HttpRequest& request);
  HttpResponse handle_batch(const HttpRequest& request);
  HttpResponse handle_explain(std::uint64_t query_id);
  HttpResponse handle_publish(const HttpRequest& request);
  HttpResponse handle_healthz();
  HttpResponse handle_metrics(const std::string& target);
  HttpResponse handle_debug_trace(const std::string& target);
  HttpResponse handle_debug_queries(const std::string& target);
  HttpResponse handle_debug_worlds();
  HttpResponse handle_debug_profile(const std::string& target);

  /// Per-request MLC options: service defaults overridden by the
  /// request body's pricing / time_budget / vehicle fields.
  [[nodiscard]] core::MlcOptions mlc_options_from(const JsonValue& body);

  core::WorldStore& store_;
  RouteServiceOptions options_;
  QueryLedger ledger_;
  /// Construction time, the /healthz uptime origin.
  std::chrono::steady_clock::time_point started_ =
      std::chrono::steady_clock::now();
  std::mutex publish_mutex_;  ///< serializes /world/publish fold+publish
  std::atomic<bool> draining_{false};
};

}  // namespace sunchase::serve
