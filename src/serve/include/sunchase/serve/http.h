// HTTP/1.1 wire layer for the route server: message types plus an
// incremental parser that is fed raw bytes exactly as recv() produced
// them — a request line split across three reads parses the same as one
// arriving whole. The parser never throws on bad input; it reports the
// HTTP status the peer should see (400/413/414/431/501/505), because a
// server must answer malformed bytes, not unwind. Socket code lives in
// server.h/client.h; everything here is pure and unit-testable.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sunchase::serve {

/// Parser guard rails; oversized input maps to 413/414/431, never to
/// unbounded buffering.
struct HttpLimits {
  std::size_t max_start_line = 8 * 1024;    ///< request/status line bytes
  std::size_t max_header_bytes = 16 * 1024; ///< whole header block
  std::size_t max_body_bytes = 1 << 20;     ///< Content-Length ceiling
};

/// One parsed HTTP/1.1 message. Requests fill method/target, responses
/// fill status/reason; both fill version, headers (names lowercased,
/// values trimmed) and body.
struct HttpMessage {
  std::string method;
  std::string target;
  int status = 0;
  std::string reason;
  std::string version;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First header named `name` (ASCII case-insensitive), or nullptr.
  [[nodiscard]] const std::string* header(std::string_view name) const;

  /// HTTP/1.1 keep-alive semantics: persistent unless the message says
  /// "Connection: close" (HTTP/1.0 is persistent only on an explicit
  /// keep-alive).
  [[nodiscard]] bool keep_alive() const;
};

using HttpRequest = HttpMessage;

/// The canonical reason phrase for a status code ("Unknown" otherwise).
[[nodiscard]] const char* status_reason(int status);

/// An outgoing response; to_bytes() serializes status line + headers +
/// Content-Length + Connection and the body in one buffer.
struct HttpResponse {
  int status = 200;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  void set_header(std::string name, std::string value);
  /// First header named `name` (ASCII case-insensitive), or nullptr —
  /// how tests and the loadgen read the echoed request-id header.
  [[nodiscard]] const std::string* header(std::string_view name) const;
  [[nodiscard]] std::string to_bytes(bool close_connection) const;
};

/// Incremental push parser. Feed bytes as they arrive; once state() is
/// Complete, message() holds the parsed request/response and any
/// pipelined leftover bytes stay buffered — reset() starts the next
/// message on them. Once Error, error_status()/error_reason() say what
/// to answer; the connection should then close.
class HttpParser {
 public:
  enum class Kind { Request, Response };
  enum class State { NeedMore, Complete, Error };

  explicit HttpParser(Kind kind = Kind::Request, HttpLimits limits = {});

  /// Appends bytes and advances the state machine. Calls after reaching
  /// Complete or Error buffer the bytes but change nothing until
  /// reset().
  State feed(std::string_view bytes);

  [[nodiscard]] State state() const noexcept { return state_; }
  /// Valid only when state() == Complete.
  [[nodiscard]] const HttpMessage& message() const noexcept {
    return message_;
  }
  /// The HTTP status to answer with; valid only when state() == Error.
  [[nodiscard]] int error_status() const noexcept { return error_status_; }
  [[nodiscard]] const std::string& error_reason() const noexcept {
    return error_reason_;
  }

  /// True while a message is partially buffered (bytes received but not
  /// Complete) — the idle-vs-mid-request distinction a read-timeout
  /// needs to answer 408 rather than silently closing.
  [[nodiscard]] bool has_partial() const noexcept {
    return state_ == State::NeedMore && !buffer_.empty();
  }

  /// Discards the completed message, keeps unconsumed (pipelined)
  /// bytes, and immediately attempts to parse them — check state()
  /// after reset(); a fully buffered second request completes without
  /// another feed().
  void reset();

 private:
  State parse();
  State fail(int status, std::string reason);
  bool parse_start_line(std::string_view line);
  bool parse_header_block(std::string_view block);

  Kind kind_;
  HttpLimits limits_;
  std::string buffer_;
  std::size_t body_begin_ = 0;    ///< offset of the body in buffer_
  std::size_t body_expected_ = 0; ///< Content-Length
  bool headers_done_ = false;
  HttpMessage message_;
  State state_ = State::NeedMore;
  int error_status_ = 0;
  std::string error_reason_;
};

}  // namespace sunchase::serve
