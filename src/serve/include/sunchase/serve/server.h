// The socket front-end of the route server: a thread-per-connection
// HTTP/1.1 listener that feeds parsed requests to a RouteService. The
// listener knows nothing about routing; the service knows nothing about
// sockets (see service.h for why the layers are split).
//
// Operational behavior, in the order a request meets it:
//
//  - Admission control: the accept loop hands connections to a bounded
//    queue; when the queue is full the connection is answered 429 and
//    closed immediately (serve.rejected counts them) instead of letting
//    backlog latency grow without bound.
//  - Read deadline: a connection that has sent part of a request but
//    not finished it within read_timeout_seconds is answered 408; an
//    idle keep-alive connection is closed silently.
//  - Handling deadline: a request whose handling exceeds
//    deadline_seconds is answered 504 (serve.deadline_expired). The
//    search itself is not interruptible, so the deadline is enforced on
//    the response, bounding what a slow query can occupy a worker for
//    from the client's point of view.
//  - Graceful drain: request_stop() is async-signal-safe (one atomic
//    store — call it from a SIGTERM handler). The accept loop notices
//    within its 100 ms poll tick, stops accepting, flips the service to
//    draining, and lets workers finish in-flight and queued requests
//    with "Connection: close" before join() returns.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sunchase/serve/http.h"
#include "sunchase/serve/service.h"

namespace sunchase::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace sunchase::obs

namespace sunchase::serve {

struct HttpServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the real one from port() after
  /// start() — how tests and CI avoid port collisions.
  std::uint16_t port = 0;
  std::size_t workers = 4;
  /// Accepted connections waiting for a worker beyond this answer 429.
  std::size_t queue_capacity = 64;
  /// Handling budget per request (504 past it); <= 0 disables.
  double deadline_seconds = 10.0;
  /// Budget for receiving one full request (408 past it) and the idle
  /// keep-alive timeout.
  double read_timeout_seconds = 5.0;
  HttpLimits limits{};
  /// Enables the x-sunchase-test-delay-ms request header, which sleeps
  /// inside the handler — deterministic deadline tests only; never
  /// enable in production.
  bool test_hooks = false;
  /// When non-empty, appends one "METHOD TARGET STATUS bytes ms" line
  /// per request.
  std::string access_log_path;
};

class HttpServer {
 public:
  /// The service must outlive the server.
  HttpServer(RouteService& service, HttpServerOptions options = {});
  /// Stops and joins (drains in-flight requests).
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and spawns the accept loop + worker pool. Throws
  /// IoError when the socket cannot be set up (bad host, port in use).
  void start();

  /// The bound port (resolves ephemeral binds). 0 before start().
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Begins a graceful drain. Async-signal-safe: one relaxed atomic
  /// store, no locks, no allocation — the accept loop does the actual
  /// teardown on its next poll tick.
  void request_stop() noexcept {
    stop_requested_.store(true, std::memory_order_relaxed);
  }

  /// Waits until the accept loop and every worker have exited (all
  /// queued and in-flight requests answered). Idempotent.
  void join();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const HttpServerOptions& options() const noexcept {
    return options_;
  }

 private:
  void accept_loop();
  void worker_loop();
  void serve_connection(int fd);
  /// Handles one parsed request end-to-end (metrics, deadline, access
  /// log). `close_connection` is what to_bytes() will be told.
  [[nodiscard]] HttpResponse process(const HttpRequest& request);
  void write_all(int fd, std::string_view bytes);
  void log_access(const HttpRequest& request, const HttpResponse& response,
                  std::size_t bytes, double millis);

  RouteService& service_;
  HttpServerOptions options_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> running_{false};
  bool joined_ = true;  ///< guarded by join_mutex_

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;     ///< accepted fds awaiting a worker
  bool queue_closed_ = false;   ///< guarded by queue_mutex_

  std::thread accept_thread_;
  std::vector<std::thread> worker_threads_;
  std::mutex join_mutex_;

  std::mutex access_log_mutex_;
  std::ofstream access_log_;

  // Registry handles resolved once at construction (stable for the
  // registry's lifetime; see obs::Registry).
  obs::Counter& requests_;
  obs::Counter& rejected_;
  obs::Counter& request_timeouts_;
  obs::Counter& deadline_expired_;
  obs::Counter& connections_;
  obs::Gauge& inflight_;
  obs::Gauge& queue_depth_;
  obs::Histogram& latency_;
};

}  // namespace sunchase::serve
