#include "sunchase/serve/query_ledger.h"

#include <utility>

#include "sunchase/common/error.h"

namespace sunchase::serve {

QueryLedger::QueryLedger(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0)
    throw InvalidArgument("QueryLedger: capacity must be positive");
  ring_.resize(capacity_);
}

std::uint64_t QueryLedger::record(LedgerEntry entry) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t id = next_id_++;
  entry.query_id = id;
  ring_[static_cast<std::size_t>((id - 1) % capacity_)] = std::move(entry);
  return id;
}

std::optional<LedgerEntry> QueryLedger::find(std::uint64_t id) const {
  if (id == 0) return std::nullopt;
  const std::lock_guard<std::mutex> lock(mutex_);
  const LedgerEntry& slot = ring_[static_cast<std::size_t>((id - 1) %
                                                           capacity_)];
  if (slot.query_id != id) return std::nullopt;
  return slot;
}

std::uint64_t QueryLedger::recorded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return next_id_ - 1;
}

}  // namespace sunchase::serve
