#include "sunchase/serve/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "sunchase/common/error.h"

namespace sunchase::serve {

namespace {

[[noreturn]] void bad(const std::string& what, std::size_t offset) {
  throw InvalidArgument("json: " + what + " at offset " +
                        std::to_string(offset));
}

/// Appends `code` (a Unicode scalar value) as UTF-8.
void append_utf8(std::string& out, unsigned code) {
  if (code < 0x80) {
    out += static_cast<char>(code);
  } else if (code < 0x800) {
    out += static_cast<char>(0xC0 | (code >> 6));
    out += static_cast<char>(0x80 | (code & 0x3F));
  } else if (code < 0x10000) {
    out += static_cast<char>(0xE0 | (code >> 12));
    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (code & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | (code >> 18));
    out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (code & 0x3F));
  }
}

}  // namespace

class JsonParser {
 public:
  JsonParser(std::string_view text, std::size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  JsonValue run() {
    skip_whitespace();
    JsonValue value = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) bad("trailing characters after document", pos_);
    return value;
  }

 private:
  [[nodiscard]] char peek() const {
    if (pos_ >= text_.size()) bad("unexpected end of input", pos_);
    return text_[pos_];
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect(char c) {
    if (peek() != c)
      bad(std::string("expected '") + c + "'", pos_);
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value(std::size_t depth) {
    if (depth > max_depth_) bad("nesting too deep", pos_);
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        if (!consume_literal("true")) bad("malformed literal", pos_);
        return JsonValue::make_bool(true);
      case 'f':
        if (!consume_literal("false")) bad("malformed literal", pos_);
        return JsonValue::make_bool(false);
      case 'n':
        if (!consume_literal("null")) bad("malformed literal", pos_);
        return JsonValue{};
      default: return parse_number();
    }
  }

  JsonValue parse_object(std::size_t depth) {
    expect('{');
    JsonValue value;
    value.type_ = JsonValue::Type::Object;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      skip_whitespace();
      value.object_.emplace_back(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return value;
    }
  }

  JsonValue parse_array(std::size_t depth) {
    expect('[');
    JsonValue value;
    value.type_ = JsonValue::Type::Array;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    for (;;) {
      skip_whitespace();
      value.array_.push_back(parse_value(depth + 1));
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return value;
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) bad("truncated \\u escape", pos_);
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else bad("malformed \\u escape", pos_);
    }
    pos_ += 4;
    return code;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) bad("unterminated string", pos_);
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        bad("unescaped control character in string", pos_ - 1);
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) bad("truncated escape", pos_);
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = parse_hex4();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (!consume_literal("\\u")) bad("lone high surrogate", pos_);
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF)
              bad("invalid low surrogate", pos_ - 4);
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            bad("lone low surrogate", pos_ - 4);
          }
          append_utf8(out, code);
          break;
        }
        default: bad("unknown escape", pos_ - 1);
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    const std::size_t int_start = pos_;
    if (digits() == 0) bad("malformed number", start);
    // No leading zeros ("007"), per RFC 8259.
    if (text_[int_start] == '0' && pos_ - int_start > 1)
      bad("leading zero in number", start);
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) bad("malformed number fraction", start);
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (digits() == 0) bad("malformed number exponent", start);
    }
    const std::string token(text_.substr(start, pos_ - start));
    return JsonValue::make_number(std::strtod(token.c_str(), nullptr));
  }

  std::string_view text_;
  std::size_t max_depth_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text, std::size_t max_depth) {
  return JsonParser(text, max_depth).run();
}

bool JsonValue::as_bool() const {
  if (type_ != Type::Bool) throw InvalidArgument("json: value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::Number)
    throw InvalidArgument("json: value is not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::String)
    throw InvalidArgument("json: value is not a string");
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  if (type_ != Type::Array)
    throw InvalidArgument("json: value is not an array");
  return array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  if (type_ != Type::Object)
    throw InvalidArgument("json: value is not an object");
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [name, value] : object_)
    if (name == key) return &value;
  return nullptr;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* member = find(key);
  return member != nullptr ? member->as_number() : fallback;
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string_view fallback) const {
  const JsonValue* member = find(key);
  return member != nullptr ? member->as_string() : std::string(fallback);
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.type_ = Type::Bool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double n) {
  JsonValue v;
  v.type_ = Type::Number;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.type_ = Type::String;
  v.string_ = std::move(s);
  return v;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_quote(std::string_view text) {
  return '"' + json_escape(text) + '"';
}

}  // namespace sunchase::serve
