#include "sunchase/serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <utility>

#include "sunchase/common/error.h"
#include "sunchase/common/logging.h"
#include "sunchase/obs/metrics.h"
#include "sunchase/obs/profiler.h"

namespace sunchase::serve {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Per-recv slice so a blocked read re-checks the stop flag and the
/// request deadline a few times a second.
constexpr int kRecvSliceMillis = 200;

void set_recv_timeout(int fd, int millis) {
  timeval tv{};
  tv.tv_sec = millis / 1000;
  tv.tv_usec = (millis % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

}  // namespace

HttpServer::HttpServer(RouteService& service, HttpServerOptions options)
    : service_(service),
      options_(std::move(options)),
      requests_(obs::Registry::global().counter("serve.requests")),
      rejected_(obs::Registry::global().counter("serve.rejected")),
      request_timeouts_(
          obs::Registry::global().counter("serve.request_timeouts")),
      deadline_expired_(
          obs::Registry::global().counter("serve.deadline_expired")),
      connections_(obs::Registry::global().counter("serve.connections")),
      inflight_(obs::Registry::global().gauge("serve.inflight")),
      queue_depth_(obs::Registry::global().gauge("serve.queue_depth")),
      latency_(obs::Registry::global().histogram("serve.latency_seconds")) {
  if (options_.workers == 0)
    throw InvalidArgument("HttpServer: workers must be positive");
  if (options_.queue_capacity == 0)
    throw InvalidArgument("HttpServer: queue_capacity must be positive");
}

HttpServer::~HttpServer() {
  request_stop();
  join();
}

void HttpServer::start() {
  if (listen_fd_ >= 0) throw IoError("HttpServer: already started");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1)
    throw IoError("HttpServer: bad listen address '" + options_.host + "'");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    throw IoError(std::string("HttpServer: socket: ") + std::strerror(errno));
  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    throw IoError("HttpServer: bind " + options_.host + ":" +
                  std::to_string(options_.port) + ": " + std::strerror(err));
  }
  if (::listen(fd, 128) != 0) {
    const int err = errno;
    ::close(fd);
    throw IoError(std::string("HttpServer: listen: ") + std::strerror(err));
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const int err = errno;
    ::close(fd);
    throw IoError(std::string("HttpServer: getsockname: ") +
                  std::strerror(err));
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;

  if (!options_.access_log_path.empty()) {
    access_log_.open(options_.access_log_path, std::ios::app);
    if (!access_log_)
      throw IoError("HttpServer: cannot open access log '" +
                    options_.access_log_path + "'");
  }

  {
    const std::lock_guard<std::mutex> lock(join_mutex_);
    joined_ = false;
  }
  running_.store(true, std::memory_order_relaxed);
  service_.set_draining(false);
  worker_threads_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i)
    worker_threads_.emplace_back([this] { worker_loop(); });
  accept_thread_ = std::thread([this] { accept_loop(); });
  SUNCHASE_LOG(Info) << "serve: listening on " << options_.host << ":"
                     << port_ << " (" << options_.workers << " workers)";
}

void HttpServer::join() {
  const std::lock_guard<std::mutex> lock(join_mutex_);
  if (joined_) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& worker : worker_threads_)
    if (worker.joinable()) worker.join();
  worker_threads_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_relaxed);
  joined_ = true;
  SUNCHASE_LOG(Info) << "serve: drained and stopped";
}

void HttpServer::accept_loop() {
  pollfd pfd{};
  pfd.fd = listen_fd_;
  pfd.events = POLLIN;

  while (!stop_requested_.load(std::memory_order_relaxed)) {
    // The 100 ms tick bounds how long a signal-delivered stop request
    // waits before the drain actually begins.
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      SUNCHASE_LOG(Error) << "serve: poll: " << std::strerror(errno);
      break;
    }
    if (ready == 0) continue;

    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      SUNCHASE_LOG(Error) << "serve: accept: " << std::strerror(errno);
      break;
    }
    connections_.add();

    bool admitted = false;
    {
      const std::lock_guard<std::mutex> lock(queue_mutex_);
      if (pending_.size() < options_.queue_capacity) {
        pending_.push_back(conn);
        queue_depth_.set(static_cast<double>(pending_.size()));
        admitted = true;
      }
    }
    if (admitted) {
      queue_cv_.notify_one();
    } else {
      // Overload: answer 429 inline and close — the accept loop does
      // no parsing, so the rejection costs one write.
      rejected_.add();
      const std::string bytes =
          RouteService::error_response(429, "server overloaded, retry later")
              .to_bytes(/*close_connection=*/true);
      write_all(conn, bytes);
      ::close(conn);
    }
  }

  // Drain: stop admitting, flip the health signal, and wake every
  // worker so they can finish the queue and exit.
  service_.set_draining(true);
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_closed_ = true;
  }
  queue_cv_.notify_all();
}

void HttpServer::worker_loop() {
  // Register this worker's span stack up front: an idle worker samples
  // as "idle" from its first profiler tick instead of being invisible
  // until its first request (and sampling a registered-but-spanless
  // thread must be safe — tests hammer exactly this).
  obs::Profiler::global().thread_stack();
  for (;;) {
    int conn = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return queue_closed_ || !pending_.empty(); });
      if (pending_.empty()) return;  // closed and drained
      conn = pending_.front();
      pending_.pop_front();
      queue_depth_.set(static_cast<double>(pending_.size()));
    }
    serve_connection(conn);
  }
}

void HttpServer::serve_connection(int fd) {
  set_recv_timeout(fd, kRecvSliceMillis);
  const int enable = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof enable);

  HttpParser parser(HttpParser::Kind::Request, options_.limits);
  Clock::time_point request_start = Clock::now();
  char buf[16 * 1024];

  for (;;) {
    // A completed request may already be buffered (pipelining, or the
    // leftover from the previous keep-alive round's reset()).
    while (parser.state() == HttpParser::State::NeedMore) {
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n > 0) {
        parser.feed(std::string_view(buf, static_cast<std::size_t>(n)));
        continue;
      }
      if (n == 0) {  // peer closed
        ::close(fd);
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        const bool stopping = stop_requested_.load(std::memory_order_relaxed);
        if (seconds_since(request_start) > options_.read_timeout_seconds ||
            (stopping && !parser.has_partial())) {
          if (parser.has_partial()) {
            // Mid-request: the peer deserves to know why the connection
            // died. Idle keep-alive connections just close.
            request_timeouts_.add();
            write_all(fd, RouteService::error_response(
                              408, "request not received in time")
                              .to_bytes(/*close_connection=*/true));
          }
          ::close(fd);
          return;
        }
        continue;
      }
      ::close(fd);
      return;
    }

    if (parser.state() == HttpParser::State::Error) {
      write_all(fd, RouteService::error_response(parser.error_status(),
                                                 parser.error_reason())
                        .to_bytes(/*close_connection=*/true));
      ::close(fd);
      return;
    }

    const HttpRequest& request = parser.message();
    const bool close_after =
        !request.keep_alive() ||
        stop_requested_.load(std::memory_order_relaxed);
    const HttpResponse response = process(request);
    write_all(fd, response.to_bytes(close_after));
    if (close_after) {
      ::close(fd);
      return;
    }
    parser.reset();
    request_start = Clock::now();
  }
}

HttpResponse HttpServer::process(const HttpRequest& request) {
  const Clock::time_point start = Clock::now();
  const double cpu_start = obs::thread_cpu_seconds();
  inflight_.add(1.0);

  if (options_.test_hooks) {
    if (const std::string* delay = request.header("x-sunchase-test-delay-ms"))
      std::this_thread::sleep_for(
          std::chrono::milliseconds(std::strtol(delay->c_str(), nullptr, 10)));
  }

  HttpResponse response = service_.handle(request);

  const double elapsed = seconds_since(start);
  if (options_.deadline_seconds > 0.0 &&
      elapsed > options_.deadline_seconds) {
    // The search ran to completion (it is not interruptible) but blew
    // its budget; the client gets the timeout, not a stale answer.
    deadline_expired_.add();
    response = RouteService::error_response(
        504, "deadline of " + std::to_string(options_.deadline_seconds) +
                 "s exceeded");
  }

  inflight_.add(-1.0);
  requests_.add();
  latency_.observe(elapsed);
  // Labeled breakdown next to the plain totals (which stay for existing
  // scrapers): endpoint comes from the bounded route_label set and
  // status from the fixed code set, so cardinality cannot run away.
  const obs::Labels endpoint_labels{
      {"endpoint", RouteService::route_label(request.target)},
      {"status", std::to_string(response.status)}};
  obs::Registry::global().counter("serve.requests", endpoint_labels).add();
  // Windowed: /metrics exports both the cumulative series and a
  // serve.latency_seconds.window sibling holding only the last ~60 s,
  // so soak-run dashboards see recent p99s instead of since-boot ones.
  obs::Registry::global()
      .windowed_histogram(
          "serve.latency_seconds",
          {{"endpoint", RouteService::route_label(request.target)}},
          obs::latency_bounds())
      .observe(elapsed);
  // HTTP-worker CPU per endpoint (single-query /plan work runs on this
  // thread; /batch pool workers account separately via mlc.cpu_seconds).
  obs::Registry::global()
      .gauge("serve.cpu_seconds",
             {{"endpoint", RouteService::route_label(request.target)}})
      .add(obs::thread_cpu_seconds() - cpu_start);
  log_access(request, response, response.body.size(), elapsed * 1000.0);
  return response;
}

void HttpServer::write_all(int fd, std::string_view bytes) {
  while (!bytes.empty()) {
    // MSG_NOSIGNAL: a peer that hung up mid-write yields EPIPE, not a
    // process-killing SIGPIPE.
    const ssize_t n = ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // peer gone; nothing useful to do
    }
    bytes.remove_prefix(static_cast<std::size_t>(n));
  }
}

void HttpServer::log_access(const HttpRequest& request,
                            const HttpResponse& response, std::size_t bytes,
                            double millis) {
  if (!access_log_.is_open()) return;
  const std::lock_guard<std::mutex> lock(access_log_mutex_);
  access_log_ << request.method << ' ' << request.target << ' '
              << response.status << ' ' << bytes << ' ' << millis << '\n';
  access_log_.flush();
}

}  // namespace sunchase::serve
