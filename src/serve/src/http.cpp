#include "sunchase/serve/http.h"

#include <algorithm>
#include <cctype>
#include <utility>

namespace sunchase::serve {

namespace {

bool iequals(std::string_view a, std::string_view b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
           return std::tolower(static_cast<unsigned char>(x)) ==
                  std::tolower(static_cast<unsigned char>(y));
         });
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(
      std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
    s.remove_suffix(1);
  return s;
}

/// RFC 9110 token characters — what a method may contain.
bool is_token(std::string_view s) {
  if (s.empty()) return false;
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    const bool ok = std::isalnum(u) != 0 || c == '!' || c == '#' ||
                    c == '$' || c == '%' || c == '&' || c == '\'' ||
                    c == '*' || c == '+' || c == '-' || c == '.' ||
                    c == '^' || c == '_' || c == '`' || c == '|' ||
                    c == '~';
    if (!ok) return false;
  }
  return true;
}

/// Strict non-negative decimal; false on anything else (so a forged
/// Content-Length like "12abc" or "-1" is rejected, not truncated).
bool parse_size(std::string_view s, std::size_t& out) {
  if (s.empty() || s.size() > 18) return false;
  std::size_t value = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  out = value;
  return true;
}

}  // namespace

const std::string* HttpMessage::header(std::string_view name) const {
  for (const auto& [key, value] : headers)
    if (iequals(key, name)) return &value;
  return nullptr;
}

bool HttpMessage::keep_alive() const {
  const std::string* connection = header("connection");
  if (version == "HTTP/1.0")
    return connection != nullptr && iequals(*connection, "keep-alive");
  return connection == nullptr || !iequals(*connection, "close");
}

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Content Too Large";
    case 414: return "URI Too Long";
    case 422: return "Unprocessable Content";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 505: return "HTTP Version Not Supported";
    default:  return "Unknown";
  }
}

void HttpResponse::set_header(std::string name, std::string value) {
  for (auto& [key, existing] : headers)
    if (iequals(key, name)) {
      existing = std::move(value);
      return;
    }
  headers.emplace_back(std::move(name), std::move(value));
}

const std::string* HttpResponse::header(std::string_view name) const {
  for (const auto& [key, value] : headers)
    if (iequals(key, name)) return &value;
  return nullptr;
}

std::string HttpResponse::to_bytes(bool close_connection) const {
  std::string out;
  out.reserve(128 + body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += status_reason(status);
  out += "\r\n";
  for (const auto& [name, value] : headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "content-length: ";
  out += std::to_string(body.size());
  out += "\r\nconnection: ";
  out += close_connection ? "close" : "keep-alive";
  out += "\r\n\r\n";
  out += body;
  return out;
}

HttpParser::HttpParser(Kind kind, HttpLimits limits)
    : kind_(kind), limits_(limits) {}

HttpParser::State HttpParser::feed(std::string_view bytes) {
  buffer_.append(bytes.data(), bytes.size());
  if (state_ != State::NeedMore) return state_;
  return state_ = parse();
}

void HttpParser::reset() {
  buffer_.erase(0, body_begin_ + body_expected_);
  body_begin_ = 0;
  body_expected_ = 0;
  headers_done_ = false;
  message_ = HttpMessage{};
  error_status_ = 0;
  error_reason_.clear();
  state_ = State::NeedMore;
  // A pipelined next message may already be fully buffered.
  state_ = parse();
}

HttpParser::State HttpParser::fail(int status, std::string reason) {
  error_status_ = status;
  error_reason_ = std::move(reason);
  return State::Error;
}

HttpParser::State HttpParser::parse() {
  if (!headers_done_) {
    // The header block ends at the first blank line; accept CRLF or
    // bare-LF endings (lines are split on '\n' with '\r' stripped).
    std::size_t end = buffer_.find("\r\n\r\n");
    std::size_t delim = 4;
    const std::size_t lf = buffer_.find("\n\n");
    if (lf != std::string::npos && (end == std::string::npos || lf < end)) {
      end = lf;
      delim = 2;
    }
    if (end == std::string::npos) {
      if (buffer_.size() > limits_.max_start_line + limits_.max_header_bytes)
        return fail(431, "header block exceeds " +
                             std::to_string(limits_.max_header_bytes) +
                             " bytes");
      return State::NeedMore;
    }
    const std::string_view block(buffer_.data(), end);
    if (!parse_header_block(block)) return State::Error;
    headers_done_ = true;
    body_begin_ = end + delim;
  }

  if (buffer_.size() - body_begin_ < body_expected_) return State::NeedMore;
  message_.body = buffer_.substr(body_begin_, body_expected_);
  return State::Complete;
}

bool HttpParser::parse_start_line(std::string_view line) {
  if (line.size() > limits_.max_start_line) {
    fail(kind_ == Kind::Request ? 414 : 400, "start line too long");
    return false;
  }
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) {
    fail(400, "malformed start line");
    return false;
  }
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (kind_ == Kind::Request) {
    if (sp2 == std::string_view::npos || sp2 == sp1 + 1) {
      fail(400, "malformed request line");
      return false;
    }
    message_.method = std::string(line.substr(0, sp1));
    message_.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
    message_.version = std::string(line.substr(sp2 + 1));
    if (!is_token(message_.method) || message_.target.empty() ||
        message_.target.find(' ') != std::string::npos) {
      fail(400, "malformed request line");
      return false;
    }
    if (message_.version != "HTTP/1.1" && message_.version != "HTTP/1.0") {
      fail(505, "unsupported protocol version '" + message_.version + "'");
      return false;
    }
  } else {
    message_.version = std::string(line.substr(0, sp1));
    const std::string_view code =
        sp2 == std::string_view::npos ? line.substr(sp1 + 1)
                                      : line.substr(sp1 + 1, sp2 - sp1 - 1);
    if (code.size() != 3 || code.find_first_not_of("0123456789") !=
                                std::string_view::npos) {
      fail(400, "malformed status line");
      return false;
    }
    message_.status = (code[0] - '0') * 100 + (code[1] - '0') * 10 +
                      (code[2] - '0');
    if (sp2 != std::string_view::npos)
      message_.reason = std::string(line.substr(sp2 + 1));
  }
  return true;
}

bool HttpParser::parse_header_block(std::string_view block) {
  bool first = true;
  bool saw_content_length = false;
  while (!block.empty()) {
    std::size_t eol = block.find('\n');
    std::string_view line =
        eol == std::string_view::npos ? block : block.substr(0, eol);
    block = eol == std::string_view::npos ? std::string_view{}
                                          : block.substr(eol + 1);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (first) {
      if (!parse_start_line(line)) return false;
      first = false;
      continue;
    }
    if (line.empty()) continue;
    if (line.front() == ' ' || line.front() == '\t') {
      fail(400, "obsolete header line folding");
      return false;
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      fail(400, "malformed header line");
      return false;
    }
    std::string name = to_lower(trim(line.substr(0, colon)));
    if (!is_token(name)) {
      fail(400, "malformed header name");
      return false;
    }
    const std::string_view value = trim(line.substr(colon + 1));

    if (name == "transfer-encoding") {
      fail(501, "transfer-encoding is not supported (use content-length)");
      return false;
    }
    if (name == "content-length") {
      std::size_t length = 0;
      if (!parse_size(value, length)) {
        fail(400, "malformed content-length");
        return false;
      }
      if (saw_content_length && length != body_expected_) {
        fail(400, "conflicting content-length headers");
        return false;
      }
      if (length > limits_.max_body_bytes) {
        fail(413, "body of " + std::to_string(length) + " bytes exceeds " +
                      std::to_string(limits_.max_body_bytes));
        return false;
      }
      saw_content_length = true;
      body_expected_ = length;
    }
    message_.headers.emplace_back(std::move(name), std::string(value));
  }
  if (first) {
    fail(400, "empty message");
    return false;
  }
  return true;
}

}  // namespace sunchase::serve
