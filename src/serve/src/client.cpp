#include "sunchase/serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "sunchase/common/error.h"

namespace sunchase::serve {

HttpClient::HttpClient(std::string host, std::uint16_t port,
                       double timeout_seconds)
    : host_(std::move(host)), port_(port), timeout_seconds_(timeout_seconds) {}

HttpClient::~HttpClient() { close(); }

void HttpClient::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void HttpClient::connect() {
  if (fd_ >= 0) return;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1)
    throw IoError("HttpClient: bad host '" + host_ + "'");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    throw IoError(std::string("HttpClient: socket: ") + std::strerror(errno));

  timeval tv{};
  const long whole = static_cast<long>(timeout_seconds_);
  tv.tv_sec = whole;
  tv.tv_usec =
      static_cast<long>((timeout_seconds_ - static_cast<double>(whole)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  const int enable = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof enable);

  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    throw IoError("HttpClient: connect " + host_ + ":" +
                  std::to_string(port_) + ": " + std::strerror(err));
  }
  fd_ = fd;
}

void HttpClient::send_bytes(std::string_view bytes) {
  connect();
  while (!bytes.empty()) {
    const ssize_t n = ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      close();
      throw IoError(std::string("HttpClient: send: ") + std::strerror(err));
    }
    bytes.remove_prefix(static_cast<std::size_t>(n));
  }
}

HttpResponse HttpClient::read_response() {
  HttpParser parser(HttpParser::Kind::Response);
  char buf[16 * 1024];
  while (parser.state() == HttpParser::State::NeedMore) {
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n > 0) {
      parser.feed(std::string_view(buf, static_cast<std::size_t>(n)));
      continue;
    }
    const int err = n == 0 ? 0 : errno;
    if (err == EINTR) continue;
    close();
    if (n == 0)
      throw IoError("HttpClient: connection closed before a full response");
    throw IoError(std::string("HttpClient: recv: ") + std::strerror(err));
  }
  if (parser.state() == HttpParser::State::Error) {
    close();
    throw IoError("HttpClient: malformed response: " + parser.error_reason());
  }

  const HttpMessage& message = parser.message();
  HttpResponse response;
  response.status = message.status;
  response.headers = message.headers;
  response.body = message.body;
  if (!message.keep_alive()) close();
  return response;
}

HttpResponse HttpClient::request(
    std::string_view method, std::string_view target, std::string_view body,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  std::string wire;
  wire.reserve(128 + body.size());
  wire += method;
  wire += ' ';
  wire += target;
  wire += " HTTP/1.1\r\nhost: ";
  wire += host_;
  wire += "\r\n";
  for (const auto& [name, value] : headers) {
    wire += name;
    wire += ": ";
    wire += value;
    wire += "\r\n";
  }
  wire += "content-length: ";
  wire += std::to_string(body.size());
  wire += "\r\n\r\n";
  wire += body;

  // The server may have closed the keep-alive connection since the last
  // round trip (drain, timeout); one reconnect-and-retry covers it.
  const bool was_connected = connected();
  send_bytes(wire);
  try {
    return read_response();
  } catch (const IoError&) {
    if (!was_connected) throw;
    send_bytes(wire);
    return read_response();
  }
}

}  // namespace sunchase::serve
