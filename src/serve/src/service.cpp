#include "sunchase/serve/service.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sunchase/common/error.h"
#include "sunchase/core/explain.h"
#include "sunchase/core/slot_cost_cache.h"
#include "sunchase/crowd/crowd_map.h"
#include "sunchase/crowd/world_fold.h"
#include "sunchase/obs/metrics.h"
#include "sunchase/obs/profiler.h"
#include "sunchase/obs/query_log.h"
#include "sunchase/obs/trace.h"
#include "sunchase/serve/json.h"

namespace sunchase::serve {

namespace {

/// Shortest round-trippable rendering of a double for response bodies.
std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

obs::Counter& counter(const char* name) {
  return obs::Registry::global().counter(name);
}

/// Required node-id member: a non-negative integral JSON number.
roadnet::NodeId node_from(const JsonValue& body, const char* key) {
  const JsonValue* member = body.find(key);
  if (member == nullptr)
    throw InvalidArgument(std::string("missing required field \"") + key +
                          '"');
  const double raw = member->as_number();
  if (!(raw >= 0.0) || raw != std::floor(raw) ||
      raw >= static_cast<double>(roadnet::kInvalidNode))
    throw InvalidArgument(std::string("field \"") + key +
                          "\" must be a non-negative node id");
  return static_cast<roadnet::NodeId>(raw);
}

TimeOfDay departure_from(const JsonValue& body) {
  const JsonValue* member = body.find("departure");
  if (member == nullptr)
    throw InvalidArgument("missing required field \"departure\"");
  return TimeOfDay::parse(member->as_string());
}

/// One candidate route as a response object (shared by /plan, /batch).
std::string candidate_json(const core::CandidateRoute& c) {
  std::string out = "{";
  out += "\"shortest_time\":";
  out += c.is_shortest_time ? "true" : "false";
  out += ",\"battery_feasible\":";
  out += c.battery_feasible ? "true" : "false";
  out += ",\"edges\":" + std::to_string(c.route.path.edges.size());
  out += ",\"length_m\":" + num(c.metrics.total_length.value());
  out += ",\"travel_time_s\":" + num(c.metrics.travel_time.value());
  out += ",\"solar_time_s\":" + num(c.metrics.solar_time.value());
  out += ",\"shaded_time_s\":" + num(c.metrics.shaded_time.value());
  out += ",\"energy_in_wh\":" + num(c.metrics.energy_in.value());
  out += ",\"energy_out_wh\":" + num(c.metrics.energy_out.value());
  out += ",\"net_drain_wh\":" + num(c.net_drain().value());
  out += ",\"extra_energy_wh\":" + num(c.extra_energy.value());
  out += ",\"extra_time_s\":" + num(c.extra_time.value());
  out += "}";
  return out;
}

/// The recommended candidate of a selection: the best better-solar
/// route when one survived, otherwise the shortest-time path — the same
/// rule as PlanResult::recommended().
const core::CandidateRoute& recommended_of(
    const std::vector<core::CandidateRoute>& candidates) {
  return candidates.size() > 1 ? candidates[1] : candidates.front();
}

/// The value of `?name=` in a request target, or nullopt when absent.
/// The /debug endpoints take only unescaped numeric parameters, so no
/// percent-decoding is needed.
std::optional<std::string> query_param(std::string_view target,
                                       std::string_view name) {
  const std::size_t question = target.find('?');
  if (question == std::string_view::npos) return std::nullopt;
  std::string_view rest = target.substr(question + 1);
  while (!rest.empty()) {
    const std::size_t amp = rest.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? rest : rest.substr(0, amp);
    rest = amp == std::string_view::npos ? std::string_view{}
                                         : rest.substr(amp + 1);
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) continue;
    if (pair.substr(0, eq) == name) return std::string(pair.substr(eq + 1));
  }
  return std::nullopt;
}

/// Parses a non-negative integer query parameter; `fallback` when the
/// parameter is absent, throws InvalidArgument on garbage.
std::uint64_t uint_param(std::string_view target, std::string_view name,
                         std::uint64_t fallback) {
  const std::optional<std::string> raw = query_param(target, name);
  if (!raw.has_value()) return fallback;
  if (raw->empty())
    throw InvalidArgument(std::string(name) + " must be a non-negative "
                                              "integer");
  std::uint64_t value = 0;
  for (const char c : *raw) {
    if (c < '0' || c > '9')
      throw InvalidArgument(std::string(name) + " must be a non-negative "
                                                "integer");
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10)
      throw InvalidArgument(std::string(name) + " out of range");
    value = value * 10 + digit;
  }
  return value;
}

}  // namespace

RouteService::RouteService(core::WorldStore& store,
                           RouteServiceOptions options)
    : store_(store),
      options_(std::move(options)),
      ledger_(options_.ledger_capacity) {
  // Fail configuration errors (unknown vehicle index, bad MLC options)
  // at construction instead of on the first request.
  core::PlannerOptions probe;
  probe.mlc = options_.mlc;
  probe.selection = options_.selection;
  (void)core::SunChasePlanner(store_.current(), probe);
}

HttpResponse RouteService::json_response(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.set_header("content-type", "application/json");
  response.body = std::move(body);
  return response;
}

HttpResponse RouteService::error_response(int status,
                                          std::string_view message) {
  return json_response(status, "{\"error\":" + json_quote(message) + "}");
}

void RouteService::set_draining(bool draining) noexcept {
  draining_.store(draining, std::memory_order_relaxed);
  obs::Registry::global().gauge("serve.draining").set(draining ? 1.0 : 0.0);
}

HttpResponse RouteService::handle(const HttpRequest& request) {
  // Adopt the caller's trace context or mint one, and keep it installed
  // for the whole request — including error paths. Propagation does not
  // depend on Tracer::enabled(): the request-id echo and QueryLog
  // stamping work even with span recording off.
  obs::TraceContext context;
  if (const std::string* inbound = request.header("traceparent"))
    if (const auto parsed = obs::TraceContext::from_traceparent(*inbound))
      context = *parsed;
  if (!context.valid()) context = obs::TraceContext::generate();
  const obs::TraceScope trace_scope(context);
  const obs::SpanTimer span("serve.request");
  // Inside the span: the serve.request span itself when recording, the
  // adopted context otherwise — either way the right parent for the
  // caller's next hop.
  const std::string response_parent =
      obs::current_trace().to_traceparent();

  HttpResponse response = [&] {
    try {
      return dispatch(request);
    } catch (const RoutingError& e) {
      // The query was well-formed but unplannable (unreachable within
      // the time budget, label-budget exhaustion): the client's route
      // problem, not a malformed request.
      return error_response(422, e.what());
    } catch (const InvalidArgument& e) {
      return error_response(400, e.what());
    } catch (const GraphError& e) {
      return error_response(400, e.what());
    } catch (const IoError& e) {
      return error_response(400, e.what());
    } catch (const std::exception& e) {
      counter("serve.errors").add();
      return error_response(500, e.what());
    }
  }();
  response.set_header("x-sunchase-request-id", context.trace_id_hex());
  response.set_header("traceparent", response_parent);
  return response;
}

const char* RouteService::route_label(std::string_view target) noexcept {
  std::string_view path = target;
  if (const std::size_t query = path.find('?');
      query != std::string_view::npos)
    path = path.substr(0, query);
  if (path == "/plan") return "/plan";
  if (path == "/batch") return "/batch";
  if (path == "/healthz") return "/healthz";
  if (path == "/metrics") return "/metrics";
  if (path == "/world/publish") return "/world/publish";
  if (path.substr(0, 9) == "/explain/") return "/explain";
  if (path.substr(0, 7) == "/debug/") return "/debug";
  return "other";
}

HttpResponse RouteService::dispatch(const HttpRequest& request) {
  // The route server defines no query parameters; strip them so
  // "/healthz?probe=1" still routes.
  std::string path = request.target;
  if (const std::size_t query = path.find('?'); query != std::string::npos)
    path.resize(query);

  const bool is_get = request.method == "GET";
  const bool is_post = request.method == "POST";

  if (path == "/healthz")
    return is_get ? handle_healthz()
                  : error_response(405, "use GET /healthz");
  if (path == "/metrics")
    return is_get ? handle_metrics(request.target)
                  : error_response(405, "use GET /metrics");
  if (path == "/plan")
    return is_post ? handle_plan(request)
                   : error_response(405, "use POST /plan");
  if (path == "/batch")
    return is_post ? handle_batch(request)
                   : error_response(405, "use POST /batch");
  if (path == "/world/publish")
    return is_post ? handle_publish(request)
                   : error_response(405, "use POST /world/publish");
  // The /debug handlers read their own ?since= / ?n= parameters from
  // the unstripped target.
  if (path == "/debug/trace")
    return is_get ? handle_debug_trace(request.target)
                  : error_response(405, "use GET /debug/trace");
  if (path == "/debug/queries")
    return is_get ? handle_debug_queries(request.target)
                  : error_response(405, "use GET /debug/queries");
  if (path == "/debug/worlds")
    return is_get ? handle_debug_worlds()
                  : error_response(405, "use GET /debug/worlds");
  if (path == "/debug/profile")
    return is_get ? handle_debug_profile(request.target)
                  : error_response(405, "use GET /debug/profile");

  constexpr std::string_view kExplain = "/explain/";
  if (path.size() > kExplain.size() &&
      std::string_view(path).substr(0, kExplain.size()) == kExplain) {
    if (!is_get) return error_response(405, "use GET /explain/{query_id}");
    std::uint64_t id = 0;
    for (const char c : std::string_view(path).substr(kExplain.size())) {
      if (c < '0' || c > '9')
        return error_response(400, "query id must be decimal digits");
      const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
      if (id > (std::numeric_limits<std::uint64_t>::max() - digit) / 10)
        return error_response(400, "query id out of range");
      id = id * 10 + digit;
    }
    return handle_explain(id);
  }

  return error_response(404, "unknown path: " + path);
}

core::MlcOptions RouteService::mlc_options_from(const JsonValue& body) {
  core::MlcOptions mlc = options_.mlc;
  if (const JsonValue* pricing = body.find("pricing")) {
    const std::string& name = pricing->as_string();
    if (name == "exact") {
      mlc.pricing = core::PricingMode::Exact;
    } else if (name == "slot") {
      mlc.pricing = core::PricingMode::SlotQuantized;
    } else {
      throw InvalidArgument("pricing must be \"exact\" or \"slot\", got \"" +
                            name + '"');
    }
  }
  if (const JsonValue* factor = body.find("time_budget")) {
    mlc.max_time_factor = factor->as_number();
    // Full validation at the request surface, worded in request terms.
    // Non-finite first: NaN passes every ordered comparison's false
    // branch, and "1e999" parses to +inf — either would otherwise ride
    // into the solver as a budget that never prunes.
    if (!std::isfinite(mlc.max_time_factor))
      throw InvalidArgument("time_budget must be a finite number");
    if (mlc.max_time_factor < 0.0)
      throw InvalidArgument("time_budget must be non-negative");
    if (mlc.max_time_factor > 0.0 && mlc.max_time_factor < 1.0)
      throw InvalidArgument(
          "time_budget must be 0 (unbounded) or >= 1 (a multiple of the "
          "shortest travel time)");
  }
  if (const JsonValue* epsilon = body.find("epsilon")) {
    mlc.epsilon = epsilon->as_number();
    if (!std::isfinite(mlc.epsilon) || mlc.epsilon < 0.0)
      throw InvalidArgument("epsilon must be a finite number >= 0");
  }
  if (const JsonValue* prune = body.find("prune_with_lower_bounds"))
    mlc.prune_with_lower_bounds = prune->as_bool();
  if (const JsonValue* vehicle = body.find("vehicle")) {
    const double raw = vehicle->as_number();
    if (!(raw >= 0.0) || raw != std::floor(raw))
      throw InvalidArgument("vehicle must be a non-negative index");
    mlc.vehicle = static_cast<std::size_t>(raw);
  }
  if (const JsonValue* dependent = body.find("time_dependent"))
    mlc.time_dependent = dependent->as_bool();
  return mlc;
}

HttpResponse RouteService::handle_plan(const HttpRequest& request) {
  const JsonValue body = JsonValue::parse(request.body);
  const roadnet::NodeId origin = node_from(body, "origin");
  const roadnet::NodeId destination = node_from(body, "destination");
  const TimeOfDay departure = departure_from(body);

  core::PlannerOptions popts;
  popts.mlc = mlc_options_from(body);
  popts.selection = options_.selection;
  popts.query_log = options_.query_log;

  // Pin the store's current snapshot for this one request; a publish
  // landing mid-plan changes nothing we read.
  const core::WorldPtr world = store_.current();
  const core::SunChasePlanner planner(world, popts);
  const core::PlanResult plan = planner.plan(origin, destination, departure);
  const core::CandidateRoute& chosen = plan.recommended();

  LedgerEntry entry;
  entry.world = world;
  entry.origin = origin;
  entry.destination = destination;
  entry.departure = departure;
  entry.pricing = popts.mlc.pricing;
  entry.time_dependent = popts.mlc.time_dependent;
  entry.vehicle = popts.mlc.vehicle;
  entry.route = chosen.route.path;
  entry.cost = chosen.route.cost;
  entry.trace_id = obs::current_trace().trace_id_hex();
  entry.cpu_ms = plan.cpu_seconds * 1000.0;
  entry.labels_created = plan.search_stats.labels_created;
  entry.queue_pops = plan.search_stats.queue_pops;
  const std::uint64_t query_id = ledger_.record(std::move(entry));
  counter("serve.plans").add();

  std::string out = "{";
  out += "\"query_id\":" + std::to_string(query_id);
  out += ",\"world_version\":" + std::to_string(world->version());
  out += ",\"pricing\":" + json_quote(core::pricing_name(popts.mlc.pricing));
  out += ",\"origin\":" + std::to_string(origin);
  out += ",\"destination\":" + std::to_string(destination);
  out += ",\"departure\":" + json_quote(departure.to_string());
  out += ",\"pareto_routes\":" + std::to_string(plan.pareto_route_count);
  out += ",\"clusters\":" + std::to_string(plan.cluster_count);
  out += ",\"recommended\":" +
         std::to_string(plan.has_better_solar() ? 1 : 0);
  out += ",\"candidates\":[";
  for (std::size_t i = 0; i < plan.candidates.size(); ++i) {
    if (i != 0) out += ',';
    out += candidate_json(plan.candidates[i]);
  }
  out += "],\"stats\":{";
  out += "\"labels_created\":" +
         std::to_string(plan.search_stats.labels_created);
  out += ",\"labels_dominated\":" +
         std::to_string(plan.search_stats.labels_dominated);
  out += ",\"queue_pops\":" + std::to_string(plan.search_stats.queue_pops);
  out += ",\"pareto_size\":" + std::to_string(plan.search_stats.pareto_size);
  out += ",\"labels_pruned_bound\":" +
         std::to_string(plan.search_stats.labels_pruned_bound);
  out += ",\"labels_merged_epsilon\":" +
         std::to_string(plan.search_stats.labels_merged_epsilon);
  out += ",\"lower_bound_seconds\":" +
         num(plan.search_stats.lower_bound_seconds);
  out += ",\"search_seconds\":" + num(plan.search_stats.search_seconds);
  out += ",\"cpu_ms\":" + num(plan.cpu_seconds * 1000.0);
  out += "}}";
  return json_response(200, std::move(out));
}

HttpResponse RouteService::handle_batch(const HttpRequest& request) {
  const JsonValue body = JsonValue::parse(request.body);
  const JsonValue* queries_member = body.find("queries");
  if (queries_member == nullptr)
    throw InvalidArgument("missing required field \"queries\"");
  const JsonValue::Array& query_values = queries_member->as_array();
  if (query_values.empty())
    throw InvalidArgument("\"queries\" must not be empty");
  if (query_values.size() > options_.max_batch_queries)
    return error_response(
        413, "batch of " + std::to_string(query_values.size()) +
                 " queries exceeds the limit of " +
                 std::to_string(options_.max_batch_queries));

  std::vector<core::BatchQuery> queries;
  queries.reserve(query_values.size());
  for (const JsonValue& value : query_values) {
    core::BatchQuery query;
    query.origin = node_from(value, "origin");
    query.destination = node_from(value, "destination");
    query.departure = departure_from(value);
    queries.push_back(query);
  }

  core::BatchPlannerOptions bopts;
  bopts.workers = options_.batch_workers;
  bopts.mlc = mlc_options_from(body);
  bopts.run_selection = true;
  bopts.selection = options_.selection;
  bopts.query_log = options_.query_log;

  // Live mode: each query pins store.current() when its worker picks it
  // up, so a /world/publish mid-batch splits the batch across versions
  // without tearing any single query.
  const core::BatchPlanner planner(store_, bopts);
  core::BatchResult result = planner.plan_all(queries);
  counter("serve.batches").add();

  std::string rows = "[";
  std::uint64_t version_min = 0;
  std::uint64_t version_max = 0;
  for (std::size_t i = 0; i < result.queries.size(); ++i) {
    core::BatchQueryResult& qr = result.queries[i];
    if (i != 0) rows += ',';
    rows += "{\"index\":" + std::to_string(i);
    if (!qr.ok() || !qr.selection.has_value() ||
        qr.selection->candidates.empty()) {
      rows += ",\"status\":\"error\",\"error\":" +
              json_quote(qr.error.empty() ? "no candidate routes"
                                          : qr.error) +
              "}";
      continue;
    }
    const std::uint64_t version = qr.world->version();
    version_min = version_min == 0 ? version : std::min(version_min, version);
    version_max = std::max(version_max, version);

    const core::CandidateRoute& chosen =
        recommended_of(qr.selection->candidates);
    LedgerEntry entry;
    entry.world = qr.world;
    entry.origin = queries[i].origin;
    entry.destination = queries[i].destination;
    entry.departure = queries[i].departure;
    entry.pricing = bopts.mlc.pricing;
    entry.time_dependent = bopts.mlc.time_dependent;
    entry.vehicle = bopts.mlc.vehicle;
    entry.route = chosen.route.path;
    entry.cost = chosen.route.cost;
    entry.trace_id = obs::current_trace().trace_id_hex();
    entry.cpu_ms = qr.cpu_seconds * 1000.0;
    entry.labels_created = qr.result->stats.labels_created;
    entry.queue_pops = qr.result->stats.queue_pops;
    const std::uint64_t query_id = ledger_.record(std::move(entry));

    rows += ",\"status\":\"ok\"";
    rows += ",\"query_id\":" + std::to_string(query_id);
    rows += ",\"world_version\":" + std::to_string(version);
    rows += ",\"candidates\":" +
            std::to_string(qr.selection->candidates.size());
    rows += ",\"recommended\":" + candidate_json(chosen);
    rows += "}";
  }
  rows += "]";

  const core::BatchStats& stats = result.stats;
  std::string out = "{";
  out += "\"pricing\":" + json_quote(core::pricing_name(bopts.mlc.pricing));
  out += ",\"world_version\":{\"min\":" + std::to_string(version_min) +
         ",\"max\":" + std::to_string(version_max) + "}";
  out += ",\"stats\":{";
  out += "\"queries\":" + std::to_string(stats.query_count);
  out += ",\"ok\":" + std::to_string(stats.succeeded);
  out += ",\"failed\":" + std::to_string(stats.failed);
  out += ",\"workers\":" + std::to_string(stats.workers);
  out += ",\"wall_seconds\":" + num(stats.wall_seconds);
  out += ",\"queries_per_second\":" + num(stats.queries_per_second);
  out += ",\"p50_ms\":" + num(stats.latency.quantile(0.5) * 1000.0);
  out += ",\"p95_ms\":" + num(stats.latency.quantile(0.95) * 1000.0);
  out += ",\"cpu_seconds\":" + num(stats.cpu_seconds);
  out += "},\"results\":" + rows;
  out += "}";
  return json_response(200, std::move(out));
}

HttpResponse RouteService::handle_explain(std::uint64_t query_id) {
  const std::optional<LedgerEntry> entry = ledger_.find(query_id);
  if (!entry.has_value())
    return error_response(404, "query id " + std::to_string(query_id) +
                                   " is unknown or already evicted");

  // Replay against the snapshot pinned when the query was answered —
  // never the store's current world, which may be versions ahead.
  const core::RouteExplainer explainer(entry->world, entry->vehicle);
  const core::RouteLedger route_ledger = explainer.explain(
      entry->route, entry->departure, entry->time_dependent, entry->pricing);
  counter("serve.explains").add();

  std::string out = "{";
  out += "\"query_id\":" + std::to_string(query_id);
  out += ",\"world_version\":" + std::to_string(entry->world->version());
  out += ",\"origin\":" + std::to_string(entry->origin);
  out += ",\"destination\":" + std::to_string(entry->destination);
  out += ",\"departure\":" + json_quote(entry->departure.to_string());
  out += ",\"pricing\":" + json_quote(core::pricing_name(entry->pricing));
  if (!entry->trace_id.empty())
    out += ",\"trace_id\":" + json_quote(entry->trace_id);
  out += ",\"time_dependent\":";
  out += entry->time_dependent ? "true" : "false";
  out += ",\"vehicle\":" + std::to_string(entry->vehicle);
  // What the original answer cost: CPU + the search effort behind it.
  out += ",\"cost_accounting\":{\"cpu_ms\":" + num(entry->cpu_ms);
  out += ",\"labels_created\":" + std::to_string(entry->labels_created);
  out += ",\"queue_pops\":" + std::to_string(entry->queue_pops) + "}";
  out += ",\"conserves\":";
  out += route_ledger.conserves(entry->cost) ? "true" : "false";
  out += ",\"max_deviation\":" + num(route_ledger.max_deviation(entry->cost));
  out += ",\"ledger\":" + route_ledger.to_json();
  out += "}";
  return json_response(200, std::move(out));
}

HttpResponse RouteService::handle_publish(const HttpRequest& request) {
  // Serialize admin publishes: two concurrent folds would each read
  // current() and race to publish, silently dropping one fold's
  // observations from the lineage.
  const std::lock_guard<std::mutex> lock(publish_mutex_);

  std::size_t observation_count = 0;
  double coverage = 0.0;
  core::WorldPtr published;

  const bool empty_body =
      request.body.find_first_not_of(" \t\r\n") == std::string::npos;
  if (empty_body) {
    // No observations: still roll the version (a forced refresh), which
    // rebuilds the solar map and slot caches from the same recipe.
    published = store_.publish(store_.current()->recipe());
  } else {
    const JsonValue body = JsonValue::parse(request.body);
    const JsonValue* observations = body.find("observations");
    if (observations == nullptr)
      throw InvalidArgument("missing required field \"observations\"");

    crowd::CrowdSolarMap::Options copts;
    if (const JsonValue* min_obs = body.find("min_observations")) {
      const double raw = min_obs->as_number();
      if (!(raw >= 1.0) || raw != std::floor(raw))
        throw InvalidArgument("min_observations must be a positive integer");
      copts.min_observations = static_cast<int>(raw);
    }

    const core::WorldPtr base = store_.current();
    // The prior is never consulted: fold_observations falls back to the
    // base snapshot's profile for uncovered cells, not to the map prior.
    crowd::CrowdSolarMap crowd(
        base->graph().edge_count(),
        [](roadnet::EdgeId, TimeOfDay) { return 0.0; }, copts);
    for (const JsonValue& value : observations->as_array()) {
      crowd::Observation observation;
      const JsonValue* edge = value.find("edge");
      const JsonValue* slot = value.find("slot");
      const JsonValue* fraction = value.find("shaded_fraction");
      if (edge == nullptr || slot == nullptr || fraction == nullptr)
        throw InvalidArgument(
            "each observation needs edge, slot, shaded_fraction");
      observation.edge = static_cast<roadnet::EdgeId>(edge->as_number());
      observation.slot = static_cast<int>(slot->as_number());
      observation.shaded_fraction = fraction->as_number();
      observation.vehicle_id =
          static_cast<std::uint64_t>(value.number_or("vehicle_id", 0.0));
      crowd.report(observation);
    }
    observation_count = crowd.observation_count();
    coverage = crowd.coverage();
    published = crowd::publish_crowd_world(store_, crowd);
  }
  counter("serve.publishes").add();

  std::string out = "{";
  out += "\"world_version\":" + std::to_string(published->version());
  out += ",\"observations\":" + std::to_string(observation_count);
  out += ",\"coverage\":" + num(coverage);
  const core::JournalState journal = store_.journal_state();
  out += ",\"journal\":{\"enabled\":";
  out += journal.enabled ? "true" : "false";
  if (journal.enabled) {
    out += ",\"persisted_version\":" +
           std::to_string(journal.persisted_version);
  }
  out += "}}";
  return json_response(200, std::move(out));
}

HttpResponse RouteService::handle_healthz() {
  const double uptime = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - started_)
                            .count();
  std::string out = "{";
  out += "\"status\":";
  out += draining() ? "\"draining\"" : "\"ok\"";
  out += ",\"draining\":";
  out += draining() ? "true" : "false";
  out += ",\"world_version\":" + std::to_string(store_.current()->version());
  out += ",\"uptime_seconds\":" + num(uptime);
  // queries_served is the canonical name; queries_recorded stays for
  // probes written against the older body.
  out += ",\"queries_served\":" + std::to_string(ledger_.recorded());
  out += ",\"queries_recorded\":" + std::to_string(ledger_.recorded());
  out += "}";
  return json_response(200, std::move(out));
}

HttpResponse RouteService::handle_debug_profile(const std::string& target) {
  counter("serve.debug_requests").add();
  const std::optional<std::string> format = query_param(target, "format");
  if (format.has_value() && *format != "json" && *format != "collapsed")
    return error_response(400, "format must be \"json\" or \"collapsed\"");
  const std::uint64_t reset = uint_param(target, "reset", 0);

  obs::Profiler& profiler = obs::Profiler::global();
  HttpResponse response;
  if (format.has_value() && *format == "json") {
    response = json_response(200, profiler.to_json() + "\n");
  } else {
    // Collapsed-stack text (the default): pipe straight into
    // flamegraph.pl / speedscope.
    response.status = 200;
    response.set_header("content-type", "text/plain");
    response.body = profiler.collapsed();
  }
  // Snapshot-then-reset: the response carries the folds that were
  // dropped, so a poller loses nothing.
  if (reset != 0) profiler.reset();
  return response;
}

HttpResponse RouteService::handle_debug_trace(const std::string& target) {
  // to_chrome_json already is the response body: a poller remembers the
  // document's "now_us" and passes it back as ?since= next time to see
  // only spans that ended in between.
  const std::uint64_t since = uint_param(target, "since", 0);
  counter("serve.debug_requests").add();
  return json_response(200, obs::Tracer::global().to_chrome_json(since));
}

HttpResponse RouteService::handle_debug_queries(const std::string& target) {
  const std::uint64_t n = uint_param(target, "n", 32);
  counter("serve.debug_requests").add();
  std::string out = "{";
  if (options_.query_log == nullptr) {
    out += "\"enabled\":false,\"count\":0,\"queries\":[]}";
    return json_response(200, std::move(out));
  }
  const std::vector<std::string> lines = options_.query_log->tail(
      static_cast<std::size_t>(std::min<std::uint64_t>(
          n, obs::QueryLog::kTailCapacity)));
  out += "\"enabled\":true";
  out += ",\"recorded\":" +
         std::to_string(options_.query_log->record_count());
  out += ",\"count\":" + std::to_string(lines.size());
  out += ",\"queries\":[";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (i != 0) out += ',';
    out += lines[i];  // each line already is one JSON object
  }
  out += "]}";
  return json_response(200, std::move(out));
}

HttpResponse RouteService::handle_debug_worlds() {
  counter("serve.debug_requests").add();
  const core::WorldPtr current = store_.current();
  std::string out = "{";
  out += "\"current_version\":" + std::to_string(current->version());
  out += ",\"vehicles\":" + std::to_string(current->vehicle_count());
  const core::SlotCostCache& cache = current->slot_cache();
  out += ",\"slot_cache\":{\"filled_slots\":" +
         std::to_string(cache.filled_slots()) +
         ",\"bytes\":" + std::to_string(cache.bytes()) + "}";
  out += ",\"lineage\":[";
  const std::vector<core::WorldVersionInfo> rows = store_.lineage();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const core::WorldVersionInfo& row = rows[i];
    if (i != 0) out += ',';
    out += "{\"version\":" + std::to_string(row.version);
    out += ",\"current\":";
    out += row.current ? "true" : "false";
    out += ",\"alive\":";
    out += row.alive ? "true" : "false";
    out += ",\"pins\":" + std::to_string(row.pins);
    out += "}";
  }
  out += "]";
  const core::JournalState journal = store_.journal_state();
  out += ",\"journal\":{\"enabled\":";
  out += journal.enabled ? "true" : "false";
  if (journal.enabled) {
    out += ",\"directory\":" + json_quote(journal.directory);
    out += ",\"durable\":";
    out += journal.durable ? "true" : "false";
    out += ",\"include_slot_cache\":";
    out += journal.include_slot_cache ? "true" : "false";
    out += ",\"persisted_version\":" +
           std::to_string(journal.persisted_version);
    out += ",\"persist_failures\":" +
           std::to_string(journal.persist_failures);
    out += ",\"snapshots_on_disk\":" +
           std::to_string(journal.snapshots_on_disk);
  }
  out += "}}";
  return json_response(200, std::move(out));
}

HttpResponse RouteService::handle_metrics(const std::string& target) {
  const std::optional<std::string> format = query_param(target, "format");
  if (format.has_value() && *format == "json")
    return json_response(200,
                         obs::Registry::global().snapshot().to_json() + "\n");
  if (format.has_value() && *format != "prometheus")
    return error_response(400, "format must be \"prometheus\" or \"json\"");
  HttpResponse response;
  response.status = 200;
  response.set_header("content-type", "text/plain; version=0.0.4");
  response.body = obs::Registry::global().snapshot().to_prometheus();
  return response;
}

}  // namespace sunchase::serve
