// Speed planning for solar-powered EVs — the companion problem the
// paper defers to Lv et al. [1] and explicitly proposes integrating
// with SunChase ("In case where it is required, two works can be
// integrated to achieve the goal", Sec. I).
//
// Given a fixed route split into illuminated and shaded stretches,
// choose a cruising speed per stretch so that the vehicle arrives as
// early as possible while the battery never runs dry: slowing down on
// illuminated stretches buys harvest time (E = C * s/v grows as v
// drops) and cuts the quadratic consumption; slowing on shaded
// stretches only cuts consumption. The solver is a dynamic program
// over (segment, discretized battery level), matching Lv's DP
// formulation.
#pragma once

#include <vector>

#include "sunchase/common/units.h"
#include "sunchase/ev/consumption.h"
#include "sunchase/roadnet/path.h"
#include "sunchase/solar/input_map.h"

namespace sunchase::speedplan {

/// One stretch of road with homogeneous solar exposure.
struct SegmentSpec {
  Meters length{0.0};
  /// Fraction of the stretch that is illuminated in [0, 1]; harvesting
  /// power while on it is `panel_power * solar_fraction`.
  double solar_fraction = 0.0;
  Watts panel_power{0.0};
};

struct SpeedPlanOptions {
  MetersPerSecond min_speed = kmh(8.0);
  MetersPerSecond max_speed = kmh(40.0);
  int speed_steps = 33;     ///< discrete speed choices per segment
  int battery_steps = 400;  ///< battery-level discretization
};

/// Chosen speed and energy flow on one segment.
struct SegmentPlan {
  MetersPerSecond speed{0.0};
  Seconds time{0.0};
  WattHours harvested{0.0};
  WattHours consumed{0.0};
};

struct SpeedPlanResult {
  bool feasible = false;       ///< false: battery dies at every speed choice
  std::vector<SegmentPlan> segments;
  Seconds total_time{0.0};
  WattHours final_battery{0.0};
};

/// Minimum-time speed assignment with the battery constrained to stay
/// non-negative after every segment (and capped at `capacity`).
/// Throws InvalidArgument for empty segments, non-positive battery
/// capacity, or a degenerate speed range.
[[nodiscard]] SpeedPlanResult plan_speeds(
    const std::vector<SegmentSpec>& segments,
    const ev::ConsumptionModel& vehicle, WattHours initial_battery,
    WattHours capacity, const SpeedPlanOptions& options = SpeedPlanOptions{});

/// Splits a routed path into SegmentSpecs using the solar input map at
/// the departure time: each edge becomes an illuminated stretch and a
/// shaded stretch (when present), with the panel power of the edge's
/// entry slot. The clock advances with the map's predicted travel
/// times, as in route evaluation.
[[nodiscard]] std::vector<SegmentSpec> segments_from_route(
    const solar::SolarInputMap& map, const roadnet::Path& path,
    TimeOfDay departure);

}  // namespace sunchase::speedplan
