#include "sunchase/speedplan/speedplan.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sunchase/common/error.h"

namespace sunchase::speedplan {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

SpeedPlanResult plan_speeds(const std::vector<SegmentSpec>& segments,
                            const ev::ConsumptionModel& vehicle,
                            WattHours initial_battery, WattHours capacity,
                            const SpeedPlanOptions& options) {
  if (segments.empty())
    throw InvalidArgument("plan_speeds: no segments");
  if (capacity.value() <= 0.0)
    throw InvalidArgument("plan_speeds: non-positive capacity");
  if (initial_battery.value() < 0.0 || initial_battery > capacity)
    throw InvalidArgument("plan_speeds: initial battery outside [0,capacity]");
  if (options.min_speed.value() <= 0.0 ||
      options.max_speed <= options.min_speed)
    throw InvalidArgument("plan_speeds: degenerate speed range");
  if (options.speed_steps < 2 || options.battery_steps < 2)
    throw InvalidArgument("plan_speeds: need >= 2 speed and battery steps");
  for (const SegmentSpec& seg : segments) {
    if (seg.length.value() <= 0.0)
      throw InvalidArgument("plan_speeds: non-positive segment length");
    if (seg.solar_fraction < 0.0 || seg.solar_fraction > 1.0)
      throw InvalidArgument("plan_speeds: solar fraction outside [0,1]");
  }

  const int levels = options.battery_steps + 1;
  const double unit = capacity.value() / options.battery_steps;
  auto level_of = [&](double energy_wh) {
    return std::clamp(static_cast<int>(std::floor(energy_wh / unit)), 0,
                      levels - 1);
  };

  // Discrete speed menu (shared by all segments).
  std::vector<double> speeds(static_cast<std::size_t>(options.speed_steps));
  for (int j = 0; j < options.speed_steps; ++j)
    speeds[static_cast<std::size_t>(j)] =
        options.min_speed.value() +
        (options.max_speed.value() - options.min_speed.value()) * j /
            (options.speed_steps - 1);

  // dp[b] = minimum elapsed time reaching the end of the current
  // segment prefix with battery level b; choice tracking for the
  // reconstruction.
  struct Choice {
    int prev_level = -1;
    int speed_index = -1;
  };
  std::vector<double> dp(static_cast<std::size_t>(levels), kInf);
  dp[static_cast<std::size_t>(level_of(initial_battery.value()))] = 0.0;
  std::vector<std::vector<Choice>> choices(
      segments.size(), std::vector<Choice>(static_cast<std::size_t>(levels)));

  for (std::size_t i = 0; i < segments.size(); ++i) {
    const SegmentSpec& seg = segments[i];
    std::vector<double> next(static_cast<std::size_t>(levels), kInf);
    for (int b = 0; b < levels; ++b) {
      const double t0 = dp[static_cast<std::size_t>(b)];
      if (t0 == kInf) continue;
      const double battery_wh = b * unit;
      for (int j = 0; j < options.speed_steps; ++j) {
        const double v = speeds[static_cast<std::size_t>(j)];
        const double dt = seg.length.value() / v;
        const double consumed =
            vehicle.consumption(seg.length, MetersPerSecond{v}).value();
        const double harvested =
            seg.panel_power.value() * seg.solar_fraction * dt / 3600.0;
        const double after =
            std::min(battery_wh + harvested - consumed, capacity.value());
        if (after < 0.0) continue;  // battery would die mid-trip
        const int nb = level_of(after);
        const double nt = t0 + dt;
        if (nt < next[static_cast<std::size_t>(nb)]) {
          next[static_cast<std::size_t>(nb)] = nt;
          choices[i][static_cast<std::size_t>(nb)] = Choice{b, j};
        }
      }
    }
    dp = std::move(next);
  }

  SpeedPlanResult result;
  int best_level = -1;
  double best_time = kInf;
  for (int b = 0; b < levels; ++b) {
    if (dp[static_cast<std::size_t>(b)] < best_time) {
      best_time = dp[static_cast<std::size_t>(b)];
      best_level = b;
    }
  }
  if (best_level < 0) return result;  // infeasible at every speed

  // Walk the choices backwards to recover per-segment speeds.
  result.feasible = true;
  result.total_time = Seconds{best_time};
  result.final_battery = WattHours{best_level * unit};
  result.segments.resize(segments.size());
  int level = best_level;
  for (std::size_t i = segments.size(); i-- > 0;) {
    const Choice c = choices[i][static_cast<std::size_t>(level)];
    const SegmentSpec& seg = segments[i];
    const double v = speeds[static_cast<std::size_t>(c.speed_index)];
    const double dt = seg.length.value() / v;
    SegmentPlan& plan = result.segments[i];
    plan.speed = MetersPerSecond{v};
    plan.time = Seconds{dt};
    plan.harvested =
        WattHours{seg.panel_power.value() * seg.solar_fraction * dt / 3600.0};
    plan.consumed = vehicle.consumption(seg.length, plan.speed);
    level = c.prev_level;
  }
  return result;
}

std::vector<SegmentSpec> segments_from_route(const solar::SolarInputMap& map,
                                             const roadnet::Path& path,
                                             TimeOfDay departure) {
  std::vector<SegmentSpec> segments;
  segments.reserve(path.size() * 2);
  TimeOfDay clock = departure;
  const auto& graph = map.graph();
  for (const roadnet::EdgeId e : path.edges) {
    const solar::EdgeSolar es = map.evaluate(e, clock);
    const Watts c = map.panel_power(clock);
    const Meters length = graph.edge(e).length;
    const double frac =
        es.travel_time.value() > 0.0
            ? es.solar_time.value() / es.travel_time.value()
            : 0.0;
    const Meters solar_len = length * frac;
    const Meters shaded_len = length - solar_len;
    // One illuminated stretch and one shaded stretch per edge (the
    // paper's road model: each edge consists of illuminated segments
    // and shaded segments; the split within the edge does not matter
    // for either harvesting or consumption).
    if (solar_len.value() > 0.5)
      segments.push_back(SegmentSpec{solar_len, 1.0, c});
    if (shaded_len.value() > 0.5)
      segments.push_back(SegmentSpec{shaded_len, 0.0, c});
    clock = clock.advanced_by(es.travel_time);
  }
  return segments;
}

}  // namespace sunchase::speedplan
