// The binary snapshot container: round-trips, zero-copy aliasing, and
// — the part that earns the checksums — every corruption mode a torn
// journal can produce turning into a SnapshotError that names the
// file, the section, and the byte offset.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "sunchase/common/error.h"
#include "sunchase/snapshot/crc32.h"
#include "sunchase/snapshot/format.h"
#include "sunchase/snapshot/reader.h"
#include "sunchase/snapshot/writer.h"

namespace sunchase::snapshot {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<char> read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_all(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A small two-section snapshot: uint32 ids and a double payload.
std::string write_sample(const std::string& name,
                         std::uint64_t version = 7) {
  const std::string path = temp_path(name);
  const std::vector<std::uint32_t> ids = {10, 20, 30, 40, 50};
  const std::vector<double> weights = {1.5, -2.25, 4.0};
  SnapshotWriter writer(version);
  writer.add_array<std::uint32_t>(kNodes, 0, ids);
  writer.add_array<double>(kPanel, 0, weights);
  writer.write_file(path, WriteOptions{/*durable=*/false});
  return path;
}

/// Patches a header field in place and recomputes the header CRC, so
/// field-level rejections (version, endianness) are reachable past the
/// checksum gate.
void patch_header(std::vector<char>& bytes,
                  void (*mutate)(FileHeader&)) {
  FileHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  mutate(header);
  header.header_crc = 0;
  header.header_crc = crc32(
      {reinterpret_cast<const std::byte*>(&header), sizeof(header)});
  std::memcpy(bytes.data(), &header, sizeof(header));
}

/// The SnapshotError message from opening `path`, "" when it opens.
std::string open_error(const std::string& path) {
  try {
    (void)SnapshotReader::open(path);
    return "";
  } catch (const SnapshotError& e) {
    return e.what();
  }
}

TEST(SnapshotCrcTest, MatchesTheIeeeCheckValue) {
  const char data[] = "123456789";
  EXPECT_EQ(crc32(std::as_bytes(std::span<const char>(data, 9))),
            0xCBF43926u);
  EXPECT_EQ(crc32({}), 0u);
}

TEST(SnapshotCrcTest, SeedChainsIncrementalComputation) {
  const char data[] = "123456789";
  const auto all = std::as_bytes(std::span<const char>(data, 9));
  const std::uint32_t once = crc32(all);
  const std::uint32_t chained = crc32(all.subspan(4), crc32(all.first(4)));
  EXPECT_EQ(once, chained);
}

TEST(SnapshotFormatTest, RoundTripsSectionsBitExactly) {
  const std::string path = write_sample("roundtrip.scsnap", 42);
  const SnapshotReader reader = SnapshotReader::open(path);
  EXPECT_EQ(reader.world_version(), 42u);
  EXPECT_EQ(reader.section_count(), 2u);

  const common::FrozenArray<std::uint32_t> ids =
      reader.array<std::uint32_t>(kNodes);
  ASSERT_EQ(ids.size(), 5u);
  EXPECT_EQ(ids[0], 10u);
  EXPECT_EQ(ids[4], 50u);
  const common::FrozenArray<double> weights = reader.array<double>(kPanel);
  ASSERT_EQ(weights.size(), 3u);
  EXPECT_EQ(weights[1], -2.25);
}

TEST(SnapshotFormatTest, ArraysAliasTheMappingZeroCopy) {
  const std::string path = write_sample("zerocopy.scsnap");
  const SnapshotReader reader = SnapshotReader::open(path);
  const auto mapped = reader.mapping()->bytes();
  const common::FrozenArray<std::uint32_t> ids =
      reader.array<std::uint32_t>(kNodes);
  const auto* p = reinterpret_cast<const std::byte*>(ids.data());
  EXPECT_GE(p, mapped.data());
  EXPECT_LT(p, mapped.data() + mapped.size());
}

TEST(SnapshotFormatTest, ViewsOutliveTheReader) {
  common::FrozenArray<double> weights;
  {
    const SnapshotReader reader =
        SnapshotReader::open(write_sample("keepalive.scsnap"));
    weights = reader.array<double>(kPanel);
  }
  // The reader (and its handle on the mapping) is gone; the view's
  // keepalive must still pin the file.
  ASSERT_EQ(weights.size(), 3u);
  EXPECT_EQ(weights[2], 4.0);
}

TEST(SnapshotFormatTest, SectionsAreAlignedForInPlaceReinterpretation) {
  const SnapshotReader reader =
      SnapshotReader::open(write_sample("aligned.scsnap"));
  for (std::size_t i = 0; i < reader.section_count(); ++i)
    EXPECT_EQ(reader.entry(i).offset % kSectionAlignment, 0u);
}

TEST(SnapshotFormatTest, WriterRejectsDuplicateSections) {
  const std::vector<std::uint32_t> ids = {1};
  SnapshotWriter writer(1);
  writer.add_array<std::uint32_t>(kNodes, 3, ids);
  EXPECT_THROW(writer.add_array<std::uint32_t>(kNodes, 3, ids),
               SnapshotError);
}

TEST(SnapshotFormatTest, MissingSectionAndElementSizeMismatchThrow) {
  const SnapshotReader reader =
      SnapshotReader::open(write_sample("missing.scsnap"));
  EXPECT_EQ(reader.find(kTraffic), nullptr);
  EXPECT_THROW((void)reader.bytes(kTraffic), SnapshotError);
  // 5 uint32s = 20 bytes: not a multiple of sizeof(double).
  EXPECT_THROW((void)reader.array<double>(kNodes), SnapshotError);
}

TEST(SnapshotCorruptionTest, RejectsWrongMagic) {
  const std::string path = write_sample("magic.scsnap");
  std::vector<char> bytes = read_all(path);
  bytes[0] = 'X';
  write_all(path, bytes);
  const std::string error = open_error(path);
  EXPECT_NE(error.find(path), std::string::npos) << error;
  EXPECT_NE(error.find("bad magic"), std::string::npos) << error;
}

TEST(SnapshotCorruptionTest, RejectsUnsupportedFormatVersion) {
  const std::string path = write_sample("version.scsnap");
  std::vector<char> bytes = read_all(path);
  patch_header(bytes, [](FileHeader& h) { h.format_version = 99; });
  write_all(path, bytes);
  const std::string error = open_error(path);
  EXPECT_NE(error.find("unsupported format version 99"), std::string::npos)
      << error;
}

TEST(SnapshotCorruptionTest, RejectsForeignEndianness) {
  const std::string path = write_sample("endian.scsnap");
  std::vector<char> bytes = read_all(path);
  patch_header(bytes, [](FileHeader& h) { h.endianness = 0x04030201u; });
  write_all(path, bytes);
  const std::string error = open_error(path);
  EXPECT_NE(error.find("endianness mismatch"), std::string::npos) << error;
}

TEST(SnapshotCorruptionTest, RejectsHeaderBitFlip) {
  const std::string path = write_sample("header_flip.scsnap");
  std::vector<char> bytes = read_all(path);
  bytes[16] = static_cast<char>(bytes[16] ^ 0x01);  // world_version field
  write_all(path, bytes);
  const std::string error = open_error(path);
  EXPECT_NE(error.find("header checksum mismatch"), std::string::npos)
      << error;
}

TEST(SnapshotCorruptionTest, RejectsTruncationAtEveryLayer) {
  const std::string path = write_sample("truncated.scsnap");
  const std::vector<char> bytes = read_all(path);
  // Mid-header, mid-table, and mid-payload truncations all fail
  // cleanly (the last two via the declared-size check).
  for (const std::size_t keep :
       {std::size_t{10}, sizeof(FileHeader) + 16, bytes.size() - 8}) {
    write_all(path, {bytes.begin(), bytes.begin() + static_cast<long>(keep)});
    const std::string error = open_error(path);
    EXPECT_NE(error.find("truncated"), std::string::npos)
        << "keep=" << keep << ": " << error;
  }
}

TEST(SnapshotCorruptionTest, RejectsSectionTableBitFlip) {
  const std::string path = write_sample("table_flip.scsnap");
  std::vector<char> bytes = read_all(path);
  bytes[sizeof(FileHeader) + 8] ^= 0x40;  // first entry's offset field
  write_all(path, bytes);
  const std::string error = open_error(path);
  EXPECT_NE(error.find("section table checksum mismatch"),
            std::string::npos)
      << error;
}

TEST(SnapshotCorruptionTest, PayloadBitFlipNamesFileSectionAndOffset) {
  const std::string path = write_sample("payload_flip.scsnap");
  const SnapshotReader intact = SnapshotReader::open(path);
  const SectionEntry entry = *intact.find(kPanel);

  std::vector<char> bytes = read_all(path);
  bytes[entry.offset + 3] ^= 0x10;
  write_all(path, bytes);

  const std::string error = open_error(path);
  EXPECT_NE(error.find(path), std::string::npos) << error;
  EXPECT_NE(error.find("section panel"), std::string::npos) << error;
  EXPECT_NE(error.find("offset " + std::to_string(entry.offset)),
            std::string::npos)
      << error;
  EXPECT_NE(error.find("checksum mismatch"), std::string::npos) << error;

  // inspect-style open skips eager verification and reports the bad
  // section instead of failing.
  const SnapshotReader tolerant = SnapshotReader::open(
      path, ReadOptions{/*verify_section_checksums=*/false});
  bool saw_corrupt = false;
  for (std::size_t i = 0; i < tolerant.section_count(); ++i)
    if (!tolerant.section_crc_ok(i)) {
      EXPECT_EQ(tolerant.entry(i).id, static_cast<std::uint32_t>(kPanel));
      saw_corrupt = true;
    }
  EXPECT_TRUE(saw_corrupt);
}

TEST(SnapshotCorruptionTest, RejectsDeclaredSizeShorterThanFile) {
  // A header that under-declares the file (e.g. an old header over a
  // longer file after a botched copy) is as suspect as truncation.
  const std::string path = write_sample("grown.scsnap");
  std::vector<char> bytes = read_all(path);
  bytes.push_back('\0');
  write_all(path, bytes);
  const std::string error = open_error(path);
  EXPECT_NE(error.find("truncated file"), std::string::npos) << error;
}

}  // namespace
}  // namespace sunchase::snapshot
