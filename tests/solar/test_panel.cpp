#include "sunchase/solar/panel.h"

#include <gtest/gtest.h>

#include "sunchase/common/error.h"

namespace sunchase::solar {
namespace {

TEST(SolarPanel, OutputIsAreaTimesEfficiency) {
  // The paper's ~20% commercial cell efficiency.
  const SolarPanel panel(SquareMeters{1.5}, 0.20);
  EXPECT_DOUBLE_EQ(panel.output(WattsPerSquareMeter{1000.0}).value(), 300.0);
  EXPECT_DOUBLE_EQ(panel.output(WattsPerSquareMeter{0.0}).value(), 0.0);
  EXPECT_DOUBLE_EQ(panel.output(WattsPerSquareMeter{-5.0}).value(), 0.0);
}

TEST(SolarPanel, Validation) {
  EXPECT_THROW(SolarPanel(SquareMeters{0.0}, 0.2), InvalidArgument);
  EXPECT_THROW(SolarPanel(SquareMeters{1.0}, 0.0), InvalidArgument);
  EXPECT_THROW(SolarPanel(SquareMeters{1.0}, 1.2), InvalidArgument);
  EXPECT_NO_THROW(SolarPanel(SquareMeters{1.0}, 1.0));
}

TEST(PanelPower, ConstantMatchesPaperSimulations) {
  // The routing simulations fix C = 200 / 210 / 160 W.
  const PanelPowerFn c = constant_panel_power(Watts{210.0});
  EXPECT_DOUBLE_EQ(c(TimeOfDay::hms(9, 0)).value(), 210.0);
  EXPECT_DOUBLE_EQ(c(TimeOfDay::hms(15, 30)).value(), 210.0);
}

TEST(PanelPower, ConstantRejectsNegative) {
  EXPECT_THROW((void)constant_panel_power(Watts{-1.0}), InvalidArgument);
}

TEST(PanelPower, DatasetPowerFollowsIrradiance) {
  const IrradianceDataset dataset;
  const SolarPanel panel(SquareMeters{1.5}, 0.20);
  const PanelPowerFn c = dataset_panel_power(dataset, panel);
  const double night = c(TimeOfDay::hms(2, 0)).value();
  const double noon = c(TimeOfDay::hms(13, 0)).value();
  EXPECT_DOUBLE_EQ(night, 0.0);
  EXPECT_GT(noon, 100.0);
  EXPECT_LT(noon, 420.0);
}

TEST(PanelPower, PaperDaytimeProfile) {
  const PanelPowerFn c = paper_daytime_panel_power();
  // Triangle from 160 W at the edges to 210 W at 13:00.
  EXPECT_DOUBLE_EQ(c(TimeOfDay::hms(13, 0)).value(), 210.0);
  EXPECT_DOUBLE_EQ(c(TimeOfDay::hms(9, 0)).value(), 160.0);
  EXPECT_DOUBLE_EQ(c(TimeOfDay::hms(17, 0)).value(), 160.0);
  const double mid = c(TimeOfDay::hms(11, 0)).value();
  EXPECT_GT(mid, 160.0);
  EXPECT_LT(mid, 210.0);
}

TEST(PanelPower, PaperDaytimeConstantWithinSlot) {
  const PanelPowerFn c = paper_daytime_panel_power();
  EXPECT_DOUBLE_EQ(c(TimeOfDay::hms(11, 1)).value(),
                   c(TimeOfDay::hms(11, 14)).value());
}

TEST(PanelPower, PaperDaytimeRejectsInvertedRange) {
  EXPECT_THROW((void)paper_daytime_panel_power(Watts{210.0}, Watts{160.0}),
               InvalidArgument);
}

}  // namespace
}  // namespace sunchase::solar
