#include "sunchase/solar/input_map.h"

#include <gtest/gtest.h>

#include "sunchase/common/error.h"
#include "sunchase/roadnet/traffic.h"
#include "test_helpers.h"

namespace sunchase::solar {
namespace {

class InputMapTest : public ::testing::Test {
 protected:
  InputMapTest()
      : traffic_(kmh(15.0)),
        profile_(shadow::ShadingProfile::compute(
            sq_.graph,
            [](roadnet::EdgeId e, TimeOfDay) {
              return e == 0 ? 0.4 : 0.0;  // edge 0 is 40% shaded
            },
            TimeOfDay::hms(8, 0), TimeOfDay::hms(18, 0))),
        map_(sq_.graph, profile_, traffic_,
             constant_panel_power(Watts{200.0})) {}

  test::SquareGraph sq_;
  roadnet::UniformTraffic traffic_;
  shadow::ShadingProfile profile_;
  SolarInputMap map_;
};

TEST_F(InputMapTest, TravelTimeSplitsIntoSolarAndShaded) {
  const EdgeSolar es = map_.evaluate(0, TimeOfDay::hms(10, 0));
  EXPECT_NEAR(es.travel_time.value(),
              es.solar_time.value() + es.shaded_time.value(), 1e-9);
  // The shading profile stores fractions as float32.
  EXPECT_NEAR(es.shaded_time.value() / es.travel_time.value(), 0.4, 1e-6);
}

TEST_F(InputMapTest, UnshadedEdgeIsAllSolar) {
  const EdgeSolar es = map_.evaluate(2, TimeOfDay::hms(10, 0));
  EXPECT_NEAR(es.shaded_time.value(), 0.0, 1e-9);
  EXPECT_NEAR(es.solar_time.value(), es.travel_time.value(), 1e-9);
}

TEST_F(InputMapTest, EnergyMatchesEquationTwo) {
  // Eq. 2: E = C * S_solar / V = C * t_solar.
  const EdgeSolar es = map_.evaluate(0, TimeOfDay::hms(10, 0));
  const double expected_wh = 200.0 * es.solar_time.value() / 3600.0;
  EXPECT_NEAR(es.energy_in.value(), expected_wh, 1e-9);
}

TEST_F(InputMapTest, TravelTimeMatchesLengthOverSpeed) {
  const EdgeSolar es = map_.evaluate(1, TimeOfDay::hms(10, 0));
  const double expected =
      sq_.graph.edge(1).length.value() / kmh(15.0).value();
  EXPECT_NEAR(es.travel_time.value(), expected, 1e-9);
}

TEST_F(InputMapTest, PanelPowerPassesThrough) {
  EXPECT_DOUBLE_EQ(map_.panel_power(TimeOfDay::hms(12, 0)).value(), 200.0);
}

TEST_F(InputMapTest, AccessorsExposeCollaborators) {
  EXPECT_EQ(&map_.graph(), &sq_.graph);
  EXPECT_EQ(&map_.traffic(), &traffic_);
  EXPECT_EQ(&map_.shading(), &profile_);
}

TEST(InputMapValidation, NullPanelPowerRejected) {
  test::SquareGraph sq;
  roadnet::UniformTraffic traffic(kmh(15.0));
  const auto profile = shadow::ShadingProfile::compute(
      sq.graph, [](roadnet::EdgeId, TimeOfDay) { return 0.0; },
      TimeOfDay::hms(8, 0), TimeOfDay::hms(9, 0));
  EXPECT_THROW(SolarInputMap(sq.graph, profile, traffic, nullptr),
               InvalidArgument);
}

TEST(InputMapValidation, ProfileShapeMismatchRejected) {
  test::SquareGraph sq;
  roadnet::GraphBuilder other_builder;
  other_builder.add_node({45.5, -73.57});
  other_builder.add_node({45.51, -73.57});
  other_builder.add_edge(0, 1);
  const roadnet::RoadGraph other = std::move(other_builder).build();
  roadnet::UniformTraffic traffic(kmh(15.0));
  const auto profile = shadow::ShadingProfile::compute(
      other, [](roadnet::EdgeId, TimeOfDay) { return 0.0; },
      TimeOfDay::hms(8, 0), TimeOfDay::hms(9, 0));
  EXPECT_THROW(SolarInputMap(sq.graph, profile, traffic,
                             constant_panel_power(Watts{200.0})),
               InvalidArgument);
}

}  // namespace
}  // namespace sunchase::solar
