#include "sunchase/solar/irradiance.h"

#include <gtest/gtest.h>

#include "sunchase/common/error.h"

namespace sunchase::solar {
namespace {

TEST(ClearSky, ZeroAtNight) {
  const ClearSkyModel model;
  EXPECT_DOUBLE_EQ(model.irradiance(TimeOfDay::hms(2, 0)).value(), 0.0);
  EXPECT_DOUBLE_EQ(model.irradiance(TimeOfDay::hms(23, 0)).value(), 0.0);
}

TEST(ClearSky, PeakNearSolarNoonMatchesPaperFig4) {
  const ClearSkyModel model;
  // The paper's Fig. 4: ~1150 W/m^2 midday maximum in July Quebec.
  double peak = 0.0;
  for (int m = 0; m < 24 * 60; m += 10) {
    const TimeOfDay t = TimeOfDay::from_seconds(m * 60.0);
    peak = std::max(peak, model.irradiance(t).value());
  }
  EXPECT_NEAR(peak, 1150.0, 80.0);
}

TEST(ClearSky, MorningIsLowEveningIsLow) {
  const ClearSkyModel model;
  // Paper: < 300 W/m^2 in early morning and evening.
  EXPECT_LT(model.irradiance(TimeOfDay::hms(6, 30)).value(), 300.0);
  EXPECT_LT(model.irradiance(TimeOfDay::hms(20, 0)).value(), 300.0);
}

TEST(ClearSky, MonotoneRiseTowardNoon) {
  const ClearSkyModel model;
  double prev = -1.0;
  for (int h = 6; h <= 13; ++h) {
    const double g = model.irradiance(TimeOfDay::hms(h, 0)).value();
    EXPECT_GE(g, prev);
    prev = g;
  }
}

TEST(ClearSky, ElevationCurveShape) {
  const ClearSkyModel model;
  EXPECT_DOUBLE_EQ(model.irradiance_at_elevation(-0.1).value(), 0.0);
  EXPECT_DOUBLE_EQ(model.irradiance_at_elevation(0.0).value(), 0.0);
  const double low = model.irradiance_at_elevation(0.2).value();
  const double high = model.irradiance_at_elevation(1.2).value();
  EXPECT_GT(low, 0.0);
  EXPECT_GT(high, low);
}

TEST(ClearSky, ScaleOptionScalesOutput) {
  ClearSkyModel::Options half;
  half.scale = 0.61;
  const ClearSkyModel base;
  const ClearSkyModel scaled(half);
  const TimeOfDay noon = TimeOfDay::hms(13, 0);
  EXPECT_NEAR(scaled.irradiance(noon).value(),
              base.irradiance(noon).value() * 0.5, 1.0);
}

TEST(ClearSky, RejectsNonPositiveScale) {
  ClearSkyModel::Options bad;
  bad.scale = 0.0;
  EXPECT_THROW(ClearSkyModel{bad}, InvalidArgument);
}

// Property: irradiance is finite and within physical bounds all day.
class IrradianceBounds : public ::testing::TestWithParam<int> {};

TEST_P(IrradianceBounds, PhysicalRange) {
  const ClearSkyModel model;
  const TimeOfDay t = TimeOfDay::from_seconds(GetParam() * 900.0);
  const double g = model.irradiance(t).value();
  EXPECT_GE(g, 0.0);
  EXPECT_LT(g, 1400.0);  // below the solar constant
}

INSTANTIATE_TEST_SUITE_P(QuarterHours, IrradianceBounds,
                         ::testing::Range(0, 96));

}  // namespace
}  // namespace sunchase::solar
