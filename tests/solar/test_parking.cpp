#include "sunchase/solar/parking.h"

#include <gtest/gtest.h>

#include "sunchase/common/error.h"
#include "test_helpers.h"

namespace sunchase::solar {
namespace {

class ParkingTest : public ::testing::Test {
 protected:
  ParkingTest()
      : profile_(shadow::ShadingProfile::compute(
            sq_.graph,
            [this](roadnet::EdgeId e, TimeOfDay) {
              // Edge 0 permanently dark, edge 2 permanently sunny.
              if (e == dark_edge_) return 0.9;
              if (e == sunny_edge_) return 0.0;
              return 0.5;
            },
            TimeOfDay::hms(8, 0), TimeOfDay::hms(18, 0))) {}

  test::SquareGraph sq_;
  roadnet::EdgeId dark_edge_ = 0;
  roadnet::EdgeId sunny_edge_ = 2;
  shadow::ShadingProfile profile_;
};

TEST_F(ParkingTest, SunniestSpotRanksFirst) {
  const auto spots = rank_parking_spots(
      sq_.graph, profile_, constant_panel_power(Watts{200.0}), 0,
      TimeOfDay::hms(9, 0), TimeOfDay::hms(17, 0));
  ASSERT_FALSE(spots.empty());
  EXPECT_EQ(spots.front().edge, sunny_edge_);
  EXPECT_EQ(spots.back().edge, dark_edge_);
  EXPECT_GT(spots.front().expected_harvest.value(),
            spots.back().expected_harvest.value());
}

TEST_F(ParkingTest, HarvestMatchesHandComputation) {
  // Sunny edge, 8 h at 200 W, zero shade: 1600 Wh.
  const auto spots = rank_parking_spots(
      sq_.graph, profile_, constant_panel_power(Watts{200.0}), 0,
      TimeOfDay::hms(9, 0), TimeOfDay::hms(17, 0));
  const auto sunny = std::find_if(
      spots.begin(), spots.end(),
      [&](const ParkingSpot& s) { return s.edge == sunny_edge_; });
  ASSERT_NE(sunny, spots.end());
  EXPECT_NEAR(sunny->expected_harvest.value(), 200.0 * 8.0, 1.0);
  EXPECT_NEAR(sunny->mean_shaded_fraction, 0.0, 1e-9);
  // Dark edge: 10% of that.
  const auto dark = std::find_if(
      spots.begin(), spots.end(),
      [&](const ParkingSpot& s) { return s.edge == dark_edge_; });
  EXPECT_NEAR(dark->expected_harvest.value(), 200.0 * 8.0 * 0.1, 1.0);
}

TEST_F(ParkingTest, PartialSlotWindowsIntegrateExactly) {
  // 9:05 to 9:25: 20 minutes across a slot boundary.
  const auto spots = rank_parking_spots(
      sq_.graph, profile_, constant_panel_power(Watts{300.0}), 0,
      TimeOfDay::hms(9, 5), TimeOfDay::hms(9, 25));
  const auto sunny = std::find_if(
      spots.begin(), spots.end(),
      [&](const ParkingSpot& s) { return s.edge == sunny_edge_; });
  ASSERT_NE(sunny, spots.end());
  EXPECT_NEAR(sunny->expected_harvest.value(), 300.0 * (20.0 / 60.0), 0.5);
}

TEST_F(ParkingTest, RadiusLimitsCandidates) {
  ParkingOptions tight;
  tight.search_radius = Meters{60.0};
  const auto near = rank_parking_spots(
      sq_.graph, profile_, constant_panel_power(Watts{200.0}), 0,
      TimeOfDay::hms(9, 0), TimeOfDay::hms(17, 0), tight);
  ParkingOptions wide;
  wide.search_radius = Meters{500.0};
  const auto all = rank_parking_spots(
      sq_.graph, profile_, constant_panel_power(Watts{200.0}), 0,
      TimeOfDay::hms(9, 0), TimeOfDay::hms(17, 0), wide);
  EXPECT_LT(near.size(), all.size());
  for (const ParkingSpot& s : near)
    EXPECT_LE(s.walk_distance.value(), 60.0);
  // Every edge of the 2x2 block graph is within 500 m.
  EXPECT_EQ(all.size(), sq_.graph.edge_count());
}

TEST_F(ParkingTest, Validation) {
  EXPECT_THROW(
      (void)rank_parking_spots(sq_.graph, profile_,
                               constant_panel_power(Watts{200.0}), 0,
                               TimeOfDay::hms(17, 0), TimeOfDay::hms(9, 0)),
      InvalidArgument);
  EXPECT_THROW(
      (void)rank_parking_spots(sq_.graph, profile_, nullptr, 0,
                               TimeOfDay::hms(9, 0), TimeOfDay::hms(17, 0)),
      InvalidArgument);
  EXPECT_THROW(
      (void)rank_parking_spots(sq_.graph, profile_,
                               constant_panel_power(Watts{200.0}), 99,
                               TimeOfDay::hms(9, 0), TimeOfDay::hms(17, 0)),
      GraphError);
  ParkingOptions bad;
  bad.search_radius = Meters{0.0};
  EXPECT_THROW(
      (void)rank_parking_spots(sq_.graph, profile_,
                               constant_panel_power(Watts{200.0}), 0,
                               TimeOfDay::hms(9, 0), TimeOfDay::hms(17, 0),
                               bad),
      InvalidArgument);
}

TEST_F(ParkingTest, TimeVaryingPanelPowerIsIntegrated) {
  // Power 100 W before 13:00, 300 W after: a 12:00-14:00 window on the
  // sunny edge harvests 100*1 + 300*1 = 400 Wh.
  const PanelPowerFn stepped = [](TimeOfDay t) {
    return t < TimeOfDay::hms(13, 0) ? Watts{100.0} : Watts{300.0};
  };
  const auto spots = rank_parking_spots(sq_.graph, profile_, stepped, 0,
                                        TimeOfDay::hms(12, 0),
                                        TimeOfDay::hms(14, 0));
  const auto sunny = std::find_if(
      spots.begin(), spots.end(),
      [&](const ParkingSpot& s) { return s.edge == sunny_edge_; });
  ASSERT_NE(sunny, spots.end());
  EXPECT_NEAR(sunny->expected_harvest.value(), 400.0, 1.0);
}

}  // namespace
}  // namespace sunchase::solar
