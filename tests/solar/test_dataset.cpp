#include "sunchase/solar/dataset.h"

#include <gtest/gtest.h>

#include "sunchase/common/error.h"

namespace sunchase::solar {
namespace {

TEST(Dataset, DeterministicForSameSeed) {
  const IrradianceDataset a;
  const IrradianceDataset b;
  for (int h = 6; h <= 20; ++h)
    EXPECT_DOUBLE_EQ(a.sample(TimeOfDay::hms(h, 17)).value(),
                     b.sample(TimeOfDay::hms(h, 17)).value());
}

TEST(Dataset, DifferentSeedsProduceDifferentDays) {
  DatasetOptions other;
  other.seed = 4242;
  const IrradianceDataset a;
  const IrradianceDataset b(other);
  int differing = 0;
  for (int h = 8; h <= 18; ++h)
    if (a.sample(TimeOfDay::hms(h, 0)).value() !=
        b.sample(TimeOfDay::hms(h, 0)).value())
      ++differing;
  EXPECT_GT(differing, 3);
}

TEST(Dataset, ZeroAtNight) {
  const IrradianceDataset d;
  EXPECT_DOUBLE_EQ(d.sample(TimeOfDay::hms(1, 30)).value(), 0.0);
}

TEST(Dataset, EventsOnlyAttenuateOrSurgeModestly) {
  DatasetOptions opt;
  opt.noise_rel_std = 0.0;
  const IrradianceDataset d(opt);
  const ClearSkyModel clear(opt.clear_sky);
  for (int m = 8 * 60; m <= 18 * 60; m += 7) {
    const TimeOfDay t = TimeOfDay::from_seconds(m * 60.0);
    const double measured = d.sample(t).value();
    const double base = clear.irradiance(t).value();
    EXPECT_GE(measured, 0.0);
    // Surges are bounded by the configured gain (compounded at most
    // once with another surge in practice; give slack).
    EXPECT_LE(measured, base * opt.surge_gain * opt.surge_gain + 1e-9);
  }
}

TEST(Dataset, CloudsActuallyDim) {
  // Force a cloudy day: many long clouds.
  DatasetOptions cloudy;
  cloudy.clouds_per_hour = 30.0;
  cloudy.cloud_min_duration_s = 500.0;
  cloudy.cloud_max_duration_s = 900.0;
  cloudy.cloud_min_attenuation = 0.3;
  cloudy.cloud_max_attenuation = 0.5;
  cloudy.noise_rel_std = 0.0;
  cloudy.surges_per_hour = 0.0;
  cloudy.obstructions_per_hour = 0.0;
  const IrradianceDataset d(cloudy);
  const ClearSkyModel clear(cloudy.clear_sky);
  const TimeOfDay noon = TimeOfDay::hms(13, 0);
  EXPECT_LT(d.average(noon, minutes(30.0)).value(),
            clear.irradiance(noon).value() * 0.9);
}

TEST(Dataset, AverageIsBetweenMinAndMaxSamples) {
  const IrradianceDataset d;
  const TimeOfDay start = TimeOfDay::hms(12, 0);
  double lo = 1e18, hi = -1.0;
  for (int s = 0; s < 900; s += 30) {
    const double v =
        d.sample(start.advanced_by(Seconds{static_cast<double>(s)})).value();
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double avg = d.average(start, minutes(15.0)).value();
  EXPECT_GE(avg, lo * 0.95);
  EXPECT_LE(avg, hi * 1.05);
}

TEST(Dataset, SlotAverageUsesEnclosingSlot) {
  const IrradianceDataset d;
  EXPECT_DOUBLE_EQ(d.slot_average(TimeOfDay::hms(12, 3)).value(),
                   d.slot_average(TimeOfDay::hms(12, 11)).value());
}

TEST(Dataset, AverageRejectsEmptyWindow) {
  const IrradianceDataset d;
  EXPECT_THROW((void)d.average(TimeOfDay::hms(12, 0), Seconds{0.0}),
               InvalidArgument);
}

TEST(Dataset, RejectsNegativeNoise) {
  DatasetOptions bad;
  bad.noise_rel_std = -0.1;
  EXPECT_THROW(IrradianceDataset{bad}, InvalidArgument);
}

TEST(Dataset, HighRampEventsExist) {
  // The paper's Fig. 4 shows visible surges/dips; verify the simulated
  // day has at least one sharp short-term change around midday.
  DatasetOptions opt;
  opt.obstructions_per_hour = 8.0;
  const IrradianceDataset d(opt);
  double max_ramp = 0.0;
  for (int s = 10 * 3600; s < 15 * 3600; s += 1) {
    const double a = d.sample(TimeOfDay::from_seconds(s)).value();
    const double b = d.sample(TimeOfDay::from_seconds(s + 1.0)).value();
    max_ramp = std::max(max_ramp, std::abs(b - a));
  }
  EXPECT_GT(max_ramp, 100.0);  // W/m^2 within one second
}

}  // namespace
}  // namespace sunchase::solar
