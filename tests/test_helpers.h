// Shared builders for tests: tiny graphs and scenes with known
// geometry, so expectations can be computed by hand.
#pragma once

#include <memory>
#include <utility>

#include "sunchase/geo/latlon.h"
#include "sunchase/geo/sunpos.h"
#include "sunchase/roadnet/graph.h"
#include "sunchase/shadow/scene.h"

namespace sunchase::test {

/// Projection anchored at downtown Montreal, as in the paper.
inline geo::LocalProjection montreal_projection() {
  return geo::LocalProjection{geo::LatLon{45.4995, -73.5700}};
}

/// Adds a node at local planar coordinates through `proj`.
inline roadnet::NodeId add_node_at(roadnet::GraphBuilder& builder,
                                   const geo::LocalProjection& proj,
                                   double x_m, double y_m) {
  return builder.add_node(proj.to_geo(geo::Vec2{x_m, y_m}));
}

/// A 2x2 "block" graph:
///
///   2 --- 3
///   |     |
///   0 --- 1        all two-way, 100 m blocks, nodes at local
///                  (0,0) (100,0) (0,100) (100,100).
struct SquareGraph {
  roadnet::RoadGraph graph;
  geo::LocalProjection proj = montreal_projection();
  roadnet::NodeId island = 0;  ///< set only when requested at construction

  explicit SquareGraph(bool with_island = false) {
    roadnet::GraphBuilder builder;
    add_node_at(builder, proj, 0, 0);      // 0
    add_node_at(builder, proj, 100, 0);    // 1
    add_node_at(builder, proj, 0, 100);    // 2
    add_node_at(builder, proj, 100, 100);  // 3
    builder.add_two_way(0, 1);
    builder.add_two_way(0, 2);
    builder.add_two_way(1, 3);
    builder.add_two_way(2, 3);
    if (with_island) island = builder.add_node({45.55, -73.55});
    graph = std::move(builder).build();
  }
};

/// A noon-ish sun from the south at 45 degrees elevation: shadows point
/// exactly north with length == obstacle height.
inline geo::SunPosition south_sun_45() {
  return geo::SunPosition{.elevation_rad = 3.14159265358979 / 4.0,
                          .azimuth_rad = 3.14159265358979};  // due south
}

}  // namespace sunchase::test
