#include "sunchase/exporter/geojson.h"

#include <gtest/gtest.h>

#include "core/core_fixture.h"
#include "sunchase/roadnet/citygen.h"
#include "sunchase/shadow/scenegen.h"

namespace sunchase::exporter {
namespace {

/// Crude but effective structural checks: balanced braces/brackets and
/// expected substrings. (No JSON library in the toolchain; benches and
/// users feed this straight to geojson.io.)
void expect_balanced(const std::string& json) {
  long braces = 0, brackets = 0;
  for (const char c : json) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(GeoJson, RouteLineString) {
  test::SquareGraph sq;
  roadnet::Path p;
  p.edges = {sq.graph.find_edge(0, 1), sq.graph.find_edge(1, 3)};
  const std::string json =
      geojson_route(sq.graph, p, {{"name", "demo route"}});
  expect_balanced(json);
  EXPECT_NE(json.find("\"FeatureCollection\""), std::string::npos);
  EXPECT_NE(json.find("\"LineString\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"demo route\""), std::string::npos);
  // Three nodes -> three coordinate pairs: count '[' of coords region.
  EXPECT_NE(json.find("-73.5"), std::string::npos);  // Montreal longitude
}

TEST(GeoJson, EmptyRouteIsStillValid) {
  test::SquareGraph sq;
  const std::string json = geojson_route(sq.graph, roadnet::Path{});
  expect_balanced(json);
  EXPECT_NE(json.find("\"coordinates\":[]"), std::string::npos);
}

TEST(GeoJson, PropertyEscaping) {
  test::SquareGraph sq;
  const std::string json = geojson_route(
      sq.graph, roadnet::Path{}, {{"note", "say \"hi\"\\\nnewline"}});
  expect_balanced(json);
  EXPECT_NE(json.find("\\\"hi\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);  // single line out
}

TEST(GeoJson, GraphExportsEveryEdge) {
  test::SquareGraph sq;
  const std::string json = geojson_graph(sq.graph);
  expect_balanced(json);
  std::size_t count = 0;
  for (std::size_t pos = json.find("\"edge\""); pos != std::string::npos;
       pos = json.find("\"edge\"", pos + 1))
    ++count;
  EXPECT_EQ(count, sq.graph.edge_count());
  EXPECT_NE(json.find("\"length_m\""), std::string::npos);
}

TEST(GeoJson, SceneExportsBuildingsAndTrees) {
  test::SquareGraph sq;
  shadow::Scene scene(sq.proj, 5.0);
  scene.add_building(
      shadow::Building{geo::rectangle({0, 0}, {10, 10}), 22.5});
  scene.add_tree(shadow::Tree{{30, 5}, 2.0, 8.0});
  const std::string json = geojson_scene(scene);
  expect_balanced(json);
  EXPECT_NE(json.find("\"kind\":\"building\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"tree\""), std::string::npos);
  EXPECT_NE(json.find("\"height_m\":\"22.5\""), std::string::npos);
  EXPECT_NE(json.find("\"Polygon\""), std::string::npos);
}

TEST(GeoJson, PlanCarriesMetricsAsProperties) {
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  test::RoutingEnv env(city.graph());
  const core::SunChasePlanner planner(env.world);
  const core::PlanResult plan = planner.plan(
      city.node_at(1, 1), city.node_at(7, 7), TimeOfDay::hms(10, 0));
  const std::string json = geojson_plan(city.graph(), plan);
  expect_balanced(json);
  EXPECT_NE(json.find("\"kind\":\"shortest-time\""), std::string::npos);
  EXPECT_NE(json.find("\"travel_time_s\""), std::string::npos);
  EXPECT_NE(json.find("\"energy_in_wh\""), std::string::npos);
  if (plan.has_better_solar()) {
    EXPECT_NE(json.find("\"kind\":\"better-solar\""), std::string::npos);
    EXPECT_NE(json.find("\"extra_energy_wh\""), std::string::npos);
  }
}

}  // namespace
}  // namespace sunchase::exporter
