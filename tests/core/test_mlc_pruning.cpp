// Lower-bound budget pruning and the epsilon-dominance merge: pruning
// with epsilon = 0 must be invisible in the results — bit-identical
// Pareto sets (costs AND paths) against the unpruned search on the
// paper world and a generated urban grid, at rush hour, under both
// pricing modes, and with the clock saturated at the end of the day —
// while measurably shrinking the explored frontier. Epsilon > 0 is the
// opposite contract: allowed to drop Pareto points, never allowed to
// return a broken or over-budget route.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "core_fixture.h"
#include "sunchase/common/error.h"
#include "sunchase/core/mlc.h"
#include "sunchase/roadnet/citygen.h"
#include "sunchase/shadow/scenegen.h"

namespace sunchase::core {
namespace {

/// RoutingEnv's snapshot recipe with UrbanTraffic swapped in: the
/// time-dependent traffic model whose congestion dips make the
/// admissibility question real (a static bound must undercut every
/// rush-hour speed).
core::WorldPtr urban_world(const roadnet::RoadGraph& g) {
  core::WorldInit init = test::RoutingEnv::make_init(g);
  init.traffic = std::make_shared<const roadnet::UrbanTraffic>(
      roadnet::UrbanTraffic::Options{});
  return core::World::create(std::move(init));
}

/// The bench paper world (12x12 grid, generated scene, exact 15-minute
/// shading, urban traffic), built once — compute_exact is the
/// expensive part.
const core::WorldPtr& paper_world() {
  static const core::WorldPtr snapshot = [] {
    roadnet::GridCityOptions opt;
    opt.rows = 12;
    opt.cols = 12;
    const roadnet::GridCity city(opt);
    const geo::LocalProjection projection(city.options().origin);
    const shadow::Scene scene = shadow::generate_scene(
        city.graph(), projection, shadow::SceneGenOptions{});
    auto graph = std::make_shared<const roadnet::RoadGraph>(city.graph());
    WorldInit init;
    init.graph = graph;
    init.traffic = std::make_shared<const roadnet::UrbanTraffic>(
        roadnet::UrbanTraffic::Options{});
    init.shading = std::make_shared<const shadow::ShadingProfile>(
        shadow::ShadingProfile::compute_exact(*graph, scene,
                                              geo::DayOfYear{196},
                                              TimeOfDay::hms(8, 0),
                                              TimeOfDay::hms(18, 30)));
    init.panel_power = solar::constant_panel_power(Watts{200.0});
    init.vehicles.push_back(std::shared_ptr<const ev::ConsumptionModel>(
        ev::make_lv_prototype()));
    return World::create(std::move(init));
  }();
  return snapshot;
}

/// Pruned and unpruned searches of the same query must agree bit for
/// bit on the destination Pareto set; the pruned one must not have
/// done more work.
void expect_bit_identical(const core::WorldPtr& world, roadnet::NodeId o,
                          roadnet::NodeId d, TimeOfDay dep,
                          PricingMode pricing) {
  MlcOptions on;
  on.max_time_factor = 1.5;
  on.pricing = pricing;
  on.prune_with_lower_bounds = true;
  MlcOptions off = on;
  off.prune_with_lower_bounds = false;
  const MlcResult pruned = MultiLabelCorrecting(world, on).search(o, d, dep);
  const MlcResult plain = MultiLabelCorrecting(world, off).search(o, d, dep);

  ASSERT_EQ(pruned.routes.size(), plain.routes.size())
      << "pruning changed the Pareto set size";
  for (std::size_t r = 0; r < pruned.routes.size(); ++r) {
    EXPECT_EQ(pruned.routes[r].cost, plain.routes[r].cost);
    EXPECT_EQ(pruned.routes[r].path.edges, plain.routes[r].path.edges);
  }
  EXPECT_LE(pruned.stats.labels_created, plain.stats.labels_created);
  EXPECT_LE(pruned.stats.queue_pops, plain.stats.queue_pops);
}

TEST(MlcPruning, CtorRejectsNonFiniteTimeFactor) {
  // The NaN budget bypass: NaN fails every ordered comparison, so the
  // old range checks let it through and time_bound poisoned to NaN
  // disabled the only prune the search had.
  test::SquareGraph sq;
  test::RoutingEnv env(sq.graph);
  for (const double bad :
       {std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity()}) {
    MlcOptions opt;
    opt.max_time_factor = bad;
    EXPECT_THROW(MultiLabelCorrecting(env.world, opt), InvalidArgument)
        << "max_time_factor = " << bad;
  }
}

TEST(MlcPruning, CtorRejectsNonFiniteOrNegativeEpsilon) {
  test::SquareGraph sq;
  test::RoutingEnv env(sq.graph);
  for (const double bad :
       {std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::infinity(), -0.25}) {
    MlcOptions opt;
    opt.epsilon = bad;
    EXPECT_THROW(MultiLabelCorrecting(env.world, opt), InvalidArgument)
        << "epsilon = " << bad;
  }
}

TEST(MlcPruning, BitIdenticalOnUrbanGridAtRushHour) {
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  const core::WorldPtr world = urban_world(city.graph());
  const std::vector<std::pair<roadnet::NodeId, roadnet::NodeId>> trips = {
      {city.node_at(0, 0), city.node_at(9, 9)},
      {city.node_at(1, 1), city.node_at(6, 7)},
      {city.node_at(9, 0), city.node_at(0, 9)},
  };
  // 08:30 sits at the morning congestion peak: entry speeds are far
  // below the free-flow bound the reverse Dijkstra uses, the widest
  // admissibility gap the model can produce.
  for (const auto& [o, d] : trips)
    for (const PricingMode pricing :
         {PricingMode::Exact, PricingMode::SlotQuantized})
      expect_bit_identical(world, o, d, TimeOfDay::hms(8, 30), pricing);
}

TEST(MlcPruning, BitIdenticalOnThePaperWorld) {
  const core::WorldPtr& world = paper_world();
  const auto& graph = world->graph();
  const roadnet::NodeId o = 0;
  const auto d = static_cast<roadnet::NodeId>(graph.node_count() - 1);
  for (const PricingMode pricing :
       {PricingMode::Exact, PricingMode::SlotQuantized})
    expect_bit_identical(world, o, d, TimeOfDay::hms(8, 30), pricing);
}

TEST(MlcPruning, PruningMeasurablyShrinksTheSearch) {
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  const core::WorldPtr world = urban_world(city.graph());
  MlcOptions on;
  // A tight budget (20% slack, the paper's extra-travel-time regime):
  // loose budgets admit every label inside a wide detour ellipse and
  // the bound has nothing to kill.
  on.max_time_factor = 1.2;
  MlcOptions off = on;
  off.prune_with_lower_bounds = false;
  const TimeOfDay dep = TimeOfDay::hms(8, 30);
  const MlcResult pruned = MultiLabelCorrecting(world, on).search(
      city.node_at(0, 0), city.node_at(9, 9), dep);
  const MlcResult plain = MultiLabelCorrecting(world, off).search(
      city.node_at(0, 0), city.node_at(9, 9), dep);
  // Strict reduction, not <=: on a grid this size the bound must bite.
  EXPECT_LT(pruned.stats.labels_created, plain.stats.labels_created);
  EXPECT_LT(pruned.stats.queue_pops, plain.stats.queue_pops);
  EXPECT_GT(pruned.stats.labels_pruned_bound, 0u);
  EXPECT_GT(pruned.stats.lower_bound_seconds, 0.0);
  // The unpruned search never builds lower bounds.
  EXPECT_EQ(plain.stats.lower_bound_seconds, 0.0);
}

TEST(MlcPruning, MidnightSaturationStaysAdmissible) {
  // A trip departing 23:59 saturates: every advanced_by lands in slot
  // 95 and stays there. The static lower bound must remain admissible
  // against that frozen clock — no route of the unpruned search may be
  // lost to pruning.
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  const core::WorldPtr world = urban_world(city.graph());
  const TimeOfDay dep = TimeOfDay::hms(23, 59);
  // The saturation premise itself: one hour past 23:59 is still the
  // last slot of the day.
  EXPECT_EQ(dep.advanced_by(Seconds{3600.0}).slot_index(),
            TimeOfDay::kSlotsPerDay - 1);
  for (const PricingMode pricing :
       {PricingMode::Exact, PricingMode::SlotQuantized})
    expect_bit_identical(world, city.node_at(1, 1), city.node_at(8, 8), dep,
                         pricing);
}

TEST(MlcPruning, DisabledBudgetSkipsTheLowerBoundBuild) {
  // max_time_factor = 0: nothing to prune against, so no reverse
  // Dijkstra runs even with pruning enabled.
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  test::RoutingEnv env(city.graph());
  MlcOptions opt;
  opt.max_time_factor = 0.0;
  opt.prune_with_lower_bounds = true;
  const MlcResult result = MultiLabelCorrecting(env.world, opt).search(
      city.node_at(1, 1), city.node_at(4, 4), TimeOfDay::hms(10, 0));
  EXPECT_EQ(result.stats.lower_bound_seconds, 0.0);
  EXPECT_EQ(result.stats.labels_pruned_bound, 0u);
}

TEST(MlcEpsilon, MergeShrinksTheParetoSetAndCountsMerges) {
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  const core::WorldPtr world = urban_world(city.graph());
  MlcOptions exact_opt;
  exact_opt.max_time_factor = 1.5;
  MlcOptions approx_opt = exact_opt;
  approx_opt.epsilon = 0.05;
  const roadnet::NodeId o = city.node_at(0, 0);
  const roadnet::NodeId d = city.node_at(9, 9);
  const TimeOfDay dep = TimeOfDay::hms(10, 0);
  const MlcResult exact = MultiLabelCorrecting(world, exact_opt).search(o, d,
                                                                        dep);
  const MlcResult approx =
      MultiLabelCorrecting(world, approx_opt).search(o, d, dep);
  EXPECT_EQ(exact.stats.labels_merged_epsilon, 0u);
  EXPECT_GT(approx.stats.labels_merged_epsilon, 0u);
  EXPECT_LE(approx.routes.size(), exact.routes.size());
  EXPECT_LE(approx.stats.labels_created, exact.stats.labels_created);
  // Approximate, not broken: every returned route still connects the
  // query and respects the time budget.
  ASSERT_FALSE(approx.routes.empty());
  const double bound =
      approx.stats.shortest_travel_time.value() * approx_opt.max_time_factor;
  for (const auto& route : approx.routes) {
    EXPECT_TRUE(is_connected(route.path, world->graph()));
    EXPECT_EQ(path_origin(route.path, world->graph()), o);
    EXPECT_EQ(path_destination(route.path, world->graph()), d);
    EXPECT_LE(route.cost.travel_time.value(), bound + 1e-6);
  }
}

TEST(MlcEpsilon, ZeroEpsilonIsTheExactSearch) {
  // epsilon = 0 must take the exact code path: identical results AND
  // identical effort counters vs an MlcOptions that never mentions
  // epsilon.
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  test::RoutingEnv env(city.graph());
  MlcOptions a;
  a.max_time_factor = 1.5;
  MlcOptions b = a;
  b.epsilon = 0.0;
  const roadnet::NodeId o = city.node_at(2, 2);
  const roadnet::NodeId d = city.node_at(7, 7);
  const TimeOfDay dep = TimeOfDay::hms(9, 14);
  const MlcResult ra = MultiLabelCorrecting(env.world, a).search(o, d, dep);
  const MlcResult rb = MultiLabelCorrecting(env.world, b).search(o, d, dep);
  ASSERT_EQ(ra.routes.size(), rb.routes.size());
  for (std::size_t r = 0; r < ra.routes.size(); ++r) {
    EXPECT_EQ(ra.routes[r].cost, rb.routes[r].cost);
    EXPECT_EQ(ra.routes[r].path.edges, rb.routes[r].path.edges);
  }
  EXPECT_EQ(ra.stats.labels_created, rb.stats.labels_created);
  EXPECT_EQ(ra.stats.queue_pops, rb.stats.queue_pops);
  EXPECT_EQ(rb.stats.labels_merged_epsilon, 0u);
}

}  // namespace
}  // namespace sunchase::core
