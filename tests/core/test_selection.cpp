#include "sunchase/core/selection.h"

#include <gtest/gtest.h>

#include "core_fixture.h"

namespace sunchase::core {
namespace {

class SelectionTest : public ::testing::Test {
 protected:
  SelectionTest()
      : city_(roadnet::GridCityOptions{}), env_(city_.graph()) {}

  std::vector<ParetoRoute> pareto(roadnet::NodeId o, roadnet::NodeId d,
                                  TimeOfDay dep) {
    MlcOptions opt;
    opt.max_time_factor = 1.5;
    const MultiLabelCorrecting solver(env_.world, opt);
    return solver.search(o, d, dep).routes;
  }

  roadnet::GridCity city_;
  test::RoutingEnv env_;
};

TEST_F(SelectionTest, EmptyParetoSetYieldsEmptyResult) {
  const SelectionResult r = select_representative_routes(
      {}, env_.world, TimeOfDay::hms(10, 0));
  EXPECT_TRUE(r.candidates.empty());
  EXPECT_EQ(r.cluster_count, 0u);
}

TEST_F(SelectionTest, ShortestTimeRouteAlwaysFirst) {
  const TimeOfDay dep = TimeOfDay::hms(10, 0);
  const auto routes = pareto(city_.node_at(1, 1), city_.node_at(7, 8), dep);
  ASSERT_FALSE(routes.empty());
  const SelectionResult r =
      select_representative_routes(routes, env_.world, dep);
  ASSERT_FALSE(r.candidates.empty());
  EXPECT_TRUE(r.candidates.front().is_shortest_time);
  // No candidate is faster than the first.
  for (const auto& c : r.candidates)
    EXPECT_GE(c.metrics.travel_time.value(),
              r.candidates.front().metrics.travel_time.value() - 1e-6);
}

TEST_F(SelectionTest, BetterSolarRoutesPassEquationFive) {
  const TimeOfDay dep = TimeOfDay::hms(10, 0);
  const auto routes = pareto(city_.node_at(1, 1), city_.node_at(7, 8), dep);
  const SelectionResult r =
      select_representative_routes(routes, env_.world, dep);
  for (std::size_t i = 1; i < r.candidates.size(); ++i) {
    EXPECT_GT(r.candidates[i].extra_energy.value(), 0.0);
    EXPECT_FALSE(r.candidates[i].is_shortest_time);
    // Reported extra values match the metrics.
    EXPECT_NEAR(r.candidates[i].extra_time.value(),
                r.candidates[i].metrics.travel_time.value() -
                    r.candidates.front().metrics.travel_time.value(),
                1e-6);
  }
}

TEST_F(SelectionTest, CandidatesSortedByExtraEnergy) {
  const TimeOfDay dep = TimeOfDay::hms(10, 0);
  const auto routes = pareto(city_.node_at(0, 0), city_.node_at(8, 9), dep);
  const SelectionResult r =
      select_representative_routes(routes, env_.world, dep);
  for (std::size_t i = 2; i < r.candidates.size(); ++i)
    EXPECT_GE(r.candidates[i - 1].extra_energy.value(),
              r.candidates[i].extra_energy.value());
}

TEST_F(SelectionTest, DisablingFilterKeepsAllRepresentatives) {
  const TimeOfDay dep = TimeOfDay::hms(10, 0);
  const auto routes = pareto(city_.node_at(1, 1), city_.node_at(7, 8), dep);
  SelectionOptions no_filter;
  no_filter.require_positive_energy_extra = false;
  const SelectionResult all = select_representative_routes(
      routes, env_.world, dep, no_filter);
  const SelectionResult filtered =
      select_representative_routes(routes, env_.world, dep);
  EXPECT_GE(all.candidates.size(), filtered.candidates.size());
  EXPECT_EQ(all.representative_count, filtered.representative_count);
}

TEST_F(SelectionTest, SelectionIsSubsetOfPareto) {
  const TimeOfDay dep = TimeOfDay::hms(11, 0);
  const auto routes = pareto(city_.node_at(2, 2), city_.node_at(9, 9), dep);
  const SelectionResult r =
      select_representative_routes(routes, env_.world, dep);
  for (const auto& cand : r.candidates) {
    const bool found = std::any_of(
        routes.begin(), routes.end(), [&](const ParetoRoute& p) {
          return p.path.edges == cand.route.path.edges;
        });
    EXPECT_TRUE(found);
  }
}

TEST_F(SelectionTest, SingleRoutePareto) {
  // With only one Pareto route, the result is just the shortest-time.
  const TimeOfDay dep = TimeOfDay::hms(10, 0);
  auto routes = pareto(city_.node_at(0, 0), city_.node_at(0, 2), dep);
  routes.resize(1);
  const SelectionResult r =
      select_representative_routes(routes, env_.world, dep);
  ASSERT_EQ(r.candidates.size(), 1u);
  EXPECT_TRUE(r.candidates.front().is_shortest_time);
}

TEST_F(SelectionTest, ClusterCountGrowsWithTighterDelta) {
  const TimeOfDay dep = TimeOfDay::hms(10, 0);
  const auto routes = pareto(city_.node_at(0, 0), city_.node_at(8, 9), dep);
  if (routes.size() < 4) GTEST_SKIP() << "need a richer Pareto set";
  SelectionOptions coarse;
  coarse.clustering.quality_threshold = 0.5;
  SelectionOptions fine;
  fine.clustering.quality_threshold = 0.02;
  const auto rc = select_representative_routes(routes, env_.world,
                                               dep, coarse);
  const auto rf = select_representative_routes(routes, env_.world,
                                               dep, fine);
  EXPECT_LE(rc.cluster_count, rf.cluster_count);
}

TEST_F(SelectionTest, TeslaFiltersMoreThanLv) {
  // Higher consumption makes Eq. 5 harder to satisfy: across several
  // OD pairs the Tesla never keeps more candidates than Lv's EV.
  const TimeOfDay dep = TimeOfDay::hms(10, 0);
  int lv_total = 0, tesla_total = 0;
  for (const auto& [r, c] :
       {std::pair{7, 8}, std::pair{8, 5}, std::pair{6, 9}}) {
    const auto routes_lv = pareto(city_.node_at(1, 1), city_.node_at(r, c),
                                  dep);
    const auto sel_lv = select_representative_routes(routes_lv, env_.world,
                                                     dep);
    // Tesla: re-search with its own consumption criterion.
    MlcOptions opt;
    opt.max_time_factor = 1.5;
    opt.vehicle = test::RoutingEnv::kTesla;
    const MultiLabelCorrecting tesla_solver(env_.world, opt);
    const auto routes_tesla =
        tesla_solver.search(city_.node_at(1, 1), city_.node_at(r, c), dep)
            .routes;
    const auto sel_tesla = select_representative_routes(
        routes_tesla, env_.world, dep, SelectionOptions{},
        test::RoutingEnv::kTesla);
    lv_total += static_cast<int>(sel_lv.candidates.size());
    tesla_total += static_cast<int>(sel_tesla.candidates.size());
  }
  EXPECT_LE(tesla_total, lv_total);
}

}  // namespace
}  // namespace sunchase::core
