#include "sunchase/core/planner.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "core_fixture.h"
#include "obs/json_check.h"
#include "sunchase/common/error.h"
#include "sunchase/obs/query_log.h"

namespace sunchase::core {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest() : city_(roadnet::GridCityOptions{}), env_(city_.graph()) {}

  roadnet::GridCity city_;
  test::RoutingEnv env_;
};

TEST_F(PlannerTest, PlanProducesConsistentResult) {
  const SunChasePlanner planner(env_.world);
  const PlanResult plan = planner.plan(city_.node_at(1, 1),
                                       city_.node_at(8, 8),
                                       TimeOfDay::hms(10, 0));
  ASSERT_FALSE(plan.candidates.empty());
  EXPECT_TRUE(plan.candidates.front().is_shortest_time);
  EXPECT_GE(plan.pareto_route_count, plan.candidates.size());
  EXPECT_GT(plan.cluster_count, 0u);
  EXPECT_GT(plan.search_stats.labels_created, 0u);
  for (const auto& cand : plan.candidates) {
    EXPECT_TRUE(is_connected(cand.route.path, city_.graph()));
    EXPECT_EQ(path_origin(cand.route.path, city_.graph()),
              city_.node_at(1, 1));
    EXPECT_EQ(path_destination(cand.route.path, city_.graph()),
              city_.node_at(8, 8));
  }
}

TEST_F(PlannerTest, EveryPlanAppendsOneQueryLogRecord) {
  std::ostringstream sink;
  obs::QueryLog log(sink);
  PlannerOptions options;
  options.query_log = &log;
  const SunChasePlanner planner(env_.world, options);

  const PlanResult plan = planner.plan(city_.node_at(1, 1),
                                       city_.node_at(8, 8),
                                       TimeOfDay::hms(10, 0));
  ASSERT_FALSE(plan.candidates.empty());
  EXPECT_EQ(log.record_count(), 1u);

  const std::string text = sink.str();
  ASSERT_FALSE(text.empty());
  const std::string line = text.substr(0, text.find('\n'));
  EXPECT_TRUE(test::json_parses(line)) << line;
  EXPECT_NE(line.find("\"mode\":\"plan\""), std::string::npos);
  EXPECT_NE(line.find("\"status\":\"ok\""), std::string::npos);
  // Phase durations and the recommended-route summary made it through.
  EXPECT_NE(line.find("\"mlc_seconds\""), std::string::npos);
  EXPECT_NE(line.find("\"travel_time_s\""), std::string::npos);

  // A failed plan still leaves a record, flagged as an error.
  EXPECT_THROW(planner.plan(city_.node_at(1, 1), city_.node_at(1, 1) + 100000,
                            TimeOfDay::hms(10, 0)),
               std::exception);
  EXPECT_EQ(log.record_count(), 2u);
  EXPECT_NE(sink.str().find("\"status\":\"error\""), std::string::npos);
}

TEST_F(PlannerTest, PlanAccountsThreadCpuTime) {
  std::ostringstream sink;
  obs::QueryLog log(sink);
  PlannerOptions options;
  options.query_log = &log;
  const SunChasePlanner planner(env_.world, options);

  const PlanResult plan = planner.plan(city_.node_at(1, 1),
                                       city_.node_at(8, 8),
                                       TimeOfDay::hms(10, 0));
  // The search did real work on this thread, so the
  // CLOCK_THREAD_CPUTIME_ID delta must be strictly positive — and no
  // larger than a generous multiple of a small search's budget.
  EXPECT_GT(plan.cpu_seconds, 0.0);
  EXPECT_LT(plan.cpu_seconds, 60.0);

  const std::string text = sink.str();
  const std::string line = text.substr(0, text.find('\n'));
  const auto at = line.find("\"cpu_ms\":");
  ASSERT_NE(at, std::string::npos) << line;
  EXPECT_GT(std::strtod(line.c_str() + at + 9, nullptr), 0.0);
}

TEST_F(PlannerTest, RecommendedPrefersBetterSolar) {
  const SunChasePlanner planner(env_.world);
  const PlanResult plan = planner.plan(city_.node_at(1, 1),
                                       city_.node_at(8, 8),
                                       TimeOfDay::hms(10, 0));
  if (plan.has_better_solar()) {
    EXPECT_FALSE(plan.recommended().is_shortest_time);
    EXPECT_GT(plan.recommended().extra_energy.value(), 0.0);
  } else {
    EXPECT_TRUE(plan.recommended().is_shortest_time);
  }
}

TEST_F(PlannerTest, RecommendedThrowsOnEmptyPlan) {
  const PlanResult empty;
  EXPECT_THROW((void)empty.recommended(), RoutingError);
}

TEST_F(PlannerTest, UnreachableThrowsRoutingError) {
  roadnet::GraphBuilder b;
  b.add_node({45.50, -73.57});
  b.add_node({45.51, -73.57});
  b.add_node({45.52, -73.57});
  b.add_edge(0, 1);
  const roadnet::RoadGraph g = std::move(b).build();
  test::RoutingEnv env(g);
  const SunChasePlanner planner(env.world);
  EXPECT_THROW((void)planner.plan(0, 2, TimeOfDay::hms(10, 0)),
               RoutingError);
}

TEST_F(PlannerTest, OptionsArePropagated) {
  PlannerOptions opt;
  opt.mlc.max_time_factor = 1.2;
  opt.selection.require_positive_energy_extra = false;
  const SunChasePlanner planner(env_.world, opt);
  EXPECT_DOUBLE_EQ(planner.options().mlc.max_time_factor, 1.2);
  const PlanResult plan = planner.plan(city_.node_at(0, 0),
                                       city_.node_at(5, 5),
                                       TimeOfDay::hms(11, 0));
  const double bound =
      plan.search_stats.shortest_travel_time.value() * 1.2;
  for (const auto& cand : plan.candidates)
    EXPECT_LE(cand.metrics.travel_time.value(), bound + 1e-6);
}

TEST_F(PlannerTest, DifferentVehiclesCanDisagree) {
  const SunChasePlanner lv_planner(env_.world);
  PlannerOptions tesla_opt;
  tesla_opt.mlc.vehicle = test::RoutingEnv::kTesla;
  const SunChasePlanner tesla_planner(env_.world, tesla_opt);
  int lv_better = 0, tesla_better = 0;
  for (const auto& [r, c] : {std::pair{6, 6}, std::pair{8, 3}, std::pair{4, 9},
                            std::pair{9, 9}}) {
    const TimeOfDay dep = TimeOfDay::hms(10, 0);
    if (lv_planner.plan(city_.node_at(1, 1), city_.node_at(r, c), dep)
            .has_better_solar())
      ++lv_better;
    if (tesla_planner.plan(city_.node_at(1, 1), city_.node_at(r, c), dep)
            .has_better_solar())
      ++tesla_better;
  }
  // The paper's core observation: the heavy Tesla finds better-solar
  // routes no more often than the light prototype.
  EXPECT_LE(tesla_better, lv_better);
}

TEST_F(PlannerTest, VehicleAccessor) {
  const SunChasePlanner planner(env_.world);
  EXPECT_EQ(planner.vehicle().name(), "Lv prototype");
}

// Property sweep over departure times: plans are always internally
// consistent (first = fastest, Eq. 5 positive for the rest).
class PlannerDayProperty : public ::testing::TestWithParam<int> {};

TEST_P(PlannerDayProperty, InvariantsAtEveryHour) {
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  test::RoutingEnv env(city.graph());
  const SunChasePlanner planner(env.world);
  const TimeOfDay dep = TimeOfDay::hms(GetParam(), 0);
  const PlanResult plan =
      planner.plan(city.node_at(2, 2), city.node_at(7, 7), dep);
  ASSERT_FALSE(plan.candidates.empty());
  const auto& base = plan.candidates.front();
  EXPECT_TRUE(base.is_shortest_time);
  for (std::size_t i = 1; i < plan.candidates.size(); ++i) {
    EXPECT_GT(plan.candidates[i].extra_energy.value(), 0.0);
    EXPECT_GE(plan.candidates[i].metrics.travel_time.value(),
              base.metrics.travel_time.value() - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Hours, PlannerDayProperty,
                         ::testing::Values(9, 10, 12, 14, 16));

}  // namespace
}  // namespace sunchase::core
