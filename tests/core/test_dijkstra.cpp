#include "sunchase/core/dijkstra.h"

#include <gtest/gtest.h>

#include "sunchase/common/error.h"
#include "sunchase/roadnet/citygen.h"
#include "test_helpers.h"

namespace sunchase::core {
namespace {

TEST(Dijkstra, FindsDirectShortestPath) {
  test::SquareGraph sq;
  roadnet::UniformTraffic traffic(MetersPerSecond{10.0});
  const auto result = detail::shortest_time_path(sq.graph, traffic, 0, 3,
                                         TimeOfDay::hms(10, 0));
  ASSERT_TRUE(result.has_value());
  // Either 0->1->3 or 0->2->3: both ~200 m -> ~20 s at 10 m/s.
  EXPECT_EQ(result->path.size(), 2u);
  EXPECT_NEAR(result->travel_time.value(), 20.0, 0.5);
  EXPECT_TRUE(is_connected(result->path, sq.graph));
  EXPECT_EQ(path_origin(result->path, sq.graph), 0u);
  EXPECT_EQ(path_destination(result->path, sq.graph), 3u);
}

TEST(Dijkstra, PrefersFasterDetourOverSlowDirect) {
  // Two-node pair with a slow direct edge and a fast 2-hop detour.
  roadnet::GraphBuilder b;
  const auto proj = test::montreal_projection();
  b.add_node(proj.to_geo({0, 0}));     // 0
  b.add_node(proj.to_geo({1000, 0}));  // 1
  b.add_node(proj.to_geo({500, 10}));  // 2
  b.add_edge(0, 1, kilometers(5.0));   // long way round marked as direct
  b.add_edge(0, 2, Meters{510.0});
  b.add_edge(2, 1, Meters{510.0});
  const roadnet::RoadGraph g = std::move(b).build();
  roadnet::UniformTraffic traffic(MetersPerSecond{10.0});
  const auto result =
      detail::shortest_time_path(g, traffic, 0, 1, TimeOfDay::hms(10, 0));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->path.size(), 2u);
  EXPECT_NEAR(result->travel_time.value(), 102.0, 0.1);
}

TEST(Dijkstra, UnreachableReturnsNullopt) {
  roadnet::GraphBuilder b;
  b.add_node({45.50, -73.57});
  b.add_node({45.51, -73.57});
  b.add_node({45.52, -73.57});
  b.add_edge(0, 1);  // node 2 is isolated
  const roadnet::RoadGraph g = std::move(b).build();
  roadnet::UniformTraffic traffic(MetersPerSecond{10.0});
  EXPECT_FALSE(
      detail::shortest_time_path(g, traffic, 0, 2, TimeOfDay::hms(10, 0)));
}

TEST(Dijkstra, OneWayDirectionRespected) {
  roadnet::GraphBuilder b;
  b.add_node({45.50, -73.57});
  b.add_node({45.51, -73.57});
  b.add_edge(0, 1);  // one-way only
  const roadnet::RoadGraph g = std::move(b).build();
  roadnet::UniformTraffic traffic(MetersPerSecond{10.0});
  EXPECT_TRUE(detail::shortest_time_path(g, traffic, 0, 1, TimeOfDay::hms(9, 0)));
  EXPECT_FALSE(detail::shortest_time_path(g, traffic, 1, 0, TimeOfDay::hms(9, 0)));
}

TEST(Dijkstra, OriginEqualsDestination) {
  test::SquareGraph sq;
  roadnet::UniformTraffic traffic(MetersPerSecond{10.0});
  const auto result =
      detail::shortest_time_path(sq.graph, traffic, 2, 2, TimeOfDay::hms(9, 0));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->path.empty());
  EXPECT_DOUBLE_EQ(result->travel_time.value(), 0.0);
}

TEST(Dijkstra, UnknownNodesThrow) {
  test::SquareGraph sq;
  roadnet::UniformTraffic traffic(MetersPerSecond{10.0});
  EXPECT_THROW((void)detail::shortest_time_path(sq.graph, traffic, 0, 99,
                                        TimeOfDay::hms(9, 0)),
               GraphError);
}

TEST(Dijkstra, TimeDependentSpeedsAffectChoice) {
  // Grid city with rush-hour congestion: the route exists at both
  // times; rush hour must not be faster than midday.
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  const roadnet::UrbanTraffic traffic{roadnet::UrbanTraffic::Options{}};
  const roadnet::NodeId o = city.node_at(1, 1);
  const roadnet::NodeId d = city.node_at(8, 9);
  const auto rush =
      detail::shortest_time_path(city.graph(), traffic, o, d, TimeOfDay::hms(8, 30));
  const auto midday =
      detail::shortest_time_path(city.graph(), traffic, o, d, TimeOfDay::hms(12, 30));
  ASSERT_TRUE(rush.has_value());
  ASSERT_TRUE(midday.has_value());
  EXPECT_GT(rush->travel_time.value(), midday->travel_time.value());
}

// Property: on the grid city, Dijkstra from corner to corner always
// produces a connected path whose recomputed travel time matches.
class DijkstraGridProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(DijkstraGridProperty, PathTimeConsistent) {
  roadnet::GridCityOptions opt;
  opt.rows = 6;
  opt.cols = 6;
  opt.seed = GetParam();
  const roadnet::GridCity city(opt);
  const roadnet::UniformTraffic traffic(kmh(15.0));
  const auto result =
      detail::shortest_time_path(city.graph(), traffic, city.node_at(0, 0),
                         city.node_at(5, 5), TimeOfDay::hms(10, 0));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(is_connected(result->path, city.graph()));
  double recomputed = 0.0;
  for (const roadnet::EdgeId e : result->path.edges)
    recomputed +=
        traffic.travel_time(city.graph(), e, TimeOfDay::hms(10, 0)).value();
  EXPECT_NEAR(recomputed, result->travel_time.value(), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraGridProperty,
                         ::testing::Values(1, 7, 42, 99, 1234));

TEST(TimeLowerBounds, DestinationIsZeroAndNeighborsMatchStaticWeights) {
  test::SquareGraph sq;
  const roadnet::UniformTraffic traffic(MetersPerSecond{10.0});
  const auto lb = detail::time_lower_bounds(sq.graph, traffic, 3);
  ASSERT_EQ(lb.size(), sq.graph.node_count());
  EXPECT_DOUBLE_EQ(lb[3], 0.0);
  // Under uniform traffic the "lower bound" IS the travel time, so the
  // bound to the destination equals Dijkstra's distance exactly.
  for (roadnet::NodeId n = 0; n < sq.graph.node_count(); ++n) {
    const auto forward = detail::shortest_time_path(sq.graph, traffic, n, 3,
                                                    TimeOfDay::hms(10, 0));
    ASSERT_TRUE(forward.has_value());
    EXPECT_NEAR(lb[n], forward->travel_time.value(), 1e-9);
  }
}

TEST(TimeLowerBounds, AdmissibleUnderUrbanTrafficAtEveryDeparture) {
  // The whole point of the static bound: at NO departure time — free
  // flow, rush hour, or the saturated end of day — may the bound
  // exceed the real time-dependent shortest time from any node.
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  const roadnet::UrbanTraffic traffic{roadnet::UrbanTraffic::Options{}};
  const roadnet::NodeId dest = city.node_at(9, 9);
  const auto lb = detail::time_lower_bounds(city.graph(), traffic, dest);
  for (const TimeOfDay dep :
       {TimeOfDay::hms(3, 0), TimeOfDay::hms(8, 30), TimeOfDay::hms(17, 15),
        TimeOfDay::hms(23, 59)}) {
    for (const roadnet::NodeId n :
         {city.node_at(0, 0), city.node_at(5, 5), city.node_at(9, 0),
          city.node_at(2, 7)}) {
      const auto forward =
          detail::shortest_time_path(city.graph(), traffic, n, dest, dep);
      ASSERT_TRUE(forward.has_value());
      EXPECT_LE(lb[n], forward->travel_time.value() + 1e-9)
          << "bound from node " << n << " at " << dep.to_string();
    }
  }
}

TEST(TimeLowerBounds, UnreachableNodesGetInfinity) {
  roadnet::GraphBuilder b;
  b.add_node({45.50, -73.57});
  b.add_node({45.51, -73.57});
  b.add_node({45.52, -73.57});
  b.add_edge(0, 1);  // node 2 cannot reach anything
  const roadnet::RoadGraph g = std::move(b).build();
  const roadnet::UniformTraffic traffic(MetersPerSecond{10.0});
  const auto lb = detail::time_lower_bounds(g, traffic, 1);
  EXPECT_TRUE(std::isfinite(lb[0]));
  EXPECT_DOUBLE_EQ(lb[1], 0.0);
  EXPECT_TRUE(std::isinf(lb[2]));
}

TEST(TimeLowerBounds, ReverseSearchRespectsOneWayDirections) {
  // A one-way edge 0->1: node 0 can reach destination 1 (finite
  // bound), but destination 0 is unreachable FROM node 1 — a forward
  // Dijkstra on the reversed adjacency must not confuse the two.
  roadnet::GraphBuilder b;
  b.add_node({45.50, -73.57});
  b.add_node({45.51, -73.57});
  b.add_edge(0, 1);
  const roadnet::RoadGraph g = std::move(b).build();
  const roadnet::UniformTraffic traffic(MetersPerSecond{10.0});
  const auto to_1 = detail::time_lower_bounds(g, traffic, 1);
  EXPECT_TRUE(std::isfinite(to_1[0]));
  const auto to_0 = detail::time_lower_bounds(g, traffic, 0);
  EXPECT_TRUE(std::isinf(to_0[1]));
}

TEST(TimeLowerBounds, UnknownDestinationThrows) {
  test::SquareGraph sq;
  const roadnet::UniformTraffic traffic(MetersPerSecond{10.0});
  EXPECT_THROW((void)detail::time_lower_bounds(sq.graph, traffic, 99),
               GraphError);
}

}  // namespace
}  // namespace sunchase::core
