#include "sunchase/core/dijkstra.h"

#include <gtest/gtest.h>

#include "sunchase/common/error.h"
#include "sunchase/roadnet/citygen.h"
#include "test_helpers.h"

namespace sunchase::core {
namespace {

TEST(Dijkstra, FindsDirectShortestPath) {
  test::SquareGraph sq;
  roadnet::UniformTraffic traffic(MetersPerSecond{10.0});
  const auto result = detail::shortest_time_path(sq.graph, traffic, 0, 3,
                                         TimeOfDay::hms(10, 0));
  ASSERT_TRUE(result.has_value());
  // Either 0->1->3 or 0->2->3: both ~200 m -> ~20 s at 10 m/s.
  EXPECT_EQ(result->path.size(), 2u);
  EXPECT_NEAR(result->travel_time.value(), 20.0, 0.5);
  EXPECT_TRUE(is_connected(result->path, sq.graph));
  EXPECT_EQ(path_origin(result->path, sq.graph), 0u);
  EXPECT_EQ(path_destination(result->path, sq.graph), 3u);
}

TEST(Dijkstra, PrefersFasterDetourOverSlowDirect) {
  // Two-node pair with a slow direct edge and a fast 2-hop detour.
  roadnet::GraphBuilder b;
  const auto proj = test::montreal_projection();
  b.add_node(proj.to_geo({0, 0}));     // 0
  b.add_node(proj.to_geo({1000, 0}));  // 1
  b.add_node(proj.to_geo({500, 10}));  // 2
  b.add_edge(0, 1, kilometers(5.0));   // long way round marked as direct
  b.add_edge(0, 2, Meters{510.0});
  b.add_edge(2, 1, Meters{510.0});
  const roadnet::RoadGraph g = std::move(b).build();
  roadnet::UniformTraffic traffic(MetersPerSecond{10.0});
  const auto result =
      detail::shortest_time_path(g, traffic, 0, 1, TimeOfDay::hms(10, 0));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->path.size(), 2u);
  EXPECT_NEAR(result->travel_time.value(), 102.0, 0.1);
}

TEST(Dijkstra, UnreachableReturnsNullopt) {
  roadnet::GraphBuilder b;
  b.add_node({45.50, -73.57});
  b.add_node({45.51, -73.57});
  b.add_node({45.52, -73.57});
  b.add_edge(0, 1);  // node 2 is isolated
  const roadnet::RoadGraph g = std::move(b).build();
  roadnet::UniformTraffic traffic(MetersPerSecond{10.0});
  EXPECT_FALSE(
      detail::shortest_time_path(g, traffic, 0, 2, TimeOfDay::hms(10, 0)));
}

TEST(Dijkstra, OneWayDirectionRespected) {
  roadnet::GraphBuilder b;
  b.add_node({45.50, -73.57});
  b.add_node({45.51, -73.57});
  b.add_edge(0, 1);  // one-way only
  const roadnet::RoadGraph g = std::move(b).build();
  roadnet::UniformTraffic traffic(MetersPerSecond{10.0});
  EXPECT_TRUE(detail::shortest_time_path(g, traffic, 0, 1, TimeOfDay::hms(9, 0)));
  EXPECT_FALSE(detail::shortest_time_path(g, traffic, 1, 0, TimeOfDay::hms(9, 0)));
}

TEST(Dijkstra, OriginEqualsDestination) {
  test::SquareGraph sq;
  roadnet::UniformTraffic traffic(MetersPerSecond{10.0});
  const auto result =
      detail::shortest_time_path(sq.graph, traffic, 2, 2, TimeOfDay::hms(9, 0));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->path.empty());
  EXPECT_DOUBLE_EQ(result->travel_time.value(), 0.0);
}

TEST(Dijkstra, UnknownNodesThrow) {
  test::SquareGraph sq;
  roadnet::UniformTraffic traffic(MetersPerSecond{10.0});
  EXPECT_THROW((void)detail::shortest_time_path(sq.graph, traffic, 0, 99,
                                        TimeOfDay::hms(9, 0)),
               GraphError);
}

TEST(Dijkstra, TimeDependentSpeedsAffectChoice) {
  // Grid city with rush-hour congestion: the route exists at both
  // times; rush hour must not be faster than midday.
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  const roadnet::UrbanTraffic traffic{roadnet::UrbanTraffic::Options{}};
  const roadnet::NodeId o = city.node_at(1, 1);
  const roadnet::NodeId d = city.node_at(8, 9);
  const auto rush =
      detail::shortest_time_path(city.graph(), traffic, o, d, TimeOfDay::hms(8, 30));
  const auto midday =
      detail::shortest_time_path(city.graph(), traffic, o, d, TimeOfDay::hms(12, 30));
  ASSERT_TRUE(rush.has_value());
  ASSERT_TRUE(midday.has_value());
  EXPECT_GT(rush->travel_time.value(), midday->travel_time.value());
}

// Property: on the grid city, Dijkstra from corner to corner always
// produces a connected path whose recomputed travel time matches.
class DijkstraGridProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(DijkstraGridProperty, PathTimeConsistent) {
  roadnet::GridCityOptions opt;
  opt.rows = 6;
  opt.cols = 6;
  opt.seed = GetParam();
  const roadnet::GridCity city(opt);
  const roadnet::UniformTraffic traffic(kmh(15.0));
  const auto result =
      detail::shortest_time_path(city.graph(), traffic, city.node_at(0, 0),
                         city.node_at(5, 5), TimeOfDay::hms(10, 0));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(is_connected(result->path, city.graph()));
  double recomputed = 0.0;
  for (const roadnet::EdgeId e : result->path.edges)
    recomputed +=
        traffic.travel_time(city.graph(), e, TimeOfDay::hms(10, 0)).value();
  EXPECT_NEAR(recomputed, result->travel_time.value(), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraGridProperty,
                         ::testing::Values(1, 7, 42, 99, 1234));

}  // namespace
}  // namespace sunchase::core
