#include "sunchase/core/mlc.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "core_fixture.h"
#include "sunchase/common/error.h"

namespace sunchase::core {
namespace {

MlcOptions static_unbounded() {
  MlcOptions opt;
  opt.max_time_factor = 0.0;    // full Pareto set
  opt.time_dependent = false;   // static costs -> brute force comparable
  return opt;
}

TEST(Mlc, MatchesBruteForceOnSquareGraph) {
  test::SquareGraph sq;
  test::RoutingEnv env(sq.graph);
  const MultiLabelCorrecting solver(env.world, static_unbounded());
  const TimeOfDay dep = TimeOfDay::hms(10, 0);
  const MlcResult result = solver.search(0, 3, dep);
  const auto expected =
      test::brute_force_pareto(env.map, env.lv, 0, 3, dep);

  ASSERT_EQ(result.routes.size(), expected.size());
  for (const auto& route : result.routes) {
    const bool found = std::any_of(
        expected.begin(), expected.end(), [&](const ParetoRoute& e) {
          return equivalent(e.cost, route.cost);
        });
    EXPECT_TRUE(found) << "unexpected cost (" << route.cost.travel_time.value()
                       << ", " << route.cost.shaded_time.value() << ", "
                       << route.cost.energy_out.value() << ")";
  }
}

// The decisive correctness check: MLC against exhaustive enumeration on
// randomized grid cities with one-way streets.
class MlcBruteForceProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(MlcBruteForceProperty, FullParetoSetMatches) {
  roadnet::GridCityOptions opt;
  opt.rows = 3;
  opt.cols = 4;  // small enough for exhaustive DFS
  opt.one_way_fraction = 0.5;
  opt.seed = GetParam();
  const roadnet::GridCity city(opt);
  test::RoutingEnv env(city.graph());
  const MultiLabelCorrecting solver(env.world, static_unbounded());
  const TimeOfDay dep = TimeOfDay::hms(11, 0);
  const roadnet::NodeId o = city.node_at(0, 0);
  const roadnet::NodeId d = city.node_at(2, 3);

  const MlcResult result = solver.search(o, d, dep);
  const auto expected = test::brute_force_pareto(env.map, env.lv, o, d, dep);

  ASSERT_EQ(result.routes.size(), expected.size());
  for (const auto& route : result.routes) {
    EXPECT_TRUE(std::any_of(expected.begin(), expected.end(),
                            [&](const ParetoRoute& e) {
                              return equivalent(e.cost, route.cost);
                            }));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MlcBruteForceProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

TEST(Mlc, RoutesAreMutuallyNonDominated) {
  test::SquareGraph sq;
  test::RoutingEnv env(sq.graph);
  const MultiLabelCorrecting solver(env.world, static_unbounded());
  const MlcResult result = solver.search(0, 3, TimeOfDay::hms(10, 0));
  for (const auto& a : result.routes)
    for (const auto& b : result.routes)
      EXPECT_FALSE(dominates(a.cost, b.cost) && dominates(b.cost, a.cost));
}

TEST(Mlc, AllRoutesConnectOriginToDestination) {
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  test::RoutingEnv env(city.graph());
  MlcOptions opt;
  opt.max_time_factor = 1.5;
  const MultiLabelCorrecting solver(env.world, opt);
  const roadnet::NodeId o = city.node_at(2, 2);
  const roadnet::NodeId d = city.node_at(9, 10);
  const MlcResult result = solver.search(o, d, TimeOfDay::hms(10, 0));
  ASSERT_FALSE(result.routes.empty());
  for (const auto& route : result.routes) {
    EXPECT_TRUE(is_connected(route.path, city.graph()));
    EXPECT_EQ(path_origin(route.path, city.graph()), o);
    EXPECT_EQ(path_destination(route.path, city.graph()), d);
  }
}

TEST(Mlc, ContainsTheShortestTimeRoute) {
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  test::RoutingEnv env(city.graph());
  MlcOptions opt;
  opt.max_time_factor = 1.5;
  const MultiLabelCorrecting solver(env.world, opt);
  const roadnet::NodeId o = city.node_at(1, 1);
  const roadnet::NodeId d = city.node_at(8, 8);
  const TimeOfDay dep = TimeOfDay::hms(10, 0);
  const MlcResult result = solver.search(o, d, dep);
  // The lexicographically first route minimizes travel time; it must
  // match the Dijkstra baseline the stats carry.
  ASSERT_FALSE(result.routes.empty());
  EXPECT_NEAR(result.routes.front().cost.travel_time.value(),
              result.stats.shortest_travel_time.value(), 0.5);
}

TEST(Mlc, TimeBudgetPrunesLongRoutes) {
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  test::RoutingEnv env(city.graph());
  MlcOptions tight;
  tight.max_time_factor = 1.1;
  MlcOptions loose;
  loose.max_time_factor = 2.0;
  const MultiLabelCorrecting tight_solver(env.world, tight);
  const MultiLabelCorrecting loose_solver(env.world, loose);
  const roadnet::NodeId o = city.node_at(2, 2);
  const roadnet::NodeId d = city.node_at(7, 7);
  const TimeOfDay dep = TimeOfDay::hms(10, 0);
  const MlcResult t = tight_solver.search(o, d, dep);
  const MlcResult l = loose_solver.search(o, d, dep);
  EXPECT_LE(t.routes.size(), l.routes.size());
  const double bound =
      t.stats.shortest_travel_time.value() * tight.max_time_factor;
  for (const auto& route : t.routes)
    EXPECT_LE(route.cost.travel_time.value(), bound + 1e-6);
}

TEST(Mlc, UnreachableDestinationThrows) {
  roadnet::GraphBuilder b;
  b.add_node({45.50, -73.57});
  b.add_node({45.51, -73.57});
  b.add_node({45.52, -73.57});
  b.add_edge(0, 1);
  const roadnet::RoadGraph g = std::move(b).build();
  test::RoutingEnv env(g);
  const MultiLabelCorrecting solver(env.world, MlcOptions{});
  EXPECT_THROW((void)solver.search(0, 2, TimeOfDay::hms(10, 0)),
               RoutingError);
}

TEST(Mlc, UnknownNodeThrows) {
  test::SquareGraph sq;
  test::RoutingEnv env(sq.graph);
  const MultiLabelCorrecting solver(env.world, MlcOptions{});
  EXPECT_THROW((void)solver.search(0, 99, TimeOfDay::hms(10, 0)),
               GraphError);
}

TEST(Mlc, LabelBudgetEnforced) {
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  test::RoutingEnv env(city.graph());
  MlcOptions opt;
  opt.max_labels = 10;
  const MultiLabelCorrecting solver(env.world, opt);
  EXPECT_THROW((void)solver.search(city.node_at(0, 0), city.node_at(9, 9),
                                   TimeOfDay::hms(10, 0)),
               RoutingError);
}

TEST(Mlc, InvalidOptionsRejected) {
  test::SquareGraph sq;
  test::RoutingEnv env(sq.graph);
  MlcOptions bad;
  bad.max_time_factor = -1.0;
  EXPECT_THROW(MultiLabelCorrecting(env.world, bad), InvalidArgument);
  bad.max_time_factor = 0.5;  // would exclude the shortest path
  EXPECT_THROW(MultiLabelCorrecting(env.world, bad), InvalidArgument);
}

TEST(Mlc, OriginEqualsDestinationYieldsEmptyRoute) {
  test::SquareGraph sq;
  test::RoutingEnv env(sq.graph);
  const MultiLabelCorrecting solver(env.world, MlcOptions{});
  const MlcResult result = solver.search(1, 1, TimeOfDay::hms(10, 0));
  ASSERT_EQ(result.routes.size(), 1u);
  EXPECT_TRUE(result.routes.front().path.empty());
  EXPECT_DOUBLE_EQ(result.routes.front().cost.travel_time.value(), 0.0);
}

TEST(Mlc, StatsArePopulated) {
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  test::RoutingEnv env(city.graph());
  const MultiLabelCorrecting solver(env.world, MlcOptions{});
  const MlcResult result = solver.search(city.node_at(1, 1),
                                         city.node_at(6, 6),
                                         TimeOfDay::hms(10, 0));
  EXPECT_GT(result.stats.labels_created, result.routes.size());
  EXPECT_GT(result.stats.queue_pops, 0u);
  EXPECT_EQ(result.stats.pareto_size, result.routes.size());
  EXPECT_GT(result.stats.shortest_travel_time.value(), 0.0);
}

TEST(Mlc, MaxLabelsExhaustionThrowsRoutingErrorNamingTheBudget) {
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  test::RoutingEnv env(city.graph());
  MlcOptions opt;
  opt.max_labels = 32;
  const MultiLabelCorrecting solver(env.world, opt);
  try {
    (void)solver.search(city.node_at(0, 0), city.node_at(9, 9),
                        TimeOfDay::hms(10, 0));
    FAIL() << "expected RoutingError";
  } catch (const RoutingError& e) {
    EXPECT_NE(std::string(e.what()).find("label budget"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("32"), std::string::npos);
  }
}

TEST(Mlc, TimeIndependentPricesEveryEdgeAtTheDepartureInstant) {
  // With time_dependent = false, each returned route's cost must equal
  // the sum of its edge criteria all evaluated at the departure time —
  // exactly, since the search adds the same doubles.
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  test::RoutingEnv env(city.graph());
  MlcOptions opt;
  opt.max_time_factor = 1.3;
  opt.time_dependent = false;
  const MultiLabelCorrecting solver(env.world, opt);
  const TimeOfDay dep = TimeOfDay::hms(9, 10);
  const MlcResult result = solver.search(city.node_at(1, 1),
                                         city.node_at(6, 7), dep);
  ASSERT_FALSE(result.routes.empty());
  for (const auto& route : result.routes) {
    Criteria static_cost;
    for (const roadnet::EdgeId e : route.path.edges)
      static_cost += detail::edge_criteria(env.map, env.lv, e, dep);
    EXPECT_EQ(route.cost, static_cost);
  }
}

TEST(Mlc, TimeIndependentSearchIgnoresMidRouteSlotBoundaries) {
  // A static search departing just before a 15-minute slot boundary and
  // one departing within the same slot but later must agree with the
  // static pricing of their own departure instant; the time-dependent
  // search from the same origin can differ because it re-prices edges
  // mid-route. This pins down the semantic difference of the flag.
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  test::RoutingEnv env(city.graph());
  MlcOptions static_opt;
  static_opt.max_time_factor = 1.3;
  static_opt.time_dependent = false;
  MlcOptions dynamic_opt = static_opt;
  dynamic_opt.time_dependent = true;
  const MultiLabelCorrecting static_solver(env.world, static_opt);
  const MultiLabelCorrecting dynamic_solver(env.world, dynamic_opt);
  const roadnet::NodeId o = city.node_at(0, 0);
  const roadnet::NodeId d = city.node_at(9, 9);
  // 09:14 departure: a multi-minute trip crosses into the 09:15 slot.
  const TimeOfDay dep = TimeOfDay::hms(9, 14);
  const MlcResult st = static_solver.search(o, d, dep);
  const MlcResult dy = dynamic_solver.search(o, d, dep);
  ASSERT_FALSE(st.routes.empty());
  ASSERT_FALSE(dy.routes.empty());
  // Static costs re-derived at the departure instant match exactly...
  for (const auto& route : st.routes) {
    Criteria at_departure;
    for (const roadnet::EdgeId e : route.path.edges)
      at_departure += detail::edge_criteria(env.map, env.lv, e, dep);
    EXPECT_EQ(route.cost, at_departure);
  }
  // ...while the time-dependent search sees the slot change mid-route:
  // re-pricing its best route statically gives a different vector.
  bool any_differs = false;
  for (const auto& route : dy.routes) {
    Criteria at_departure;
    for (const roadnet::EdgeId e : route.path.edges)
      at_departure += detail::edge_criteria(env.map, env.lv, e, dep);
    if (!equivalent(route.cost, at_departure)) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

TEST(Mlc, SlotQuantizedParetoSetsAreBitIdenticalOnASlotConstantWorld) {
  // RoutingEnv is slot-constant: UniformTraffic, slot-indexed shading,
  // constant panel power. Every input to edge_criteria is therefore
  // identical at the exact entry clock and at the slot start, so the
  // SlotQuantized search must reproduce the Exact Pareto sets bit for
  // bit — costs, paths, and search-effort stats alike.
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  test::RoutingEnv env(city.graph());
  MlcOptions exact_opt;
  exact_opt.max_time_factor = 1.5;
  MlcOptions slot_opt = exact_opt;
  slot_opt.pricing = PricingMode::SlotQuantized;
  const MultiLabelCorrecting exact(env.world, exact_opt);
  const MultiLabelCorrecting slot(env.world, slot_opt);
  ASSERT_EQ(exact.cache(), nullptr);
  ASSERT_NE(slot.cache(), nullptr);

  const std::vector<std::pair<roadnet::NodeId, roadnet::NodeId>> trips = {
      {city.node_at(0, 0), city.node_at(9, 9)},
      {city.node_at(1, 1), city.node_at(6, 7)},
      {city.node_at(9, 0), city.node_at(0, 9)},
  };
  for (const auto& [o, d] : trips)
    for (const TimeOfDay dep :
         {TimeOfDay::hms(8, 30), TimeOfDay::hms(9, 14),
          TimeOfDay::hms(12, 0), TimeOfDay::hms(17, 50)}) {
      const MlcResult e = exact.search(o, d, dep);
      const MlcResult s = slot.search(o, d, dep);
      ASSERT_EQ(e.routes.size(), s.routes.size());
      for (std::size_t r = 0; r < e.routes.size(); ++r) {
        EXPECT_EQ(e.routes[r].cost, s.routes[r].cost);
        EXPECT_EQ(e.routes[r].path.edges, s.routes[r].path.edges);
      }
      EXPECT_EQ(e.stats.labels_created, s.stats.labels_created);
      EXPECT_EQ(e.stats.labels_dominated, s.stats.labels_dominated);
      EXPECT_EQ(e.stats.queue_pops, s.stats.queue_pops);
    }
}

TEST(Mlc, SlotQuantizedRepeatQueriesReuseTheCache) {
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  test::RoutingEnv env(city.graph());
  MlcOptions opt;
  opt.pricing = PricingMode::SlotQuantized;
  const MultiLabelCorrecting solver(env.world, opt);
  const MlcResult first = solver.search(city.node_at(1, 1),
                                        city.node_at(6, 6),
                                        TimeOfDay::hms(10, 0));
  const std::size_t filled = solver.cache()->filled_slots();
  EXPECT_GT(filled, 0u);
  const MlcResult second = solver.search(city.node_at(1, 1),
                                         city.node_at(6, 6),
                                         TimeOfDay::hms(10, 0));
  // Same slots touched again: no new columns, identical results.
  EXPECT_EQ(solver.cache()->filled_slots(), filled);
  ASSERT_EQ(first.routes.size(), second.routes.size());
  for (std::size_t r = 0; r < first.routes.size(); ++r)
    EXPECT_EQ(first.routes[r].cost, second.routes[r].cost);
}

TEST(Mlc, TimeDependentCostsChangeWithDeparture) {
  // With hashed shading varying by slot, a trip at 9:00 and one at
  // 13:00 should see different shaded-time costs on some route.
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  test::RoutingEnv env(city.graph());
  const MultiLabelCorrecting solver(env.world, MlcOptions{});
  const roadnet::NodeId o = city.node_at(1, 1);
  const roadnet::NodeId d = city.node_at(5, 5);
  const auto morning = solver.search(o, d, TimeOfDay::hms(9, 0));
  const auto noon = solver.search(o, d, TimeOfDay::hms(13, 0));
  ASSERT_FALSE(morning.routes.empty());
  ASSERT_FALSE(noon.routes.empty());
  EXPECT_FALSE(equivalent(morning.routes.front().cost,
                          noon.routes.front().cost));
}

}  // namespace
}  // namespace sunchase::core
