#include "sunchase/core/metrics.h"

#include <gtest/gtest.h>

#include "core_fixture.h"

namespace sunchase::core {
namespace {

TEST(EdgeCriteria, ConsistentWithInputMap) {
  test::SquareGraph sq;
  test::RoutingEnv env(sq.graph);
  const TimeOfDay when = TimeOfDay::hms(10, 0);
  const Criteria c = detail::edge_criteria(env.map, env.lv, 0, when);
  const solar::EdgeSolar es = env.map.evaluate(0, when);
  EXPECT_DOUBLE_EQ(c.travel_time.value(), es.travel_time.value());
  EXPECT_DOUBLE_EQ(c.shaded_time.value(), es.shaded_time.value());
  const MetersPerSecond v = env.traffic.speed(sq.graph, 0, when);
  EXPECT_DOUBLE_EQ(
      c.energy_out.value(),
      env.lv.consumption(sq.graph.edge(0).length, v).value());
}

TEST(EvaluateRoute, EmptyPathIsAllZero) {
  test::SquareGraph sq;
  test::RoutingEnv env(sq.graph);
  const RouteMetrics m =
      detail::evaluate_route(env.map, env.lv, roadnet::Path{}, TimeOfDay::hms(9, 0));
  EXPECT_DOUBLE_EQ(m.total_length.value(), 0.0);
  EXPECT_DOUBLE_EQ(m.travel_time.value(), 0.0);
  EXPECT_DOUBLE_EQ(m.energy_in.value(), 0.0);
  EXPECT_DOUBLE_EQ(m.energy_out.value(), 0.0);
}

TEST(EvaluateRoute, AccumulatesAlongPath) {
  test::SquareGraph sq;
  test::RoutingEnv env(sq.graph);
  roadnet::Path p;
  p.edges = {sq.graph.find_edge(0, 1), sq.graph.find_edge(1, 3)};
  const RouteMetrics m =
      detail::evaluate_route(env.map, env.lv, p, TimeOfDay::hms(10, 0));
  EXPECT_NEAR(m.total_length.value(), 200.0, 0.5);
  EXPECT_NEAR(m.travel_time.value(), 200.0 / kmh(15.0).value(), 0.2);
  EXPECT_NEAR(m.solar_time.value() + m.shaded_time.value(),
              m.travel_time.value(), 1e-6);
  EXPECT_GT(m.energy_in.value(), 0.0);
  EXPECT_GT(m.energy_out.value(), 0.0);
}

TEST(EvaluateRoute, MatchesMlcCostVector) {
  // The metrics of a route must agree with the cost vector the search
  // assigned to it (same clock advance rule).
  const roadnet::GridCity city{roadnet::GridCityOptions{}};
  test::RoutingEnv env(city.graph());
  const MultiLabelCorrecting solver(env.world, MlcOptions{});
  const TimeOfDay dep = TimeOfDay::hms(10, 0);
  const MlcResult result =
      solver.search(city.node_at(1, 1), city.node_at(6, 7), dep);
  ASSERT_FALSE(result.routes.empty());
  for (const auto& route : result.routes) {
    const RouteMetrics m = detail::evaluate_route(env.map, env.lv, route.path, dep);
    EXPECT_NEAR(m.travel_time.value(), route.cost.travel_time.value(), 1e-6);
    EXPECT_NEAR(m.shaded_time.value(), route.cost.shaded_time.value(), 1e-6);
    EXPECT_NEAR(m.energy_out.value(), route.cost.energy_out.value(), 1e-6);
  }
}

TEST(EnergyExtra, EquationFiveSigns) {
  RouteMetrics baseline;
  baseline.energy_in = WattHours{10.0};
  baseline.energy_out = WattHours{50.0};
  RouteMetrics good;  // +6 Wh input for +2 Wh consumption -> +4
  good.energy_in = WattHours{16.0};
  good.energy_out = WattHours{52.0};
  EXPECT_NEAR(energy_extra(good, baseline).value(), 4.0, 1e-12);

  RouteMetrics bad;  // +1 Wh input for +5 Wh consumption -> -4
  bad.energy_in = WattHours{11.0};
  bad.energy_out = WattHours{55.0};
  EXPECT_NEAR(energy_extra(bad, baseline).value(), -4.0, 1e-12);

  EXPECT_DOUBLE_EQ(energy_extra(baseline, baseline).value(), 0.0);
}

TEST(EvaluateRoute, HigherPanelPowerMeansMoreEnergyIn) {
  test::SquareGraph sq;
  roadnet::UniformTraffic traffic(kmh(15.0));
  const auto profile = shadow::ShadingProfile::compute(
      sq.graph, test::hashed_shading(), TimeOfDay::hms(8, 0),
      TimeOfDay::hms(18, 0));
  const solar::SolarInputMap weak(sq.graph, profile, traffic,
                                  solar::constant_panel_power(Watts{160.0}));
  const solar::SolarInputMap strong(
      sq.graph, profile, traffic,
      solar::constant_panel_power(Watts{210.0}));
  const auto lv = ev::make_lv_prototype();
  roadnet::Path p;
  p.edges = {sq.graph.find_edge(0, 1)};
  const TimeOfDay dep = TimeOfDay::hms(10, 0);
  EXPECT_LT(detail::evaluate_route(weak, *lv, p, dep).energy_in.value(),
            detail::evaluate_route(strong, *lv, p, dep).energy_in.value());
}

}  // namespace
}  // namespace sunchase::core
